//! Chunk → worker-node placement.
//!
//! In a shared-nothing cluster each chunk lives on (at least) one node. The
//! paper (§4.4 "Two-level partitions") argues for many more chunks than
//! nodes so that adding a node means *moving some chunks*, not
//! re-partitioning, and so that density-induced skew spreads across nodes
//! when chunks are assigned in a non-area-based scheme. Round-robin over
//! chunk id order interleaves sky-adjacent chunks onto different nodes,
//! which is exactly that scheme.

use std::collections::BTreeMap;

/// How chunks are distributed over nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlacementStrategy {
    /// Chunk `i` (in id order) goes to node `i mod n`: spreads sky-adjacent
    /// chunks across nodes, the paper's skew-spreading choice.
    RoundRobin,
    /// Contiguous blocks of chunks per node: keeps sky locality per node
    /// (useful as a *bad* baseline to show skew in benchmarks).
    Block,
    /// Multiplicative hash of the chunk id: placement independent of id
    /// order.
    Hash,
}

/// An immutable chunk → node assignment for a fixed node count, with the
/// inverse (node → chunks) precomputed.
#[derive(Clone, Debug)]
pub struct Placement {
    nodes: usize,
    replication: usize,
    chunk_to_nodes: BTreeMap<i32, Vec<usize>>,
}

impl Placement {
    /// Assigns every chunk in `chunks` to `nodes` nodes using `strategy`,
    /// with `replication` replicas per chunk (1 = no replication). Replicas
    /// land on consecutive distinct nodes.
    ///
    /// # Panics
    /// Panics when `nodes == 0`, `replication == 0`, or
    /// `replication > nodes`.
    pub fn new(
        chunks: &[i32],
        nodes: usize,
        replication: usize,
        strategy: PlacementStrategy,
    ) -> Placement {
        assert!(nodes > 0, "placement requires at least one node");
        assert!(
            (1..=nodes).contains(&replication),
            "replication must be in 1..=nodes"
        );
        let mut chunk_to_nodes = BTreeMap::new();
        let per_node_block = chunks.len().div_ceil(nodes).max(1);
        for (i, &c) in chunks.iter().enumerate() {
            let primary = match strategy {
                PlacementStrategy::RoundRobin => i % nodes,
                PlacementStrategy::Block => (i / per_node_block).min(nodes - 1),
                PlacementStrategy::Hash => {
                    // Fibonacci hashing of the chunk id.
                    (c as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) as usize % nodes
                }
            };
            let replicas: Vec<usize> = (0..replication).map(|r| (primary + r) % nodes).collect();
            chunk_to_nodes.insert(c, replicas);
        }
        Placement {
            nodes,
            replication,
            chunk_to_nodes,
        }
    }

    /// Number of nodes in the placement.
    pub fn num_nodes(&self) -> usize {
        self.nodes
    }

    /// Replication factor.
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// Nodes holding `chunk` (primary first), or `None` for an unknown
    /// chunk.
    pub fn nodes_of(&self, chunk: i32) -> Option<&[usize]> {
        self.chunk_to_nodes.get(&chunk).map(|v| v.as_slice())
    }

    /// The primary node of `chunk`.
    pub fn primary_of(&self, chunk: i32) -> Option<usize> {
        self.nodes_of(chunk).map(|ns| ns[0])
    }

    /// Chunks whose primary is `node`, ascending.
    pub fn chunks_on(&self, node: usize) -> Vec<i32> {
        self.chunk_to_nodes
            .iter()
            .filter(|(_, ns)| ns[0] == node)
            .map(|(&c, _)| c)
            .collect()
    }

    /// Chunks stored on `node` counting replicas, ascending.
    pub fn chunks_stored_on(&self, node: usize) -> Vec<i32> {
        self.chunk_to_nodes
            .iter()
            .filter(|(_, ns)| ns.contains(&node))
            .map(|(&c, _)| c)
            .collect()
    }

    /// Every known chunk id, ascending.
    pub fn chunks(&self) -> Vec<i32> {
        self.chunk_to_nodes.keys().copied().collect()
    }

    /// Max/min primary-chunk counts across nodes — a balance measure.
    pub fn balance(&self) -> (usize, usize) {
        let mut counts = vec![0usize; self.nodes];
        for ns in self.chunk_to_nodes.values() {
            counts[ns[0]] += 1;
        }
        (
            counts.iter().copied().max().unwrap_or(0),
            counts.iter().copied().min().unwrap_or(0),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: i32) -> Vec<i32> {
        (0..n).collect()
    }

    #[test]
    fn round_robin_balances() {
        let p = Placement::new(&ids(100), 10, 1, PlacementStrategy::RoundRobin);
        let (max, min) = p.balance();
        assert_eq!((max, min), (10, 10));
    }

    #[test]
    fn round_robin_uneven_remainder() {
        let p = Placement::new(&ids(101), 10, 1, PlacementStrategy::RoundRobin);
        let (max, min) = p.balance();
        assert_eq!(max - min, 1);
    }

    #[test]
    fn block_is_contiguous() {
        let p = Placement::new(&ids(100), 4, 1, PlacementStrategy::Block);
        assert_eq!(p.chunks_on(0), (0..25).collect::<Vec<_>>());
        assert_eq!(p.chunks_on(3), (75..100).collect::<Vec<_>>());
    }

    #[test]
    fn hash_covers_all_nodes() {
        let p = Placement::new(&ids(1000), 16, 1, PlacementStrategy::Hash);
        for n in 0..16 {
            assert!(!p.chunks_on(n).is_empty(), "node {n} got no chunks");
        }
    }

    #[test]
    fn replication_uses_distinct_nodes() {
        let p = Placement::new(&ids(50), 5, 3, PlacementStrategy::RoundRobin);
        for c in p.chunks() {
            let ns = p.nodes_of(c).unwrap();
            assert_eq!(ns.len(), 3);
            let mut sorted = ns.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "replicas must be distinct nodes");
        }
    }

    #[test]
    fn replica_sets_include_primary() {
        let p = Placement::new(&ids(50), 5, 2, PlacementStrategy::Hash);
        for c in p.chunks() {
            assert_eq!(p.nodes_of(c).unwrap()[0], p.primary_of(c).unwrap());
            assert!(p.chunks_stored_on(p.primary_of(c).unwrap()).contains(&c));
        }
    }

    #[test]
    fn unknown_chunk_is_none() {
        let p = Placement::new(&ids(10), 2, 1, PlacementStrategy::RoundRobin);
        assert!(p.nodes_of(999).is_none());
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_panics() {
        Placement::new(&ids(10), 0, 1, PlacementStrategy::RoundRobin);
    }

    #[test]
    #[should_panic(expected = "replication")]
    fn over_replication_panics() {
        Placement::new(&ids(10), 2, 3, PlacementStrategy::RoundRobin);
    }

    #[test]
    fn round_robin_interleaves_adjacent_chunks() {
        // Sky-adjacent chunks (consecutive ids) land on different nodes —
        // the paper's density-skew spreading argument.
        let p = Placement::new(&ids(100), 10, 1, PlacementStrategy::RoundRobin);
        for c in 0..99 {
            assert_ne!(p.primary_of(c), p.primary_of(c + 1));
        }
    }
}
