//! The objectId secondary index (paper §5.5).
//!
//! Qserv indexes exactly one non-spatial column: `objectId`. The frontend
//! keeps a three-column table mapping `objectId → (chunkId, subChunkId)`;
//! when a query is predicated on `objectId`, the frontend consults this
//! index to compute the containing chunk set instead of dispatching to all
//! ~9000 chunks — this is what makes Low Volume queries ~4 s instead of
//! ~30 s (Figures 2, 3 vs Figure 5).

use crate::chunker::{ChunkLocation, Chunker};
use qserv_sphgeom::LonLat;
use std::collections::BTreeMap;

/// An objectId → chunk location index.
///
/// Stored sorted (BTreeMap) as the real system stores an indexed MySQL
/// table; lookups are `O(log n)` and range scans are possible.
#[derive(Clone, Debug, Default)]
pub struct SecondaryIndex {
    map: BTreeMap<i64, ChunkLocation>,
}

impl SecondaryIndex {
    /// An empty index.
    pub fn new() -> SecondaryIndex {
        SecondaryIndex::default()
    }

    /// Builds an index from `(objectId, position)` pairs using `chunker` to
    /// locate each object. Duplicate ids keep the last insertion, mirroring
    /// a primary-key load where the loader deduplicates upstream.
    pub fn build<'a, I>(chunker: &Chunker, objects: I) -> SecondaryIndex
    where
        I: IntoIterator<Item = (i64, &'a LonLat)>,
    {
        let mut idx = SecondaryIndex::new();
        for (id, p) in objects {
            idx.insert(id, chunker.locate(p));
        }
        idx
    }

    /// Inserts or replaces one entry.
    pub fn insert(&mut self, object_id: i64, loc: ChunkLocation) {
        self.map.insert(object_id, loc);
    }

    /// Looks up one objectId.
    pub fn lookup(&self, object_id: i64) -> Option<ChunkLocation> {
        self.map.get(&object_id).copied()
    }

    /// The containing chunk set for a list of objectIds — what the frontend
    /// computes for `WHERE objectId IN (...)`. Unknown ids contribute
    /// nothing (the query will simply return no rows for them). The result
    /// is sorted and deduplicated.
    pub fn chunks_for(&self, object_ids: &[i64]) -> Vec<i32> {
        let mut out: Vec<i32> = object_ids
            .iter()
            .filter_map(|id| self.lookup(*id))
            .map(|l| l.chunk_id)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Number of indexed objects.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no objects are indexed.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// All ids in `[lo, hi]`, ascending — index range scan.
    pub fn range(&self, lo: i64, hi: i64) -> impl Iterator<Item = (i64, ChunkLocation)> + '_ {
        self.map.range(lo..=hi).map(|(&k, &v)| (k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Chunker, SecondaryIndex, Vec<(i64, LonLat)>) {
        let chunker = Chunker::test_small();
        let objs: Vec<(i64, LonLat)> = vec![
            (100, LonLat::from_degrees(10.0, 10.0)),
            (200, LonLat::from_degrees(10.1, 10.1)),
            (300, LonLat::from_degrees(200.0, -45.0)),
            (400, LonLat::from_degrees(359.9, 0.0)),
        ];
        let idx = SecondaryIndex::build(&chunker, objs.iter().map(|(id, p)| (*id, p)));
        (chunker, idx, objs)
    }

    #[test]
    fn lookup_matches_chunker() {
        let (chunker, idx, objs) = sample();
        for (id, p) in &objs {
            assert_eq!(idx.lookup(*id), Some(chunker.locate(p)));
        }
    }

    #[test]
    fn missing_id_is_none() {
        let (_, idx, _) = sample();
        assert_eq!(idx.lookup(999), None);
    }

    #[test]
    fn chunks_for_dedups_and_sorts() {
        let (_, idx, _) = sample();
        // 100 and 200 are ~0.1 degrees apart: same 10-degree chunk.
        let chunks = idx.chunks_for(&[100, 200, 300, 100, 9999]);
        assert_eq!(chunks.len(), 2);
        assert!(chunks.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn duplicate_insert_replaces() {
        let (chunker, mut idx, _) = sample();
        let new_loc = chunker.locate(&LonLat::from_degrees(90.0, 45.0));
        idx.insert(100, new_loc);
        assert_eq!(idx.lookup(100), Some(new_loc));
        assert_eq!(idx.len(), 4);
    }

    #[test]
    fn range_scan() {
        let (_, idx, _) = sample();
        let got: Vec<i64> = idx.range(150, 350).map(|(id, _)| id).collect();
        assert_eq!(got, vec![200, 300]);
    }

    #[test]
    fn empty_index() {
        let idx = SecondaryIndex::new();
        assert!(idx.is_empty());
        assert!(idx.chunks_for(&[1, 2, 3]).is_empty());
    }
}
