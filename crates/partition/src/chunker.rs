//! The stripe/sub-stripe two-level chunker.
//!
//! The sphere is cut into `num_stripes` equal-height declination stripes.
//! Each stripe is cut into right-ascension segments ("chunks") whose count is
//! chosen per stripe so chunk *area* stays roughly constant: stripes near the
//! poles get fewer, wider segments. Every stripe is further cut into
//! `num_substripes` sub-stripes, and each chunk into subchunk RA segments the
//! same way — the fine level used for on-the-fly near-neighbour join tables
//! (paper §4.4 "Two-level partitions").
//!
//! Chunk ids are `stripe * stride + ra_index` with a fixed stride (the
//! maximum chunk count of any stripe), so `chunk_id / stride` recovers the
//! stripe. Subchunk ids use the same construction within a chunk.

use qserv_sphgeom::region::Region;
use qserv_sphgeom::{Angle, LonLat, SphericalBox};
use std::fmt;

/// Errors produced by [`Chunker`] construction and lookups.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChunkerError {
    /// Constructor arguments out of range.
    BadConfig(String),
    /// A chunk or subchunk id that does not exist in this partitioning.
    NoSuchChunk(i32),
    /// A subchunk id that does not exist within the given chunk.
    NoSuchSubchunk { chunk: i32, subchunk: i32 },
}

impl fmt::Display for ChunkerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChunkerError::BadConfig(m) => write!(f, "bad chunker config: {m}"),
            ChunkerError::NoSuchChunk(c) => write!(f, "no such chunk: {c}"),
            ChunkerError::NoSuchSubchunk { chunk, subchunk } => {
                write!(f, "no such subchunk {subchunk} in chunk {chunk}")
            }
        }
    }
}

impl std::error::Error for ChunkerError {}

/// Where a point lands in the two-level partitioning.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ChunkLocation {
    /// First-level fragment id (the `CC` of `Object_CC`).
    pub chunk_id: i32,
    /// Second-level fragment id within the chunk (the `SS` of
    /// `Object_CC_SS`).
    pub subchunk_id: i32,
}

/// The two-level spherical partition map.
///
/// Immutable after construction; cheap to clone (a few `Vec`s of per-stripe
/// metadata) and `Sync`, so the frontend and all workers can share one.
#[derive(Clone, Debug)]
pub struct Chunker {
    num_stripes: usize,
    num_substripes: usize, // per stripe
    overlap: Angle,
    stripe_height_deg: f64,
    substripe_height_deg: f64,
    /// Number of chunks in each stripe.
    chunks_per_stripe: Vec<usize>,
    /// Chunk id stride between stripes (max chunks in any stripe).
    stride: usize,
    /// Per stripe: number of subchunks per (substripe, chunk) column, and
    /// the subchunk stride within chunks of that stripe.
    subchunks_per_substripe: Vec<Vec<usize>>,
    sub_stride: Vec<usize>,
}

impl Chunker {
    /// Creates the partitioning used throughout the paper's evaluation:
    /// 85 stripes, 12 sub-stripes per stripe, 1 arcminute of overlap
    /// (§6.1.2).
    pub fn paper_default() -> Chunker {
        Chunker::new(85, 12, Angle::from_arcmin(1.0)).expect("paper parameters are valid")
    }

    /// A small partitioning convenient for tests: 18 stripes (10° each),
    /// 10 sub-stripes, 0.1° overlap.
    pub fn test_small() -> Chunker {
        Chunker::new(18, 10, Angle::from_degrees(0.1)).expect("test parameters are valid")
    }

    /// Creates a chunker with `num_stripes` declination stripes, each with
    /// `num_substripes` sub-stripes, and the given overlap radius.
    pub fn new(
        num_stripes: usize,
        num_substripes: usize,
        overlap: Angle,
    ) -> Result<Chunker, ChunkerError> {
        if num_stripes == 0 || num_stripes > 10_000 {
            return Err(ChunkerError::BadConfig(format!(
                "num_stripes must be in 1..=10000, got {num_stripes}"
            )));
        }
        if num_substripes == 0 || num_substripes > 1_000 {
            return Err(ChunkerError::BadConfig(format!(
                "num_substripes must be in 1..=1000, got {num_substripes}"
            )));
        }
        if !overlap.is_finite() || overlap.radians() < 0.0 || overlap.degrees() > 10.0 {
            return Err(ChunkerError::BadConfig(format!(
                "overlap must be in [0°, 10°], got {overlap}"
            )));
        }
        let stripe_height_deg = 180.0 / num_stripes as f64;
        let substripe_height_deg = stripe_height_deg / num_substripes as f64;

        // Chunks per stripe: enough RA segments that each segment's width at
        // the stripe's widest declination is at least the stripe height
        // (i.e. chunks are no taller than wide at their widest point),
        // yielding roughly equal-area chunks.
        let mut chunks_per_stripe = Vec::with_capacity(num_stripes);
        for s in 0..num_stripes {
            chunks_per_stripe.push(segments_for_band(
                stripe_lat_min(s, stripe_height_deg),
                stripe_height_deg,
                stripe_height_deg,
            ));
        }
        let stride = *chunks_per_stripe.iter().max().expect("num_stripes > 0");

        // Subchunks: within each stripe, each chunk column is cut per
        // sub-stripe into RA segments of roughly substripe height.
        let mut subchunks_per_substripe = Vec::with_capacity(num_stripes);
        let mut sub_stride = Vec::with_capacity(num_stripes);
        for (s, &n_chunks) in chunks_per_stripe.iter().enumerate() {
            let chunk_width_deg = 360.0 / n_chunks as f64;
            let mut counts = Vec::with_capacity(num_substripes);
            for ss in 0..num_substripes {
                let lat_min =
                    stripe_lat_min(s, stripe_height_deg) + ss as f64 * substripe_height_deg;
                counts.push(segments_for_band_width(
                    lat_min,
                    substripe_height_deg,
                    substripe_height_deg,
                    chunk_width_deg,
                ));
            }
            let st = *counts.iter().max().expect("num_substripes > 0");
            subchunks_per_substripe.push(counts);
            sub_stride.push(st);
        }

        Ok(Chunker {
            num_stripes,
            num_substripes,
            overlap,
            stripe_height_deg,
            substripe_height_deg,
            chunks_per_stripe,
            stride,
            subchunks_per_substripe,
            sub_stride,
        })
    }

    /// The configured overlap radius (paper §4.4 "Overlap").
    pub fn overlap(&self) -> Angle {
        self.overlap
    }

    /// Number of declination stripes.
    pub fn num_stripes(&self) -> usize {
        self.num_stripes
    }

    /// Number of sub-stripes per stripe.
    pub fn num_substripes(&self) -> usize {
        self.num_substripes
    }

    /// Stripe height in degrees (the paper's ≈2.11° for 85 stripes).
    pub fn stripe_height_deg(&self) -> f64 {
        self.stripe_height_deg
    }

    /// Sub-stripe height in degrees (the paper's ≈0.176°).
    pub fn substripe_height_deg(&self) -> f64 {
        self.substripe_height_deg
    }

    /// Total number of chunks over the full sky.
    pub fn num_chunks(&self) -> usize {
        self.chunks_per_stripe.iter().sum()
    }

    /// Every chunk id, in ascending order.
    pub fn all_chunks(&self) -> Vec<i32> {
        let mut out = Vec::with_capacity(self.num_chunks());
        for (s, &n) in self.chunks_per_stripe.iter().enumerate() {
            for c in 0..n {
                out.push((s * self.stride + c) as i32);
            }
        }
        out
    }

    /// True when `chunk_id` names a chunk of this partitioning.
    pub fn is_valid_chunk(&self, chunk_id: i32) -> bool {
        if chunk_id < 0 {
            return false;
        }
        let (s, c) = (
            chunk_id as usize / self.stride,
            chunk_id as usize % self.stride,
        );
        s < self.num_stripes && c < self.chunks_per_stripe[s]
    }

    /// The stripe index of a chunk.
    pub fn stripe_of(&self, chunk_id: i32) -> Result<usize, ChunkerError> {
        if !self.is_valid_chunk(chunk_id) {
            return Err(ChunkerError::NoSuchChunk(chunk_id));
        }
        Ok(chunk_id as usize / self.stride)
    }

    /// Locates a point: which chunk and subchunk contain it.
    pub fn locate(&self, p: &LonLat) -> ChunkLocation {
        let (s, c) = self.stripe_chunk_of(p);
        let subchunk_id = self.subchunk_within(s, c, p);
        ChunkLocation {
            chunk_id: (s * self.stride + c) as i32,
            subchunk_id,
        }
    }

    fn stripe_chunk_of(&self, p: &LonLat) -> (usize, usize) {
        let s =
            (((p.decl_deg() + 90.0) / self.stripe_height_deg) as usize).min(self.num_stripes - 1);
        let n = self.chunks_per_stripe[s];
        let c = ((p.ra_deg() / 360.0 * n as f64) as usize).min(n - 1);
        (s, c)
    }

    fn subchunk_within(&self, s: usize, c: usize, p: &LonLat) -> i32 {
        let stripe_lat0 = stripe_lat_min(s, self.stripe_height_deg);
        let ss = (((p.decl_deg() - stripe_lat0) / self.substripe_height_deg) as usize)
            .min(self.num_substripes - 1);
        let n = self.chunks_per_stripe[s];
        let chunk_width = 360.0 / n as f64;
        let chunk_lon0 = c as f64 * chunk_width;
        let nsc = self.subchunks_per_substripe[s][ss];
        let sc = (((p.ra_deg() - chunk_lon0) / chunk_width * nsc as f64) as usize).min(nsc - 1);
        (ss * self.sub_stride[s] + sc) as i32
    }

    /// Bounding box of a chunk (without overlap).
    pub fn chunk_bounds(&self, chunk_id: i32) -> Result<SphericalBox, ChunkerError> {
        let s = self.stripe_of(chunk_id)?;
        let c = chunk_id as usize % self.stride;
        let n = self.chunks_per_stripe[s];
        let w = 360.0 / n as f64;
        let lat0 = stripe_lat_min(s, self.stripe_height_deg);
        Ok(SphericalBox::from_degrees(
            c as f64 * w,
            lat0,
            (c + 1) as f64 * w,
            lat0 + self.stripe_height_deg,
        ))
    }

    /// Bounding box of a chunk *including* its overlap margin: the region of
    /// rows stored with the chunk so spatial joins within `overlap` of the
    /// border need no other node's data.
    pub fn chunk_bounds_with_overlap(&self, chunk_id: i32) -> Result<SphericalBox, ChunkerError> {
        Ok(self.chunk_bounds(chunk_id)?.dilated(self.overlap))
    }

    /// All subchunk ids of a chunk, ascending.
    pub fn subchunks_of(&self, chunk_id: i32) -> Result<Vec<i32>, ChunkerError> {
        let s = self.stripe_of(chunk_id)?;
        let mut out = Vec::new();
        for (ss, &n) in self.subchunks_per_substripe[s].iter().enumerate() {
            for sc in 0..n {
                out.push((ss * self.sub_stride[s] + sc) as i32);
            }
        }
        Ok(out)
    }

    /// Bounding box of a subchunk within a chunk (without overlap).
    pub fn subchunk_bounds(
        &self,
        chunk_id: i32,
        subchunk_id: i32,
    ) -> Result<SphericalBox, ChunkerError> {
        let s = self.stripe_of(chunk_id)?;
        if subchunk_id < 0 {
            return Err(ChunkerError::NoSuchSubchunk {
                chunk: chunk_id,
                subchunk: subchunk_id,
            });
        }
        let ss = subchunk_id as usize / self.sub_stride[s];
        let sc = subchunk_id as usize % self.sub_stride[s];
        if ss >= self.num_substripes || sc >= self.subchunks_per_substripe[s][ss] {
            return Err(ChunkerError::NoSuchSubchunk {
                chunk: chunk_id,
                subchunk: subchunk_id,
            });
        }
        let chunk = self.chunk_bounds(chunk_id)?;
        let nsc = self.subchunks_per_substripe[s][ss];
        let scw = chunk.lon_extent_deg() / nsc as f64;
        let lat0 = chunk.lat_min_deg() + ss as f64 * self.substripe_height_deg;
        Ok(SphericalBox::from_degrees(
            chunk.lon_min_deg() + sc as f64 * scw,
            lat0,
            chunk.lon_min_deg() + (sc + 1) as f64 * scw,
            lat0 + self.substripe_height_deg,
        ))
    }

    /// Subchunk bounds dilated by the overlap radius.
    pub fn subchunk_bounds_with_overlap(
        &self,
        chunk_id: i32,
        subchunk_id: i32,
    ) -> Result<SphericalBox, ChunkerError> {
        Ok(self
            .subchunk_bounds(chunk_id, subchunk_id)?
            .dilated(self.overlap))
    }

    /// True when `p` belongs to `chunk_id`'s *overlap* region: inside the
    /// dilated bounds but not the chunk proper. Such rows are stored in the
    /// chunk's overlap table (paper §4.4).
    pub fn in_overlap(&self, chunk_id: i32, p: &LonLat) -> Result<bool, ChunkerError> {
        let own = self.chunk_bounds(chunk_id)?;
        if own.contains(p) {
            return Ok(false);
        }
        Ok(self.chunk_bounds_with_overlap(chunk_id)?.contains(p))
    }

    /// The chunks whose bounds intersect `region` — the spatial-restriction
    /// step of query analysis (paper §5.3 "Detect spatial restrictions").
    /// Conservative: may include a chunk that only touches the region's
    /// bounding box, never omits a chunk containing matching rows.
    pub fn chunks_intersecting(&self, region: &SphericalBox) -> Vec<i32> {
        let mut out = Vec::new();
        // Only stripes overlapping the region's declination range.
        let s_lo = (((region.lat_min_deg() + 90.0) / self.stripe_height_deg).floor() as isize)
            .clamp(0, self.num_stripes as isize - 1) as usize;
        let s_hi = (((region.lat_max_deg() + 90.0) / self.stripe_height_deg).ceil() as isize)
            .clamp(0, self.num_stripes as isize - 1) as usize;
        for s in s_lo..=s_hi {
            let n = self.chunks_per_stripe[s];
            let w = 360.0 / n as f64;
            let lat0 = stripe_lat_min(s, self.stripe_height_deg);
            let stripe_box =
                SphericalBox::from_degrees(0.0, lat0, 360.0, lat0 + self.stripe_height_deg);
            if !region.intersects(&stripe_box) {
                continue;
            }
            if region.is_full_lon() {
                for c in 0..n {
                    out.push((s * self.stride + c) as i32);
                }
                continue;
            }
            // Chunk RA columns covering [lon_min, lon_min + extent].
            let lo = region.lon_min_deg();
            let extent = region.lon_extent_deg();
            let c_lo = (lo / w).floor() as usize;
            let c_hi = ((lo + extent) / w).floor() as usize; // may exceed n: wraps
            for ci in c_lo..=c_hi {
                out.push((s * self.stride + ci % n) as i32);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The subchunks of `chunk_id` whose bounds intersect `region`.
    pub fn subchunks_intersecting(
        &self,
        chunk_id: i32,
        region: &SphericalBox,
    ) -> Result<Vec<i32>, ChunkerError> {
        let all = self.subchunks_of(chunk_id)?;
        let mut out = Vec::new();
        for sc in all {
            if self.subchunk_bounds(chunk_id, sc)?.intersects(region) {
                out.push(sc);
            }
        }
        Ok(out)
    }

    /// Per-chunk areas in deg² (for partition-skew statistics; Ablation C).
    pub fn chunk_areas_deg2(&self) -> Vec<f64> {
        self.all_chunks()
            .iter()
            .map(|&c| {
                self.chunk_bounds(c)
                    .expect("all_chunks are valid")
                    .area_deg2()
            })
            .collect()
    }
}

/// Declination (degrees) of the bottom of stripe `s`.
fn stripe_lat_min(s: usize, stripe_height_deg: f64) -> f64 {
    -90.0 + s as f64 * stripe_height_deg
}

/// Number of RA segments for a latitude band so each segment's arc width at
/// the band's widest latitude is at least `target_width_deg`.
fn segments_for_band(lat_min_deg: f64, height_deg: f64, target_width_deg: f64) -> usize {
    segments_for_band_width(lat_min_deg, height_deg, target_width_deg, 360.0)
}

/// As [`segments_for_band`], but cutting a band of RA extent
/// `ra_extent_deg` instead of the whole circle.
fn segments_for_band_width(
    lat_min_deg: f64,
    height_deg: f64,
    target_width_deg: f64,
    ra_extent_deg: f64,
) -> usize {
    let lat_max_deg = lat_min_deg + height_deg;
    // Widest point of the band: the latitude of smallest |lat|.
    let widest = if lat_min_deg <= 0.0 && lat_max_deg >= 0.0 {
        0.0
    } else {
        lat_min_deg.abs().min(lat_max_deg.abs())
    };
    let cos = widest.to_radians().cos();
    let n = (ra_extent_deg * cos / target_width_deg).floor() as usize;
    n.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use qserv_sphgeom::region::Region;

    #[test]
    fn paper_default_matches_section_6_1_2() {
        let c = Chunker::paper_default();
        // 85 stripes -> stripe height ~2.1176, substripe ~0.1765.
        assert!((c.stripe_height_deg() - 2.1176).abs() < 1e-3);
        assert!((c.substripe_height_deg() - 0.17647).abs() < 1e-4);
        // The paper reports 8983 chunks; our per-stripe rounding must land
        // in the same regime (equal-area partitions of ~4.5 deg^2).
        let n = c.num_chunks();
        assert!(
            (8000..=10000).contains(&n),
            "expected ~9000 chunks, got {n}"
        );
        // Median chunk area near 4.5 deg^2.
        let mut areas = c.chunk_areas_deg2();
        areas.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = areas[areas.len() / 2];
        assert!(
            (3.5..=5.5).contains(&median),
            "median chunk area {median} deg^2"
        );
    }

    #[test]
    fn bad_configs_rejected() {
        assert!(Chunker::new(0, 12, Angle::ZERO).is_err());
        assert!(Chunker::new(85, 0, Angle::ZERO).is_err());
        assert!(Chunker::new(85, 12, Angle::from_degrees(-1.0)).is_err());
        assert!(Chunker::new(85, 12, Angle::from_degrees(99.0)).is_err());
        assert!(Chunker::new(85, 12, Angle::from_radians(f64::NAN)).is_err());
    }

    #[test]
    fn locate_agrees_with_chunk_bounds() {
        let c = Chunker::test_small();
        for &(ra, decl) in &[
            (0.0, 0.0),
            (359.9, 89.9),
            (180.0, -89.9),
            (42.0, 13.7),
            (0.0001, -0.0001),
            (275.5, 54.3),
        ] {
            let p = LonLat::from_degrees(ra, decl);
            let loc = c.locate(&p);
            let b = c.chunk_bounds(loc.chunk_id).unwrap();
            assert!(b.contains(&p), "({ra},{decl}) not in its chunk bounds");
            let sb = c.subchunk_bounds(loc.chunk_id, loc.subchunk_id).unwrap();
            assert!(sb.contains(&p), "({ra},{decl}) not in its subchunk bounds");
        }
    }

    #[test]
    fn chunk_ids_decompose() {
        let c = Chunker::test_small();
        for id in c.all_chunks() {
            assert!(c.is_valid_chunk(id));
            assert!(c.chunk_bounds(id).is_ok());
        }
        assert!(!c.is_valid_chunk(-1));
        assert!(!c.is_valid_chunk(i32::MAX));
        assert!(c.chunk_bounds(i32::MAX).is_err());
    }

    #[test]
    fn subchunks_tile_chunk() {
        let c = Chunker::test_small();
        let chunk = c.all_chunks()[5];
        let subs = c.subchunks_of(chunk).unwrap();
        let chunk_area = c.chunk_bounds(chunk).unwrap().area_deg2();
        let sub_area: f64 = subs
            .iter()
            .map(|&s| c.subchunk_bounds(chunk, s).unwrap().area_deg2())
            .sum();
        assert!(
            (chunk_area - sub_area).abs() / chunk_area < 1e-9,
            "subchunks must exactly tile the chunk: {chunk_area} vs {sub_area}"
        );
    }

    #[test]
    fn polar_stripes_have_fewer_chunks() {
        let c = Chunker::paper_default();
        let equator_chunk = c.locate(&LonLat::from_degrees(10.0, 0.0)).chunk_id;
        let polar_chunk = c.locate(&LonLat::from_degrees(10.0, 89.0)).chunk_id;
        let s_eq = c.stripe_of(equator_chunk).unwrap();
        let s_po = c.stripe_of(polar_chunk).unwrap();
        assert!(c.chunks_per_stripe[s_po] < c.chunks_per_stripe[s_eq] / 10);
    }

    #[test]
    fn overlap_membership() {
        let c = Chunker::test_small();
        // A point just outside a chunk border must be in that chunk's
        // overlap.
        let chunk = c.locate(&LonLat::from_degrees(15.0, 5.0)).chunk_id;
        let b = c.chunk_bounds(chunk).unwrap();
        let outside = LonLat::from_degrees(b.lon_max_deg() + 0.05, 5.0);
        assert!(!b.contains(&outside));
        assert!(c.in_overlap(chunk, &outside).unwrap());
        // A point well away is in neither.
        let far = LonLat::from_degrees(b.lon_max_deg() + 5.0, 5.0);
        assert!(!c.in_overlap(chunk, &far).unwrap());
        // A point inside the chunk is not "overlap".
        assert!(!c
            .in_overlap(chunk, &LonLat::from_degrees(15.0, 5.0))
            .unwrap());
    }

    #[test]
    fn chunks_intersecting_small_box() {
        let c = Chunker::paper_default();
        // A 1 deg^2 box should hit only a handful of ~4.5 deg^2 chunks.
        let b = SphericalBox::from_degrees(100.0, 10.0, 101.0, 11.0);
        let hits = c.chunks_intersecting(&b);
        assert!(!hits.is_empty() && hits.len() <= 9, "got {}", hits.len());
        // And the located chunk of an interior point must be among them.
        let loc = c.locate(&LonLat::from_degrees(100.5, 10.5));
        assert!(hits.contains(&loc.chunk_id));
    }

    #[test]
    fn chunks_intersecting_full_sky_is_all() {
        let c = Chunker::test_small();
        let hits = c.chunks_intersecting(&SphericalBox::full_sky());
        assert_eq!(hits, c.all_chunks());
    }

    #[test]
    fn chunks_intersecting_wrapping_box() {
        let c = Chunker::paper_default();
        // The PT1.1 footprint wraps through RA 0.
        let b = SphericalBox::from_degrees(358.0, -7.0, 5.0, 7.0);
        let hits = c.chunks_intersecting(&b);
        assert!(!hits.is_empty());
        for &(ra, decl) in &[(358.5, 0.0), (0.0, 6.9), (4.9, -6.9)] {
            let loc = c.locate(&LonLat::from_degrees(ra, decl));
            assert!(
                hits.contains(&loc.chunk_id),
                "missing chunk for ({ra},{decl})"
            );
        }
    }

    #[test]
    fn subchunks_intersecting_restricts() {
        let c = Chunker::test_small();
        let chunk = c.locate(&LonLat::from_degrees(15.0, 5.0)).chunk_id;
        let all = c.subchunks_of(chunk).unwrap();
        let tiny = SphericalBox::from_degrees(15.0, 5.0, 15.01, 5.01);
        let some = c.subchunks_intersecting(chunk, &tiny).unwrap();
        assert!(!some.is_empty());
        assert!(some.len() < all.len());
    }

    #[test]
    fn invalid_subchunk_rejected() {
        let c = Chunker::test_small();
        let chunk = c.all_chunks()[0];
        assert!(c.subchunk_bounds(chunk, -1).is_err());
        assert!(c.subchunk_bounds(chunk, i32::MAX).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn every_point_locates_consistently(ra in 0.0f64..360.0, decl in -90.0f64..90.0) {
            let c = Chunker::test_small();
            let p = LonLat::from_degrees(ra, decl);
            let loc = c.locate(&p);
            prop_assert!(c.is_valid_chunk(loc.chunk_id));
            prop_assert!(c.chunk_bounds(loc.chunk_id).unwrap().contains(&p));
            prop_assert!(c.subchunk_bounds(loc.chunk_id, loc.subchunk_id).unwrap().contains(&p));
        }

        #[test]
        fn chunk_selection_never_misses(
            ra in 0.0f64..360.0, decl in -89.0f64..89.0,
            w in 0.01f64..30.0, h in 0.01f64..10.0,
        ) {
            let c = Chunker::test_small();
            let b = SphericalBox::from_degrees(ra, decl, ra + w, (decl + h).min(90.0));
            let hits = c.chunks_intersecting(&b);
            // Any point inside the box must live in a selected chunk.
            for (fx, fy) in [(0.0, 0.0), (0.5, 0.5), (1.0, 1.0), (0.99, 0.01)] {
                let p = LonLat::from_degrees(ra + fx * w, (decl + fy * h).min(90.0));
                if b.contains(&p) {
                    prop_assert!(hits.contains(&c.locate(&p).chunk_id));
                }
            }
        }

        #[test]
        fn points_in_two_chunks_never(ra in 0.0f64..360.0, decl in -90.0f64..90.0) {
            // Chunks partition the sphere: locate is a function, and the
            // located chunk's *un-dilated* bounds contain the point, so two
            // different chunks can't both claim it as their own row.
            let c = Chunker::test_small();
            let p = LonLat::from_degrees(ra, decl);
            let own = c.locate(&p).chunk_id;
            let mut owners = 0;
            for id in c.chunks_intersecting(
                &SphericalBox::from_degrees(ra - 0.2, decl - 0.2, ra + 0.2, decl + 0.2),
            ) {
                // Interior points: strictly inside (not on a boundary).
                let b = c.chunk_bounds(id).unwrap();
                let strictly_inside = p.ra_deg() > b.lon_min_deg() + 1e-9
                    && p.ra_deg() < b.lon_max_deg() - 1e-9
                    && p.decl_deg() > b.lat_min_deg() + 1e-9
                    && p.decl_deg() < b.lat_max_deg() - 1e-9
                    && !b.wraps();
                if strictly_inside {
                    owners += 1;
                    prop_assert_eq!(id, own);
                }
            }
            prop_assert!(owners <= 1);
        }
    }
}
