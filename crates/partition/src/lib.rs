//! Two-level spherical partitioning for the Qserv reproduction.
//!
//! Paper §4.4 divides the sky into coarse partitions ("chunks") for query
//! fragmentation and fine partitions ("subchunks") for spatial joins, plus a
//! precomputed *overlap* margin so near-neighbour joins never need data from
//! another node. §5.2 and §6.1.2 pin down the concrete scheme: declination
//! *stripes* of equal height, each split into *sub-stripes*; within a stripe,
//! chunks are right-ascension segments sized for roughly equal area (the
//! paper's test used 85 stripes × 12 sub-stripes → 8983 chunks of ≈4.5 deg²).
//!
//! This crate provides:
//! * [`Chunker`] — the stripe/sub-stripe partition map: point → (chunk,
//!   subchunk), chunk/subchunk bounds, conservative chunk selection for a
//!   spatial restriction, and overlap membership tests.
//! * [`placement`] — chunk → worker-node assignment strategies.
//! * [`index`] — the objectId secondary index (paper §5.5): objectId →
//!   (chunkId, subChunkId), used by the frontend to turn point queries into
//!   single-chunk dispatches.
//! * [`htm_chunker`] — the §7.5 alternative: two-level partitioning on the
//!   hierarchical triangular mesh, with hierarchical integer partition ids.

pub mod chunker;
pub mod htm_chunker;
pub mod index;
pub mod placement;

pub use chunker::{ChunkLocation, Chunker, ChunkerError};
pub use htm_chunker::HtmChunker;
pub use index::SecondaryIndex;
pub use placement::{Placement, PlacementStrategy};
