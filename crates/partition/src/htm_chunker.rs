//! HTM-based two-level partitioning — the §7.5 alternative.
//!
//! The paper's discussion: "The rectangular fragmentation in right
//! ascension and declination … is problematic due to severe distortion
//! near the poles. We are exploring the use of a hierarchical scheme,
//! such as the hierarchical triangular mesh (HTM) for partitioning and
//! spatial indexing. These schemes can produce partitions with less
//! variation in area, and map spherical points to integer identifiers
//! encoding the points' partitions at many subdivision levels."
//!
//! [`HtmChunker`] realizes that design: chunks are HTM trixels at a
//! coarse level, subchunks are their descendants `sub_depth` levels
//! deeper, and — the bonus §7.5 calls out — a subchunk id *is* the
//! chunk id's bit-prefix extension, so "interactive queries with very
//! small spatial extent can be rewritten to operate over a small set of
//! fine partition IDs" without any lookup table.
//!
//! The API mirrors [`crate::chunker::Chunker`] so the two schemes can be
//! compared side by side (Ablation C); chunk ids are the trixel ids
//! themselves (which never collide with stripe-scheme ids in tests
//! because both are used with their own cluster).

use crate::chunker::{ChunkLocation, ChunkerError};
use qserv_sphgeom::htm::{self, Trixel};
use qserv_sphgeom::{Angle, LonLat, SphericalBox};

/// Two-level HTM partitioning: chunks at `chunk_level`, subchunks
/// `sub_depth` levels deeper.
#[derive(Clone, Debug)]
pub struct HtmChunker {
    chunk_level: u8,
    sub_depth: u8,
    overlap: Angle,
}

impl HtmChunker {
    /// Creates an HTM chunker. `chunk_level` 4 gives 2048 chunks of
    /// ~20 deg²; level 5 gives 8192 of ~5 deg² (closest to the paper's
    /// 4.5 deg² stripe chunks). `sub_depth` 2 gives 16 subchunks per
    /// chunk.
    pub fn new(chunk_level: u8, sub_depth: u8, overlap: Angle) -> Result<HtmChunker, ChunkerError> {
        if chunk_level > 10 {
            return Err(ChunkerError::BadConfig(format!(
                "chunk_level must be ≤ 10, got {chunk_level}"
            )));
        }
        if sub_depth == 0 || chunk_level + sub_depth > htm::MAX_LEVEL {
            return Err(ChunkerError::BadConfig(format!(
                "sub_depth must be ≥ 1 with chunk_level + sub_depth ≤ {}, got {sub_depth}",
                htm::MAX_LEVEL
            )));
        }
        if !overlap.is_finite() || overlap.radians() < 0.0 || overlap.degrees() > 10.0 {
            return Err(ChunkerError::BadConfig(format!(
                "overlap must be in [0°, 10°], got {overlap}"
            )));
        }
        Ok(HtmChunker {
            chunk_level,
            sub_depth,
            overlap,
        })
    }

    /// A paper-comparable configuration: level-5 chunks (8192 × ~5 deg²),
    /// 16 subchunks each, 1 arcminute overlap.
    pub fn paper_comparable() -> HtmChunker {
        HtmChunker::new(5, 2, Angle::from_arcmin(1.0)).expect("constants are valid")
    }

    /// The chunk subdivision level.
    pub fn chunk_level(&self) -> u8 {
        self.chunk_level
    }

    /// Levels between chunk and subchunk.
    pub fn sub_depth(&self) -> u8 {
        self.sub_depth
    }

    /// The overlap radius.
    pub fn overlap(&self) -> Angle {
        self.overlap
    }

    /// Subchunks per chunk (4^sub_depth).
    pub fn subchunks_per_chunk(&self) -> usize {
        1usize << (2 * self.sub_depth)
    }

    /// Total chunks (8·4^chunk_level).
    pub fn num_chunks(&self) -> usize {
        8usize << (2 * self.chunk_level)
    }

    /// Locates a point. The subchunk id is the *local* child index — the
    /// low `2·sub_depth` bits of the fine trixel id — so the full fine
    /// trixel id is recoverable as `chunk_id << (2·sub_depth) | subchunk`.
    pub fn locate(&self, p: &LonLat) -> ChunkLocation {
        let fine = htm::htm_id(p, self.chunk_level + self.sub_depth);
        let chunk = fine >> (2 * self.sub_depth);
        let sub = fine & ((1 << (2 * self.sub_depth)) - 1);
        ChunkLocation {
            chunk_id: chunk as i32,
            subchunk_id: sub as i32,
        }
    }

    /// True when `chunk_id` is a valid level-`chunk_level` trixel id.
    pub fn is_valid_chunk(&self, chunk_id: i32) -> bool {
        chunk_id >= 0 && {
            let id = chunk_id as u64;
            id >= (8 << (2 * self.chunk_level)) && id < (16 << (2 * self.chunk_level))
        }
    }

    fn trixel_of(&self, chunk_id: i32) -> Result<Trixel, ChunkerError> {
        if !self.is_valid_chunk(chunk_id) {
            return Err(ChunkerError::NoSuchChunk(chunk_id));
        }
        // Walk from the root following the id's 2-bit path.
        let id = chunk_id as u64;
        let root_index = (id >> (2 * self.chunk_level)) - 8;
        let mut t = Trixel::roots()[root_index as usize];
        for level in (0..self.chunk_level).rev() {
            let child = ((id >> (2 * level)) & 3) as usize;
            t = t.children()[child];
        }
        Ok(t)
    }

    /// Conservative bounding box of a chunk.
    pub fn chunk_bounds(&self, chunk_id: i32) -> Result<SphericalBox, ChunkerError> {
        Ok(self.trixel_of(chunk_id)?.bounding_box())
    }

    /// Chunk bounds dilated by the overlap.
    pub fn chunk_bounds_with_overlap(&self, chunk_id: i32) -> Result<SphericalBox, ChunkerError> {
        Ok(self.chunk_bounds(chunk_id)?.dilated(self.overlap))
    }

    /// All subchunk (local child) ids of a chunk: `0..4^sub_depth`.
    pub fn subchunks_of(&self, chunk_id: i32) -> Result<Vec<i32>, ChunkerError> {
        if !self.is_valid_chunk(chunk_id) {
            return Err(ChunkerError::NoSuchChunk(chunk_id));
        }
        Ok((0..self.subchunks_per_chunk() as i32).collect())
    }

    /// Bounding box of one subchunk.
    pub fn subchunk_bounds(
        &self,
        chunk_id: i32,
        subchunk_id: i32,
    ) -> Result<SphericalBox, ChunkerError> {
        let max = self.subchunks_per_chunk() as i32;
        if !(0..max).contains(&subchunk_id) {
            return Err(ChunkerError::NoSuchSubchunk {
                chunk: chunk_id,
                subchunk: subchunk_id,
            });
        }
        let mut t = self.trixel_of(chunk_id)?;
        for level in (0..self.sub_depth).rev() {
            let child = ((subchunk_id as u64 >> (2 * level)) & 3) as usize;
            t = t.children()[child];
        }
        Ok(t.bounding_box())
    }

    /// The chunks whose (conservative) bounds intersect `region`.
    pub fn chunks_intersecting(&self, region: &SphericalBox) -> Vec<i32> {
        htm::cover_box(region, self.chunk_level)
            .into_iter()
            .map(|id| id as i32)
            .collect()
    }

    /// Per-chunk areas in deg² (for Ablation C statistics).
    pub fn chunk_areas_deg2(&self) -> Vec<f64> {
        let sr_to_deg2 = (180.0 / std::f64::consts::PI).powi(2);
        htm::all_trixels(self.chunk_level)
            .iter()
            .map(|t| t.area_sr() * sr_to_deg2)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use qserv_sphgeom::region::Region;

    fn small() -> HtmChunker {
        HtmChunker::new(3, 2, Angle::from_degrees(0.1)).expect("valid")
    }

    #[test]
    fn config_validation() {
        assert!(HtmChunker::new(11, 2, Angle::ZERO).is_err());
        assert!(HtmChunker::new(5, 0, Angle::ZERO).is_err());
        assert!(HtmChunker::new(5, 30, Angle::ZERO).is_err());
        assert!(HtmChunker::new(5, 2, Angle::from_degrees(-1.0)).is_err());
        assert!(HtmChunker::paper_comparable().is_valid_chunk(8 << 10));
    }

    #[test]
    fn chunk_counts() {
        assert_eq!(small().num_chunks(), 8 * 64);
        assert_eq!(small().subchunks_per_chunk(), 16);
        assert_eq!(HtmChunker::paper_comparable().num_chunks(), 8192);
    }

    #[test]
    fn locate_agrees_with_htm_ids() {
        let c = small();
        let p = LonLat::from_degrees(123.4, -31.2);
        let loc = c.locate(&p);
        assert!(c.is_valid_chunk(loc.chunk_id));
        // The chunk id is the level-3 trixel id.
        assert_eq!(loc.chunk_id as u64, htm::htm_id(&p, 3));
        // Recombining chunk and subchunk gives the level-5 id.
        let fine = (loc.chunk_id as u64) << 4 | loc.subchunk_id as u64;
        assert_eq!(fine, htm::htm_id(&p, 5));
    }

    #[test]
    fn bounds_contain_their_points() {
        let c = small();
        for &(ra, decl) in &[
            (0.0, 0.0),
            (359.9, 89.0),
            (180.0, -89.0),
            (42.0, 13.7),
            (275.5, 54.3),
        ] {
            let p = LonLat::from_degrees(ra, decl);
            let loc = c.locate(&p);
            assert!(
                c.chunk_bounds(loc.chunk_id).unwrap().contains(&p),
                "({ra},{decl}) outside its chunk bounds"
            );
            assert!(
                c.subchunk_bounds(loc.chunk_id, loc.subchunk_id)
                    .unwrap()
                    .contains(&p),
                "({ra},{decl}) outside its subchunk bounds"
            );
        }
    }

    #[test]
    fn invalid_ids_rejected() {
        let c = small();
        assert!(c.chunk_bounds(-1).is_err());
        assert!(c.chunk_bounds(3).is_err()); // below the level-3 id range
        assert!(c.chunk_bounds(i32::MAX).is_err());
        let chunk = c.locate(&LonLat::from_degrees(10.0, 10.0)).chunk_id;
        assert!(c.subchunk_bounds(chunk, -1).is_err());
        assert!(c.subchunk_bounds(chunk, 16).is_err());
        assert!(c.subchunks_of(-5).is_err());
    }

    #[test]
    fn area_variation_beats_fixed_grid() {
        // §7.5's quantitative claim, at the paper-comparable level.
        let areas = HtmChunker::paper_comparable().chunk_areas_deg2();
        let max = areas.iter().cloned().fold(0.0f64, f64::max);
        let min = areas.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            max / min < 2.5,
            "HTM area ratio {} should be bounded (fixed grids reach ~54x)",
            max / min
        );
        // Total area is the full sphere.
        let total: f64 = areas.iter().sum();
        assert!((total - 41_252.96).abs() / 41_252.96 < 1e-6);
    }

    #[test]
    fn cover_selects_conservatively() {
        let c = small();
        let b = SphericalBox::from_degrees(10.0, 10.0, 14.0, 14.0);
        let cover = c.chunks_intersecting(&b);
        assert!(!cover.is_empty());
        // Any interior point's chunk must be in the cover.
        for &(ra, decl) in &[(10.5, 10.5), (12.0, 12.0), (13.9, 13.9)] {
            let loc = c.locate(&LonLat::from_degrees(ra, decl));
            assert!(
                cover.contains(&loc.chunk_id),
                "missing chunk for ({ra},{decl})"
            );
        }
        // And it should be far from the full sky.
        assert!(cover.len() < c.num_chunks() / 4);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn every_point_locates(ra in 0.0f64..360.0, decl in -89.5f64..89.5) {
            let c = small();
            let p = LonLat::from_degrees(ra, decl);
            let loc = c.locate(&p);
            prop_assert!(c.is_valid_chunk(loc.chunk_id));
            prop_assert!((0..16).contains(&loc.subchunk_id));
            prop_assert!(c.chunk_bounds(loc.chunk_id).unwrap().contains(&p));
        }

        #[test]
        fn cover_never_misses(
            ra in 0.0f64..360.0, decl in -80.0f64..75.0,
            w in 0.5f64..20.0, h in 0.5f64..10.0,
        ) {
            let c = small();
            let b = SphericalBox::from_degrees(ra, decl, ra + w, decl + h);
            let cover = c.chunks_intersecting(&b);
            let p = LonLat::from_degrees(ra + w / 2.0, decl + h / 2.0);
            if b.contains(&p) {
                prop_assert!(cover.contains(&c.locate(&p).chunk_id));
            }
        }

        #[test]
        fn subchunks_nest_in_chunks(ra in 0.0f64..360.0, decl in -85.0f64..85.0) {
            let c = small();
            let p = LonLat::from_degrees(ra, decl);
            let loc = c.locate(&p);
            let sub = c.subchunk_bounds(loc.chunk_id, loc.subchunk_id).unwrap();
            prop_assert!(sub.contains(&p));
        }
    }
}
