//! Paper-scale workload builders for the simulator.
//!
//! Each builder produces the [`QueryJob`] a query class generates on the
//! §6 testbed. Node assignment uses the same round-robin-over-chunk-ids
//! placement the loader uses, so weak-scaling sweeps only change the node
//! count. The "nuisance effects" the paper annotates (cluster
//! interference in some runs, cold caches in others) are modeled
//! explicitly through [`Nuisance`], never through randomness — every
//! series the harness prints is deterministic.

use qserv_sim::{ChunkTask, QueryJob, SimConfig, Simulator};

/// Chunk count of the paper's partitioning (85 stripes × 12 sub-stripes).
pub const PAPER_CHUNKS: usize = 8983;
/// Object-table bytes per chunk (§6.2: 1.824e12 bytes total).
pub const OBJECT_BYTES_PER_CHUNK: u64 = 1_824_000_000_000 / PAPER_CHUNKS as u64;
/// Source-table bytes per chunk (§6.1.2: 30 TB total).
pub const SOURCE_BYTES_PER_CHUNK: u64 = 30_000_000_000_000 / PAPER_CHUNKS as u64;
/// HV2's result volume: ≈70k rows × ~100 B of dump text (§6.2).
pub const HV2_RESULT_BYTES: u64 = 70_000 * 100;

/// The chunk count when only `nodes` of the 150-node placement is
/// simulated — the paper's weak-scaling methodology: "the frontend was
/// configured to only dispatch queries for partitions belonging to the
/// desired set of cluster nodes", keeping data per node constant (§6.3).
pub fn chunks_for_nodes(nodes: usize) -> usize {
    PAPER_CHUNKS * nodes / 150
}

/// Explicitly-modeled measurement artifacts the paper annotates.
#[derive(Clone, Copy, Debug, Default)]
pub struct Nuisance {
    /// Competing cluster activity (the ~9 s LV runs; Figure 2 Runs 1/4):
    /// a background job occupies this node's slots when the query
    /// arrives.
    pub interference: bool,
    /// Cold caches (Figure 2 Run 5's 8 s first execution): the first
    /// index lookup pays this many extra seeks.
    pub cold_cache_seeks: u32,
}

/// LV1 — objectId point retrieval: one chunk, a few index seeks, a ~2 kB
/// row shipped back.
pub fn lv1(nodes: usize, target_chunk: usize, nuisance: Nuisance) -> Vec<QueryJob> {
    let node = target_chunk % nodes;
    let mut jobs = Vec::new();
    if nuisance.interference {
        jobs.push(background_load(node, 6.0));
    }
    jobs.push(QueryJob {
        label: "LV1".to_string(),
        // Under interference the probe arrives while the background job
        // already owns the node's execution slots.
        submit_s: if nuisance.interference { 1.0 } else { 0.0 },
        tasks: vec![ChunkTask {
            node,
            seeks: 3 + nuisance.cold_cache_seeks,
            result_bytes: 2_048,
            ..Default::default()
        }],
    });
    jobs
}

/// LV2 — Source time series by objectId: one chunk, index seeks into the
/// much larger Source chunk, ~50 detection rows back.
pub fn lv2(nodes: usize, target_chunk: usize, nuisance: Nuisance) -> Vec<QueryJob> {
    let node = target_chunk % nodes;
    let mut jobs = Vec::new();
    if nuisance.interference {
        jobs.push(background_load(node, 6.0));
    }
    jobs.push(QueryJob {
        label: "LV2".to_string(),
        // Under interference the probe arrives while the background job
        // already owns the node's execution slots.
        submit_s: if nuisance.interference { 1.0 } else { 0.0 },
        tasks: vec![ChunkTask {
            node,
            seeks: 5 + nuisance.cold_cache_seeks,
            result_bytes: 50 * 650,
            ..Default::default()
        }],
    });
    jobs
}

/// LV3 — 1 deg² spatially-restricted count: the box hits 1–2 chunks; the
/// needed slice of each chunk is warm after the first touch (the paper
/// randomized boxes within ±20° of the equator over repeated runs), so
/// most bytes come from cache.
pub fn lv3(nodes: usize, target_chunk: usize, nuisance: Nuisance) -> Vec<QueryJob> {
    let node = target_chunk % nodes;
    let mut jobs = Vec::new();
    if nuisance.interference {
        jobs.push(background_load(node, 6.0));
    }
    jobs.push(QueryJob {
        label: "LV3".to_string(),
        // Under interference the probe arrives while the background job
        // already owns the node's execution slots.
        submit_s: if nuisance.interference { 1.0 } else { 0.0 },
        tasks: vec![ChunkTask {
            node,
            disk_bytes: OBJECT_BYTES_PER_CHUNK / 10,
            cached_bytes: OBJECT_BYTES_PER_CHUNK * 9 / 10,
            seeks: 2,
            result_bytes: 64,
            ..Default::default()
        }],
    });
    jobs
}

/// HV1 — full-sky COUNT(*): one trivial task per chunk; entirely
/// dispatch/merge bound (Figure 5, and the linear curve of Figure 11).
pub fn hv1(nodes: usize) -> QueryJob {
    let chunks = chunks_for_nodes(nodes);
    QueryJob {
        label: "HV1".to_string(),
        submit_s: 0.0,
        tasks: (0..chunks)
            .map(|i| ChunkTask {
                node: i % nodes,
                seeks: 1,
                result_bytes: 96,
                ..Default::default()
            })
            .collect(),
    }
}

/// HV2 — full-sky filter scan of Object. `cached_fraction` models the
/// page-cache state: the paper's ~160 s runs rode a warm cache, Run 3's
/// ~420 s is the honest uncached number (§6.2).
pub fn hv2(nodes: usize, cached_fraction: f64) -> QueryJob {
    let chunks = chunks_for_nodes(nodes);
    let cached = (OBJECT_BYTES_PER_CHUNK as f64 * cached_fraction) as u64;
    QueryJob {
        label: "HV2".to_string(),
        submit_s: 0.0,
        tasks: (0..chunks)
            .map(|i| ChunkTask {
                node: i % nodes,
                disk_bytes: OBJECT_BYTES_PER_CHUNK - cached,
                cached_bytes: cached,
                result_bytes: HV2_RESULT_BYTES / chunks as u64,
                ..Default::default()
            })
            .collect(),
    }
}

/// HV3 — GROUP BY chunkId density: the same scan as HV2 but with tiny
/// per-chunk results, so overhead (and caching) dominates sooner — the
/// paper saw it faster than HV2 and trending like HV1 once cached.
pub fn hv3(nodes: usize, cached_fraction: f64) -> QueryJob {
    let mut job = hv2(nodes, cached_fraction);
    job.label = "HV3".to_string();
    for t in &mut job.tasks {
        t.result_bytes = 120;
    }
    job
}

/// SHV1 — near-neighbour self-join over `area_deg2` of sky: ~4.5 deg² per
/// chunk, heavy on-the-fly subchunk join CPU per chunk (calibration note
/// in the crate docs).
pub fn shv1(nodes: usize, area_deg2: f64) -> QueryJob {
    let chunks = (area_deg2 / 4.5).round().max(1.0) as usize;
    QueryJob {
        label: "SHV1".to_string(),
        submit_s: 0.0,
        tasks: (0..chunks)
            .map(|i| ChunkTask {
                // Spread over the cluster the way round-robin placement
                // spreads sky-adjacent chunks (§4.4).
                node: (i * 7) % nodes,
                disk_bytes: OBJECT_BYTES_PER_CHUNK,
                seeks: 12 * 16, // subchunk table generation
                cpu_s: 620.0,
                result_bytes: 96,
                ..Default::default()
            })
            .collect(),
    }
}

/// SHV2 — Object ⋈ Source displacement join over `area_deg2`: reads both
/// tables' chunks and pays MySQL's observed join throughput (hours over
/// 150 deg²; §6.2 quotes 2.1–5.3 h with density-driven variance, modeled
/// by `density_factor` ∈ [0.7, 1.8]).
pub fn shv2(nodes: usize, area_deg2: f64, density_factor: f64) -> QueryJob {
    let chunks = (area_deg2 / 4.5).round().max(1.0) as usize;
    QueryJob {
        label: "SHV2".to_string(),
        submit_s: 0.0,
        tasks: (0..chunks)
            .map(|i| ChunkTask {
                node: (i * 11) % nodes,
                disk_bytes: OBJECT_BYTES_PER_CHUNK + SOURCE_BYTES_PER_CHUNK,
                seeks: 32,
                cpu_s: 9_000.0 * density_factor,
                result_bytes: 10_000 * 120 / chunks as u64,
                ..Default::default()
            })
            .collect(),
    }
}

/// XMatch — cross-catalog nearest-match of Object against a reference
/// catalog over `area_deg2`. Reads the Object chunk plus a (much
/// smaller) reference chunk; CPU is linear in the candidate count
/// because the decl-sorted vectorized kernel prunes pairs before the
/// exact chord test — orders of magnitude below SHV1's all-pairs cost.
/// Result is one matched row per Object (~40 B of dump text).
pub fn xmatch(nodes: usize, area_deg2: f64) -> QueryJob {
    let chunks = (area_deg2 / 4.5).round().max(1.0) as usize;
    // Reference catalogs (e.g. SDSS DR7 at LSST depth cuts) carry a few
    // narrow columns: ~3% of the Object chunk's bytes.
    let ref_bytes = OBJECT_BYTES_PER_CHUNK / 32;
    QueryJob {
        label: "XMATCH".to_string(),
        submit_s: 0.0,
        tasks: (0..chunks)
            .map(|i| ChunkTask {
                node: (i * 7) % nodes,
                disk_bytes: OBJECT_BYTES_PER_CHUNK + ref_bytes,
                seeks: 12 * 16, // subchunk + overlap table generation
                cpu_s: 45.0,
                result_bytes: 40 * 1_000_000 / PAPER_CHUNKS as u64,
                ..Default::default()
            })
            .collect(),
    }
}

/// A background job that keeps one node's slots busy — the "competing
/// tasks in the cluster" of the paper's slow runs. Submitted at t=0, its
/// tasks hold all four slots of `node` for ~`hold_s` seconds.
pub fn background_load(node: usize, hold_s: f64) -> QueryJob {
    QueryJob {
        label: "background".to_string(),
        submit_s: 0.0,
        tasks: (0..4)
            .map(|_| ChunkTask {
                node,
                cpu_s: hold_s,
                ..Default::default()
            })
            .collect(),
    }
}

/// Runs a set of jobs on a fresh simulator and returns the elapsed time
/// of the job labeled `label`.
pub fn run_labeled(cfg: &SimConfig, jobs: Vec<QueryJob>, label: &str) -> f64 {
    let mut sim = Simulator::new(cfg.clone());
    for j in jobs {
        sim.submit(j);
    }
    sim.run()
        .iter()
        .find(|r| r.label == label)
        .unwrap_or_else(|| panic!("no job labeled {label}"))
        .elapsed_s
}

/// Runs one job alone and returns its elapsed time.
pub fn run_single(cfg: &SimConfig, job: QueryJob) -> f64 {
    let label = job.label.clone();
    run_labeled(cfg, vec![job], &label)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper() -> SimConfig {
        SimConfig::paper_cluster()
    }

    #[test]
    fn lv1_lands_in_paper_band() {
        let t = run_labeled(&paper(), lv1(150, 17, Nuisance::default()), "LV1");
        assert!((3.5..=5.0).contains(&t), "LV1 {t} s, paper ~4 s");
    }

    #[test]
    fn lv1_interference_roughly_doubles() {
        let t = run_labeled(
            &paper(),
            lv1(
                150,
                17,
                Nuisance {
                    interference: true,
                    cold_cache_seeks: 0,
                },
            ),
            "LV1",
        );
        assert!(
            (7.5..=11.0).contains(&t),
            "LV1 w/ interference {t} s, paper ~9 s"
        );
    }

    #[test]
    fn lv1_cold_cache_near_eight_seconds() {
        let t = run_labeled(
            &paper(),
            lv1(
                150,
                17,
                Nuisance {
                    interference: false,
                    cold_cache_seeks: 480,
                },
            ),
            "LV1",
        );
        assert!((6.5..=9.5).contains(&t), "cold LV1 {t} s, paper ~8 s");
    }

    #[test]
    fn lv2_lv3_flat_four_seconds() {
        let t2 = run_labeled(&paper(), lv2(150, 40, Nuisance::default()), "LV2");
        let t3 = run_labeled(&paper(), lv3(150, 40, Nuisance::default()), "LV3");
        assert!((3.5..=5.5).contains(&t2), "LV2 {t2} s");
        assert!((3.5..=6.5).contains(&t3), "LV3 {t3} s");
    }

    #[test]
    fn hv1_in_paper_band() {
        let t = run_single(&paper(), hv1(150));
        assert!((18.0..=32.0).contains(&t), "HV1 {t} s, paper 20–30 s");
    }

    #[test]
    fn hv2_cold_and_warm_match_figure_6() {
        let cold = run_single(&paper(), hv2(150, 0.0));
        let warm = run_single(&paper(), hv2(150, 0.65));
        assert!(
            (350.0..=500.0).contains(&cold),
            "HV2 cold {cold} s, paper ~420 s"
        );
        assert!(
            (130.0..=210.0).contains(&warm),
            "HV2 warm {warm} s, paper 150–180 s"
        );
        assert!(cold > warm * 2.0);
    }

    #[test]
    fn hv3_faster_than_hv2() {
        let hv2_t = run_single(&paper(), hv2(150, 0.65));
        let hv3_t = run_single(&paper(), hv3(150, 0.75));
        assert!(
            hv3_t < hv2_t,
            "HV3 {hv3_t} should beat HV2 {hv2_t} (Figure 7)"
        );
    }

    #[test]
    fn shv1_near_eleven_minutes() {
        let t = run_single(&paper(), shv1(150, 100.0));
        assert!((550.0..=800.0).contains(&t), "SHV1 {t} s, paper ~660 s");
    }

    #[test]
    fn shv2_in_hours_band() {
        let fast = run_single(&paper(), shv2(150, 150.0, 0.7));
        let slow = run_single(&paper(), shv2(150, 150.0, 1.8));
        assert!((5_000.0..=26_000.0).contains(&fast), "SHV2 fast {fast} s");
        assert!(slow > fast);
        assert!(slow <= 6.0 * 3600.0, "SHV2 slow {slow} s, paper max 5.3 h");
    }

    #[test]
    fn xmatch_far_cheaper_than_all_pairs_join() {
        // The keep-nearest match prunes candidates before the exact
        // distance test, so its per-chunk CPU is a small fraction of
        // SHV1's all-pairs evaluation over the same sky area — the whole
        // query finishes in minutes, not the self-join's ~11.
        let x = run_single(&paper(), xmatch(150, 100.0));
        let s = run_single(&paper(), shv1(150, 100.0));
        assert!(x < s / 3.0, "XMatch {x} s vs SHV1 {s} s");
        assert!(x > 30.0, "XMatch still pays the Object scan: {x} s");
    }

    #[test]
    fn weak_scaling_hv1_is_linear_in_chunks() {
        // Figure 11's HV1 curve: time grows with cluster size because the
        // chunk count grows while the frontend stays serial.
        let t40 = run_single(&SimConfig::paper_cluster().with_nodes(40), hv1(40));
        let t150 = run_single(&paper(), hv1(150));
        let ratio = t150 / t40;
        assert!(
            (2.0..=4.5).contains(&ratio),
            "HV1 should scale ~linearly with chunks: {t40} → {t150} (×{ratio:.2})"
        );
    }

    #[test]
    fn weak_scaling_hv2_is_flat() {
        // Figure 11's HV2 curve: constant data per node ⇒ flat.
        let t40 = run_single(&SimConfig::paper_cluster().with_nodes(40), hv2(40, 0.65));
        let t150 = run_single(&paper(), hv2(150, 0.65));
        assert!(
            (t150 - t40).abs() / t40 < 0.25,
            "HV2 weak scaling should be flat: {t40} vs {t150}"
        );
    }

    #[test]
    fn weak_scaling_lv_flat() {
        // Figures 8–10: LV latency independent of node count.
        for nodes in [40, 100, 150] {
            let cfg = SimConfig::paper_cluster().with_nodes(nodes);
            let t = run_labeled(&cfg, lv1(nodes, 7, Nuisance::default()), "LV1");
            assert!((3.5..=5.0).contains(&t), "LV1 at {nodes} nodes: {t} s");
        }
    }
}
