//! Real-execution fixtures shared by the Criterion benches and the
//! correctness spot-checks in the `figures` harness.

use qserv::{ClusterBuilder, Qserv};
use qserv_datagen::generate::{CatalogConfig, Patch};

/// A deterministic laptop-sized catalog: 1500 objects, ~7.5k sources.
pub fn bench_patch() -> Patch {
    Patch::generate(&CatalogConfig::small(1500, 424242))
}

/// A 4-node cluster loaded with [`bench_patch`].
pub fn bench_cluster() -> Qserv {
    let patch = bench_patch();
    ClusterBuilder::new(4).build(&patch.objects, &patch.sources)
}

/// The paper's §6.2 query texts, parameterized for the fixture's scale.
pub mod queries {
    /// LV1 — object retrieval.
    pub fn lv1(object_id: i64) -> String {
        format!("SELECT * FROM Object WHERE objectId = {object_id}")
    }

    /// LV2 — time series.
    pub fn lv2(object_id: i64) -> String {
        format!(
            "SELECT taiMidPoint, fluxToAbMag(psfFlux), fluxToAbMag(psfFluxErr), ra, decl \
             FROM Source WHERE objectId = {object_id}"
        )
    }

    /// LV3 — spatially-restricted colour filter.
    pub const LV3: &str = "SELECT COUNT(*) FROM Object \
        WHERE ra_PS BETWEEN 1 AND 2 AND decl_PS BETWEEN 3 AND 4 \
        AND fluxToAbMag(zFlux_PS) BETWEEN 18 AND 25 \
        AND fluxToAbMag(gFlux_PS)-fluxToAbMag(rFlux_PS) BETWEEN -0.5 AND 0.5";

    /// HV1 — full-sky count.
    pub const HV1: &str = "SELECT COUNT(*) FROM Object";

    /// HV2 — full-sky filter.
    pub const HV2: &str = "SELECT objectId, ra_PS, decl_PS, uFlux_PS, gFlux_PS, rFlux_PS, \
        iFlux_PS, zFlux_PS, yFlux_PS FROM Object \
        WHERE fluxToAbMag(iFlux_PS) - fluxToAbMag(zFlux_PS) > 0.4";

    /// HV3 — density per chunk.
    pub const HV3: &str = "SELECT count(*) AS n, AVG(ra_PS), AVG(decl_PS), chunkId \
        FROM Object GROUP BY chunkId";

    /// SHV1 — near-neighbour self-join (radius below the test chunker's
    /// 0.1° overlap).
    pub const SHV1: &str = "SELECT count(*) FROM Object o1, Object o2 \
        WHERE qserv_areaspec_box(0.0, -5.0, 4.0, 5.0) \
        AND qserv_angSep(o1.ra_PS, o1.decl_PS, o2.ra_PS, o2.decl_PS) < 0.05";

    /// SHV2 — sources displaced from their objects.
    pub const SHV2: &str = "SELECT o.objectId, s.sourceId, s.ra, s.decl, o.ra_PS, o.decl_PS \
        FROM Object o, Source s \
        WHERE qserv_areaspec_box(358.0, -7.0, 5.0, 7.0) \
        AND o.objectId = s.objectId \
        AND qserv_angSep(s.ra, s.decl, o.ra_PS, o.decl_PS) > 0.0000277";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_answers_every_paper_query() {
        let q = bench_cluster();
        for sql in [
            queries::lv1(7),
            queries::lv2(7),
            queries::LV3.to_string(),
            queries::HV1.to_string(),
            queries::HV2.to_string(),
            queries::HV3.to_string(),
            queries::SHV1.to_string(),
            queries::SHV2.to_string(),
        ] {
            q.query(&sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
        }
    }
}
