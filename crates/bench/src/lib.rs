//! Workload construction for the benchmark harness.
//!
//! Two kinds of benchmarks reproduce the paper's evaluation:
//!
//! 1. **Paper-scale simulated workloads** ([`workloads`]): per-query-class
//!    builders of [`qserv_sim::QueryJob`]s at the §6 testbed's full scale
//!    (8983 chunks, 1.7 B-row Object, 55 B-row Source over 150 nodes).
//!    The `figures` binary runs these through the calibrated simulator to
//!    regenerate every figure's series.
//! 2. **Real-execution fixtures** ([`fixtures`]): a laptop-sized cluster
//!    running the actual distributed pipeline, used by the Criterion
//!    benches and by correctness spot-checks inside the harness.
//!
//! ## Calibration (single source of truth)
//!
//! | constant | value | provenance |
//! |---|---|---|
//! | Object bytes/chunk | 1.824e12 / 8983 ≈ 203 MB | §6.2 HV2 quotes the exact MyISAM footprint |
//! | Source bytes/chunk | 30e12 / 8983 ≈ 3.3 GB | §6.1.2 (30 TB Source) |
//! | disk 98 MB/s, ~27 MB/s @4-way | `SimConfig::paper_cluster` | §6.2 HV2 bandwidth discussion |
//! | dispatch ≈ 2.2 ms/chunk | HV1: ~9000 chunks in 20–30 s | Figure 5, §7.1 |
//! | frontend base ≈ 3.8 s | flat ~4 s LV floor | Figures 2–4, 8–10 |
//! | SHV1 join CPU ≈ 620 s/chunk | 100 deg² ≈ 22 chunks in ~660 s, embarrassingly parallel | §6.2 SHV1 |
//! | SHV2 join cost ≈ 9000 s/chunk | 150 deg² ≈ 33 chunks in 2.1–5.3 h | §6.2 SHV2 |

pub mod fixtures;
pub mod workloads;
