//! Engine execution-path benchmark: interpreted vs vectorized.
//!
//! Builds a synthetic per-worker `Object` chunk table, runs a set of
//! representative single-table workloads through both execution paths of
//! `qserv-engine`, verifies the results are identical, and writes a
//! machine-readable summary to `BENCH_engine.json` (rows/sec per path plus
//! the speedup). The headline number is `scan_filter`: the vectorized path
//! must beat the interpreter by a wide margin on a plain numeric-range
//! scan.
//!
//! Usage: `engine_bench [--rows N] [--iters K] [--out PATH]`

use qserv_engine::db::Database;
use qserv_engine::exec::{execute_detailed, execute_with_mode, ExecMode, ResultTable, ScanStats};
use qserv_engine::schema::{ColumnDef, ColumnType, Schema};
use qserv_engine::table::Table;
use qserv_engine::value::Value;
use qserv_sqlparse::parse_select;
use std::path::PathBuf;
use std::time::Instant;

/// Splitmix-style generator: deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A synthetic Object chunk: sequential indexed `objectId`, uniform sky
/// positions, a nullable flux column, and a coarse `chunkId` for GROUP BY.
fn build_object_table(rows: usize) -> Table {
    let schema = Schema::new(vec![
        ColumnDef::new("objectId", ColumnType::Int),
        ColumnDef::new("ra_PS", ColumnType::Float),
        ColumnDef::new("decl_PS", ColumnType::Float),
        ColumnDef::new("zFlux_PS", ColumnType::Float),
        ColumnDef::new("chunkId", ColumnType::Int),
    ]);
    let mut table = Table::new(schema);
    let mut rng = Rng(0x5eed_cafe);
    for i in 0..rows {
        let ra = rng.next_f64() * 360.0;
        let decl = rng.next_f64() * 20.0 - 10.0;
        // ~5% NULL fluxes exercise NULL handling on both paths. Magnitudes
        // land in roughly [13.9, 26.4] for flux in [1e2, 1e6] nJy.
        let flux = if rng.next_f64() < 0.05 {
            Value::Null
        } else {
            Value::Float(1e2 + rng.next_f64() * (1e6 - 1e2))
        };
        let chunk = (ra / 30.0) as i64;
        table
            .push_row(vec![
                Value::Int(i as i64),
                Value::Float(ra),
                Value::Float(decl),
                flux,
                Value::Int(chunk),
            ])
            .expect("schema matches");
    }
    table.build_index("objectId").expect("objectId is Int");
    table
}

struct Workload {
    name: &'static str,
    sql: String,
}

fn workloads(rows: usize) -> Vec<Workload> {
    // IN keys: a few hits spread through the table plus guaranteed misses.
    let hit = |frac: f64| ((rows as f64) * frac) as i64;
    vec![
        Workload {
            name: "scan_filter",
            sql: "SELECT objectId, ra_PS, decl_PS FROM Object \
                  WHERE ra_PS BETWEEN 30 AND 60 AND decl_PS BETWEEN -5 AND 5"
                .to_string(),
        },
        Workload {
            name: "spatial_box",
            sql: "SELECT COUNT(*) FROM Object \
                  WHERE qserv_ptInSphericalBox(ra_PS, decl_PS, 30, -5, 60, 5) = 1"
                .to_string(),
        },
        Workload {
            name: "flux_cut",
            sql: "SELECT objectId FROM Object \
                  WHERE fluxToAbMag(zFlux_PS) BETWEEN 18 AND 25"
                .to_string(),
        },
        Workload {
            name: "point_in",
            sql: format!(
                "SELECT objectId, ra_PS FROM Object WHERE objectId IN ({}, {}, {}, {})",
                hit(0.1),
                hit(0.5),
                hit(0.9),
                rows as i64 * 10
            ),
        },
        Workload {
            name: "agg_global",
            sql: "SELECT COUNT(*), SUM(zFlux_PS), AVG(ra_PS), MIN(decl_PS), MAX(decl_PS) \
                  FROM Object WHERE ra_PS < 180"
                .to_string(),
        },
        Workload {
            name: "agg_group",
            sql: "SELECT chunkId, COUNT(*), AVG(ra_PS) FROM Object GROUP BY chunkId".to_string(),
        },
    ]
}

/// Best-of-`iters` wall time for one mode, in seconds.
fn time_mode(
    db: &Database,
    stmt: &qserv_sqlparse::ast::SelectStatement,
    mode: ExecMode,
    iters: usize,
) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let start = Instant::now();
        let r = execute_with_mode(db, stmt, mode).expect("workload executes");
        let elapsed = start.elapsed().as_secs_f64();
        std::hint::black_box(r);
        if elapsed < best {
            best = elapsed;
        }
    }
    best
}

fn results_equal(a: &ResultTable, b: &ResultTable) -> bool {
    a.columns == b.columns && a.rows == b.rows
}

/// A scratch path under the system temp dir.
fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("qserv-engine-bench-{}-{name}", std::process::id()));
    p
}

/// The process's peak resident set size (VmHWM) in bytes, from
/// `/proc/self/status`; 0 when unavailable (non-Linux).
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// Best-of-`iters` wall time for a cold scan: the residency cache is
/// cleared before every run so each iteration decodes from disk.
fn time_cold(
    db: &Database,
    stmt: &qserv_sqlparse::ast::SelectStatement,
    iters: usize,
) -> (f64, ScanStats) {
    let mut best = f64::INFINITY;
    let mut stats = ScanStats::default();
    for _ in 0..iters {
        db.residency().clear();
        let start = Instant::now();
        let (r, _, s) = execute_detailed(db, stmt, ExecMode::Vectorized).expect("cold scan runs");
        let elapsed = start.elapsed().as_secs_f64();
        std::hint::black_box(r);
        stats = s;
        if elapsed < best {
            best = elapsed;
        }
    }
    (best, stats)
}

/// Cold-scan workloads over an on-disk chunk file: a full-table range
/// scan (decodes every page) and a selective `objectId` slice whose page
/// zone maps elide nearly everything. Returns the JSON fragments.
fn bench_cold_scans(
    table: &Table,
    mem_db: &Database,
    rows: usize,
    iters: usize,
) -> (String, String) {
    let path = tmp("cold.qchunk");
    qserv_engine::write_table(&path, table, qserv_engine::DEFAULT_PAGE_ROWS)
        .expect("chunk file writes");
    let mut db = Database::new();
    db.attach_stored("Object", &path).expect("chunk attaches");

    // cold_scan: positions are in random row order, so every page's
    // ra/decl zones straddle the predicate — nothing prunes, and the
    // number is raw decode+scan throughput straight off disk.
    let scan_sql = "SELECT objectId, ra_PS, decl_PS FROM Object \
                    WHERE ra_PS BETWEEN 30 AND 60 AND decl_PS BETWEEN -5 AND 5";
    let stmt = parse_select(scan_sql).expect("cold scan parses");
    let (cold, warm_oracle) = (
        {
            db.residency().clear();
            execute_detailed(&db, &stmt, ExecMode::Vectorized)
                .expect("cold scan runs")
                .0
        },
        execute_with_mode(mem_db, &stmt, ExecMode::Vectorized)
            .expect("warm scan runs")
            .0,
    );
    assert!(
        results_equal(&cold, &warm_oracle),
        "cold_scan: on-disk and in-memory results differ"
    );
    let (t_cold, scan_stats) = time_cold(&db, &stmt, iters);
    let cold_rps = rows as f64 / t_cold;
    eprintln!(
        "{:<18} cold {:>12.0} rows/s   ({} pages decoded)",
        "cold_scan", cold_rps, scan_stats.pages_scanned
    );
    let cold_json = format!(
        "  \"cold_scan\": {{\"rows_per_s\": {:.1}, \"pages_scanned\": {}, \"pages_pruned\": {}}}",
        cold_rps, scan_stats.pages_scanned, scan_stats.pages_pruned
    );

    // filtered_cold_scan: objectId is written in ascending order, so a
    // 1% id slice touches ~1% of the pages once zone maps engage.
    let lo = (rows as f64 * 0.45) as i64;
    let hi = lo + (rows as f64 * 0.01) as i64;
    let sel_sql =
        format!("SELECT objectId, ra_PS FROM Object WHERE objectId BETWEEN {lo} AND {hi}");
    let stmt = parse_select(&sel_sql).expect("selective scan parses");
    let pruned_oracle = execute_with_mode(mem_db, &stmt, ExecMode::Vectorized)
        .expect("warm selective runs")
        .0;
    db.residency().clear();
    let with_pruning = execute_detailed(&db, &stmt, ExecMode::Vectorized)
        .expect("pruned scan runs")
        .0;
    assert!(
        results_equal(&with_pruning, &pruned_oracle),
        "filtered_cold_scan: pruned on-disk result differs from in-memory"
    );
    let (t_on, on_stats) = time_cold(&db, &stmt, iters);
    db.set_page_pruning(false);
    db.residency().clear();
    let without_pruning = execute_detailed(&db, &stmt, ExecMode::Vectorized)
        .expect("unpruned scan runs")
        .0;
    assert!(
        results_equal(&without_pruning, &pruned_oracle),
        "filtered_cold_scan: disabling pruning changed the result"
    );
    let (t_off, off_stats) = time_cold(&db, &stmt, iters);
    db.set_page_pruning(true);
    let speedup = t_off / t_on;
    eprintln!(
        "{:<18} pruned {:>10.2e}s   unpruned {:>10.2e}s   {:>6.2}x   \
         ({} pruned / {} scanned pages)",
        "filtered_cold_scan", t_on, t_off, speedup, on_stats.pages_pruned, on_stats.pages_scanned
    );
    let filtered_json = format!(
        "  \"filtered_cold_scan\": {{\"pruned_s\": {:.6}, \"unpruned_s\": {:.6}, \
         \"pruning_speedup\": {:.3}, \"pages_pruned\": {}, \"pages_scanned\": {}, \
         \"pages_total\": {}}}",
        t_on,
        t_off,
        speedup,
        on_stats.pages_pruned,
        on_stats.pages_scanned,
        off_stats.pages_scanned
    );
    let _ = std::fs::remove_file(&path);
    (cold_json, filtered_json)
}

/// Out-of-core demonstration: streams synthesized Object segments to
/// disk until their total size exceeds the process's peak RSS so far
/// (with margin), then aggregates over every segment through the paged
/// scan path — which never materializes more than one segment — and
/// reports both sizes. Proves a full query over a dataset larger than
/// the process ever was in memory.
fn bench_out_of_core(seg_rows: usize) -> String {
    let dir = tmp("segments");
    std::fs::create_dir_all(&dir).expect("segment dir creates");
    let target = (peak_rss_bytes() as f64 * 1.3) as u64 + (64 << 20);
    let mut on_disk = 0u64;
    let mut total_rows = 0u64;
    let mut db = Database::new();
    let mut segments = 0u32;
    while on_disk < target && segments < 512 {
        let cfg = qserv_datagen::CatalogConfig::small(seg_rows, 9_000 + segments as u64);
        let path = dir.join(format!("seg_{segments}.qchunk"));
        let out = qserv_datagen::stream_objects_to_file(&cfg, &path, 1024)
            .expect("segment streams to disk");
        on_disk += out.bytes;
        total_rows += out.rows;
        db.attach_stored(&format!("Seg{segments}"), &path)
            .expect("segment attaches");
        segments += 1;
    }
    // One aggregate pass over every segment; the paged path streams
    // pages directly into the aggregation sink without admitting the
    // decoded tables into the residency cache.
    let mut count = 0i64;
    for s in 0..segments {
        let sql = format!("SELECT COUNT(*) AS c FROM Seg{s} WHERE zFlux_PS > 0");
        let stmt = parse_select(&sql).expect("segment agg parses");
        let (r, _, _) =
            execute_detailed(&db, &stmt, ExecMode::Vectorized).expect("segment agg runs");
        count += r.rows[0][0].as_i64().unwrap_or(0);
    }
    assert_eq!(count as u64, total_rows, "every streamed row aggregates");
    let peak = peak_rss_bytes();
    eprintln!(
        "{:<18} {} segments, {} rows, {:.1} MiB on disk, peak RSS {:.1} MiB",
        "out_of_core",
        segments,
        total_rows,
        on_disk as f64 / (1 << 20) as f64,
        peak as f64 / (1 << 20) as f64
    );
    if peak > 0 {
        assert!(
            on_disk > peak,
            "out_of_core: dataset ({on_disk} B) must exceed peak RSS ({peak} B)"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
    format!(
        "  \"out_of_core\": {{\"segments\": {segments}, \"rows\": {total_rows}, \
         \"on_disk_bytes\": {on_disk}, \"peak_rss_bytes\": {peak}}}"
    )
}

fn main() {
    let mut rows: usize = 200_000;
    let mut iters: usize = 3;
    let mut out = "BENCH_engine.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut grab = |what: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{what} needs a value"))
        };
        match arg.as_str() {
            "--rows" => rows = grab("--rows").parse().expect("integer row count"),
            "--iters" => iters = grab("--iters").parse().expect("integer iteration count"),
            "--out" => out = grab("--out"),
            other => panic!("unknown argument {other:?} (expected --rows/--iters/--out)"),
        }
    }

    eprintln!("building Object table with {rows} rows...");
    let object = build_object_table(rows);
    let mut db = Database::new();
    db.create_table("Object", object.clone());

    let mut lines = Vec::new();
    let mut headline_speedup = None;
    for w in workloads(rows) {
        let stmt = parse_select(&w.sql).expect("workload parses");

        // Correctness gate: the vectorized path must engage (no silent
        // interpreter fallback) and must agree with the oracle exactly.
        let (vec_result, _) = execute_with_mode(&db, &stmt, ExecMode::Vectorized)
            .unwrap_or_else(|e| panic!("{}: not vectorizable: {e}", w.name));
        let (int_result, _) =
            execute_with_mode(&db, &stmt, ExecMode::Interpreted).expect("interpreter executes");
        assert!(
            results_equal(&vec_result, &int_result),
            "{}: vectorized and interpreted results differ",
            w.name
        );

        let t_int = time_mode(&db, &stmt, ExecMode::Interpreted, iters);
        let t_vec = time_mode(&db, &stmt, ExecMode::Vectorized, iters);
        let int_rps = rows as f64 / t_int;
        let vec_rps = rows as f64 / t_vec;
        let speedup = vec_rps / int_rps;
        if w.name == "scan_filter" {
            headline_speedup = Some(speedup);
        }
        eprintln!(
            "{:<12} interpreted {:>12.0} rows/s   vectorized {:>12.0} rows/s   {:>6.2}x",
            w.name, int_rps, vec_rps, speedup
        );
        lines.push(format!(
            "    {{\"name\": \"{}\", \"interpreted_rows_per_s\": {:.1}, \
             \"vectorized_rows_per_s\": {:.1}, \"speedup\": {:.3}}}",
            w.name, int_rps, vec_rps, speedup
        ));
    }

    let (cold_json, filtered_json) = bench_cold_scans(&object, &db, rows, iters);
    let ooc_rows = (rows / 4).max(10_000);
    let ooc_json = bench_out_of_core(ooc_rows);

    let json = format!(
        "{{\n  \"rows\": {rows},\n  \"iters\": {iters},\n  \"workloads\": [\n{}\n  ],\n\
         {cold_json},\n{filtered_json},\n{ooc_json}\n}}\n",
        lines.join(",\n")
    );
    std::fs::write(&out, json).expect("write benchmark output");
    eprintln!("wrote {out}");

    let headline = headline_speedup.expect("scan_filter workload ran");
    eprintln!("headline scan_filter speedup: {headline:.2}x");
}
