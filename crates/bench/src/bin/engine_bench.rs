//! Engine execution-path benchmark: interpreted vs vectorized.
//!
//! Builds a synthetic per-worker `Object` chunk table, runs a set of
//! representative single-table workloads through both execution paths of
//! `qserv-engine`, verifies the results are identical, and writes a
//! machine-readable summary to `BENCH_engine.json` (rows/sec per path plus
//! the speedup). The headline number is `scan_filter`: the vectorized path
//! must beat the interpreter by a wide margin on a plain numeric-range
//! scan.
//!
//! Usage: `engine_bench [--rows N] [--iters K] [--out PATH]`

use qserv_engine::db::Database;
use qserv_engine::exec::{execute_with_mode, ExecMode, ResultTable};
use qserv_engine::schema::{ColumnDef, ColumnType, Schema};
use qserv_engine::table::Table;
use qserv_engine::value::Value;
use qserv_sqlparse::parse_select;
use std::time::Instant;

/// Splitmix-style generator: deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A synthetic Object chunk: sequential indexed `objectId`, uniform sky
/// positions, a nullable flux column, and a coarse `chunkId` for GROUP BY.
fn build_object_table(rows: usize) -> Table {
    let schema = Schema::new(vec![
        ColumnDef::new("objectId", ColumnType::Int),
        ColumnDef::new("ra_PS", ColumnType::Float),
        ColumnDef::new("decl_PS", ColumnType::Float),
        ColumnDef::new("zFlux_PS", ColumnType::Float),
        ColumnDef::new("chunkId", ColumnType::Int),
    ]);
    let mut table = Table::new(schema);
    let mut rng = Rng(0x5eed_cafe);
    for i in 0..rows {
        let ra = rng.next_f64() * 360.0;
        let decl = rng.next_f64() * 20.0 - 10.0;
        // ~5% NULL fluxes exercise NULL handling on both paths. Magnitudes
        // land in roughly [13.9, 26.4] for flux in [1e2, 1e6] nJy.
        let flux = if rng.next_f64() < 0.05 {
            Value::Null
        } else {
            Value::Float(1e2 + rng.next_f64() * (1e6 - 1e2))
        };
        let chunk = (ra / 30.0) as i64;
        table
            .push_row(vec![
                Value::Int(i as i64),
                Value::Float(ra),
                Value::Float(decl),
                flux,
                Value::Int(chunk),
            ])
            .expect("schema matches");
    }
    table.build_index("objectId").expect("objectId is Int");
    table
}

struct Workload {
    name: &'static str,
    sql: String,
}

fn workloads(rows: usize) -> Vec<Workload> {
    // IN keys: a few hits spread through the table plus guaranteed misses.
    let hit = |frac: f64| ((rows as f64) * frac) as i64;
    vec![
        Workload {
            name: "scan_filter",
            sql: "SELECT objectId, ra_PS, decl_PS FROM Object \
                  WHERE ra_PS BETWEEN 30 AND 60 AND decl_PS BETWEEN -5 AND 5"
                .to_string(),
        },
        Workload {
            name: "spatial_box",
            sql: "SELECT COUNT(*) FROM Object \
                  WHERE qserv_ptInSphericalBox(ra_PS, decl_PS, 30, -5, 60, 5) = 1"
                .to_string(),
        },
        Workload {
            name: "flux_cut",
            sql: "SELECT objectId FROM Object \
                  WHERE fluxToAbMag(zFlux_PS) BETWEEN 18 AND 25"
                .to_string(),
        },
        Workload {
            name: "point_in",
            sql: format!(
                "SELECT objectId, ra_PS FROM Object WHERE objectId IN ({}, {}, {}, {})",
                hit(0.1),
                hit(0.5),
                hit(0.9),
                rows as i64 * 10
            ),
        },
        Workload {
            name: "agg_global",
            sql: "SELECT COUNT(*), SUM(zFlux_PS), AVG(ra_PS), MIN(decl_PS), MAX(decl_PS) \
                  FROM Object WHERE ra_PS < 180"
                .to_string(),
        },
        Workload {
            name: "agg_group",
            sql: "SELECT chunkId, COUNT(*), AVG(ra_PS) FROM Object GROUP BY chunkId".to_string(),
        },
    ]
}

/// Best-of-`iters` wall time for one mode, in seconds.
fn time_mode(
    db: &Database,
    stmt: &qserv_sqlparse::ast::SelectStatement,
    mode: ExecMode,
    iters: usize,
) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let start = Instant::now();
        let r = execute_with_mode(db, stmt, mode).expect("workload executes");
        let elapsed = start.elapsed().as_secs_f64();
        std::hint::black_box(r);
        if elapsed < best {
            best = elapsed;
        }
    }
    best
}

fn results_equal(a: &ResultTable, b: &ResultTable) -> bool {
    a.columns == b.columns && a.rows == b.rows
}

fn main() {
    let mut rows: usize = 200_000;
    let mut iters: usize = 3;
    let mut out = "BENCH_engine.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut grab = |what: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{what} needs a value"))
        };
        match arg.as_str() {
            "--rows" => rows = grab("--rows").parse().expect("integer row count"),
            "--iters" => iters = grab("--iters").parse().expect("integer iteration count"),
            "--out" => out = grab("--out"),
            other => panic!("unknown argument {other:?} (expected --rows/--iters/--out)"),
        }
    }

    eprintln!("building Object table with {rows} rows...");
    let mut db = Database::new();
    db.create_table("Object", build_object_table(rows));

    let mut lines = Vec::new();
    let mut headline_speedup = None;
    for w in workloads(rows) {
        let stmt = parse_select(&w.sql).expect("workload parses");

        // Correctness gate: the vectorized path must engage (no silent
        // interpreter fallback) and must agree with the oracle exactly.
        let (vec_result, _) = execute_with_mode(&db, &stmt, ExecMode::Vectorized)
            .unwrap_or_else(|e| panic!("{}: not vectorizable: {e}", w.name));
        let (int_result, _) =
            execute_with_mode(&db, &stmt, ExecMode::Interpreted).expect("interpreter executes");
        assert!(
            results_equal(&vec_result, &int_result),
            "{}: vectorized and interpreted results differ",
            w.name
        );

        let t_int = time_mode(&db, &stmt, ExecMode::Interpreted, iters);
        let t_vec = time_mode(&db, &stmt, ExecMode::Vectorized, iters);
        let int_rps = rows as f64 / t_int;
        let vec_rps = rows as f64 / t_vec;
        let speedup = vec_rps / int_rps;
        if w.name == "scan_filter" {
            headline_speedup = Some(speedup);
        }
        eprintln!(
            "{:<12} interpreted {:>12.0} rows/s   vectorized {:>12.0} rows/s   {:>6.2}x",
            w.name, int_rps, vec_rps, speedup
        );
        lines.push(format!(
            "    {{\"name\": \"{}\", \"interpreted_rows_per_s\": {:.1}, \
             \"vectorized_rows_per_s\": {:.1}, \"speedup\": {:.3}}}",
            w.name, int_rps, vec_rps, speedup
        ));
    }

    let json = format!(
        "{{\n  \"rows\": {rows},\n  \"iters\": {iters},\n  \"workloads\": [\n{}\n  ]\n}}\n",
        lines.join(",\n")
    );
    std::fs::write(&out, json).expect("write benchmark output");
    eprintln!("wrote {out}");

    let headline = headline_speedup.expect("scan_filter workload ran");
    eprintln!("headline scan_filter speedup: {headline:.2}x");
}
