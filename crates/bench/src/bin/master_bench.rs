//! Master merge-pipeline benchmark: barrier (collect-then-merge) vs the
//! streaming [`Merger`].
//!
//! Synthesizes per-chunk worker result tables directly (no cluster — this
//! isolates the master's merge path), runs each workload through both
//! paths, verifies the results are identical (the equivalence gate; any
//! mismatch aborts with a non-zero exit), and writes a machine-readable
//! summary to `BENCH_master.json`: rows/sec per path, the speedup, and a
//! peak-memory proxy (barrier: all parts plus the concatenated table;
//! streaming: the merger's high-water state). The headline number is the
//! aggregated GROUP BY workload at the largest chunk count, where
//! streaming must beat the barrier by >= 1.5x.
//!
//! It also benchmarks the *query service* scheduling layer with a mixed
//! workload — one full scan plus 20 interactive point lookups submitted
//! together — and reports the interactive p50/p95 latency with fair
//! scheduling on (default config: scan cap + DRR) vs off (one FIFO
//! executor, the unscheduled baseline). Summary goes to
//! `BENCH_service.json`.
//!
//! Usage: `master_bench [--chunks N,N,..] [--rows N] [--iters K] [--out PATH]
//!                      [--service-out PATH]`

use qserv::analysis::analyze;
use qserv::rewrite::{build_plan, PhysicalPlan};
use qserv::service::{QueryService, ServiceConfig};
use qserv::{merge_oracle, CatalogMeta, ClusterBuilder, FabricOp, FaultPlan, Merger};
use qserv_datagen::generate::{CatalogConfig, Patch};
use qserv_engine::exec::ResultTable;
use qserv_engine::schema::{ColumnDef, ColumnType, Schema};
use qserv_engine::table::Table;
use qserv_engine::value::Value;
use qserv_sqlparse::parse_select;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Splitmix-style generator: deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn plan_for(sql: &str) -> PhysicalPlan {
    let meta = CatalogMeta::lsst();
    let a = analyze(&parse_select(sql).expect("workload parses"), &meta).expect("analyzes");
    build_plan(&a, &meta).expect("plans")
}

struct Workload {
    name: &'static str,
    plan: PhysicalPlan,
    /// One synthetic worker result per chunk.
    parts: Vec<Table>,
}

/// Partial per-chunk GROUP BY aggregates: the shape workers actually
/// return for a two-phase `GROUP BY chunkId` query (32 groups per chunk,
/// so merge state stays O(groups) while barrier state is O(chunks×groups)).
fn agg_group_parts(chunks: usize, rows: usize, rng: &mut Rng) -> Vec<Table> {
    let schema = || {
        Schema::new(vec![
            ColumnDef::new("chunkId", ColumnType::Int),
            ColumnDef::new("COUNT(*)", ColumnType::Int),
            ColumnDef::new("SUM(ra_PS)", ColumnType::Float),
            ColumnDef::new("SUM(decl_PS)", ColumnType::Float),
            ColumnDef::new("COUNT(decl_PS)", ColumnType::Int),
        ])
    };
    (0..chunks)
        .map(|_| {
            let mut t = Table::new(schema());
            for g in 0..rows {
                let n = 1 + (rng.next_u64() % 50) as i64;
                t.push_row(vec![
                    Value::Int((g % 32) as i64),
                    Value::Int(n),
                    Value::Float(rng.next_f64() * 360.0 * n as f64),
                    Value::Float((rng.next_f64() - 0.5) * 20.0 * n as f64),
                    Value::Int(n),
                ])
                .expect("schema matches");
            }
            t
        })
        .collect()
}

/// Plain per-chunk row sets for the append / top-n shapes.
fn row_parts(chunks: usize, rows: usize, rng: &mut Rng) -> Vec<Table> {
    let schema = || {
        Schema::new(vec![
            ColumnDef::new("objectId", ColumnType::Int),
            ColumnDef::new("ra_PS", ColumnType::Float),
        ])
    };
    (0..chunks)
        .map(|c| {
            let mut t = Table::new(schema());
            for i in 0..rows {
                t.push_row(vec![
                    Value::Int((c * rows + i) as i64),
                    Value::Float(rng.next_f64() * 360.0),
                ])
                .expect("schema matches");
            }
            t
        })
        .collect()
}

fn workloads(chunks: usize, rows: usize) -> Vec<Workload> {
    let mut rng = Rng(0x5eed_ca57);
    vec![
        Workload {
            name: "agg_group",
            plan: plan_for(
                "SELECT chunkId, COUNT(*), SUM(ra_PS), AVG(decl_PS) \
                 FROM Object GROUP BY chunkId",
            ),
            parts: agg_group_parts(chunks, rows, &mut rng),
        },
        Workload {
            name: "append_limit",
            plan: plan_for("SELECT objectId, ra_PS FROM Object LIMIT 1000"),
            parts: row_parts(chunks, rows, &mut rng),
        },
        Workload {
            name: "topn",
            plan: plan_for("SELECT objectId, ra_PS FROM Object ORDER BY ra_PS DESC LIMIT 100"),
            parts: row_parts(chunks, rows, &mut rng),
        },
    ]
}

/// Barrier path: buffer every part, then merge-and-execute. Returns the
/// result, best-of-`iters` seconds, and the peak-memory proxy (all parts
/// resident plus the concatenated intermediate).
fn run_barrier(w: &Workload, iters: usize) -> (ResultTable, f64, u64) {
    let parts_bytes: u64 = w.parts.iter().map(|t| t.footprint_bytes()).sum();
    let merged = qserv::merge_tables(w.parts.clone()).expect("parts merge");
    let peak = parts_bytes + merged.footprint_bytes();
    drop(merged);
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..iters {
        let parts = w.parts.clone();
        let start = Instant::now();
        let (r, _) = merge_oracle(&w.plan.merge_stmt, parts).expect("barrier merge");
        best = best.min(start.elapsed().as_secs_f64());
        result = Some(r);
    }
    (result.expect("at least one iteration"), best, peak)
}

/// Streaming path: fold parts as they "arrive" (ascending chunk order,
/// as the dispatcher's reorder buffer guarantees), stopping at a
/// satisfied LIMIT. Returns the result, best-of-`iters` seconds, the
/// merger's peak state bytes, and how many parts were actually folded.
fn run_streaming(w: &Workload, iters: usize) -> (ResultTable, f64, u64, usize) {
    let mut best = f64::INFINITY;
    let mut result = None;
    let mut peak = 0u64;
    let mut folded = 0usize;
    for _ in 0..iters {
        let parts = w.parts.clone();
        let start = Instant::now();
        let mut merger = Merger::new(&w.plan);
        folded = 0;
        for (seq, part) in parts.into_iter().enumerate() {
            if merger.satisfied() {
                break;
            }
            merger.fold(seq, part).expect("streaming fold");
            folded += 1;
            peak = peak.max(merger.state_bytes());
        }
        let r = merger.finish().expect("streaming finish");
        best = best.min(start.elapsed().as_secs_f64());
        result = Some(r);
    }
    (result.expect("at least one iteration"), best, peak, folded)
}

/// Percentile over latencies in milliseconds (nearest-rank).
fn percentile(latencies: &[u64], p: f64) -> u64 {
    let mut v = latencies.to_vec();
    v.sort_unstable();
    let idx = ((v.len() as f64) * p).ceil() as usize;
    v[idx.saturating_sub(1).min(v.len() - 1)]
}

/// A small real cluster whose fabric reads each pay a fixed delay, so a
/// full scan is meaningfully slower than a one-chunk point lookup.
fn service_cluster() -> Arc<qserv::Qserv> {
    let patch = Patch::generate(&CatalogConfig::small(600, 7));
    let mut q = ClusterBuilder::new(4)
        .fault_plan(FaultPlan::new(3))
        .build(&patch.objects, &patch.sources);
    q.dispatch_width = 1;
    let q = Arc::new(q);
    q.cluster()
        .faults()
        .delay(None, Some(FabricOp::Read), Duration::from_millis(8));
    q
}

/// Submits the mixed workload — one full scan, then `n` interactive
/// point lookups — and returns the interactive queue-to-finish
/// latencies in milliseconds.
fn mixed_workload_latencies(cfg: ServiceConfig, n: usize) -> Vec<u64> {
    let service = QueryService::start(service_cluster(), cfg);
    let scan = service
        .submit("SELECT COUNT(*) FROM Object")
        .expect("scan admitted");
    let lookups: Vec<_> = (0..n)
        .map(|i| {
            service
                .submit(&format!(
                    "SELECT objectId, ra_PS, decl_PS FROM Object WHERE objectId = {}",
                    1 + i as u64
                ))
                .expect("lookup admitted")
        })
        .collect();
    let latencies = lookups
        .into_iter()
        .map(|h| {
            let r = h.wait();
            r.result.expect("lookup succeeds");
            (r.wait + r.run).as_millis() as u64
        })
        .collect();
    scan.wait().result.expect("scan succeeds");
    latencies
}

/// The scheduling benchmark: interactive p50/p95 under a concurrent
/// scan, fair scheduling on vs off.
fn run_service_bench(out: &str) {
    const LOOKUPS: usize = 20;
    // Unloaded baseline: the same lookups with no scan competing.
    let quiet = QueryService::with_defaults(service_cluster());
    let unloaded: Vec<u64> = (0..5)
        .map(|i| {
            let r = quiet
                .submit(&format!(
                    "SELECT objectId, ra_PS, decl_PS FROM Object WHERE objectId = {}",
                    1 + i as u64
                ))
                .expect("lookup admitted")
                .wait();
            r.result.expect("lookup succeeds");
            (r.wait + r.run).as_millis() as u64
        })
        .collect();
    let unloaded_p50 = percentile(&unloaded, 0.5);
    drop(quiet);

    // Scheduling ON: the defaults — 4 executors, scans capped at 2, DRR
    // dequeue. Point lookups dispatch one chunk, the scan dispatches
    // them all, so the default threshold classifies both correctly.
    let scheduled = mixed_workload_latencies(ServiceConfig::default(), LOOKUPS);
    // Scheduling OFF: one executor draining one arrival-order queue —
    // the scan admitted first occupies it while every lookup waits.
    let fifo = mixed_workload_latencies(
        ServiceConfig {
            max_concurrent: 1,
            fifo: true,
            ..ServiceConfig::default()
        },
        LOOKUPS,
    );

    let (s50, s95) = (percentile(&scheduled, 0.5), percentile(&scheduled, 0.95));
    let (f50, f95) = (percentile(&fifo, 0.5), percentile(&fifo, 0.95));
    let speedup = f95 as f64 / s95.max(1) as f64;
    eprintln!(
        "service  {LOOKUPS} lookups vs 1 scan  unloaded p50 {unloaded_p50} ms  \
         scheduled p50/p95 {s50}/{s95} ms  fifo p50/p95 {f50}/{f95} ms  p95 {speedup:.1}x better"
    );
    let json = format!(
        "{{\n  \"interactive_lookups\": {LOOKUPS},\n  \"concurrent_scans\": 1,\n  \
         \"unloaded_p50_ms\": {unloaded_p50},\n  \
         \"scheduled\": {{\"p50_ms\": {s50}, \"p95_ms\": {s95}}},\n  \
         \"fifo\": {{\"p50_ms\": {f50}, \"p95_ms\": {f95}}},\n  \
         \"p95_speedup\": {speedup:.2}\n}}\n"
    );
    std::fs::write(out, json).expect("write service benchmark output");
    eprintln!("wrote {out}");
}

fn main() {
    let mut chunk_counts: Vec<usize> = vec![64, 256, 1024];
    let mut rows: usize = 200;
    let mut iters: usize = 3;
    let mut out = "BENCH_master.json".to_string();
    let mut service_out = "BENCH_service.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut grab = |what: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{what} needs a value"))
        };
        match arg.as_str() {
            "--chunks" => {
                chunk_counts = grab("--chunks")
                    .split(',')
                    .map(|s| s.trim().parse().expect("integer chunk count"))
                    .collect();
            }
            "--rows" => rows = grab("--rows").parse().expect("integer rows per chunk"),
            "--iters" => iters = grab("--iters").parse().expect("integer iteration count"),
            "--out" => out = grab("--out"),
            "--service-out" => service_out = grab("--service-out"),
            other => panic!(
                "unknown argument {other:?} \
                 (expected --chunks/--rows/--iters/--out/--service-out)"
            ),
        }
    }

    let mut lines = Vec::new();
    let mut headline = None;
    for &chunks in &chunk_counts {
        for w in workloads(chunks, rows) {
            let (barrier_result, t_bar, bar_peak) = run_barrier(&w, iters);
            let (stream_result, t_str, str_peak, folded) = run_streaming(&w, iters);

            // Equivalence gate: the streaming pipeline must be
            // indistinguishable from the collect-then-merge oracle.
            assert_eq!(
                stream_result, barrier_result,
                "{} @ {chunks} chunks: streaming diverged from the barrier oracle",
                w.name
            );

            let total_rows: usize = w.parts.iter().map(|t| t.num_rows()).sum();
            let bar_rps = total_rows as f64 / t_bar;
            let str_rps = total_rows as f64 / t_str;
            let speedup = str_rps / bar_rps;
            let mem_reduction = bar_peak as f64 / (str_peak.max(1)) as f64;
            if w.name == "agg_group" && chunks == *chunk_counts.iter().max().unwrap() {
                headline = Some(speedup);
            }
            eprintln!(
                "{:<12} {:>5} chunks  barrier {:>12.0} rows/s  streaming {:>12.0} rows/s  \
                 {:>6.2}x  mem {:>8.1}x smaller  ({folded}/{chunks} parts folded)",
                w.name, chunks, bar_rps, str_rps, speedup, mem_reduction
            );
            lines.push(format!(
                "    {{\"name\": \"{}\", \"chunks\": {chunks}, \
                 \"barrier_rows_per_s\": {bar_rps:.1}, \"streaming_rows_per_s\": {str_rps:.1}, \
                 \"speedup\": {speedup:.3}, \"barrier_peak_bytes\": {bar_peak}, \
                 \"streaming_peak_bytes\": {str_peak}, \"memory_reduction\": {mem_reduction:.1}, \
                 \"parts_folded\": {folded}}}",
                w.name
            ));
        }
    }

    let json = format!(
        "{{\n  \"rows_per_chunk\": {rows},\n  \"iters\": {iters},\n  \"workloads\": [\n{}\n  ]\n}}\n",
        lines.join(",\n")
    );
    std::fs::write(&out, json).expect("write benchmark output");
    eprintln!("wrote {out}");

    let headline = headline.expect("agg_group at the largest chunk count ran");
    eprintln!("headline agg_group streaming speedup: {headline:.2}x");

    run_service_bench(&service_out);
}
