//! Master merge-pipeline benchmark: barrier (collect-then-merge) vs the
//! streaming [`Merger`].
//!
//! Synthesizes per-chunk worker result tables directly (no cluster — this
//! isolates the master's merge path), runs each workload through both
//! paths, verifies the results are identical (the equivalence gate; any
//! mismatch aborts with a non-zero exit), and writes a machine-readable
//! summary to `BENCH_master.json`: rows/sec per path, the speedup, and a
//! peak-memory proxy (barrier: all parts plus the concatenated table;
//! streaming: the merger's high-water state). The headline number is the
//! aggregated GROUP BY workload at the largest chunk count, where
//! streaming must beat the barrier by >= 1.5x.
//!
//! It also benchmarks the *query service* scheduling layer with a mixed
//! workload — one full scan plus 20 interactive point lookups submitted
//! together — and reports the interactive p50/p95 latency with fair
//! scheduling on (default config: scan cap + DRR) vs off (one FIFO
//! executor, the unscheduled baseline). Summary goes to
//! `BENCH_service.json`.
//!
//! With `--join-out PATH` it additionally benchmarks the distributed
//! join path on a real in-process cluster: the near-neighbour self-join
//! and the cross-catalog XMatch end to end, plus the worker's compiled
//! columnar distance kernel against the tree-walking interpreter on the
//! same statement (both must return identical rows). Summary goes to
//! `BENCH_join.json`.
//!
//! Usage: `master_bench [--chunks N,N,..] [--rows N] [--iters K] [--out PATH]
//!                      [--service-out PATH] [--join-out PATH]`

use qserv::analysis::analyze;
use qserv::rewrite::{build_plan, PhysicalPlan};
use qserv::service::{QueryService, ServiceConfig};
use qserv::{merge_oracle, CatalogMeta, ClusterBuilder, FabricOp, FaultPlan, Merger};
use qserv_datagen::generate::{CatalogConfig, Patch};
use qserv_engine::exec::ResultTable;
use qserv_engine::schema::{ColumnDef, ColumnType, Schema};
use qserv_engine::table::Table;
use qserv_engine::value::Value;
use qserv_sqlparse::parse_select;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Splitmix-style generator: deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn plan_for(sql: &str) -> PhysicalPlan {
    let meta = CatalogMeta::lsst();
    let a = analyze(&parse_select(sql).expect("workload parses"), &meta).expect("analyzes");
    build_plan(&a, &meta).expect("plans")
}

struct Workload {
    name: &'static str,
    plan: PhysicalPlan,
    /// One synthetic worker result per chunk.
    parts: Vec<Table>,
}

/// Partial per-chunk GROUP BY aggregates: the shape workers actually
/// return for a two-phase `GROUP BY chunkId` query (32 groups per chunk,
/// so merge state stays O(groups) while barrier state is O(chunks×groups)).
fn agg_group_parts(chunks: usize, rows: usize, rng: &mut Rng) -> Vec<Table> {
    let schema = || {
        Schema::new(vec![
            ColumnDef::new("chunkId", ColumnType::Int),
            ColumnDef::new("COUNT(*)", ColumnType::Int),
            ColumnDef::new("SUM(ra_PS)", ColumnType::Float),
            ColumnDef::new("SUM(decl_PS)", ColumnType::Float),
            ColumnDef::new("COUNT(decl_PS)", ColumnType::Int),
        ])
    };
    (0..chunks)
        .map(|_| {
            let mut t = Table::new(schema());
            for g in 0..rows {
                let n = 1 + (rng.next_u64() % 50) as i64;
                t.push_row(vec![
                    Value::Int((g % 32) as i64),
                    Value::Int(n),
                    Value::Float(rng.next_f64() * 360.0 * n as f64),
                    Value::Float((rng.next_f64() - 0.5) * 20.0 * n as f64),
                    Value::Int(n),
                ])
                .expect("schema matches");
            }
            t
        })
        .collect()
}

/// Plain per-chunk row sets for the append / top-n shapes.
fn row_parts(chunks: usize, rows: usize, rng: &mut Rng) -> Vec<Table> {
    let schema = || {
        Schema::new(vec![
            ColumnDef::new("objectId", ColumnType::Int),
            ColumnDef::new("ra_PS", ColumnType::Float),
        ])
    };
    (0..chunks)
        .map(|c| {
            let mut t = Table::new(schema());
            for i in 0..rows {
                t.push_row(vec![
                    Value::Int((c * rows + i) as i64),
                    Value::Float(rng.next_f64() * 360.0),
                ])
                .expect("schema matches");
            }
            t
        })
        .collect()
}

fn workloads(chunks: usize, rows: usize) -> Vec<Workload> {
    let mut rng = Rng(0x5eed_ca57);
    vec![
        Workload {
            name: "agg_group",
            plan: plan_for(
                "SELECT chunkId, COUNT(*), SUM(ra_PS), AVG(decl_PS) \
                 FROM Object GROUP BY chunkId",
            ),
            parts: agg_group_parts(chunks, rows, &mut rng),
        },
        Workload {
            name: "append_limit",
            plan: plan_for("SELECT objectId, ra_PS FROM Object LIMIT 1000"),
            parts: row_parts(chunks, rows, &mut rng),
        },
        Workload {
            name: "topn",
            plan: plan_for("SELECT objectId, ra_PS FROM Object ORDER BY ra_PS DESC LIMIT 100"),
            parts: row_parts(chunks, rows, &mut rng),
        },
    ]
}

/// Barrier path: buffer every part, then merge-and-execute. Returns the
/// result, best-of-`iters` seconds, and the peak-memory proxy (all parts
/// resident plus the concatenated intermediate).
fn run_barrier(w: &Workload, iters: usize) -> (ResultTable, f64, u64) {
    let parts_bytes: u64 = w.parts.iter().map(|t| t.footprint_bytes()).sum();
    let merged = qserv::merge_tables(w.parts.clone()).expect("parts merge");
    let peak = parts_bytes + merged.footprint_bytes();
    drop(merged);
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..iters {
        let parts = w.parts.clone();
        let start = Instant::now();
        let (r, _) = merge_oracle(&w.plan.merge_stmt, parts).expect("barrier merge");
        best = best.min(start.elapsed().as_secs_f64());
        result = Some(r);
    }
    (result.expect("at least one iteration"), best, peak)
}

/// Streaming path: fold parts as they "arrive" (ascending chunk order,
/// as the dispatcher's reorder buffer guarantees), stopping at a
/// satisfied LIMIT. Returns the result, best-of-`iters` seconds, the
/// merger's peak state bytes, and how many parts were actually folded.
fn run_streaming(w: &Workload, iters: usize) -> (ResultTable, f64, u64, usize) {
    let mut best = f64::INFINITY;
    let mut result = None;
    let mut peak = 0u64;
    let mut folded = 0usize;
    for _ in 0..iters {
        let parts = w.parts.clone();
        let start = Instant::now();
        let mut merger = Merger::new(&w.plan);
        folded = 0;
        for (seq, part) in parts.into_iter().enumerate() {
            if merger.satisfied() {
                break;
            }
            merger.fold(seq, part).expect("streaming fold");
            folded += 1;
            peak = peak.max(merger.state_bytes());
        }
        let r = merger.finish().expect("streaming finish");
        best = best.min(start.elapsed().as_secs_f64());
        result = Some(r);
    }
    (result.expect("at least one iteration"), best, peak, folded)
}

/// Percentile over latencies in milliseconds (nearest-rank).
fn percentile(latencies: &[u64], p: f64) -> u64 {
    let mut v = latencies.to_vec();
    v.sort_unstable();
    let idx = ((v.len() as f64) * p).ceil() as usize;
    v[idx.saturating_sub(1).min(v.len() - 1)]
}

/// A small real cluster whose fabric reads each pay a fixed delay, so a
/// full scan is meaningfully slower than a one-chunk point lookup.
fn service_cluster() -> Arc<qserv::Qserv> {
    let patch = Patch::generate(&CatalogConfig::small(600, 7));
    let mut q = ClusterBuilder::new(4)
        .fault_plan(FaultPlan::new(3))
        .build(&patch.objects, &patch.sources);
    q.dispatch_width = 1;
    let q = Arc::new(q);
    q.cluster()
        .faults()
        .delay(None, Some(FabricOp::Read), Duration::from_millis(8));
    q
}

/// Submits the mixed workload — one full scan, then `n` interactive
/// point lookups — and returns the interactive queue-to-finish
/// latencies in milliseconds.
fn mixed_workload_latencies(cfg: ServiceConfig, n: usize) -> Vec<u64> {
    let service = QueryService::start(service_cluster(), cfg);
    let scan = service
        .submit("SELECT COUNT(*) FROM Object")
        .expect("scan admitted");
    let lookups: Vec<_> = (0..n)
        .map(|i| {
            service
                .submit(&format!(
                    "SELECT objectId, ra_PS, decl_PS FROM Object WHERE objectId = {}",
                    1 + i as u64
                ))
                .expect("lookup admitted")
        })
        .collect();
    let latencies = lookups
        .into_iter()
        .map(|h| {
            let r = h.wait();
            r.result.expect("lookup succeeds");
            (r.wait + r.run).as_millis() as u64
        })
        .collect();
    scan.wait().result.expect("scan succeeds");
    latencies
}

/// The scheduling benchmark: interactive p50/p95 under a concurrent
/// scan, fair scheduling on vs off.
fn run_service_bench(out: &str) {
    const LOOKUPS: usize = 20;
    // Unloaded baseline: the same lookups with no scan competing.
    let quiet = QueryService::with_defaults(service_cluster());
    let unloaded: Vec<u64> = (0..5)
        .map(|i| {
            let r = quiet
                .submit(&format!(
                    "SELECT objectId, ra_PS, decl_PS FROM Object WHERE objectId = {}",
                    1 + i as u64
                ))
                .expect("lookup admitted")
                .wait();
            r.result.expect("lookup succeeds");
            (r.wait + r.run).as_millis() as u64
        })
        .collect();
    let unloaded_p50 = percentile(&unloaded, 0.5);
    drop(quiet);

    // Scheduling ON: the defaults — 4 executors, scans capped at 2, DRR
    // dequeue. Point lookups dispatch one chunk, the scan dispatches
    // them all, so the default threshold classifies both correctly.
    let scheduled = mixed_workload_latencies(ServiceConfig::default(), LOOKUPS);
    // Scheduling OFF: one executor draining one arrival-order queue —
    // the scan admitted first occupies it while every lookup waits.
    let fifo = mixed_workload_latencies(
        ServiceConfig {
            max_concurrent: 1,
            fifo: true,
            ..ServiceConfig::default()
        },
        LOOKUPS,
    );

    let (s50, s95) = (percentile(&scheduled, 0.5), percentile(&scheduled, 0.95));
    let (f50, f95) = (percentile(&fifo, 0.5), percentile(&fifo, 0.95));
    let speedup = f95 as f64 / s95.max(1) as f64;
    eprintln!(
        "service  {LOOKUPS} lookups vs 1 scan  unloaded p50 {unloaded_p50} ms  \
         scheduled p50/p95 {s50}/{s95} ms  fifo p50/p95 {f50}/{f95} ms  p95 {speedup:.1}x better"
    );
    let json = format!(
        "{{\n  \"interactive_lookups\": {LOOKUPS},\n  \"concurrent_scans\": 1,\n  \
         \"unloaded_p50_ms\": {unloaded_p50},\n  \
         \"scheduled\": {{\"p50_ms\": {s50}, \"p95_ms\": {s95}}},\n  \
         \"fifo\": {{\"p50_ms\": {f50}, \"p95_ms\": {f95}}},\n  \
         \"p95_speedup\": {speedup:.2}\n}}\n"
    );
    std::fs::write(out, json).expect("write service benchmark output");
    eprintln!("wrote {out}");
}

/// Best-of-`iters` wall time of `f`, in seconds, plus its last result.
fn best_of<T>(iters: usize, mut f: impl FnMut() -> T) -> (T, f64) {
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..iters {
        let start = Instant::now();
        result = Some(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    (result.expect("at least one iteration"), best)
}

/// The join-path benchmark: distributed near-neighbour and XMatch on a
/// real cluster, and the worker's vectorized distance kernel vs the
/// interpreter on one chunk-sized self-join.
fn run_join_bench(out: &str, iters: usize) {
    use qserv_engine::db::Database;
    use qserv_engine::exec::{execute_with_mode, ExecMode};

    let objects = 3000usize;
    let patch = Patch::generate(&CatalogConfig::small(objects, 61));
    let refs = patch.generate_ref_catalog(61);
    let q = ClusterBuilder::new(8)
        .ref_objects(&refs)
        .build(&patch.objects, &patch.sources);
    let chunks = q.placement().chunks().len();

    // 1. Distributed near-neighbour self-join (per-subchunk overlap join,
    //    workers on the compiled distance kernel).
    let radius = 0.05f64;
    let nn_sql = format!(
        "SELECT count(*) FROM Object o1, Object o2 \
         WHERE qserv_angSep(o1.ra_PS, o1.decl_PS, o2.ra_PS, o2.decl_PS) < {radius} \
         AND o1.objectId != o2.objectId"
    );
    let (pairs, nn_s) = best_of(iters, || {
        q.query(&nn_sql)
            .expect("near-neighbour query")
            .scalar()
            .and_then(|v| v.as_i64())
            .expect("count")
    });
    eprintln!(
        "join     near-neighbour {objects} objects r={radius}°: {pairs} pairs \
         over {chunks} chunks in {:.0} ms",
        nn_s * 1e3
    );

    // 2. Cross-catalog XMatch at 10 arcsec.
    let spec = qserv::XMatchSpec::object_to_ref(10.0 / 3600.0);
    let (matches, xm_s) = best_of(iters, || q.xmatch(&spec).expect("xmatch").0.num_rows());
    eprintln!(
        "join     xmatch {objects} objects vs {} refs: {matches} matched in {:.0} ms",
        refs.len(),
        xm_s * 1e3
    );

    // 3. Worker-kernel comparison: the same distance self-join statement
    //    on one engine, compiled columnar kernel vs interpreter.
    let mut table = qserv_engine::table::Table::new(Schema::new(vec![
        ColumnDef::new("objectId", ColumnType::Int),
        ColumnDef::new("ra_PS", ColumnType::Float),
        ColumnDef::new("decl_PS", ColumnType::Float),
    ]));
    for o in &patch.objects {
        table
            .push_row(vec![
                Value::Int(o.object_id),
                Value::Float(o.ra_ps),
                Value::Float(o.decl_ps),
            ])
            .expect("schema matches");
    }
    let mut db = Database::new();
    db.create_table("Object", table);
    let stmt = parse_select(&nn_sql).expect("parses");
    let (vec_result, vec_s) = best_of(iters, || {
        execute_with_mode(&db, &stmt, ExecMode::Vectorized).expect("vectorized join")
    });
    let (int_result, int_s) = best_of(iters, || {
        execute_with_mode(&db, &stmt, ExecMode::Interpreted).expect("interpreted join")
    });
    assert_eq!(
        vec_result.0.rows, int_result.0.rows,
        "distance kernel diverged from the interpreter"
    );
    let cmp_per_s = (objects * objects) as f64 / vec_s;
    let kernel_speedup = int_s / vec_s;
    eprintln!(
        "join     distance kernel: vectorized {:.0} ms vs interpreted {:.0} ms \
         ({kernel_speedup:.1}x, {cmp_per_s:.2e} candidate pairs/s)",
        vec_s * 1e3,
        int_s * 1e3
    );

    let json = format!(
        "{{\n  \"objects\": {objects},\n  \"chunks\": {chunks},\n  \"iters\": {iters},\n  \
         \"near_neighbor\": {{\"radius_deg\": {radius}, \"pairs\": {pairs}, \
         \"best_ms\": {:.2}}},\n  \
         \"xmatch\": {{\"radius_arcsec\": 10.0, \"refs\": {}, \"matches\": {matches}, \
         \"best_ms\": {:.2}}},\n  \
         \"distance_kernel\": {{\"vectorized_ms\": {:.2}, \"interpreted_ms\": {:.2}, \
         \"speedup\": {kernel_speedup:.2}, \"candidate_pairs_per_s\": {cmp_per_s:.3e}}}\n}}\n",
        nn_s * 1e3,
        refs.len(),
        xm_s * 1e3,
        vec_s * 1e3,
        int_s * 1e3
    );
    std::fs::write(out, json).expect("write join benchmark output");
    eprintln!("wrote {out}");
}

/// The cost-based-planner benchmark: a mixed workload — point lookups,
/// IN-lists, predicate region scans, top-n — on a real cluster, run
/// end-to-end under three plan policies: always-scan, always-index
/// (both with pushdown and reordering forced off), and the planner's
/// own choice. Every policy must return bit-identical results (the
/// plan-equivalence gate; the planner only picks among sound plans),
/// and the planner's total must beat both forced baselines. Also
/// reports the estimator's q-error over the planner-mode runs. Summary
/// goes to `BENCH_planner.json`.
fn run_planner_bench(out: &str, iters: usize) {
    use qserv::PlanOverride;

    let objects = 12_000usize;
    // A wide footprint so the chunk set is large enough that chunk
    // elision and index routing matter; no injected fabric delay, so
    // CPU + result transfer dominate, as on a warm cluster.
    let patch = Patch::generate(&CatalogConfig {
        objects,
        mean_sources_per_object: 1.0,
        seed: 83,
        footprint: qserv_sphgeom::SphericalBox::from_degrees(0.0, -40.0, 120.0, 40.0),
    });
    let mut q = ClusterBuilder::new(8).build(&patch.objects, &patch.sources);
    let chunks = q.placement().chunks().len();

    let mut queries: Vec<String> = Vec::new();
    for i in 0..8u64 {
        queries.push(format!(
            "SELECT * FROM Object WHERE objectId = {}",
            37 + i * 731
        ));
    }
    for i in 0..4u64 {
        let b = 500 + i * 977;
        queries.push(format!(
            "SELECT objectId, ra_PS, decl_PS FROM Object WHERE objectId IN \
             ({}, {}, {}, {}, {})",
            b,
            b + 311,
            b + 622,
            b + 933,
            b + 1244
        ));
    }
    // Region scans with the expensive conjunct written first — the
    // filter-reordering target.
    for (l0, b0, l1, b1) in [
        (5.0, -35.0, 35.0, -5.0),
        (40.0, -20.0, 80.0, 20.0),
        (10.0, 0.0, 60.0, 38.0),
        (70.0, -38.0, 118.0, 0.0),
    ] {
        queries.push(format!(
            "SELECT objectId FROM Object WHERE qserv_areaspec_box({l0}, {b0}, {l1}, {b1}) \
             AND fluxToAbMag(zFlux_PS) < 23.5 AND decl_PS < 35.0"
        ));
    }
    for i in 0..8u64 {
        queries.push(format!(
            "SELECT * FROM Object ORDER BY objectId{} LIMIT 5",
            if i % 2 == 0 { " DESC" } else { "" }
        ));
    }

    let modes: [(&str, Option<PlanOverride>); 3] = [
        (
            "always_scan",
            Some(PlanOverride {
                use_index: Some(false),
                push_topn: Some(false),
                reorder: Some(false),
            }),
        ),
        (
            "always_index",
            Some(PlanOverride {
                use_index: Some(true),
                push_topn: Some(false),
                reorder: Some(false),
            }),
        ),
        ("planner", None),
    ];

    let mut reference: Option<Vec<ResultTable>> = None;
    let mut totals: Vec<(&str, f64)> = Vec::new();
    let mut qerr_mean = 0.0f64;
    let mut qerr_max = 0.0f64;
    for (name, ov) in modes {
        q.plan_override = ov;
        // Warm-up pass doubles as the plan-equivalence gate: a forced
        // plan returning different bytes is a planner soundness bug.
        let results: Vec<ResultTable> = queries
            .iter()
            .map(|sql| q.query(sql).expect("workload query runs"))
            .collect();
        match &reference {
            None => reference = Some(results),
            Some(expect) => {
                for ((sql, a), b) in queries.iter().zip(expect).zip(&results) {
                    assert_eq!(a, b, "{name} diverged from always_scan on {sql}");
                }
            }
        }
        if ov.is_none() {
            // Estimator accuracy, measured on the plans actually chosen.
            let mut errs = Vec::new();
            for sql in &queries {
                let (_, stats) = q.query_with_stats(sql).expect("stats run");
                errs.push(stats.planner_qerror_pct as f64 / 100.0);
            }
            qerr_mean = errs.iter().sum::<f64>() / errs.len() as f64;
            qerr_max = errs.iter().cloned().fold(0.0, f64::max);
        }
        let (_, best) = best_of(iters, || {
            for sql in &queries {
                q.query(sql).expect("workload query runs");
            }
        });
        eprintln!(
            "planner  {name:<12} {} queries over {chunks} chunks: {:.0} ms",
            queries.len(),
            best * 1e3
        );
        totals.push((name, best));
    }
    let scan_s = totals[0].1;
    let index_s = totals[1].1;
    let planner_s = totals[2].1;
    // The headline gate: the cost model must pay for itself end to end.
    assert!(
        planner_s < scan_s && planner_s < index_s,
        "planner ({planner_s:.3}s) must beat always-scan ({scan_s:.3}s) \
         and always-index ({index_s:.3}s)"
    );
    eprintln!(
        "planner  headline: {:.2}x vs always-scan, {:.2}x vs always-index, \
         q-error mean {qerr_mean:.2} max {qerr_max:.2}",
        scan_s / planner_s,
        index_s / planner_s
    );

    let json = format!(
        "{{\n  \"objects\": {objects},\n  \"chunks\": {chunks},\n  \"iters\": {iters},\n  \
         \"queries\": {},\n  \
         \"always_scan_s\": {scan_s:.4},\n  \"always_index_s\": {index_s:.4},\n  \
         \"planner_s\": {planner_s:.4},\n  \
         \"speedup_vs_scan\": {:.3},\n  \"speedup_vs_index\": {:.3},\n  \
         \"qerror\": {{\"mean\": {qerr_mean:.3}, \"max\": {qerr_max:.3}}}\n}}\n",
        queries.len(),
        scan_s / planner_s,
        index_s / planner_s
    );
    std::fs::write(out, json).expect("write planner benchmark output");
    eprintln!("wrote {out}");
}

fn main() {
    let mut chunk_counts: Vec<usize> = vec![64, 256, 1024];
    let mut rows: usize = 200;
    let mut iters: usize = 3;
    let mut out = "BENCH_master.json".to_string();
    let mut service_out = "BENCH_service.json".to_string();
    let mut join_out: Option<String> = None;
    let mut planner_out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut grab = |what: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{what} needs a value"))
        };
        match arg.as_str() {
            "--chunks" => {
                chunk_counts = grab("--chunks")
                    .split(',')
                    .map(|s| s.trim().parse().expect("integer chunk count"))
                    .collect();
            }
            "--rows" => rows = grab("--rows").parse().expect("integer rows per chunk"),
            "--iters" => iters = grab("--iters").parse().expect("integer iteration count"),
            "--out" => out = grab("--out"),
            "--service-out" => service_out = grab("--service-out"),
            "--join-out" => join_out = Some(grab("--join-out")),
            "--planner-out" => planner_out = Some(grab("--planner-out")),
            other => panic!(
                "unknown argument {other:?} \
                 (expected --chunks/--rows/--iters/--out/--service-out/--join-out/--planner-out)"
            ),
        }
    }

    let mut lines = Vec::new();
    let mut headline = None;
    for &chunks in &chunk_counts {
        for w in workloads(chunks, rows) {
            let (barrier_result, t_bar, bar_peak) = run_barrier(&w, iters);
            let (stream_result, t_str, str_peak, folded) = run_streaming(&w, iters);

            // Equivalence gate: the streaming pipeline must be
            // indistinguishable from the collect-then-merge oracle.
            assert_eq!(
                stream_result, barrier_result,
                "{} @ {chunks} chunks: streaming diverged from the barrier oracle",
                w.name
            );

            let total_rows: usize = w.parts.iter().map(|t| t.num_rows()).sum();
            let bar_rps = total_rows as f64 / t_bar;
            let str_rps = total_rows as f64 / t_str;
            let speedup = str_rps / bar_rps;
            let mem_reduction = bar_peak as f64 / (str_peak.max(1)) as f64;
            if w.name == "agg_group" && chunks == *chunk_counts.iter().max().unwrap() {
                headline = Some(speedup);
            }
            eprintln!(
                "{:<12} {:>5} chunks  barrier {:>12.0} rows/s  streaming {:>12.0} rows/s  \
                 {:>6.2}x  mem {:>8.1}x smaller  ({folded}/{chunks} parts folded)",
                w.name, chunks, bar_rps, str_rps, speedup, mem_reduction
            );
            lines.push(format!(
                "    {{\"name\": \"{}\", \"chunks\": {chunks}, \
                 \"barrier_rows_per_s\": {bar_rps:.1}, \"streaming_rows_per_s\": {str_rps:.1}, \
                 \"speedup\": {speedup:.3}, \"barrier_peak_bytes\": {bar_peak}, \
                 \"streaming_peak_bytes\": {str_peak}, \"memory_reduction\": {mem_reduction:.1}, \
                 \"parts_folded\": {folded}}}",
                w.name
            ));
        }
    }

    let json = format!(
        "{{\n  \"rows_per_chunk\": {rows},\n  \"iters\": {iters},\n  \"workloads\": [\n{}\n  ]\n}}\n",
        lines.join(",\n")
    );
    std::fs::write(&out, json).expect("write benchmark output");
    eprintln!("wrote {out}");

    let headline = headline.expect("agg_group at the largest chunk count ran");
    eprintln!("headline agg_group streaming speedup: {headline:.2}x");

    run_service_bench(&service_out);

    if let Some(join_out) = join_out {
        run_join_bench(&join_out, iters);
    }

    if let Some(planner_out) = planner_out {
        run_planner_bench(&planner_out, iters);
    }
}
