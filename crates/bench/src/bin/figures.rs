//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```sh
//! cargo run --release -p qserv-bench --bin figures            # everything
//! cargo run --release -p qserv-bench --bin figures fig6       # one figure
//! cargo run --release -p qserv-bench --bin figures ablations  # the extras
//! ```
//!
//! Output is a textual series per figure: paper-reported values alongside
//! the reproduction's. Real-execution figures run the actual distributed
//! pipeline on a laptop-scale fixture; timing figures run the calibrated
//! 150-node simulator (see `qserv-bench`'s crate docs for the calibration
//! table). Everything is deterministic.

use qserv_bench::workloads::{self as wl, Nuisance};
use qserv_sim::SimConfig;

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let run_all = arg == "all";
    let mut ran = false;
    macro_rules! section {
        ($name:expr, $f:expr) => {
            if run_all || arg == $name {
                $f();
                println!();
                ran = true;
            }
        };
    }

    section!("table1", table1);
    section!("fig2", fig2);
    section!("fig3", fig3);
    section!("fig4", fig4);
    section!("fig5", fig5);
    section!("fig6", fig6);
    section!("fig7", fig7);
    section!("fig8", || lv_scaling(8, "LV1"));
    section!("fig9", || lv_scaling(9, "LV2"));
    section!("fig10", || lv_scaling(10, "LV3"));
    section!("fig11", fig11);
    section!("fig12", fig12);
    section!("fig13", fig13);
    section!("fig14", fig14);
    if run_all || arg == "ablations" {
        ablate_shared_scan();
        println!();
        ablate_subchunk();
        println!();
        ablate_htm();
        println!();
        ablate_multimaster();
        println!();
        ablate_transfer();
        println!();
        ablate_caching();
        ran = true;
    }
    if !ran {
        eprintln!("unknown selector {arg:?}; use all | table1 | fig2..fig14 | ablations");
        std::process::exit(2);
    }
}

fn paper() -> SimConfig {
    SimConfig::paper_cluster()
}

fn fmt_series(times: &[f64]) -> String {
    times
        .iter()
        .map(|t| format!("{t:6.2}"))
        .collect::<Vec<_>>()
        .join(" ")
}

// ---------------------------------------------------------------------------
// Table 1 — final data release sizing
// ---------------------------------------------------------------------------

fn table1() {
    println!("== Table 1: estimates for LSST's final data release ==");
    println!(
        "{:<14} {:>10} {:>10} {:>14} {:>14}",
        "table", "rows", "row size", "computed", "paper"
    );
    for t in qserv_datagen::estimate::lsst_final_release() {
        println!(
            "{:<14} {:>10.2e} {:>9.0}B {:>13.1}TB {:>13.1}TB",
            t.name,
            t.rows,
            t.row_bytes,
            t.footprint_bytes() / 1e12,
            t.quoted_footprint_bytes / 1e12,
        );
    }
    println!("-- test dataset of §6.1.2 --");
    for t in qserv_datagen::estimate::paper_test_dataset() {
        println!(
            "{:<14} {:>10.2e} {:>9.0}B {:>13.1}TB {:>13.1}TB",
            t.name,
            t.rows,
            t.row_bytes,
            t.footprint_bytes() / 1e12,
            t.quoted_footprint_bytes / 1e12,
        );
    }
}

// ---------------------------------------------------------------------------
// Figures 2–4 — Low Volume latency series
// ---------------------------------------------------------------------------

/// Runs one LV class as the paper did: `runs` series of `execs`
/// executions, with the annotated anomalies injected in the right runs.
fn lv_series(
    label: &str,
    runs: usize,
    execs: usize,
    interference_runs: &[usize],
    cold_run: Option<usize>,
    build: impl Fn(usize, Nuisance) -> Vec<qserv_sim::QueryJob>,
) {
    for run in 1..=runs {
        let mut times = Vec::with_capacity(execs);
        for e in 0..execs {
            let nuisance = Nuisance {
                interference: interference_runs.contains(&run),
                cold_cache_seeks: match cold_run {
                    Some(cr) if run >= cr && e == 0 && run == cr => 480,
                    _ => 0,
                },
            };
            // The paper randomizes the objectId per execution; chunk
            // choice only picks the node here, deterministically varied.
            let chunk = run * 131 + e * 17;
            times.push(wl::run_labeled(&paper(), build(chunk, nuisance), label));
        }
        println!("run{run}: {}", fmt_series(&times));
    }
}

fn fig2() {
    println!("== Figure 2: Low Volume 1 (object retrieval), seconds per execution ==");
    println!("-- paper: ~4 s flat; Runs 1,4 ~9 s (competing tasks); Run 5 first exec ~8 s (cold objectId index)");
    lv_series("LV1", 7, 20, &[1, 4], Some(5), |chunk, n| {
        wl::lv1(150, chunk, n)
    });
}

fn fig3() {
    println!("== Figure 3: Low Volume 2 (time series), seconds per execution ==");
    println!("-- paper: ~4 s flat; Run 1 ~9 s discounted as anomalous");
    lv_series("LV2", 3, 50, &[1], None, |chunk, n| wl::lv2(150, chunk, n));
}

fn fig4() {
    println!("== Figure 4: Low Volume 3 (spatial filter), seconds per execution ==");
    println!("-- paper: ~4 s flat; Run 2 ~9 s discounted as anomalous");
    lv_series("LV3", 4, 17, &[2], None, |chunk, n| wl::lv3(150, chunk, n));
}

// ---------------------------------------------------------------------------
// Figures 5–7 — High Volume latency series
// ---------------------------------------------------------------------------

fn hv_series(
    label: &str,
    runs: usize,
    execs: usize,
    slow_run: Option<usize>,
    job: impl Fn(bool) -> qserv_sim::QueryJob,
) {
    for run in 1..=runs {
        let mut times = Vec::with_capacity(execs);
        for _ in 0..execs {
            let slow = slow_run == Some(run);
            let mut jobs = vec![job(slow)];
            if slow && label == "HV1" {
                // Figure 5's Run 1: competing cluster activity delays a
                // handful of nodes past the dispatch tail.
                for node in 0..8 {
                    jobs.push(wl::background_load(node * 18, 28.0));
                }
            }
            times.push(wl::run_labeled(&paper(), jobs, label));
        }
        println!("run{run}: {}", fmt_series(&times));
    }
}

fn fig5() {
    println!("== Figure 5: High Volume 1 (full-sky count), seconds ==");
    println!("-- paper: 20–30 s; Run 1 slower (interference)");
    hv_series("HV1", 3, 9, Some(1), |_| wl::hv1(150));
}

fn fig6() {
    println!("== Figure 6: High Volume 2 (full-sky filter), seconds ==");
    println!("-- paper: 150–180 s warm cache; Run 3 ~420 s uncached (the honest number)");
    hv_series("HV2", 4, 7, Some(3), |slow| {
        wl::hv2(150, if slow { 0.0 } else { 0.65 })
    });
}

fn fig7() {
    println!("== Figure 7: High Volume 3 (density by chunk), seconds ==");
    println!("-- paper: ~150–250 s; Run 3 ~240 s closer to uncached");
    hv_series("HV3", 4, 7, Some(3), |slow| {
        wl::hv3(150, if slow { 0.3 } else { 0.75 })
    });
}

// ---------------------------------------------------------------------------
// Figures 8–11 — weak scaling
// ---------------------------------------------------------------------------

fn lv_scaling(fignum: usize, label: &str) {
    println!(
        "== Figure {fignum}: {label} mean execution time vs node count (constant data per node) =="
    );
    println!("-- paper: flat ~4 s at 40, 100, 150 nodes");
    for nodes in [40, 100, 150] {
        let cfg = SimConfig::paper_cluster().with_nodes(nodes);
        let mut sum = 0.0;
        let reps = 10;
        for e in 0..reps {
            let chunk = e * 13 + 7;
            let jobs = match label {
                "LV1" => wl::lv1(nodes, chunk, Nuisance::default()),
                "LV2" => wl::lv2(nodes, chunk, Nuisance::default()),
                _ => wl::lv3(nodes, chunk, Nuisance::default()),
            };
            sum += wl::run_labeled(&cfg, jobs, label);
        }
        println!("{nodes:>4} nodes: {:6.2} s", sum / reps as f64);
    }
}

fn fig11() {
    println!("== Figure 11: High Volume query time vs node count (constant data per node) ==");
    println!("-- paper: HV1 linear in chunk count; HV2 ~flat; HV3 trends like HV1 (cached)");
    println!("{:>5} {:>8} {:>8} {:>8}", "nodes", "HV1", "HV2", "HV3");
    for nodes in [40, 100, 150] {
        let cfg = SimConfig::paper_cluster().with_nodes(nodes);
        let t1 = wl::run_single(&cfg, wl::hv1(nodes));
        let t2 = wl::run_single(&cfg, wl::hv2(nodes, 0.65));
        let t3 = wl::run_single(&cfg, wl::hv3(nodes, 0.75));
        println!("{nodes:>5} {t1:>7.1}s {t2:>7.1}s {t3:>7.1}s");
    }
}

fn fig12() {
    println!("== Figure 12: Super High Volume 1 (near neighbour, 100 deg²) vs node count ==");
    println!("-- paper: ~660–800 s, roughly flat (22 chunks spread over the cluster)");
    for nodes in [40, 100, 150] {
        let cfg = SimConfig::paper_cluster().with_nodes(nodes);
        let t = wl::run_single(&cfg, wl::shv1(nodes, 100.0));
        println!("{nodes:>4} nodes: {t:7.1} s");
    }
}

fn fig13() {
    println!("== Figure 13: Super High Volume 2 (Object ⋈ Source, 150 deg²) vs node count ==");
    println!("-- paper: 2.1–5.3 h over three random areas (density-driven variance)");
    for nodes in [40, 100, 150] {
        let cfg = SimConfig::paper_cluster().with_nodes(nodes);
        for density in [0.7, 1.0, 1.8] {
            let t = wl::run_single(&cfg, wl::shv2(nodes, 150.0, density));
            print!("  {:5.2} h", t / 3600.0);
        }
        println!("   ({nodes} nodes; three density factors)");
    }
}

// ---------------------------------------------------------------------------
// Figure 14 — concurrency
// ---------------------------------------------------------------------------

fn fig14() {
    println!("== Figure 14: concurrent execution, 2×HV2 + LV1 stream + LV2 stream (150 nodes) ==");
    println!("-- paper: each HV2 ~2× its solo time (~354 s); early LV queries stuck in worker FIFO queues");
    let solo = wl::run_single(&paper(), wl::hv2(150, 0.65));

    let mut sim = qserv_sim::Simulator::new(paper());
    let mut a = wl::hv2(150, 0.65);
    a.label = "HV2-a".to_string();
    let mut b = wl::hv2(150, 0.65);
    b.label = "HV2-b".to_string();
    b.submit_s = 0.5;
    sim.submit(a);
    sim.submit(b);
    // Low-volume streams: a query every 1 s + think time, as in §6.4.
    for i in 0..15 {
        let mut jobs = wl::lv1(150, 37 + i * 29, Nuisance::default());
        let mut job = jobs.pop().expect("lv1 yields one job");
        job.label = format!("LV1-{i}");
        job.submit_s = 1.0 + i as f64;
        sim.submit(job);
        let mut jobs = wl::lv2(150, 91 + i * 31, Nuisance::default());
        let mut job = jobs.pop().expect("lv2 yields one job");
        job.label = format!("LV2-{i}");
        job.submit_s = 1.5 + i as f64;
        sim.submit(job);
    }
    let reports = sim.run();
    let of = |label: &str| {
        reports
            .iter()
            .find(|r| r.label == label)
            .expect("label exists")
    };
    println!("HV2 solo reference: {solo:.1} s");
    for l in ["HV2-a", "HV2-b"] {
        let r = of(l);
        println!(
            "{l}: submit {:6.1}  first-task {:6.1}  end {:6.1}  elapsed {:6.1} s  ({:.2}× solo)",
            r.submit_s,
            r.first_task_s,
            r.completion_s,
            r.elapsed_s,
            r.elapsed_s / solo
        );
    }
    for stream in ["LV1", "LV2"] {
        print!("{stream} stream elapsed:");
        for i in 0..15 {
            let r = of(&format!("{stream}-{i}"));
            print!(" {:5.1}", r.elapsed_s);
        }
        println!(" s");
    }
}

// ---------------------------------------------------------------------------
// Ablations
// ---------------------------------------------------------------------------

/// Ablation A (§4.3): shared scanning vs independent scans, k concurrent
/// full-scan queries. Shared scanning reads each chunk once for the whole
/// convoy; naive execution scans per query.
fn ablate_shared_scan() {
    println!("== Ablation A: shared scanning (§4.3), k concurrent HV2-class scans, 150 nodes ==");
    println!(
        "-- paper's design claim: many scans in \"little more than the time for a single\" scan"
    );
    println!(
        "{:>2}  {:>10}  {:>10}  {:>7}",
        "k", "naive", "shared", "speedup"
    );
    for k in [1usize, 2, 4, 8] {
        // Naive: k uncached scans in flight at once.
        let mut sim = qserv_sim::Simulator::new(paper());
        for i in 0..k {
            let mut j = wl::hv2(150, 0.0);
            j.label = format!("q{i}");
            sim.submit(j);
        }
        let naive = sim
            .run()
            .iter()
            .map(|r| r.completion_s)
            .fold(0.0f64, f64::max);
        // Shared: one convoy pass reads each chunk once; every resident
        // chunk serves all k queries (k× result volume, k× tiny CPU).
        let mut convoy = wl::hv2(150, 0.0);
        for t in &mut convoy.tasks {
            t.result_bytes *= k as u64;
            t.cpu_s += 0.01 * (k as f64 - 1.0);
        }
        let shared = wl::run_single(&paper(), convoy);
        println!(
            "{k:>2}  {naive:>9.1}s  {shared:>9.1}s  {:>6.2}×",
            naive / shared
        );
    }
    // Real-execution equivalence spot check: the convoy returns the same
    // rows as independent execution, and visits each chunk once.
    let q = qserv_bench::fixtures::bench_cluster();
    let scanner = qserv::sharedscan::SharedScanner::new(&q);
    let queries = [
        qserv_bench::fixtures::queries::HV1,
        qserv_bench::fixtures::queries::HV2,
        qserv_bench::fixtures::queries::HV3,
    ];
    let report = scanner.run(&queries).expect("convoy runs");
    for (sql, shared_result) in queries.iter().zip(&report.results) {
        let solo = q.query(sql).expect("solo runs");
        assert_eq!(
            &solo, shared_result,
            "convoy result must match solo for {sql}"
        );
    }
    println!(
        "real execution: convoy visited {} chunks vs {} naive chunk passes; results identical ✓",
        report.chunk_passes, report.naive_passes
    );
}

/// Ablation B (§4.4): the O(n²) → O(kn) pair reduction from two-level
/// partitioning, measured on real data via candidate-pair counts.
fn ablate_subchunk() {
    println!(
        "== Ablation B: near-neighbour candidate pairs, chunk-level vs subchunk-level (§4.4) =="
    );
    let patch = qserv_bench::fixtures::bench_patch();
    let chunker = qserv::Chunker::test_small();
    use std::collections::HashMap;
    let mut per_chunk: HashMap<i32, u64> = HashMap::new();
    let mut per_subchunk: HashMap<(i32, i32), u64> = HashMap::new();
    for o in &patch.objects {
        let loc = chunker.locate(&qserv_sphgeom::LonLat::from_degrees(o.ra_ps, o.decl_ps));
        *per_chunk.entry(loc.chunk_id).or_default() += 1;
        *per_subchunk
            .entry((loc.chunk_id, loc.subchunk_id))
            .or_default() += 1;
    }
    let n = patch.objects.len() as u64;
    let naive = n * n;
    let chunk_pairs: u64 = per_chunk.values().map(|c| c * c).sum();
    let sub_pairs: u64 = per_subchunk.values().map(|c| c * c).sum();
    println!("objects: {n}");
    println!("naive O(n²) pairs:        {naive:>14}");
    println!(
        "chunk-level join pairs:   {chunk_pairs:>14}  ({:.1}× fewer)",
        naive as f64 / chunk_pairs as f64
    );
    println!(
        "subchunk-level join pairs:{sub_pairs:>14}  ({:.1}× fewer)",
        naive as f64 / sub_pairs as f64
    );
}

/// Ablation C (§7.5): partition-area uniformity, RA/decl stripes vs HTM.
fn ablate_htm() {
    println!("== Ablation C: partition area variation, stripe chunker vs HTM (§7.5) ==");
    let chunker = qserv::Chunker::paper_default();
    let areas = chunker.chunk_areas_deg2();
    let stats = |areas: &[f64]| {
        let max = areas.iter().cloned().fold(0.0f64, f64::max);
        let min = areas.iter().cloned().fold(f64::INFINITY, f64::min);
        let mean = areas.iter().sum::<f64>() / areas.len() as f64;
        (areas.len(), mean, min, max, max / min)
    };
    let (n, mean, min, max, ratio) = stats(&areas);
    println!(
        "stripes (85×12): {n} chunks, mean {mean:.2} deg², min {min:.3}, max {max:.2}, max/min {ratio:.1}"
    );
    // The strawman §7.5 criticizes: a fixed equal-angle RA×decl grid,
    // "problematic due to severe distortion near the poles".
    let mut naive_areas = Vec::new();
    for s in 0..85 {
        let lat0 = -90.0 + s as f64 * (180.0 / 85.0);
        let cell =
            qserv_sphgeom::SphericalBox::from_degrees(0.0, lat0, 180.0 / 85.0, lat0 + 180.0 / 85.0);
        naive_areas.push(cell.area_deg2());
    }
    let (_, mean, min, max, ratio) = stats(&naive_areas);
    println!(
        "naive fixed grid:  85×170 cells, mean {mean:.2} deg², min {min:.3}, max {max:.2}, max/min {ratio:.0}"
    );
    let trixels = qserv_sphgeom::htm::all_trixels(5);
    let sr_to_deg2 = (180.0 / std::f64::consts::PI).powi(2);
    let htm_areas: Vec<f64> = trixels.iter().map(|t| t.area_sr() * sr_to_deg2).collect();
    let (n, mean, min, max, ratio) = stats(&htm_areas);
    println!(
        "HTM level 5:     {n} trixels, mean {mean:.2} deg², min {min:.3}, max {max:.2}, max/min {ratio:.1}"
    );
    println!("-- paper §7.5: the fixed grid distorts near the poles; adaptive stripes and HTM both bound");
    println!("-- the variation, and HTM additionally gives hierarchical integer ids for fine-grained I/O");
}

/// Ablation D (§7.6): single master vs M load-balanced masters, HV1-class
/// dispatch at full scale.
fn ablate_multimaster() {
    println!("== Ablation D: multi-master dispatch (§7.6), full-sky HV1 at 150 nodes ==");
    println!("-- paper: \"launch multiple master instances … load-balance between different Qserv masters\"");
    for masters in [1usize, 2, 4, 8] {
        // M masters dispatch disjoint chunk subsets concurrently: the
        // serial dispatch resource is M× wider.
        let mut cfg = paper();
        cfg.dispatch_s_per_chunk /= masters as f64;
        cfg.merge_s_per_chunk /= masters as f64;
        let t = wl::run_single(&cfg, wl::hv1(150));
        println!("{masters:>2} master(s): {t:6.1} s");
    }
}

/// Ablation E (§7.1): the mysqldump text-transfer overhead the paper
/// calls out, measured on real result tables.
fn ablate_transfer() {
    println!("== Ablation E: mysqldump-style transfer overhead (§5.4, §7.1) ==");
    let q = qserv_bench::fixtures::bench_cluster();
    let (result, stats) = q
        .query_with_stats(qserv_bench::fixtures::queries::HV2)
        .expect("HV2 runs");
    let raw_bytes: u64 = result
        .rows
        .iter()
        .map(|r| r.len() as u64 * 8) // numeric columns, 8 B each raw
        .sum();
    println!(
        "HV2 result: {} rows; dump text {} B vs ~{} B raw binary ({:.1}× inflation)",
        result.num_rows(),
        stats.result_bytes,
        raw_bytes,
        stats.result_bytes as f64 / raw_bytes.max(1) as f64
    );
}

/// Ablation F (§5.4): subchunk-table caching (the paper's workers "are
/// free to drop the tables afterwards … the current implementation does
/// not cache them").
fn ablate_caching() {
    println!("== Ablation F: on-demand subchunk tables, drop vs cache (§5.4) ==");
    let patch = qserv_bench::fixtures::bench_patch();
    for cache in [false, true] {
        let q = qserv::ClusterBuilder::new(4)
            .cache_subchunks(cache)
            .build(&patch.objects, &patch.sources);
        for _ in 0..3 {
            q.query(qserv_bench::fixtures::queries::SHV1)
                .expect("SHV1 runs");
        }
        let built: u64 = q.workers().iter().map(|w| w.stats.snapshot().2).sum();
        println!(
            "cache_subchunks={cache:<5} → {built:>4} table generations over 3 identical SHV1 queries"
        );
    }
}
