//! Proxy streaming / multiplexing / result-cache benchmark.
//!
//! Builds a cluster whose partitioning spreads the catalog over 256+
//! populated chunks, arms a small per-read fabric delay so chunk scans
//! cost realistic wall time, and measures the proxy end to end over
//! real TCP:
//!
//! * **ttfr** — time to first row of a full-table scan, streamed
//!   (`query_stream`, rows arrive as chunks fold) vs buffered
//!   (`query`, rows arrive only with the merged table). The stream's
//!   first batch must land ≥5x sooner than the buffered result.
//! * **concurrency** — 64 client connections of point lookups against
//!   the single-event-loop reactor vs the thread-per-connection
//!   baseline. Reactor throughput must be no worse (within noise).
//! * **cache** — a repeated aggregation against a cache-enabled
//!   service: the hot (replayed) query must run ≥10x faster than the
//!   cold (executed) one.
//!
//! Every measured path is also equivalence-gated: streamed rows must
//! equal buffered rows, cache-on results must equal cache-off results,
//! and a cache replay must be byte-identical to the run that populated
//! it. Results land in `BENCH_proxy.json`.
//!
//! Usage: `proxy_bench [--objects N] [--delay-ms D] [--out PATH]`

use qserv::service::{names, QueryService, ServiceConfig};
use qserv::{CacheOutcome, ClusterBuilder, FabricOp, FaultPlan, Qserv, Value};
use qserv_datagen::generate::{CatalogConfig, Patch};
use qserv_partition::chunker::Chunker;
use qserv_proxy::{ProxyClient, ProxyServer, ResultTable, ServerMode};
use qserv_sphgeom::{Angle, SphericalBox};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Rows keyed and sorted for order-independent comparison: streamed
/// batches fold in chunk-completion order, which is scheduling-
/// dependent, so equivalence is on the row *multiset*, byte-exact.
fn canonical(rows: &[Vec<Value>]) -> Vec<String> {
    let mut keys: Vec<String> = rows
        .iter()
        .map(|r| {
            r.iter()
                .map(qserv_proxy::protocol::encode_value)
                .collect::<Vec<_>>()
                .join("\t")
        })
        .collect();
    keys.sort_unstable();
    keys
}

fn gate(name: &str, ok: bool, detail: String) {
    assert!(ok, "GATE {name} failed: {detail}");
    eprintln!("gate {name:<28} ok   ({detail})");
}

/// A cluster spread over a fine partitioning (16 declination stripes)
/// and a near-full-sky footprint, so a full scan touches well over 256
/// chunks — the scale at which streaming TTFR matters.
fn build_cluster(objects: usize, delay: Duration) -> Arc<Qserv> {
    let cfg = CatalogConfig {
        objects,
        mean_sources_per_object: 1.0,
        seed: 0xbe9c,
        footprint: SphericalBox::from_degrees(0.0, -80.0, 359.9, 80.0),
    };
    let patch = Patch::generate(&cfg);
    let chunker = Chunker::new(16, 4, Angle::from_degrees(0.05)).expect("valid partitioning");
    let qserv = Arc::new(
        ClusterBuilder::new(4)
            .chunker(chunker)
            .fault_plan(FaultPlan::new(0xbe9c))
            .build(&patch.objects, &patch.sources),
    );
    // Every worker read pays a small latency: the stand-in for real
    // per-chunk I/O, and what makes TTFR a meaningful number.
    qserv
        .cluster()
        .faults()
        .delay(None, Some(FabricOp::Read), delay);
    qserv
}

fn service(qserv: &Arc<Qserv>, cache_bytes: u64) -> Arc<QueryService> {
    Arc::new(QueryService::start(
        Arc::clone(qserv),
        ServiceConfig {
            cache_capacity_bytes: cache_bytes,
            ..ServiceConfig::default()
        },
    ))
}

struct TtfrOut {
    streaming_ms: f64,
    buffered_ms: f64,
    total_ms: f64,
    speedup: f64,
    chunks: usize,
    rows: usize,
    batches: usize,
}

/// Full-table scan, streamed vs buffered, plus the row-equivalence gate.
fn bench_ttfr(qserv: &Arc<Qserv>) -> TtfrOut {
    let scan = "SELECT objectId, ra_PS, decl_PS FROM Object";
    let server = ProxyServer::start_with_service(service(qserv, 0), "127.0.0.1:0").expect("bind");
    let mut client = ProxyClient::connect(server.addr()).expect("connect");

    // Buffered baseline: the first row is available only when the whole
    // merged table is, so its TTFR is its total latency.
    let start = Instant::now();
    let (table, stats) = client.query(scan).expect("buffered scan");
    let buffered = start.elapsed();

    let (ttfr, total, streamed, batches, schunks) = {
        let start = Instant::now();
        let mut stream = client.query_stream(scan).expect("streamed scan");
        let mut first = None;
        let mut rows = Vec::new();
        let mut batches = 0usize;
        while let Some(batch) = stream.next_batch().expect("stream healthy") {
            if !batch.rows.is_empty() {
                first.get_or_insert_with(|| start.elapsed());
                batches += 1;
            }
            rows.extend(batch.rows);
        }
        let total = start.elapsed();
        let chunks = stream.stats().expect("END stats").chunks_dispatched;
        (first.expect("rows streamed"), total, rows, batches, chunks)
    };

    gate(
        "chunks_dispatched>=256",
        stats.chunks_dispatched >= 256 && schunks == stats.chunks_dispatched,
        format!("{} chunks", stats.chunks_dispatched),
    );
    gate(
        "stream_equals_buffered",
        canonical(&streamed) == canonical(&table.rows),
        format!("{} rows each way", table.rows.len()),
    );
    let speedup = buffered.as_secs_f64() / ttfr.as_secs_f64();
    gate(
        "ttfr_speedup>=5",
        speedup >= 5.0,
        format!(
            "first rows at {:.1}ms streamed vs {:.1}ms buffered = {speedup:.1}x",
            ttfr.as_secs_f64() * 1e3,
            buffered.as_secs_f64() * 1e3
        ),
    );
    server.shutdown();
    TtfrOut {
        streaming_ms: ttfr.as_secs_f64() * 1e3,
        buffered_ms: buffered.as_secs_f64() * 1e3,
        total_ms: total.as_secs_f64() * 1e3,
        speedup,
        chunks: stats.chunks_dispatched,
        rows: table.rows.len(),
        batches,
    }
}

/// Wall-clock for `conns` connections each running `per_conn` point
/// lookups, all concurrent. Returns queries/second.
fn drive_load(addr: std::net::SocketAddr, conns: usize, per_conn: usize, objects: usize) -> f64 {
    let start = Instant::now();
    crossbeam::thread::scope(|scope| {
        for c in 0..conns {
            scope.spawn(move |_| {
                let mut client = ProxyClient::connect(addr).expect("connect");
                for i in 0..per_conn {
                    // Object ids are 1-based in generation order.
                    let id = (c * per_conn + i) % objects + 1;
                    let sql = format!("SELECT COUNT(*) FROM Object WHERE objectId = {id}");
                    let (t, _) = qserv_proxy::RetryPolicy::seeded(c as u64)
                        .run(|| client.query(&sql))
                        .expect("lookup");
                    assert_eq!(t.scalar().and_then(|v| v.as_i64()), Some(1));
                }
            });
        }
    })
    .expect("load threads");
    (conns * per_conn) as f64 / start.elapsed().as_secs_f64()
}

struct ConcurrencyOut {
    conns: usize,
    per_conn: usize,
    reactor_qps: f64,
    tpc_qps: f64,
    ratio: f64,
}

/// 64-connection point-lookup throughput: reactor vs thread-per-conn.
fn bench_concurrency(qserv: &Arc<Qserv>, objects: usize) -> ConcurrencyOut {
    let (conns, per_conn) = (64, 8);
    let reactor =
        ProxyServer::start_with_service(service(qserv, 0), "127.0.0.1:0").expect("bind reactor");
    let reactor_qps = drive_load(reactor.addr(), conns, per_conn, objects);
    reactor.shutdown();
    let tpc =
        ProxyServer::start_with_mode(service(qserv, 0), "127.0.0.1:0", ServerMode::ThreadPerConn)
            .expect("bind tpc");
    let tpc_qps = drive_load(tpc.addr(), conns, per_conn, objects);
    tpc.shutdown();
    let ratio = reactor_qps / tpc_qps;
    gate(
        "reactor_holds_throughput",
        ratio >= 0.85,
        format!("reactor {reactor_qps:.0} qps vs thread-per-conn {tpc_qps:.0} qps = {ratio:.2}x"),
    );
    ConcurrencyOut {
        conns,
        per_conn,
        reactor_qps,
        tpc_qps,
        ratio,
    }
}

struct CacheOut {
    cold_ms: f64,
    hot_ms: f64,
    speedup: f64,
    hits: u64,
    misses: u64,
}

/// Cold execute vs hot replay of a cacheable aggregation, plus the
/// cache-on/cache-off and replay-identity equivalence gates.
fn bench_cache(qserv: &Arc<Qserv>, baseline: &ResultTable) -> CacheOut {
    let sql = "SELECT chunkId, COUNT(*) FROM Object GROUP BY chunkId";
    let svc = service(qserv, 8 << 20);
    let server = ProxyServer::start_with_service(Arc::clone(&svc), "127.0.0.1:0").expect("bind");
    let mut client = ProxyClient::connect(server.addr()).expect("connect");

    let start = Instant::now();
    let (cold_table, cold_stats) = client.query(sql).expect("cold");
    let cold = start.elapsed();
    assert_eq!(cold_stats.cache, CacheOutcome::Miss, "first run must miss");

    let mut hot = Duration::MAX;
    let mut hot_table = None;
    for _ in 0..5 {
        let start = Instant::now();
        let (t, s) = client.query(sql).expect("hot");
        hot = hot.min(start.elapsed());
        assert_eq!(s.cache, CacheOutcome::Hit, "repeat must hit");
        hot_table.get_or_insert(t);
    }
    let hot_table = hot_table.expect("hot runs happened");

    gate(
        "cache_replay_identical",
        hot_table == cold_table,
        format!("{} group rows", cold_table.rows.len()),
    );
    gate(
        "cache_on_equals_off",
        canonical(&cold_table.rows) == canonical(&baseline.rows)
            && cold_table.columns == baseline.columns,
        format!("{} group rows each way", baseline.rows.len()),
    );
    let speedup = cold.as_secs_f64() / hot.as_secs_f64();
    gate(
        "cache_speedup>=10",
        speedup >= 10.0,
        format!(
            "cold {:.1}ms vs hot {:.3}ms = {speedup:.0}x",
            cold.as_secs_f64() * 1e3,
            hot.as_secs_f64() * 1e3
        ),
    );
    let snap = svc.metrics_snapshot();
    let out = CacheOut {
        cold_ms: cold.as_secs_f64() * 1e3,
        hot_ms: hot.as_secs_f64() * 1e3,
        speedup,
        hits: snap.counter(names::CACHE_HIT),
        misses: snap.counter(names::CACHE_MISS),
    };
    server.shutdown();
    out
}

fn main() {
    let mut objects: usize = 20_000;
    let mut delay_ms: u64 = 2;
    let mut out = "BENCH_proxy.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut grab = |what: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{what} needs a value"))
        };
        match arg.as_str() {
            "--objects" => objects = grab("--objects").parse().expect("integer object count"),
            "--delay-ms" => delay_ms = grab("--delay-ms").parse().expect("integer millis"),
            "--out" => out = grab("--out"),
            other => panic!("unknown argument {other:?} (expected --objects/--delay-ms/--out)"),
        }
    }

    eprintln!("building {objects}-object cluster over a 16-stripe partitioning...");
    let qserv = build_cluster(objects, Duration::from_millis(delay_ms));

    let ttfr = bench_ttfr(&qserv);
    eprintln!(
        "{:<12} streamed first rows {:.1}ms (of {:.1}ms total, {} batches)   \
         buffered {:.1}ms   {:.1}x   ({} chunks, {} rows)",
        "ttfr",
        ttfr.streaming_ms,
        ttfr.total_ms,
        ttfr.batches,
        ttfr.buffered_ms,
        ttfr.speedup,
        ttfr.chunks,
        ttfr.rows
    );

    let conc = bench_concurrency(&qserv, objects);
    eprintln!(
        "{:<12} {} conns x {} lookups   reactor {:.0} qps   thread-per-conn {:.0} qps   {:.2}x",
        "concurrency", conc.conns, conc.per_conn, conc.reactor_qps, conc.tpc_qps, conc.ratio
    );

    // The cache-off oracle for the cache section's equivalence gate.
    let off = service(&qserv, 0);
    let off_server = ProxyServer::start_with_service(off, "127.0.0.1:0").expect("bind");
    let mut off_client = ProxyClient::connect(off_server.addr()).expect("connect");
    let (baseline, base_stats) = off_client
        .query("SELECT chunkId, COUNT(*) FROM Object GROUP BY chunkId")
        .expect("cache-off oracle");
    assert_eq!(base_stats.cache, CacheOutcome::Off);
    off_server.shutdown();

    let cache = bench_cache(&qserv, &baseline);
    eprintln!(
        "{:<12} cold {:.1}ms   hot {:.3}ms   {:.0}x   ({} hits / {} misses)",
        "cache", cache.cold_ms, cache.hot_ms, cache.speedup, cache.hits, cache.misses
    );

    let json = format!(
        "{{\n  \"objects\": {objects},\n  \"read_delay_ms\": {delay_ms},\n  \
         \"chunks\": {},\n  \"ttfr\": {{\"streaming_ms\": {:.3}, \"buffered_ms\": {:.3}, \
         \"stream_total_ms\": {:.3}, \"batches\": {}, \"speedup\": {:.2}}},\n  \
         \"concurrency\": {{\"connections\": {}, \"lookups_per_connection\": {}, \
         \"reactor_qps\": {:.1}, \"thread_per_conn_qps\": {:.1}, \"ratio\": {:.3}}},\n  \
         \"cache\": {{\"cold_ms\": {:.3}, \"hot_ms\": {:.4}, \"speedup\": {:.1}, \
         \"hits\": {}, \"misses\": {}}},\n  \
         \"equivalence\": {{\"stream_equals_buffered\": true, \"cache_on_equals_off\": true, \
         \"cache_replay_identical\": true}}\n}}\n",
        ttfr.chunks,
        ttfr.streaming_ms,
        ttfr.buffered_ms,
        ttfr.total_ms,
        ttfr.batches,
        ttfr.speedup,
        conc.conns,
        conc.per_conn,
        conc.reactor_qps,
        conc.tpc_qps,
        conc.ratio,
        cache.cold_ms,
        cache.hot_ms,
        cache.speedup,
        cache.hits,
        cache.misses
    );
    std::fs::write(&out, json).expect("write benchmark output");
    eprintln!("wrote {out}");
}
