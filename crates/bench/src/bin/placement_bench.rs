//! Placement subsystem benchmark: node-loss repair, latency-aware
//! hot-chunk routing, and cluster-scale rebalancing scenarios.
//!
//! Three gates, each asserted inline (any violation aborts non-zero):
//!
//! 1. **Repair** — on a real in-process cluster at replication 2, a
//!    node is killed permanently while query traffic runs. Repair must
//!    restore the replication factor with *zero* failed queries beyond
//!    transient retries, and post-repair results must be bit-identical
//!    to the pre-loss oracle.
//! 2. **Routing** — a skewed workload against a cluster with one slow
//!    node: latency-aware replica routing (the metrics→dispatch loop)
//!    must beat static routing at the p95.
//! 3. **Scale** — the 150-node simulator: weak scaling must stay flat
//!    under placement routing, rebalancing on must lose no chunks where
//!    rebalancing off does, and on the real cluster query results must
//!    stay bit-identical across membership epochs.
//!
//! Summary goes to `BENCH_placement.json`.
//!
//! Usage: `placement_bench [--out PATH] [--queries N] [--seed N]`

use qserv::{ClusterBuilder, FabricOp, FaultPlan, Qserv, RoutingMode, Value};
use qserv_datagen::generate::{CatalogConfig, Patch};
use qserv_sim::{node_loss_scenario, weak_scaling, SimConfig};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const BATTERY: [&str; 4] = [
    "SELECT COUNT(*) FROM Object",
    "SELECT objectId, ra_PS, decl_PS FROM Object WHERE objectId = 42",
    "SELECT chunkId, COUNT(*) FROM Object GROUP BY chunkId",
    "SELECT COUNT(*) FROM Source",
];

fn sorted_rows(rows: &[Vec<Value>]) -> Vec<Vec<Value>> {
    let mut out = rows.to_vec();
    out.sort_by(|a, b| {
        for (x, y) in a.iter().zip(b.iter()) {
            let o = x.total_cmp(y);
            if o != std::cmp::Ordering::Equal {
                return o;
            }
        }
        std::cmp::Ordering::Equal
    });
    out
}

fn oracle(q: &Qserv) -> Vec<Vec<Vec<Value>>> {
    BATTERY
        .iter()
        .map(|&sql| sorted_rows(&q.query(sql).expect("oracle query").rows))
        .collect()
}

fn percentile_us(latencies: &[u64], p: f64) -> u64 {
    let mut v = latencies.to_vec();
    v.sort_unstable();
    let idx = ((v.len() as f64) * p).ceil() as usize;
    v[idx.saturating_sub(1).min(v.len() - 1)]
}

/// Gate 1: permanent node loss under traffic. Returns JSON fields.
fn run_repair_gate(seed: u64) -> String {
    let patch = Patch::generate(&CatalogConfig::small(800, 17));
    let q = Arc::new(
        ClusterBuilder::new(4)
            .replication(2)
            .fault_plan(FaultPlan::new(seed))
            .build(&patch.objects, &patch.sources),
    );
    let expected = oracle(&q);

    let stop = AtomicBool::new(false);
    let completed = AtomicU64::new(0);
    let (report, traffic) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..3)
            .map(|t| {
                let q = Arc::clone(&q);
                let (stop, completed, expected) = (&stop, &completed, &expected);
                scope.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let sql = BATTERY[t % BATTERY.len()];
                        // Zero failed queries beyond transient retries:
                        // the dispatcher's retry loop absorbs the loss,
                        // so submit() itself must never error.
                        let r = q.query(sql).expect("query failed during node loss");
                        assert_eq!(
                            sorted_rows(&r.rows),
                            expected[t % BATTERY.len()],
                            "result diverged during repair"
                        );
                        completed.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        let report = q.fail_node(1).expect("repair succeeds");
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().expect("traffic thread");
        }
        (report, completed.load(Ordering::Relaxed))
    });

    // Factor restored on live members, nothing lost.
    assert!(report.chunks_lost.is_empty(), "gate 1: chunks lost");
    assert!(report.replicas_created > 0, "gate 1: no repair happened");
    let snap = q.placement();
    for chunk in snap.chunks() {
        let replicas = snap.nodes_of(chunk).expect("chunk mapped");
        assert_eq!(replicas.len(), 2, "gate 1: chunk {chunk} under-replicated");
        for &n in replicas {
            assert!(
                q.workers()[n].holds_chunk(chunk),
                "gate 1: hollow replica on {n}"
            );
        }
    }
    for (i, &sql) in BATTERY.iter().enumerate() {
        let r = q.query(sql).expect("post-repair query");
        assert_eq!(sorted_rows(&r.rows), expected[i], "gate 1: diverged");
    }
    eprintln!(
        "repair   node 1 killed under traffic: {} replicas re-created, \
         {} bytes copied, {} queries completed, 0 failed",
        report.replicas_created, report.bytes_copied, traffic
    );
    format!(
        "\"repair\": {{\"replicas_created\": {}, \"bytes_copied\": {}, \
         \"copy_retries\": {}, \"chunks_lost\": {}, \"epoch\": {}, \
         \"queries_during_loss\": {traffic}, \"failed_queries\": 0}}",
        report.replicas_created,
        report.bytes_copied,
        report.copy_retries,
        report.chunks_lost.len(),
        report.epoch
    )
}

/// Gate 2: latency-aware routing vs static on a cluster whose node 0
/// serves every read slowly. Returns JSON fields.
fn run_routing_gate(queries: usize, seed: u64) -> String {
    let measure = |mode: RoutingMode| -> Vec<u64> {
        let patch = Patch::generate(&CatalogConfig::small(800, 23));
        let q = ClusterBuilder::new(4)
            .replication(2)
            .fault_plan(FaultPlan::new(seed))
            .build(&patch.objects, &patch.sources);
        q.cluster()
            .faults()
            .delay(Some(0), Some(FabricOp::Read), Duration::from_millis(4));
        q.placement_manager().set_routing(mode);
        // The skewed scan: every chunk, every query. Warmup feeds the
        // EWMA loop (and is identical work for both modes, so the
        // comparison stays fair).
        let sql = BATTERY[2];
        for _ in 0..4 {
            q.query(sql).expect("warmup");
        }
        (0..queries)
            .map(|_| {
                let t = Instant::now();
                q.query(sql).expect("routed query");
                t.elapsed().as_micros() as u64
            })
            .collect()
    };

    let static_lat = measure(RoutingMode::Static);
    let aware_lat = measure(RoutingMode::LatencyAware);
    let (s50, s95) = (
        percentile_us(&static_lat, 0.5),
        percentile_us(&static_lat, 0.95),
    );
    let (a50, a95) = (
        percentile_us(&aware_lat, 0.5),
        percentile_us(&aware_lat, 0.95),
    );
    let speedup = s95 as f64 / a95.max(1) as f64;
    eprintln!(
        "routing  {queries} skewed scans, node 0 slow: static p50/p95 \
         {s50}/{s95} us  latency-aware p50/p95 {a50}/{a95} us  p95 {speedup:.2}x better"
    );
    assert!(
        a95 < s95,
        "gate 2: latency-aware p95 ({a95} us) must beat static ({s95} us)"
    );
    format!(
        "\"routing\": {{\"queries\": {queries}, \
         \"static\": {{\"p50_us\": {s50}, \"p95_us\": {s95}}}, \
         \"latency_aware\": {{\"p50_us\": {a50}, \"p95_us\": {a95}}}, \
         \"p95_speedup\": {speedup:.2}}}"
    )
}

/// Gate 3: 150-node simulator scenarios plus real-cluster epoch
/// identity. Returns JSON fields.
fn run_scale_gate() -> String {
    let base = SimConfig::paper_cluster();

    // Weak scaling: per-node data fixed, nodes 30 → 150; the full-scan
    // latency curve must stay flat under placement routing.
    let points = weak_scaling(&base, &[30, 60, 90, 120, 150], 60, 64 << 20);
    let first = points[0].elapsed_s;
    for p in &points {
        assert!(
            p.elapsed_s / first < 1.6,
            "gate 3: weak scaling drifted at {} nodes: {:.1}s vs {:.1}s",
            p.nodes,
            p.elapsed_s,
            first
        );
    }
    let scaling_json = points
        .iter()
        .map(|p| {
            format!(
                "{{\"nodes\": {}, \"chunks\": {}, \"elapsed_s\": {:.2}}}",
                p.nodes, p.chunks, p.elapsed_s
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    eprintln!(
        "scale    weak scaling 30→150 nodes: {:.1}s → {:.1}s (flat)",
        first,
        points.last().unwrap().elapsed_s
    );

    // Node loss at 150 nodes, rebalancing on vs off: repair keeps every
    // chunk available; without it the second loss erases data.
    let on = node_loss_scenario(&base, 150, 60, 64 << 20, true);
    let off = node_loss_scenario(&base, 150, 60, 64 << 20, false);
    assert_eq!(on.chunks_lost, 0, "gate 3: rebalancing on lost chunks");
    assert_eq!(on.factor_one, 0, "gate 3: rebalancing on left factor-1");
    assert!(off.chunks_lost > 0, "gate 3: scenario must show the risk");
    eprintln!(
        "scale    150-node double loss: rebalancing on {} copies 0 lost; \
         off {} chunks lost, {} at factor 1",
        on.repair_copies, off.chunks_lost, off.factor_one
    );

    // Real-cluster epoch identity: the same battery across membership
    // churn must return bit-identical rows at every epoch.
    let patch = Patch::generate(&CatalogConfig::small(600, 29));
    let q = ClusterBuilder::new(3)
        .replication(2)
        .standby_nodes(1)
        .build(&patch.objects, &patch.sources);
    let expected = oracle(&q);
    let mut epochs = vec![q.placement().epoch()];
    q.join_node(3).expect("standby joins");
    epochs.push(q.placement().epoch());
    q.leave_node(3).expect("standby drains");
    epochs.push(q.placement().epoch());
    for &e in &epochs[1..] {
        assert!(e > 0, "gate 3: epochs advanced");
    }
    for (i, &sql) in BATTERY.iter().enumerate() {
        let r = q.query(sql).expect("epoch-identity query");
        assert_eq!(
            sorted_rows(&r.rows),
            expected[i],
            "gate 3: results changed across epochs: {sql}"
        );
    }
    eprintln!("scale    epoch identity: bit-identical battery across epochs {epochs:?}");

    format!(
        "\"scale\": {{\"weak_scaling\": [{scaling_json}], \
         \"node_loss\": {{\"rebalancing_on\": {{\"repair_copies\": {}, \
         \"chunks_lost\": {}, \"after_s\": {:.2}}}, \
         \"rebalancing_off\": {{\"chunks_lost\": {}, \"factor_one\": {}, \
         \"after_s\": {:.2}}}}}, \"epochs_checked\": {:?}}}",
        on.repair_copies,
        on.chunks_lost,
        on.after_s,
        off.chunks_lost,
        off.factor_one,
        off.after_s,
        epochs
    )
}

fn main() {
    let mut out = "BENCH_placement.json".to_string();
    let mut queries: usize = 30;
    let mut seed: u64 = 1;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut grab = |what: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{what} needs a value"))
        };
        match arg.as_str() {
            "--out" => out = grab("--out"),
            "--queries" => queries = grab("--queries").parse().expect("integer query count"),
            "--seed" => seed = grab("--seed").parse().expect("integer seed"),
            other => panic!("unknown argument {other:?} (expected --out/--queries/--seed)"),
        }
    }

    let repair = run_repair_gate(seed);
    let routing = run_routing_gate(queries, seed);
    let scale = run_scale_gate();

    let json = format!("{{\n  \"seed\": {seed},\n  {repair},\n  {routing},\n  {scale}\n}}\n");
    std::fs::write(&out, json).expect("write benchmark output");
    eprintln!("wrote {out}");
}
