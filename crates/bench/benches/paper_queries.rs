//! Criterion benchmarks over the real distributed pipeline: one bench per
//! paper query class (§6.2), on the laptop-scale fixture. Absolute times
//! are not comparable to the 150-node testbed — the *relative* structure
//! (LV ≪ HV1 < HV2, SHV dominated by join work) is what must hold.

use criterion::{criterion_group, criterion_main, Criterion};
use qserv_bench::fixtures::{bench_cluster, queries};
use std::hint::black_box;

fn paper_queries(c: &mut Criterion) {
    let q = bench_cluster();
    let mut g = c.benchmark_group("paper_queries");
    g.sample_size(10);

    g.bench_function("lv1_point_lookup", |b| {
        b.iter(|| black_box(q.query(&queries::lv1(777)).expect("lv1")))
    });
    g.bench_function("lv2_time_series", |b| {
        b.iter(|| black_box(q.query(&queries::lv2(777)).expect("lv2")))
    });
    g.bench_function("lv3_spatial_filter", |b| {
        b.iter(|| black_box(q.query(queries::LV3).expect("lv3")))
    });
    g.bench_function("hv1_full_sky_count", |b| {
        b.iter(|| black_box(q.query(queries::HV1).expect("hv1")))
    });
    g.bench_function("hv2_full_sky_filter", |b| {
        b.iter(|| black_box(q.query(queries::HV2).expect("hv2")))
    });
    g.bench_function("hv3_density_group_by", |b| {
        b.iter(|| black_box(q.query(queries::HV3).expect("hv3")))
    });
    g.bench_function("shv1_near_neighbor", |b| {
        b.iter(|| black_box(q.query(queries::SHV1).expect("shv1")))
    });
    g.bench_function("shv2_displacement_join", |b| {
        b.iter(|| black_box(q.query(queries::SHV2).expect("shv2")))
    });
    g.finish();
}

criterion_group!(benches, paper_queries);
criterion_main!(benches);
