//! Ablation benchmarks of the design choices DESIGN.md calls out, on the
//! real implementation:
//!
//! * shared scanning (§4.3) — convoy vs independent execution;
//! * two-level partitioning (§4.4) — near-neighbour join with vs without
//!   subchunking (coarse chunker as the "without" stand-in);
//! * subchunk caching (§5.4) — repeated near-neighbour queries with the
//!   worker cache on/off;
//! * placement strategy (§4.4) — round-robin vs block placement under a
//!   spatially concentrated workload.

use criterion::{criterion_group, criterion_main, Criterion};
use qserv::sharedscan::SharedScanner;
use qserv::{Chunker, ClusterBuilder, PlacementStrategy};
use qserv_bench::fixtures::{bench_patch, queries};
use qserv_sphgeom::Angle;
use std::hint::black_box;

fn shared_scan(c: &mut Criterion) {
    let q = qserv_bench::fixtures::bench_cluster();
    let batch = [queries::HV1, queries::HV2, queries::HV3];
    let mut g = c.benchmark_group("ablation_shared_scan");
    g.sample_size(10);
    g.bench_function("naive_sequential", |b| {
        b.iter(|| {
            for sql in batch {
                black_box(q.query(sql).expect("query runs"));
            }
        })
    });
    g.bench_function("convoy_shared", |b| {
        let scanner = SharedScanner::new(&q);
        b.iter(|| black_box(scanner.run(&batch).expect("convoy runs")))
    });
    g.finish();
}

fn subchunk_join(c: &mut Criterion) {
    let patch = bench_patch();
    let mut g = c.benchmark_group("ablation_subchunk");
    g.sample_size(10);
    // Fine partitioning: near-neighbour joins run over small subchunks.
    let fine = ClusterBuilder::new(4)
        .chunker(Chunker::new(18, 10, Angle::from_degrees(0.1)).expect("valid"))
        .build(&patch.objects, &patch.sources);
    // Coarse partitioning: one sub-stripe per stripe ⇒ subchunks as big
    // as chunks, i.e. effectively no second level.
    let coarse = ClusterBuilder::new(4)
        .chunker(Chunker::new(18, 1, Angle::from_degrees(0.1)).expect("valid"))
        .build(&patch.objects, &patch.sources);
    let expected = fine.query(queries::SHV1).expect("fine runs");
    assert_eq!(
        expected,
        coarse.query(queries::SHV1).expect("coarse runs"),
        "both partitionings must agree on the answer"
    );
    g.bench_function("with_subchunks_18x10", |b| {
        b.iter(|| black_box(fine.query(queries::SHV1).expect("runs")))
    });
    g.bench_function("without_subchunks_18x1", |b| {
        b.iter(|| black_box(coarse.query(queries::SHV1).expect("runs")))
    });
    g.finish();
}

fn subchunk_caching(c: &mut Criterion) {
    let patch = bench_patch();
    let mut g = c.benchmark_group("ablation_subchunk_cache");
    g.sample_size(10);
    let dropping = ClusterBuilder::new(4).build(&patch.objects, &patch.sources);
    let caching = ClusterBuilder::new(4)
        .cache_subchunks(true)
        .build(&patch.objects, &patch.sources);
    // Warm the cache once so the bench measures steady state.
    caching.query(queries::SHV1).expect("warms");
    g.bench_function("drop_after_query", |b| {
        b.iter(|| black_box(dropping.query(queries::SHV1).expect("runs")))
    });
    g.bench_function("cache_across_queries", |b| {
        b.iter(|| black_box(caching.query(queries::SHV1).expect("runs")))
    });
    g.finish();
}

fn placement(c: &mut Criterion) {
    let patch = bench_patch();
    let mut g = c.benchmark_group("ablation_placement");
    g.sample_size(10);
    let rr = ClusterBuilder::new(4)
        .placement(PlacementStrategy::RoundRobin)
        .build(&patch.objects, &patch.sources);
    let block = ClusterBuilder::new(4)
        .placement(PlacementStrategy::Block)
        .build(&patch.objects, &patch.sources);
    // A spatially concentrated scan: block placement parks all its chunks
    // on one node; round-robin spreads them.
    let sql = "SELECT COUNT(*) FROM Object WHERE qserv_areaspec_box(358.0, -7.0, 5.0, 0.0)";
    g.bench_function("round_robin", |b| {
        b.iter(|| black_box(rr.query(sql).expect("runs")))
    });
    g.bench_function("block", |b| {
        b.iter(|| black_box(block.query(sql).expect("runs")))
    });
    g.finish();
}

criterion_group!(
    benches,
    shared_scan,
    subchunk_join,
    subchunk_caching,
    placement
);
criterion_main!(benches);
