//! Micro-benchmarks of the pipeline's components: the per-chunk costs
//! whose paper-scale equivalents calibrate the simulator (query parsing
//! and rewriting are the frontend's per-chunk dispatch work of §7.1; dump
//! round-trips are the §5.4 transfer path).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use qserv::analysis::analyze;
use qserv::meta::CatalogMeta;
use qserv::rewrite::{build_plan, render_chunk_message};
use qserv::Chunker;
use qserv_engine::dump::{dump_table, load_dump};
use qserv_engine::exec::execute;
use qserv_engine::schema::{ColumnDef, ColumnType, Schema};
use qserv_engine::table::Table;
use qserv_engine::value::Value;
use qserv_sphgeom::{htm, LonLat, SphericalBox};
use qserv_sqlparse::parse_select;
use qserv_xrd::md5_hex;
use std::hint::black_box;

const LV3_SQL: &str = "SELECT COUNT(*) FROM Object \
    WHERE ra_PS BETWEEN 1 AND 2 AND decl_PS BETWEEN 3 AND 4 \
    AND fluxToAbMag(zFlux_PS) BETWEEN 21 AND 21.5 \
    AND fluxToAbMag(gFlux_PS)-fluxToAbMag(rFlux_PS) BETWEEN 0.3 AND 0.4";

fn parsing(c: &mut Criterion) {
    let mut g = c.benchmark_group("frontend");
    g.bench_function("parse_lv3", |b| {
        b.iter(|| black_box(parse_select(LV3_SQL).expect("parses")))
    });
    let meta = CatalogMeta::lsst();
    let stmt = parse_select(LV3_SQL).expect("parses");
    g.bench_function("analyze_and_plan", |b| {
        b.iter(|| {
            let a = analyze(black_box(&stmt), &meta).expect("analyzes");
            black_box(build_plan(&a, &meta).expect("plans"))
        })
    });
    let a = analyze(&stmt, &meta).expect("analyzes");
    let plan = build_plan(&a, &meta).expect("plans");
    // The per-chunk work the master repeats ~9000 times for a full-sky
    // query: render + hash. This is the dispatch_s_per_chunk analogue.
    g.bench_function("render_chunk_message", |b| {
        b.iter(|| {
            let msg = render_chunk_message(&plan, &meta, black_box(4321), &[]);
            black_box(md5_hex(msg.as_bytes()))
        })
    });
    g.finish();
}

fn partitioning(c: &mut Criterion) {
    let mut g = c.benchmark_group("partitioning");
    let chunker = Chunker::paper_default();
    g.bench_function("locate_point", |b| {
        let p = LonLat::from_degrees(123.456, -42.0);
        b.iter(|| black_box(chunker.locate(black_box(&p))))
    });
    g.bench_function("chunks_for_1deg_box", |b| {
        let bx = SphericalBox::from_degrees(100.0, 10.0, 101.0, 11.0);
        b.iter(|| black_box(chunker.chunks_intersecting(black_box(&bx))))
    });
    g.bench_function("chunks_for_full_sky", |b| {
        let bx = SphericalBox::full_sky();
        b.iter(|| black_box(chunker.chunks_intersecting(black_box(&bx))))
    });
    g.bench_function("htm_id_level8", |b| {
        let p = LonLat::from_degrees(123.456, -42.0);
        b.iter(|| black_box(htm::htm_id(black_box(&p), 8)))
    });
    g.finish();
}

fn engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    // A chunk-sized table: 20k rows of (id, ra, decl, flux).
    let mut t = Table::new(Schema::new(vec![
        ColumnDef::new("objectId", ColumnType::Int),
        ColumnDef::new("ra_PS", ColumnType::Float),
        ColumnDef::new("decl_PS", ColumnType::Float),
        ColumnDef::new("zFlux_PS", ColumnType::Float),
    ]));
    for i in 0..20_000i64 {
        t.push_row(vec![
            Value::Int(i),
            Value::Float((i % 360) as f64),
            Value::Float((i % 170) as f64 - 85.0),
            Value::Float(100.0 + (i % 997) as f64),
        ])
        .expect("row fits");
    }
    t.build_index("objectId").expect("indexable");
    let mut db = qserv_engine::db::Database::new();
    db.create_table("Object", t);

    let scan = parse_select("SELECT COUNT(*) FROM Object WHERE fluxToAbMag(zFlux_PS) < 26")
        .expect("parses");
    g.throughput(Throughput::Elements(20_000));
    g.bench_function("filtered_scan_20k_rows", |b| {
        b.iter(|| black_box(execute(&db, black_box(&scan)).expect("scans")))
    });
    let point = parse_select("SELECT * FROM Object WHERE objectId = 12345").expect("parses");
    g.throughput(Throughput::Elements(1));
    g.bench_function("index_point_lookup", |b| {
        b.iter(|| black_box(execute(&db, black_box(&point)).expect("looks up")))
    });
    let agg = parse_select("SELECT ra_PS, COUNT(*), AVG(zFlux_PS) FROM Object GROUP BY ra_PS")
        .expect("parses");
    g.throughput(Throughput::Elements(20_000));
    g.bench_function("group_by_360_groups", |b| {
        b.iter(|| black_box(execute(&db, black_box(&agg)).expect("groups")))
    });
    g.finish();
}

fn transfer(c: &mut Criterion) {
    let mut g = c.benchmark_group("transfer");
    let mut t = Table::new(Schema::new(vec![
        ColumnDef::new("objectId", ColumnType::Int),
        ColumnDef::new("ra", ColumnType::Float),
        ColumnDef::new("decl", ColumnType::Float),
    ]));
    for i in 0..10_000i64 {
        t.push_row(vec![
            Value::Int(i),
            Value::Float(i as f64 * 0.001),
            Value::Float(-i as f64 * 0.0005),
        ])
        .expect("row fits");
    }
    let text = dump_table("result", &t);
    g.throughput(Throughput::Bytes(text.len() as u64));
    g.bench_function("dump_10k_rows", |b| {
        b.iter(|| black_box(dump_table("result", black_box(&t))))
    });
    g.bench_function("load_10k_rows", |b| {
        b.iter(|| black_box(load_dump(black_box(&text)).expect("loads")))
    });
    g.bench_function("md5_result_text", |b| {
        b.iter(|| black_box(md5_hex(black_box(text.as_bytes()))))
    });
    g.finish();
}

criterion_group!(benches, parsing, partitioning, engine, transfer);
criterion_main!(benches);
