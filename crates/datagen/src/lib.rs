//! Synthetic LSST catalog data for the Qserv reproduction.
//!
//! The paper's 30 TB test dataset was built by "spatially replicating the
//! dataset from a recent LSST data challenge ('PT1.1')" (§6.1.2): a
//! spherical patch covering RA 358°–5°, decl −7°–+7°, replicated over the
//! sky with a *non-linear transformation of right ascension as a function
//! of declination* so spatial distance and density are maintained. We have
//! no PT1.1 files (proprietary pipeline outputs), so [`generate`]
//! synthesizes a statistically similar patch — positions uniform on the
//! sphere patch, log-normal fluxes, ~41 time-series sources per object
//! (§6.2 SHV2: "each objectId ... is shared by 41 rows (on average) in
//! Source") — and [`duplicate`] implements the paper's replication
//! transform.
//!
//! [`estimate`] reproduces Table 1 (the final-data-release sizing) from
//! row counts × row widths, the same accounting the paper uses. [`csv`]
//! imports/exports catalogs as delimited text, the on-ramp for real data.

pub mod csv;
pub mod duplicate;
pub mod estimate;
pub mod generate;
pub mod stream;

pub use csv::{objects_from_csv, objects_to_csv, sources_from_csv, sources_to_csv};
pub use duplicate::SkyDuplicator;
pub use estimate::{lsst_final_release, TableEstimate};
pub use generate::{CatalogConfig, ObjectRow, ObjectStream, Patch, RefObjectRow, SourceRow};
pub use stream::{stream_objects_to_file, streamed_object_schema, StreamedFile};
