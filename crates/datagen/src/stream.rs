//! Streaming loads: synthesized rows written straight to on-disk
//! columnar chunk files in bounded memory.
//!
//! The materialized path ([`Patch::generate`] → tables → files) holds the
//! whole catalog in RAM twice. This module instead drains an
//! [`ObjectStream`] through the engine's
//! [`StreamWriter`](qserv_engine::StreamWriter), which buffers only one
//! page stripe (1024 rows by default) before flushing to disk — peak
//! memory is independent of the dataset size, which is what lets a bench
//! query a dataset whose on-disk size exceeds the process's peak RSS.

use crate::generate::{CatalogConfig, ObjectStream, BANDS};
use qserv_engine::schema::{ColumnDef, ColumnType, Schema};
use qserv_engine::value::Value;
use qserv_engine::{StreamWriter, DEFAULT_PAGE_ROWS};
use std::io;
use std::path::Path;

/// The schema of a streamed Object chunk file: the catalog columns only
/// (no chunk bookkeeping — these files are single-segment stores, not
/// spatially partitioned chunks).
pub fn streamed_object_schema() -> Schema {
    let mut cols = vec![
        ColumnDef::new("objectId", ColumnType::Int),
        ColumnDef::new("ra_PS", ColumnType::Float),
        ColumnDef::new("decl_PS", ColumnType::Float),
    ];
    for band in BANDS {
        cols.push(ColumnDef::new(&format!("{band}Flux_PS"), ColumnType::Float));
    }
    cols.push(ColumnDef::new("uFlux_SG", ColumnType::Float));
    cols.push(ColumnDef::new("uRadius_PS", ColumnType::Float));
    Schema::new(cols)
}

/// What a streamed write produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamedFile {
    /// Object rows written.
    pub rows: u64,
    /// Final file size in bytes.
    pub bytes: u64,
}

/// Synthesizes `config.objects` objects and writes them to `path` as one
/// columnar chunk file, never holding more than one page stripe in
/// memory. Rows are bit-identical to `Patch::generate(config).objects`
/// (same RNG stream). The `objectId` column is marked as the file's
/// index column so attached chunks rebuild their point-lookup index.
pub fn stream_objects_to_file(
    config: &CatalogConfig,
    path: &Path,
    page_rows: usize,
) -> io::Result<StreamedFile> {
    let mut w = StreamWriter::create(path, streamed_object_schema(), page_rows)?;
    w.set_index_column("objectId")?;
    for (o, _sources) in ObjectStream::new(config) {
        let mut row = vec![
            Value::Int(o.object_id),
            Value::Float(o.ra_ps),
            Value::Float(o.decl_ps),
        ];
        for f in o.flux_ps {
            row.push(Value::Float(f));
        }
        row.push(Value::Float(o.u_flux_sg));
        row.push(Value::Float(o.u_radius_ps));
        w.push_row(row)?;
    }
    let rows = w.rows_written();
    let bytes = w.finish()?;
    Ok(StreamedFile { rows, bytes })
}

/// [`stream_objects_to_file`] with the engine's default page size.
pub fn stream_objects_to_file_default(
    config: &CatalogConfig,
    path: &Path,
) -> io::Result<StreamedFile> {
    stream_objects_to_file(config, path, DEFAULT_PAGE_ROWS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::Patch;
    use qserv_engine::table::Table;
    use qserv_engine::tables_bit_identical;
    use qserv_engine::ChunkFile;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("qserv-datagen-{}-{name}", std::process::id()));
        p
    }

    /// The streamed file decodes to exactly the table a materialized
    /// patch would build — float bits and all.
    #[test]
    fn streamed_file_matches_materialized_patch_bit_identically() {
        let cfg = CatalogConfig::small(700, 99);
        let path = tmp("stream-match.qchunk");
        let out = stream_objects_to_file(&cfg, &path, 128).unwrap();
        assert_eq!(out.rows, 700);

        let mut expect = Table::new(streamed_object_schema());
        for o in &Patch::generate(&cfg).objects {
            let mut row = vec![
                Value::Int(o.object_id),
                Value::Float(o.ra_ps),
                Value::Float(o.decl_ps),
            ];
            for f in o.flux_ps {
                row.push(Value::Float(f));
            }
            row.push(Value::Float(o.u_flux_sg));
            row.push(Value::Float(o.u_radius_ps));
            expect.push_row(row).unwrap();
        }
        let decoded = ChunkFile::open(&path).unwrap().read_all().unwrap();
        assert!(tables_bit_identical(&decoded, &expect));
        let _ = std::fs::remove_file(&path);
    }

    /// The stream and the materialized generator share one RNG schedule.
    #[test]
    fn object_stream_reproduces_patch_generate() {
        let cfg = CatalogConfig::small(250, 7);
        let p = Patch::generate(&cfg);
        let mut objects = Vec::new();
        let mut sources = Vec::new();
        for (o, s) in ObjectStream::new(&cfg) {
            objects.push(o);
            sources.extend(s);
        }
        assert_eq!(objects, p.objects);
        assert_eq!(sources, p.sources);
    }

    #[test]
    fn streamed_file_reports_real_size() {
        let cfg = CatalogConfig::small(64, 3);
        let path = tmp("stream-size.qchunk");
        let out = stream_objects_to_file_default(&cfg, &path).unwrap();
        assert_eq!(out.bytes, std::fs::metadata(&path).unwrap().len());
        let _ = std::fs::remove_file(&path);
    }
}
