//! PT1.1-like patch synthesis.
//!
//! Generates an Object table (positions + per-band fluxes) and a Source
//! table (per-detection rows: ~41 per object on average, small positional
//! scatter, a time axis) over the PT1.1 footprint. Deterministic for a
//! given seed.

use qserv_sphgeom::SphericalBox;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The six LSST photometric bands, in catalog column order
/// (`uFlux_PS` … `yFlux_PS`).
pub const BANDS: [&str; 6] = ["u", "g", "r", "i", "z", "y"];

/// One row of the Object table (the catalog's per-celestial-object
/// summary).
#[derive(Clone, Debug, PartialEq)]
pub struct ObjectRow {
    /// Unique object identifier.
    pub object_id: i64,
    /// Right ascension of the point-source model, degrees.
    pub ra_ps: f64,
    /// Declination of the point-source model, degrees.
    pub decl_ps: f64,
    /// Point-source fluxes per band (nJy), indexed by [`BANDS`].
    pub flux_ps: [f64; 6],
    /// Small-galaxy model flux in the u band (nJy) — the paper's §5.3
    /// example aggregates `uFlux_SG`.
    pub u_flux_sg: f64,
    /// Point-source radius estimate, degrees (`uRadius_PS` in §5.3).
    pub u_radius_ps: f64,
}

/// One row of the Source table (one detection of one object in one
/// exposure).
#[derive(Clone, Debug, PartialEq)]
pub struct SourceRow {
    /// Unique source identifier.
    pub source_id: i64,
    /// The detected object.
    pub object_id: i64,
    /// Detection right ascension, degrees.
    pub ra: f64,
    /// Detection declination, degrees.
    pub decl: f64,
    /// Mid-exposure time, MJD TAI.
    pub tai_mid_point: f64,
    /// PSF flux of the detection (nJy).
    pub psf_flux: f64,
    /// PSF flux uncertainty (nJy).
    pub psf_flux_err: f64,
}

/// One row of the RefObject table — a second catalog (think an external
/// reference survey over the same sky) used by cross-catalog XMatch.
#[derive(Clone, Debug, PartialEq)]
pub struct RefObjectRow {
    /// Unique reference-object identifier (disjoint from `object_id`).
    pub ref_object_id: i64,
    /// Right ascension, degrees.
    pub ra: f64,
    /// Declination, degrees.
    pub decl: f64,
    /// Calibrated magnitude in the reference band.
    pub mag: f64,
}

/// Parameters for patch synthesis.
#[derive(Clone, Debug)]
pub struct CatalogConfig {
    /// Number of objects to synthesize.
    pub objects: usize,
    /// Mean sources per object (paper: ≈41; smaller in tests).
    pub mean_sources_per_object: f64,
    /// RNG seed: same seed, same catalog.
    pub seed: u64,
    /// Sky footprint (defaults to the PT1.1 patch).
    pub footprint: SphericalBox,
}

impl CatalogConfig {
    /// A small test-sized configuration over the PT1.1 footprint.
    pub fn small(objects: usize, seed: u64) -> CatalogConfig {
        CatalogConfig {
            objects,
            mean_sources_per_object: 5.0,
            seed,
            footprint: pt11_footprint(),
        }
    }
}

/// The PT1.1 footprint: RA 358°–5° (wrapping), decl −7°–+7° (§6.1.2).
pub fn pt11_footprint() -> SphericalBox {
    SphericalBox::from_degrees(358.0, -7.0, 5.0, 7.0)
}

/// A synthesized patch: objects plus their sources.
#[derive(Clone, Debug)]
pub struct Patch {
    /// Object rows.
    pub objects: Vec<ObjectRow>,
    /// Source rows (grouped by object in generation order).
    pub sources: Vec<SourceRow>,
    /// The footprint the rows cover.
    pub footprint: SphericalBox,
}

/// A streaming synthesizer: yields one object (plus its detections) at a
/// time, holding only the RNG state and one object's sources in memory.
/// [`Patch::generate`] drains this same iterator, so the streamed rows
/// are bit-identical to a materialized patch for the same config —
/// that's what lets [`crate::stream`] write datasets far larger than RAM
/// straight to on-disk chunk files.
pub struct ObjectStream {
    rng: SmallRng,
    lon0: f64,
    lon_extent: f64,
    z_lo: f64,
    z_hi: f64,
    mean_sources: f64,
    remaining: usize,
    next_object_id: i64,
    next_source_id: i64,
}

impl ObjectStream {
    /// Starts the stream for `config` (same seed, same rows as
    /// [`Patch::generate`]).
    pub fn new(config: &CatalogConfig) -> ObjectStream {
        let fp = config.footprint;
        ObjectStream {
            rng: SmallRng::seed_from_u64(config.seed),
            lon0: fp.lon_min_deg(),
            lon_extent: fp.lon_extent_deg(),
            z_lo: fp.lat_min_deg().to_radians().sin(),
            z_hi: fp.lat_max_deg().to_radians().sin(),
            mean_sources: config.mean_sources_per_object,
            remaining: config.objects,
            next_object_id: 1,
            next_source_id: 1,
        }
    }
}

impl Iterator for ObjectStream {
    type Item = (ObjectRow, Vec<SourceRow>);

    fn next(&mut self) -> Option<(ObjectRow, Vec<SourceRow>)> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let rng = &mut self.rng;
        let object_id = self.next_object_id;
        self.next_object_id += 1;

        // Uniform on the sphere patch: uniform in (lon, sin lat).
        let ra = (self.lon0 + rng.gen::<f64>() * self.lon_extent).rem_euclid(360.0);
        let z = self.z_lo + rng.gen::<f64>() * (self.z_hi - self.z_lo);
        let decl = z.clamp(-1.0, 1.0).asin().to_degrees();

        // Log-normal-ish fluxes: magnitudes uniform in [18, 27] per
        // band with band-to-band colour scatter, converted to nJy via
        // the engine's zero point (31.4).
        let base_mag = 18.0 + rng.gen::<f64>() * 9.0;
        let mut flux_ps = [0.0; 6];
        for f in flux_ps.iter_mut() {
            let mag = base_mag + rng.gen::<f64>() * 1.2 - 0.6;
            *f = 10f64.powf((31.4 - mag) / 2.5);
        }
        let u_flux_sg = flux_ps[0] * (0.5 + rng.gen::<f64>());
        let u_radius_ps = rng.gen::<f64>() * 0.1;

        // Sources: 1 + Poisson-ish count via a geometric-ish mixture;
        // we use a simple uniform in [1, 2*mean) which preserves the
        // mean and is cheap and deterministic.
        let n_src = 1 + (rng.gen::<f64>() * (2.0 * self.mean_sources - 1.0)) as usize;
        let mut sources = Vec::with_capacity(n_src);
        for k in 0..n_src {
            // Detections scatter within ~0.3 arcsec of the object.
            let scatter = 0.3 / 3600.0;
            let cosd = decl.to_radians().cos().max(1e-6);
            sources.push(SourceRow {
                source_id: self.next_source_id,
                object_id,
                ra: (ra + (rng.gen::<f64>() - 0.5) * 2.0 * scatter / cosd).rem_euclid(360.0),
                decl: (decl + (rng.gen::<f64>() - 0.5) * 2.0 * scatter).clamp(-90.0, 90.0),
                tai_mid_point: 54_600.0 + k as f64 * 3.0 + rng.gen::<f64>(),
                psf_flux: flux_ps[3] * (0.9 + rng.gen::<f64>() * 0.2),
                psf_flux_err: flux_ps[3] * 0.02,
            });
            self.next_source_id += 1;
        }

        Some((
            ObjectRow {
                object_id,
                ra_ps: ra,
                decl_ps: decl,
                flux_ps,
                u_flux_sg,
                u_radius_ps,
            },
            sources,
        ))
    }
}

impl Patch {
    /// Synthesizes a patch from `config` by draining an [`ObjectStream`].
    pub fn generate(config: &CatalogConfig) -> Patch {
        let mut objects = Vec::with_capacity(config.objects);
        let mut sources = Vec::new();
        for (o, srcs) in ObjectStream::new(config) {
            objects.push(o);
            sources.extend(srcs);
        }
        Patch {
            objects,
            sources,
            footprint: config.footprint,
        }
    }

    /// Objects per square degree of the footprint.
    pub fn object_density_per_deg2(&self) -> f64 {
        self.objects.len() as f64 / self.footprint.area_deg2()
    }

    /// Synthesizes a reference catalog (second survey) over this patch's
    /// sky, for cross-catalog XMatch: ~70% of objects get a counterpart
    /// displaced by up to ~10 arcsec, plus ~20% orphan reference objects
    /// with no LSST counterpart. Uses an RNG stream independent of
    /// [`Patch::generate`] (different seed derivation), so adding a
    /// reference catalog never perturbs the Object/Source streams.
    pub fn generate_ref_catalog(&self, seed: u64) -> Vec<RefObjectRow> {
        // Decorrelate from the object-stream seed; `^` alone would map
        // seed 0 onto the golden-ratio constant some callers use.
        let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x5ef0);
        let mut rows = Vec::new();
        let mut next_id: i64 = 100_000;
        for o in &self.objects {
            if rng.gen::<f64>() >= 0.7 {
                continue;
            }
            // Counterpart within ~10 arcsec (0.003°) of the LSST object.
            let scatter = rng.gen::<f64>() * 0.003;
            let angle = rng.gen::<f64>() * std::f64::consts::TAU;
            let cosd = o.decl_ps.to_radians().cos().max(1e-6);
            rows.push(RefObjectRow {
                ref_object_id: next_id,
                ra: (o.ra_ps + scatter * angle.cos() / cosd).rem_euclid(360.0),
                decl: (o.decl_ps + scatter * angle.sin()).clamp(-90.0, 90.0),
                mag: 14.0 + rng.gen::<f64>() * 8.0,
            });
            next_id += 1;
        }
        // Orphans: uniform over the footprint, ~20% of the object count.
        let fp = self.footprint;
        let lon0 = fp.lon_min_deg();
        let lon_extent = fp.lon_extent_deg();
        let (z_lo, z_hi) = (
            fp.lat_min_deg().to_radians().sin(),
            fp.lat_max_deg().to_radians().sin(),
        );
        let orphans = self.objects.len() / 5;
        for _ in 0..orphans {
            let z = z_lo + rng.gen::<f64>() * (z_hi - z_lo);
            rows.push(RefObjectRow {
                ref_object_id: next_id,
                ra: (lon0 + rng.gen::<f64>() * lon_extent).rem_euclid(360.0),
                decl: z.clamp(-1.0, 1.0).asin().to_degrees(),
                mag: 14.0 + rng.gen::<f64>() * 8.0,
            });
            next_id += 1;
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qserv_sphgeom::region::Region;
    use qserv_sphgeom::LonLat;

    #[test]
    fn deterministic_per_seed() {
        let a = Patch::generate(&CatalogConfig::small(100, 42));
        let b = Patch::generate(&CatalogConfig::small(100, 42));
        assert_eq!(a.objects, b.objects);
        assert_eq!(a.sources, b.sources);
        let c = Patch::generate(&CatalogConfig::small(100, 43));
        assert_ne!(a.objects, c.objects);
    }

    #[test]
    fn objects_inside_footprint() {
        let p = Patch::generate(&CatalogConfig::small(500, 1));
        for o in &p.objects {
            assert!(
                p.footprint
                    .contains(&LonLat::from_degrees(o.ra_ps, o.decl_ps)),
                "object at ({}, {}) outside PT1.1 footprint",
                o.ra_ps,
                o.decl_ps
            );
        }
    }

    #[test]
    fn object_ids_unique_and_dense() {
        let p = Patch::generate(&CatalogConfig::small(200, 7));
        let mut ids: Vec<i64> = p.objects.iter().map(|o| o.object_id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 200);
        assert_eq!(*ids.first().unwrap(), 1);
        assert_eq!(*ids.last().unwrap(), 200);
    }

    #[test]
    fn source_multiplicity_near_mean() {
        let cfg = CatalogConfig {
            objects: 2000,
            mean_sources_per_object: 41.0,
            seed: 3,
            footprint: pt11_footprint(),
        };
        let p = Patch::generate(&cfg);
        let ratio = p.sources.len() as f64 / p.objects.len() as f64;
        assert!(
            (35.0..=47.0).contains(&ratio),
            "sources/object ratio {ratio} should be near 41 (paper §6.2)"
        );
    }

    #[test]
    fn sources_reference_valid_objects_and_sit_nearby() {
        let p = Patch::generate(&CatalogConfig::small(100, 5));
        for s in &p.sources {
            let o = &p.objects[(s.object_id - 1) as usize];
            assert_eq!(o.object_id, s.object_id);
            let d = qserv_sphgeom::angular_separation_deg(s.ra, s.decl, o.ra_ps, o.decl_ps);
            assert!(d < 0.001, "source displaced {d} deg from its object");
        }
    }

    #[test]
    fn source_ids_unique() {
        let p = Patch::generate(&CatalogConfig::small(300, 9));
        let mut ids: Vec<i64> = p.sources.iter().map(|s| s.source_id).collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }

    #[test]
    fn ref_catalog_is_deterministic_and_leaves_patch_untouched() {
        let cfg = CatalogConfig::small(150, 42);
        let p = Patch::generate(&cfg);
        let q = Patch::generate(&cfg);
        let a = p.generate_ref_catalog(42);
        let b = q.generate_ref_catalog(42);
        assert_eq!(a, b);
        assert_ne!(a, p.generate_ref_catalog(43));
        // The reference catalog comes from an independent RNG stream:
        // generating it does not change Object/Source rows.
        assert_eq!(p.objects, q.objects);
        assert_eq!(p.sources, q.sources);
    }

    #[test]
    fn ref_catalog_mixes_counterparts_and_orphans() {
        let p = Patch::generate(&CatalogConfig::small(400, 8));
        let refs = p.generate_ref_catalog(8);
        // ~70% counterparts + 20% orphans.
        assert!((refs.len() as f64) > 0.6 * 400.0);
        assert!((refs.len() as f64) < 1.1 * 400.0);
        let near = refs
            .iter()
            .filter(|r| {
                p.objects.iter().any(|o| {
                    qserv_sphgeom::angular_separation_deg(r.ra, r.decl, o.ra_ps, o.decl_ps) <= 0.003
                })
            })
            .count();
        // All counterparts are within the 0.003° scatter; orphans mostly
        // are not (a few may land near an object by chance).
        assert!(near >= refs.len() - 400 / 5);
        let mut ids: Vec<i64> = refs.iter().map(|r| r.ref_object_id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), refs.len(), "ref ids must be unique");
        assert!(ids[0] >= 100_000, "ref ids disjoint from object ids");
    }

    #[test]
    fn fluxes_are_positive_and_plausible() {
        let p = Patch::generate(&CatalogConfig::small(300, 11));
        for o in &p.objects {
            for f in o.flux_ps {
                assert!(f > 0.0);
                let mag = 31.4 - 2.5 * f.log10();
                assert!((16.0..30.0).contains(&mag), "mag {mag} out of range");
            }
        }
    }

    #[test]
    fn density_estimate() {
        let p = Patch::generate(&CatalogConfig::small(980, 2));
        let area = p.footprint.area_deg2();
        assert!((97.0..99.0).contains(&area), "PT1.1 area {area} ~ 98 deg^2");
        assert!((p.object_density_per_deg2() - 10.0).abs() < 0.5);
    }
}
