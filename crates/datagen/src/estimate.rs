//! Table 1 reproduction: final-data-release sizing.
//!
//! The paper's Table 1 estimates the key tables of LSST's last data
//! release from row counts and raw row sizes, "neglecting compression and
//! database overheads". [`lsst_final_release`] encodes those rows;
//! [`TableEstimate::footprint_bytes`] recomputes the footprints, and the
//! figures harness prints computed-vs-quoted side by side.

/// Sizing for one catalog table.
#[derive(Clone, Debug, PartialEq)]
pub struct TableEstimate {
    /// Table name.
    pub name: &'static str,
    /// Estimated row count.
    pub rows: f64,
    /// Raw bytes per row.
    pub row_bytes: f64,
    /// The footprint the paper quotes, in bytes, for comparison.
    pub quoted_footprint_bytes: f64,
}

/// One terabyte (decimal, the unit Table 1 uses).
pub const TB: f64 = 1e12;
/// One petabyte (decimal).
pub const PB: f64 = 1e15;

impl TableEstimate {
    /// Footprint = rows × row bytes (raw storage, Table 1's accounting).
    pub fn footprint_bytes(&self) -> f64 {
        self.rows * self.row_bytes
    }

    /// Relative error between the computed footprint and the paper's
    /// quoted (rounded) figure.
    pub fn quoted_error(&self) -> f64 {
        (self.footprint_bytes() - self.quoted_footprint_bytes).abs() / self.quoted_footprint_bytes
    }
}

/// The three rows of Table 1.
///
/// Row sizes are the paper's ("2kB", "650B", "30B"); quoted footprints are
/// the paper's ("48TB", "1.3PB", "620TB"). The quoted numbers are rounded
/// estimates, so recomputation agrees only to ~10% — the harness prints
/// both and EXPERIMENTS.md discusses the deltas.
pub fn lsst_final_release() -> Vec<TableEstimate> {
    vec![
        TableEstimate {
            name: "Object",
            rows: 26e9,
            row_bytes: 2.0 * 1024.0,
            quoted_footprint_bytes: 48.0 * TB,
        },
        TableEstimate {
            name: "Source",
            rows: 1.8e12,
            row_bytes: 650.0,
            quoted_footprint_bytes: 1.3 * PB,
        },
        TableEstimate {
            name: "ForcedSource",
            rows: 21e12,
            row_bytes: 30.0,
            quoted_footprint_bytes: 620.0 * TB,
        },
    ]
}

/// The paper's test dataset sizing (§6.1.2): 1.7 B-row / 2 TB Object,
/// 55 B-row / 30 TB Source.
pub fn paper_test_dataset() -> Vec<TableEstimate> {
    vec![
        TableEstimate {
            name: "Object (test)",
            rows: 1.7e9,
            // §6.2 HV2 gives the exact on-disk Object footprint:
            // 1.824e12 bytes ⇒ ~1073 B/row.
            row_bytes: 1.824e12 / 1.7e9,
            quoted_footprint_bytes: 2e12,
        },
        TableEstimate {
            name: "Source (test)",
            rows: 55e9,
            row_bytes: 30e12 / 55e9,
            quoted_footprint_bytes: 30e12,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_rows_present() {
        let t = lsst_final_release();
        assert_eq!(t.len(), 3);
        assert_eq!(t[0].name, "Object");
        assert_eq!(t[1].name, "Source");
        assert_eq!(t[2].name, "ForcedSource");
    }

    #[test]
    fn footprints_match_quoted_within_rounding() {
        for t in lsst_final_release() {
            assert!(
                t.quoted_error() < 0.15,
                "{}: computed {:.3e} vs quoted {:.3e} ({}% off)",
                t.name,
                t.footprint_bytes(),
                t.quoted_footprint_bytes,
                (t.quoted_error() * 100.0) as i64
            );
        }
    }

    #[test]
    fn object_footprint_near_48tb() {
        let o = &lsst_final_release()[0];
        let tb = o.footprint_bytes() / TB;
        assert!((44.0..=55.0).contains(&tb), "Object ~48 TB, got {tb}");
    }

    #[test]
    fn source_footprint_near_1_3pb() {
        let s = &lsst_final_release()[1];
        let pb = s.footprint_bytes() / PB;
        assert!((1.0..=1.4).contains(&pb), "Source ~1.3 PB, got {pb}");
    }

    #[test]
    fn forced_source_footprint_near_620tb() {
        let f = &lsst_final_release()[2];
        let tb = f.footprint_bytes() / TB;
        assert!(
            (540.0..=640.0).contains(&tb),
            "ForcedSource ~620 TB, got {tb}"
        );
    }

    #[test]
    fn test_dataset_matches_section_6() {
        let t = paper_test_dataset();
        assert!(t[0].quoted_error() < 0.1);
        assert!(t[1].quoted_error() < 0.01);
        // Source has 50-200x the rows of Object (paper §6.1.2).
        let ratio = t[1].rows / t[0].rows;
        assert!((25.0..=40.0).contains(&ratio), "55e9/1.7e9 ≈ 32x");
    }
}
