//! The sky duplicator.
//!
//! Paper §6.1.2: "This patch was treated as a spherical rectangle and
//! replicated over the sky by transforming duplicate rows' RA and
//! declination columns, taking care to maintain spatial distance and
//! density by a non-linear transformation of right-ascension as a function
//! of declination." That transformation is the key: a patch copied to a
//! higher declination must be *stretched in RA* by `cos(δ_src)/cos(δ_dst)`
//! so angular distances (and hence densities and near-neighbour structure)
//! survive the move.
//!
//! [`SkyDuplicator`] tiles a target region with transformed copies of the
//! source patch and remaps object/source ids so every copy gets a disjoint
//! id range.

use crate::generate::{ObjectRow, Patch, SourceRow};
use qserv_sphgeom::SphericalBox;

/// One placement of the patch on the sky.
#[derive(Clone, Copy, Debug)]
pub struct CopyTransform {
    /// Index of this copy (0 = the original patch location).
    pub copy: usize,
    /// Declination of the copy's band center, degrees.
    pub decl_center: f64,
    /// Declination offset added to rows, degrees.
    pub decl_offset: f64,
    /// RA of the copy's west edge, degrees.
    pub ra_start: f64,
    /// RA stretch factor `cos(δ_src)/cos(δ_dst)` applied to in-patch RA
    /// offsets.
    pub ra_scale: f64,
    /// Id offset added to object and source ids.
    pub id_offset: i64,
}

/// Tiles a declination range of the sky with transformed patch copies.
pub struct SkyDuplicator {
    patch_width_deg: f64,
    patch_height_deg: f64,
    patch_ra0: f64,
    patch_decl0: f64,
}

impl SkyDuplicator {
    /// Creates a duplicator for a patch covering `patch_box`.
    pub fn new(patch_box: &SphericalBox) -> SkyDuplicator {
        SkyDuplicator {
            patch_width_deg: patch_box.lon_extent_deg(),
            patch_height_deg: patch_box.lat_extent_deg(),
            patch_ra0: patch_box.lon_min_deg(),
            patch_decl0: patch_box.lat_min_deg(),
        }
    }

    /// Computes the copy placements tiling declinations
    /// `[decl_min, decl_max]` (the paper clips Source to ±54° for disk
    /// space; Object covers the full sky).
    ///
    /// Rows: one band of copies per patch height. Within a band at center
    /// declination δ, the patch's *effective* width is
    /// `width · cos(δ_src)/cos(δ)`, so the number of copies around the
    /// circle shrinks toward the poles — keeping density constant instead
    /// of piling distorted copies near the poles.
    pub fn copies(&self, decl_min: f64, decl_max: f64) -> Vec<CopyTransform> {
        let mut out = Vec::new();
        let src_center = self.patch_decl0 + self.patch_height_deg / 2.0;
        let cos_src = src_center.to_radians().cos();

        let bands = ((decl_max - decl_min) / self.patch_height_deg).floor() as usize;
        let mut copy = 0usize;
        let mut id_offset: i64 = 0;
        // Large enough to keep every copy's ids disjoint for any
        // realistically sized patch.
        const ID_STRIDE: i64 = 1 << 40;

        for b in 0..bands {
            let band_lo = decl_min + b as f64 * self.patch_height_deg;
            let band_center = band_lo + self.patch_height_deg / 2.0;
            let cos_dst = band_center.to_radians().cos();
            if cos_dst < 1e-3 {
                continue; // skip degenerate polar band
            }
            let ra_scale = cos_src / cos_dst;
            let width_here = self.patch_width_deg * ra_scale;
            let n_copies = (360.0 / width_here).floor().max(1.0) as usize;
            for c in 0..n_copies {
                out.push(CopyTransform {
                    copy,
                    decl_center: band_center,
                    decl_offset: band_lo - self.patch_decl0,
                    ra_start: c as f64 * (360.0 / n_copies as f64),
                    ra_scale,
                    id_offset,
                });
                copy += 1;
                id_offset += ID_STRIDE;
            }
        }
        out
    }

    /// Applies a transform to one object row.
    pub fn transform_object(&self, t: &CopyTransform, o: &ObjectRow) -> ObjectRow {
        let (ra, decl) = self.transform_pos(t, o.ra_ps, o.decl_ps);
        ObjectRow {
            object_id: o.object_id + t.id_offset,
            ra_ps: ra,
            decl_ps: decl,
            ..o.clone()
        }
    }

    /// Applies a transform to one source row.
    pub fn transform_source(&self, t: &CopyTransform, s: &SourceRow) -> SourceRow {
        let (ra, decl) = self.transform_pos(t, s.ra, s.decl);
        SourceRow {
            source_id: s.source_id + t.id_offset,
            object_id: s.object_id + t.id_offset,
            ra,
            decl,
            ..s.clone()
        }
    }

    /// The positional transform: RA offset within the patch is scaled by
    /// `ra_scale`, declination is shifted by a constant.
    fn transform_pos(&self, t: &CopyTransform, ra: f64, decl: f64) -> (f64, f64) {
        // In-patch RA offset, handling the wrap of the source patch.
        let mut d_ra = ra - self.patch_ra0;
        if d_ra < 0.0 {
            d_ra += 360.0;
        }
        let new_ra = (t.ra_start + d_ra * t.ra_scale).rem_euclid(360.0);
        let new_decl = (decl + t.decl_offset).clamp(-90.0, 90.0);
        (new_ra, new_decl)
    }

    /// Materializes the full duplicated Object catalog over
    /// `[decl_min, decl_max]` (convenience for tests and small runs; the
    /// paper-scale harness works with [`SkyDuplicator::copies`] lazily).
    pub fn duplicate_objects(&self, patch: &Patch, decl_min: f64, decl_max: f64) -> Vec<ObjectRow> {
        let mut out = Vec::new();
        for t in self.copies(decl_min, decl_max) {
            for o in &patch.objects {
                out.push(self.transform_object(&t, o));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{pt11_footprint, CatalogConfig};
    use qserv_sphgeom::angular_separation_deg;

    fn duplicator() -> SkyDuplicator {
        SkyDuplicator::new(&pt11_footprint())
    }

    #[test]
    fn full_sky_copy_count_matches_paper_scale() {
        // PT1.1 is ~7°x14°: ~98 deg². Full sphere is 41253 deg², so the
        // duplicator should produce on the order of 41253/98 ≈ 420 copies
        // (fewer: polar bands hold fewer copies and edges are floored).
        let copies = duplicator().copies(-90.0, 90.0);
        assert!(
            (250..=460).contains(&copies.len()),
            "got {} copies",
            copies.len()
        );
    }

    #[test]
    fn band_copy_counts_shrink_toward_poles() {
        let copies = duplicator().copies(-90.0, 90.0);
        let count_at = |decl: f64| {
            copies
                .iter()
                .filter(|c| (c.decl_center - decl).abs() < 7.0)
                .count()
        };
        assert!(count_at(0.0) > count_at(60.0));
        assert!(count_at(60.0) > count_at(80.0));
    }

    #[test]
    fn ra_scale_preserves_distances() {
        // Two objects 0.1 deg apart in RA at the equator must stay
        // ~0.1 deg apart (in arc) after being copied to decl 60.
        let d = duplicator();
        let copies = d.copies(-90.0, 90.0);
        let high = copies
            .iter()
            .find(|c| (55.0..65.0).contains(&c.decl_center))
            .expect("a band near decl 60 exists");
        let a = ObjectRow {
            object_id: 1,
            ra_ps: 0.0,
            decl_ps: 0.0,
            flux_ps: [1.0; 6],
            u_flux_sg: 1.0,
            u_radius_ps: 0.0,
        };
        let mut b = a.clone();
        b.object_id = 2;
        b.ra_ps = 0.1;
        let orig = angular_separation_deg(a.ra_ps, a.decl_ps, b.ra_ps, b.decl_ps);
        let ta = d.transform_object(high, &a);
        let tb = d.transform_object(high, &b);
        let moved = angular_separation_deg(ta.ra_ps, ta.decl_ps, tb.ra_ps, tb.decl_ps);
        assert!(
            (moved - orig).abs() / orig < 0.05,
            "distance {orig} became {moved} after transform"
        );
    }

    #[test]
    fn density_roughly_uniform_across_declination() {
        let patch = Patch::generate(&CatalogConfig::small(2000, 1));
        let d = duplicator();
        let all = d.duplicate_objects(&patch, -60.0, 60.0);
        // Compare density in an equatorial vs a mid-latitude band.
        let density = |lo: f64, hi: f64| {
            let count = all
                .iter()
                .filter(|o| o.decl_ps >= lo && o.decl_ps < hi)
                .count() as f64;
            let area = SphericalBox::from_degrees(0.0, lo, 360.0, hi).area_deg2();
            count / area
        };
        let eq = density(-7.0, 7.0);
        let mid = density(42.0, 56.0);
        assert!(
            (mid - eq).abs() / eq < 0.25,
            "density should be ~uniform: equator {eq}, mid {mid}"
        );
    }

    #[test]
    fn ids_disjoint_across_copies() {
        let patch = Patch::generate(&CatalogConfig::small(50, 2));
        let d = duplicator();
        let all = d.duplicate_objects(&patch, -20.0, 20.0);
        let mut ids: Vec<i64> = all.iter().map(|o| o.object_id).collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n, "duplicated ids must stay unique");
    }

    #[test]
    fn source_transform_follows_object_transform() {
        let patch = Patch::generate(&CatalogConfig::small(20, 3));
        let d = duplicator();
        let copies = d.copies(-90.0, 90.0);
        let t = &copies[copies.len() / 2];
        for s in patch.sources.iter().take(20) {
            let o = &patch.objects[(s.object_id - 1) as usize];
            let to = d.transform_object(t, o);
            let ts = d.transform_source(t, s);
            assert_eq!(ts.object_id, to.object_id);
            let sep = angular_separation_deg(ts.ra, ts.decl, to.ra_ps, to.decl_ps);
            assert!(sep < 0.002, "transformed source strayed {sep} deg");
        }
    }

    #[test]
    fn clipped_declination_range_like_source_table() {
        // The paper clips Source to ±54 deg.
        let copies = duplicator().copies(-54.0, 54.0);
        for c in &copies {
            assert!(c.decl_center > -54.0 && c.decl_center < 54.0);
        }
    }
}
