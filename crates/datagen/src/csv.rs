//! CSV import/export for catalog rows.
//!
//! The original Qserv ingested delimited text dumps of the PT1.1 catalog
//! (its duplicator tooling read and wrote CSV-ish files). This module
//! gives a downstream user the same on-ramp: write a synthesized catalog
//! out, or bring their own objects/sources as CSV and load them into a
//! cluster via `ClusterBuilder`.
//!
//! Format: a header line naming the columns, comma-separated numeric
//! fields, `\N` for NULL (none of our columns are nullable, but the
//! convention is MySQL's). No quoting is needed — all fields are numeric.

use crate::generate::{ObjectRow, SourceRow};
use std::fmt;

/// A malformed CSV line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsvError {
    /// 1-based line number (line 1 is the header).
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "csv error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CsvError {}

/// The Object CSV header.
pub const OBJECT_HEADER: &str = "objectId,ra_PS,decl_PS,uFlux_PS,gFlux_PS,rFlux_PS,iFlux_PS,zFlux_PS,yFlux_PS,uFlux_SG,uRadius_PS";

/// The Source CSV header.
pub const SOURCE_HEADER: &str = "sourceId,objectId,ra,decl,taiMidPoint,psfFlux,psfFluxErr";

/// Serializes object rows as CSV (with header).
pub fn objects_to_csv(objects: &[ObjectRow]) -> String {
    let mut out = String::with_capacity(objects.len() * 96 + OBJECT_HEADER.len() + 1);
    out.push_str(OBJECT_HEADER);
    out.push('\n');
    for o in objects {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{}\n",
            o.object_id,
            o.ra_ps,
            o.decl_ps,
            o.flux_ps[0],
            o.flux_ps[1],
            o.flux_ps[2],
            o.flux_ps[3],
            o.flux_ps[4],
            o.flux_ps[5],
            o.u_flux_sg,
            o.u_radius_ps,
        ));
    }
    out
}

/// Serializes source rows as CSV (with header).
pub fn sources_to_csv(sources: &[SourceRow]) -> String {
    let mut out = String::with_capacity(sources.len() * 64 + SOURCE_HEADER.len() + 1);
    out.push_str(SOURCE_HEADER);
    out.push('\n');
    for s in sources {
        out.push_str(&format!(
            "{},{},{},{},{},{},{}\n",
            s.source_id, s.object_id, s.ra, s.decl, s.tai_mid_point, s.psf_flux, s.psf_flux_err,
        ));
    }
    out
}

fn split_checked(line: &str, expected: usize, lineno: usize) -> Result<Vec<&str>, CsvError> {
    let fields: Vec<&str> = line.split(',').collect();
    if fields.len() != expected {
        return Err(CsvError {
            line: lineno,
            message: format!("expected {expected} fields, got {}", fields.len()),
        });
    }
    Ok(fields)
}

fn parse_f64(field: &str, lineno: usize) -> Result<f64, CsvError> {
    field.trim().parse().map_err(|_| CsvError {
        line: lineno,
        message: format!("bad float {field:?}"),
    })
}

fn parse_i64(field: &str, lineno: usize) -> Result<i64, CsvError> {
    field.trim().parse().map_err(|_| CsvError {
        line: lineno,
        message: format!("bad integer {field:?}"),
    })
}

/// Parses an Object CSV produced by [`objects_to_csv`] (or hand-written
/// with the same header).
pub fn objects_from_csv(text: &str) -> Result<Vec<ObjectRow>, CsvError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, h)) if h.trim() == OBJECT_HEADER => {}
        other => {
            return Err(CsvError {
                line: 1,
                message: format!(
                    "expected header {OBJECT_HEADER:?}, got {:?}",
                    other.map(|(_, h)| h).unwrap_or("")
                ),
            })
        }
    }
    let mut out = Vec::new();
    for (i, line) in lines {
        let lineno = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let f = split_checked(line, 11, lineno)?;
        out.push(ObjectRow {
            object_id: parse_i64(f[0], lineno)?,
            ra_ps: parse_f64(f[1], lineno)?,
            decl_ps: parse_f64(f[2], lineno)?,
            flux_ps: [
                parse_f64(f[3], lineno)?,
                parse_f64(f[4], lineno)?,
                parse_f64(f[5], lineno)?,
                parse_f64(f[6], lineno)?,
                parse_f64(f[7], lineno)?,
                parse_f64(f[8], lineno)?,
            ],
            u_flux_sg: parse_f64(f[9], lineno)?,
            u_radius_ps: parse_f64(f[10], lineno)?,
        });
    }
    Ok(out)
}

/// Parses a Source CSV produced by [`sources_to_csv`].
pub fn sources_from_csv(text: &str) -> Result<Vec<SourceRow>, CsvError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, h)) if h.trim() == SOURCE_HEADER => {}
        other => {
            return Err(CsvError {
                line: 1,
                message: format!(
                    "expected header {SOURCE_HEADER:?}, got {:?}",
                    other.map(|(_, h)| h).unwrap_or("")
                ),
            })
        }
    }
    let mut out = Vec::new();
    for (i, line) in lines {
        let lineno = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let f = split_checked(line, 7, lineno)?;
        out.push(SourceRow {
            source_id: parse_i64(f[0], lineno)?,
            object_id: parse_i64(f[1], lineno)?,
            ra: parse_f64(f[2], lineno)?,
            decl: parse_f64(f[3], lineno)?,
            tai_mid_point: parse_f64(f[4], lineno)?,
            psf_flux: parse_f64(f[5], lineno)?,
            psf_flux_err: parse_f64(f[6], lineno)?,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{CatalogConfig, Patch};

    #[test]
    fn objects_round_trip_exactly() {
        let p = Patch::generate(&CatalogConfig::small(200, 5));
        let text = objects_to_csv(&p.objects);
        let back = objects_from_csv(&text).unwrap();
        // `{}` float formatting round-trips f64 exactly.
        assert_eq!(back, p.objects);
    }

    #[test]
    fn sources_round_trip_exactly() {
        let p = Patch::generate(&CatalogConfig::small(100, 6));
        let text = sources_to_csv(&p.sources);
        let back = sources_from_csv(&text).unwrap();
        assert_eq!(back, p.sources);
    }

    #[test]
    fn empty_catalogs_round_trip() {
        assert!(objects_from_csv(&objects_to_csv(&[])).unwrap().is_empty());
        assert!(sources_from_csv(&sources_to_csv(&[])).unwrap().is_empty());
    }

    #[test]
    fn blank_lines_tolerated() {
        let p = Patch::generate(&CatalogConfig::small(3, 7));
        let mut text = objects_to_csv(&p.objects);
        text.push_str("\n\n");
        assert_eq!(objects_from_csv(&text).unwrap().len(), 3);
    }

    #[test]
    fn header_mismatch_rejected() {
        assert!(objects_from_csv("id,ra\n1,2\n").is_err());
        assert!(sources_from_csv("").is_err());
        // Object header on a source parse and vice versa.
        assert!(sources_from_csv(OBJECT_HEADER).is_err());
        assert!(objects_from_csv(SOURCE_HEADER).is_err());
    }

    #[test]
    fn malformed_lines_carry_line_numbers() {
        let text = format!("{OBJECT_HEADER}\n1,2,3\n");
        let err = objects_from_csv(&text).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("11 fields"));

        let text = format!("{SOURCE_HEADER}\n1,2,x,4,5,6,7\n");
        let err = sources_from_csv(&text).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("bad float"));
    }
}
