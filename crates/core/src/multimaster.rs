//! Multi-master dispatch (paper §7.6).
//!
//! A Qserv instance at full LSST scale "may have a million fragment
//! queries in flight, and … managing millions from a single point is
//! likely to be problematic. One way to distribute the management load is
//! to launch multiple master instances. This is simple and requires no
//! code changes other than some logic in the MySQL proxy to load-balance
//! between different Qserv masters."
//!
//! [`MasterPool`] is exactly that proxy logic: it holds several
//! [`Qserv`] frontends over the *same* worker fleet and routes each
//! incoming query to the next master round-robin. Because workers are
//! stateless request servers (the fabric addresses them by chunk, results
//! by content hash), masters need no coordination — the paper's claim,
//! which the tests verify by running concurrent queries through the pool
//! and comparing against single-master answers.

use crate::error::QservError;
use crate::master::{Qserv, QueryStats, TracedQuery};
use qserv_engine::exec::ResultTable;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A load-balancing pool of master frontends sharing one cluster.
pub struct MasterPool {
    masters: Vec<Arc<Qserv>>,
    next: AtomicUsize,
}

impl MasterPool {
    /// Builds a pool from master instances. All masters must serve the
    /// same cluster (the constructor checks the worker fleet matches).
    ///
    /// # Panics
    /// Panics when `masters` is empty or the masters disagree on the
    /// worker fleet.
    pub fn new(masters: Vec<Arc<Qserv>>) -> MasterPool {
        assert!(
            !masters.is_empty(),
            "a master pool needs at least one master"
        );
        let fleet: Vec<usize> = masters[0].workers().iter().map(|w| w.node_id()).collect();
        for m in &masters[1..] {
            let other: Vec<usize> = m.workers().iter().map(|w| w.node_id()).collect();
            assert_eq!(fleet, other, "all masters must front the same worker fleet");
        }
        MasterPool {
            masters,
            next: AtomicUsize::new(0),
        }
    }

    /// Number of masters in the pool.
    pub fn len(&self) -> usize {
        self.masters.len()
    }

    /// True when the pool is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.masters.is_empty()
    }

    /// The master the next query will use (round-robin), exposed for
    /// tests.
    pub fn next_master(&self) -> &Arc<Qserv> {
        let i = self.next.fetch_add(1, Ordering::Relaxed) % self.masters.len();
        &self.masters[i]
    }

    /// Routes one query to the next master.
    pub fn query(&self, sql: &str) -> Result<ResultTable, QservError> {
        self.next_master().query(sql)
    }

    /// Routes one query, returning stats too.
    pub fn query_with_stats(&self, sql: &str) -> Result<(ResultTable, QueryStats), QservError> {
        self.next_master().query_with_stats(sql)
    }

    /// Routes one query under a fresh trace (see [`Qserv::query_traced`]).
    pub fn query_traced(&self, sql: &str) -> Result<TracedQuery, QservError> {
        self.next_master().query_traced(sql)
    }

    /// Counters of the shared fabric's fault plan (all masters front the
    /// same cluster, so any master's view is the pool's view).
    pub fn fault_stats(&self) -> qserv_xrd::fault::FaultStats {
        self.masters[0].cluster().faults().stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loader::ClusterBuilder;
    use qserv_datagen::generate::{CatalogConfig, Patch};

    fn pool_of(masters: usize) -> (MasterPool, Arc<Qserv>) {
        let patch = Patch::generate(&CatalogConfig::small(300, 81));
        let primary = Arc::new(ClusterBuilder::new(3).build(&patch.objects, &patch.sources));
        // Additional masters share the same fabric, placement, metadata
        // and secondary index — no worker-side state is duplicated.
        let mut ms = vec![Arc::clone(&primary)];
        for _ in 1..masters {
            ms.push(Arc::new(primary.clone_frontend()));
        }
        (MasterPool::new(ms), primary)
    }

    #[test]
    fn pool_answers_match_single_master() {
        let (pool, primary) = pool_of(3);
        assert_eq!(pool.len(), 3);
        for sql in [
            "SELECT COUNT(*) FROM Object",
            "SELECT objectId FROM Object WHERE objectId = 42",
            "SELECT count(*) AS n, chunkId FROM Object GROUP BY chunkId ORDER BY chunkId",
        ] {
            // Several times, so every master in the rotation serves it.
            for _ in 0..3 {
                assert_eq!(
                    pool.query(sql).unwrap(),
                    primary.query(sql).unwrap(),
                    "{sql}"
                );
            }
        }
    }

    #[test]
    fn round_robin_rotates() {
        let (pool, _primary) = pool_of(2);
        let a = Arc::as_ptr(pool.next_master());
        let b = Arc::as_ptr(pool.next_master());
        let c = Arc::as_ptr(pool.next_master());
        assert_ne!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn concurrent_queries_through_pool() {
        let (pool, _primary) = pool_of(4);
        let expected = pool.query("SELECT COUNT(*) FROM Object").unwrap();
        crossbeam::thread::scope(|scope| {
            for _ in 0..8 {
                let pool = &pool;
                let expected = &expected;
                scope.spawn(move |_| {
                    for _ in 0..4 {
                        assert_eq!(
                            &pool.query("SELECT COUNT(*) FROM Object").unwrap(),
                            expected
                        );
                    }
                });
            }
        })
        .expect("no thread panics");
    }

    #[test]
    #[should_panic(expected = "at least one master")]
    fn empty_pool_rejected() {
        MasterPool::new(vec![]);
    }
}
