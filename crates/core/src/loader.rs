//! Cluster construction: partitioning catalog rows onto workers.
//!
//! [`ClusterBuilder`] takes synthesized catalog rows ([`ObjectRow`] /
//! [`SourceRow`]) and materializes a running cluster: per-chunk tables
//! with `chunkId`/`subChunkId` columns and per-chunk objectId indexes
//! (paper §5.5), overlap stores (§4.4), chunk placement over worker nodes
//! (round-robin by default), path exports on the fabric, and the
//! frontend's secondary index.
//!
//! Child-table co-location: Source rows are partitioned by *their
//! object's* position, so a time series lives in exactly the chunk its
//! object owns — "Large tables are partitioned on the same spatial
//! boundaries where possible to enable joining between them" (§5.2).

use crate::master::{Qserv, RetryPolicy};
use crate::meta::{CatalogMeta, ChunkZones, ColumnZone};
use crate::worker::Worker;
use qserv_datagen::generate::{ObjectRow, RefObjectRow, SourceRow};
use qserv_engine::schema::{ColumnDef, ColumnType, Schema};
use qserv_engine::table::Table;
use qserv_engine::value::Value;
use qserv_obs::clock::SharedClock;
use qserv_partition::chunker::Chunker;
use qserv_partition::index::SecondaryIndex;
use qserv_partition::placement::{Placement, PlacementStrategy};
use qserv_sphgeom::{LonLat, SphericalBox};
use qserv_xrd::cluster::{query_path, XrdCluster};
use qserv_xrd::fault::FaultPlan;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// The Object chunk-table schema (a realistic subset of the PT1.1 schema:
/// the columns every evaluation query touches, plus the partitioning
/// bookkeeping columns Qserv appends).
pub fn object_schema() -> Schema {
    let mut cols = vec![
        ColumnDef::new("objectId", ColumnType::Int),
        ColumnDef::new("ra_PS", ColumnType::Float),
        ColumnDef::new("decl_PS", ColumnType::Float),
    ];
    for band in qserv_datagen::generate::BANDS {
        cols.push(ColumnDef::new(&format!("{band}Flux_PS"), ColumnType::Float));
    }
    cols.push(ColumnDef::new("uFlux_SG", ColumnType::Float));
    cols.push(ColumnDef::new("uRadius_PS", ColumnType::Float));
    cols.push(ColumnDef::new("chunkId", ColumnType::Int));
    cols.push(ColumnDef::new("subChunkId", ColumnType::Int));
    Schema::new(cols)
}

/// The Source chunk-table schema.
pub fn source_schema() -> Schema {
    Schema::new(vec![
        ColumnDef::new("sourceId", ColumnType::Int),
        ColumnDef::new("objectId", ColumnType::Int),
        ColumnDef::new("ra", ColumnType::Float),
        ColumnDef::new("decl", ColumnType::Float),
        ColumnDef::new("taiMidPoint", ColumnType::Float),
        ColumnDef::new("psfFlux", ColumnType::Float),
        ColumnDef::new("psfFluxErr", ColumnType::Float),
        ColumnDef::new("chunkId", ColumnType::Int),
        ColumnDef::new("subChunkId", ColumnType::Int),
    ])
}

/// The RefObject chunk-table schema: the second catalog XMatch joins
/// against. Partitioned on (`ra`, `decl`) like any large table.
pub fn ref_object_schema() -> Schema {
    Schema::new(vec![
        ColumnDef::new("refObjectId", ColumnType::Int),
        ColumnDef::new("ra", ColumnType::Float),
        ColumnDef::new("decl", ColumnType::Float),
        ColumnDef::new("mag", ColumnType::Float),
        ColumnDef::new("chunkId", ColumnType::Int),
        ColumnDef::new("subChunkId", ColumnType::Int),
    ])
}

fn ref_object_values(r: &RefObjectRow, chunk: i32, subchunk: i32) -> Vec<Value> {
    vec![
        Value::Int(r.ref_object_id),
        Value::Float(r.ra),
        Value::Float(r.decl),
        Value::Float(r.mag),
        Value::Int(chunk as i64),
        Value::Int(subchunk as i64),
    ]
}

fn object_values(o: &ObjectRow, chunk: i32, subchunk: i32) -> Vec<Value> {
    let mut row = vec![
        Value::Int(o.object_id),
        Value::Float(o.ra_ps),
        Value::Float(o.decl_ps),
    ];
    for f in o.flux_ps {
        row.push(Value::Float(f));
    }
    row.push(Value::Float(o.u_flux_sg));
    row.push(Value::Float(o.u_radius_ps));
    row.push(Value::Int(chunk as i64));
    row.push(Value::Int(subchunk as i64));
    row
}

fn source_values(s: &SourceRow, chunk: i32, subchunk: i32) -> Vec<Value> {
    vec![
        Value::Int(s.source_id),
        Value::Int(s.object_id),
        Value::Float(s.ra),
        Value::Float(s.decl),
        Value::Float(s.tai_mid_point),
        Value::Float(s.psf_flux),
        Value::Float(s.psf_flux_err),
        Value::Int(chunk as i64),
        Value::Int(subchunk as i64),
    ]
}

/// Builds a loaded, query-ready cluster.
pub struct ClusterBuilder {
    chunker: Chunker,
    meta: CatalogMeta,
    nodes: usize,
    standby_nodes: usize,
    replication: usize,
    strategy: PlacementStrategy,
    cache_subchunks: bool,
    faults: Option<FaultPlan>,
    retry: RetryPolicy,
    clock: Option<SharedClock>,
    ref_objects: Vec<RefObjectRow>,
    storage_dir: Option<std::path::PathBuf>,
    storage_page_rows: usize,
}

impl ClusterBuilder {
    /// Defaults: the small test chunker (18 stripes × 10 sub-stripes,
    /// 0.1° overlap), the LSST catalog layout, no replication,
    /// round-robin placement.
    pub fn new(nodes: usize) -> ClusterBuilder {
        assert!(nodes > 0, "a cluster needs at least one node");
        ClusterBuilder {
            chunker: Chunker::test_small(),
            meta: CatalogMeta::lsst(),
            nodes,
            standby_nodes: 0,
            replication: 1,
            strategy: PlacementStrategy::RoundRobin,
            cache_subchunks: false,
            faults: None,
            retry: RetryPolicy::default(),
            clock: None,
            ref_objects: Vec::new(),
            storage_dir: None,
            storage_page_rows: qserv_engine::DEFAULT_PAGE_ROWS,
        }
    }

    /// Stores owned partitioned chunk tables as on-disk columnar chunk
    /// files under `dir` instead of in worker memory: workers attach the
    /// files cold and decode pages lazily through the residency cache,
    /// with zone-map page elision on scans. Replicas of a chunk share one
    /// file. Overlap stores and on-demand subchunk tables stay in-memory.
    pub fn storage_dir(mut self, dir: impl Into<std::path::PathBuf>) -> ClusterBuilder {
        self.storage_dir = Some(dir.into());
        self
    }

    /// Rows per page stripe in the chunk files [`Self::storage_dir`]
    /// writes. The default ([`qserv_engine::DEFAULT_PAGE_ROWS`]) suits
    /// production-sized chunks; tests shrink it so small chunks still
    /// span several row groups and exercise zone-map page elision.
    pub fn storage_page_rows(mut self, rows: usize) -> ClusterBuilder {
        assert!(rows > 0, "a page stores at least one row");
        self.storage_page_rows = rows;
        self
    }

    /// Loads a second catalog (the XMatch reference survey) alongside
    /// Object/Source. RefObject rows are partitioned by their own
    /// position; chunks populated only by reference objects still get
    /// (empty) Object/Source tables so every exported chunk is fully
    /// queryable.
    pub fn ref_objects(mut self, refs: &[RefObjectRow]) -> ClusterBuilder {
        self.ref_objects = refs.to_vec();
        self
    }

    /// Uses a specific partitioning.
    pub fn chunker(mut self, chunker: Chunker) -> ClusterBuilder {
        self.chunker = chunker;
        self
    }

    /// Provisions `extra` standby nodes beyond the initial placement:
    /// their data servers and workers join the fabric empty (no chunks,
    /// no exports) and become targets for
    /// [`Qserv::join_node`](crate::master::Qserv) and rebalancing.
    pub fn standby_nodes(mut self, extra: usize) -> ClusterBuilder {
        self.standby_nodes = extra;
        self
    }

    /// Sets the chunk replication factor.
    pub fn replication(mut self, replication: usize) -> ClusterBuilder {
        self.replication = replication;
        self
    }

    /// Sets the chunk→node placement strategy.
    pub fn placement(mut self, strategy: PlacementStrategy) -> ClusterBuilder {
        self.strategy = strategy;
        self
    }

    /// Makes workers cache on-demand subchunk tables (ablation of §5.4's
    /// "does not cache them").
    pub fn cache_subchunks(mut self, cache: bool) -> ClusterBuilder {
        self.cache_subchunks = cache;
        self
    }

    /// Arms the fabric with a fault plan (chaos testing). The plan's
    /// rules fire on the built cluster's file transactions; its counters
    /// are reachable via `qserv.cluster().faults()`.
    pub fn fault_plan(mut self, plan: FaultPlan) -> ClusterBuilder {
        self.faults = Some(plan);
        self
    }

    /// Sets the master's chunk-dispatch retry policy.
    pub fn retry(mut self, retry: RetryPolicy) -> ClusterBuilder {
        self.retry = retry;
        self
    }

    /// Injects the clock the master (deadlines, backoff, trace
    /// timestamps) and the fault plan (delay faults) wait through.
    /// Pass a [`qserv_obs::VirtualClock`] to make chaos runs advance
    /// virtual time instead of sleeping.
    pub fn clock(mut self, clock: SharedClock) -> ClusterBuilder {
        self.clock = Some(clock);
        self
    }

    /// Partitions `objects` and `sources`, loads workers, and returns the
    /// running frontend.
    pub fn build(self, objects: &[ObjectRow], sources: &[SourceRow]) -> Qserv {
        let chunker = &self.chunker;
        let overlap = chunker.overlap();

        // --- Partition objects (owned + overlap stores) ------------------
        let mut obj_owned: BTreeMap<i32, Vec<Vec<Value>>> = BTreeMap::new();
        let mut obj_overlap: BTreeMap<i32, Vec<Vec<Value>>> = BTreeMap::new();
        let mut obj_loc: HashMap<i64, (f64, f64)> = HashMap::new();
        let mut secondary = SecondaryIndex::new();
        for o in objects {
            let p = LonLat::from_degrees(o.ra_ps, o.decl_ps);
            let loc = chunker.locate(&p);
            obj_owned
                .entry(loc.chunk_id)
                .or_default()
                .push(object_values(o, loc.chunk_id, loc.subchunk_id));
            secondary.insert(o.object_id, loc);
            obj_loc.insert(o.object_id, (o.ra_ps, o.decl_ps));
            // Overlap membership: chunks whose dilated bounds contain p.
            let probe =
                SphericalBox::from_degrees(o.ra_ps, o.decl_ps, o.ra_ps, o.decl_ps).dilated(overlap);
            for c in chunker.chunks_intersecting(&probe) {
                if c != loc.chunk_id && chunker.in_overlap(c, &p).unwrap_or(false) {
                    obj_overlap.entry(c).or_default().push(object_values(
                        o,
                        loc.chunk_id,
                        loc.subchunk_id,
                    ));
                }
            }
        }

        // --- Partition sources, co-located with their objects ------------
        let mut src_owned: BTreeMap<i32, Vec<Vec<Value>>> = BTreeMap::new();
        let mut src_overlap: BTreeMap<i32, Vec<Vec<Value>>> = BTreeMap::new();
        for s in sources {
            let (ra, decl) = obj_loc.get(&s.object_id).copied().unwrap_or((s.ra, s.decl));
            let p = LonLat::from_degrees(ra, decl);
            let loc = chunker.locate(&p);
            src_owned
                .entry(loc.chunk_id)
                .or_default()
                .push(source_values(s, loc.chunk_id, loc.subchunk_id));
            let probe = SphericalBox::from_degrees(ra, decl, ra, decl).dilated(overlap);
            for c in chunker.chunks_intersecting(&probe) {
                if c != loc.chunk_id && chunker.in_overlap(c, &p).unwrap_or(false) {
                    src_overlap.entry(c).or_default().push(source_values(
                        s,
                        loc.chunk_id,
                        loc.subchunk_id,
                    ));
                }
            }
        }

        // --- Partition the reference catalog (XMatch side B) -------------
        let mut ref_owned: BTreeMap<i32, Vec<Vec<Value>>> = BTreeMap::new();
        let mut ref_overlap: BTreeMap<i32, Vec<Vec<Value>>> = BTreeMap::new();
        for r in &self.ref_objects {
            let p = LonLat::from_degrees(r.ra, r.decl);
            let loc = chunker.locate(&p);
            ref_owned
                .entry(loc.chunk_id)
                .or_default()
                .push(ref_object_values(r, loc.chunk_id, loc.subchunk_id));
            let probe = SphericalBox::from_degrees(r.ra, r.decl, r.ra, r.decl).dilated(overlap);
            for c in chunker.chunks_intersecting(&probe) {
                if c != loc.chunk_id && chunker.in_overlap(c, &p).unwrap_or(false) {
                    ref_overlap.entry(c).or_default().push(ref_object_values(
                        r,
                        loc.chunk_id,
                        loc.subchunk_id,
                    ));
                }
            }
        }

        // --- Placement over the populated chunk set ----------------------
        let mut chunks: Vec<i32> = obj_owned
            .keys()
            .chain(src_owned.keys())
            .chain(obj_overlap.keys())
            .chain(src_overlap.keys())
            .chain(ref_owned.keys())
            .chain(ref_overlap.keys())
            .copied()
            .collect();
        chunks.sort_unstable();
        chunks.dedup();
        let placement = Placement::new(&chunks, self.nodes, self.replication, self.strategy);

        // --- Materialize workers over the fabric -------------------------
        // Standby nodes get data servers and plugin-bearing workers like
        // everyone else, but hold no chunks and export no paths until a
        // join/rebalance copies replicas onto them.
        let fleet = self.nodes + self.standby_nodes;
        let cluster = XrdCluster::with_servers_and_faults(
            fleet,
            self.faults.unwrap_or_else(|| FaultPlan::new(0)),
        );
        let mut workers: Vec<Arc<Worker>> = Vec::with_capacity(fleet);
        for node in 0..fleet {
            let mut w = Worker::new(node, chunker.clone(), self.meta.clone());
            w.cache_generated = self.cache_subchunks;
            let w = Arc::new(w);
            cluster.servers()[node].install_plugin(Arc::clone(&w) as Arc<dyn qserv_xrd::OfsPlugin>);
            workers.push(w);
        }

        let build_table = |schema: Schema, rows: Option<&Vec<Vec<Value>>>, index: bool| -> Table {
            let mut t = Table::new(schema);
            if let Some(rows) = rows {
                for r in rows {
                    t.push_row(r.clone()).expect("loader rows match schema");
                }
            }
            if index {
                t.build_index("objectId")
                    .expect("objectId is an int column");
            }
            t
        };

        if let Some(dir) = &self.storage_dir {
            std::fs::create_dir_all(dir).expect("storage dir is creatable");
        }
        let mut zones = ChunkZones::new();
        // Planner statistics, collected at write time from the same
        // owned tables the zone maps come from: per-chunk row counts,
        // per-column valid counts, and distinct values — exact for
        // integer columns (global value sets merged across chunks, so
        // uniqueness of e.g. objectId is *provable*), summed per-chunk
        // (an estimate) for floats.
        let mut stats = crate::meta::TableStats::new();
        let mut col_acc: std::collections::BTreeMap<(String, String), (u64, u64)> =
            std::collections::BTreeMap::new();
        let mut int_sets: std::collections::BTreeMap<
            (String, String),
            std::collections::HashSet<i64>,
        > = std::collections::BTreeMap::new();
        for &chunk in &chunks {
            // Owned tables are built once per chunk; replicas share them
            // (by clone in-memory, by file path on disk).
            let owned: [(&str, Table); 3] = [
                (
                    "Object",
                    build_table(object_schema(), obj_owned.get(&chunk), true),
                ),
                (
                    "Source",
                    build_table(source_schema(), src_owned.get(&chunk), true),
                ),
                (
                    "RefObject",
                    build_table(ref_object_schema(), ref_owned.get(&chunk), false),
                ),
            ];
            // Per-chunk zone maps come from the same owned rows in both
            // storage modes, so the master's chunk elision is identical
            // with or without on-disk chunk files.
            for (name, t) in &owned {
                stats.record_chunk_rows(name, chunk as i64, t.num_rows() as u64);
                for s in qserv_engine::storage::table_column_stats(t) {
                    zones.register(
                        name,
                        chunk as i64,
                        &s.name,
                        ColumnZone {
                            valid: s.valid,
                            min: s.min,
                            max: s.max,
                        },
                    );
                    let acc = col_acc
                        .entry((name.to_string(), s.name.clone()))
                        .or_insert((0, 0));
                    acc.0 += s.valid;
                    acc.1 += s.distinct;
                }
                // Exact global distinct for integer columns: merge the
                // chunk's values into one set per (table, column).
                for (ci, def) in t.schema().columns().iter().enumerate() {
                    if let qserv_engine::table::ColumnSlice::Int(vals) = t.column_slice(ci) {
                        let nulls = t.null_mask(ci);
                        let set = int_sets
                            .entry((name.to_string(), def.name.clone()))
                            .or_default();
                        for (&v, &n) in vals.iter().zip(nulls) {
                            if !n {
                                set.insert(v);
                            }
                        }
                    }
                }
            }
            let paths: Option<Vec<std::path::PathBuf>> = self.storage_dir.as_ref().map(|dir| {
                owned
                    .iter()
                    .map(|(name, t)| {
                        let path = dir.join(format!("{name}_{chunk}.qchunk"));
                        qserv_engine::write_table(&path, t, self.storage_page_rows)
                            .expect("chunk file is writable");
                        path
                    })
                    .collect()
            });
            let overlaps = |name: &str| -> Table {
                match name {
                    "Object" => build_table(object_schema(), obj_overlap.get(&chunk), false),
                    "Source" => build_table(source_schema(), src_overlap.get(&chunk), false),
                    _ => build_table(ref_object_schema(), ref_overlap.get(&chunk), false),
                }
            };
            for &node in placement.nodes_of(chunk).expect("chunk was placed") {
                let worker = &workers[node];
                match &paths {
                    Some(paths) => {
                        for ((name, _), path) in owned.iter().zip(paths) {
                            worker
                                .install_chunk_file(name, chunk, path, overlaps(name))
                                .expect("chunk file attaches");
                        }
                    }
                    None => {
                        for (name, t) in &owned {
                            worker.install_chunk(name, chunk, t.clone(), overlaps(name));
                        }
                    }
                }
                cluster.servers()[node].export(&query_path(chunk));
            }
        }

        let mut qserv = Qserv::assemble(
            cluster,
            self.chunker,
            self.meta,
            placement,
            secondary,
            workers,
        );
        for ((table, column), (valid, distinct_sum)) in col_acc {
            let (distinct, exact) = match int_sets.get(&(table.clone(), column.clone())) {
                Some(set) => (set.len() as u64, true),
                None => (distinct_sum.min(valid), false),
            };
            stats.set_column(
                &table,
                &column,
                crate::meta::ColumnStat {
                    valid,
                    distinct,
                    exact_distinct: exact,
                },
            );
        }
        qserv.set_zones(Arc::new(zones));
        qserv.set_stats(Arc::new(stats));
        qserv.retry = self.retry;
        qserv.storage_dir = self.storage_dir;
        if let Some(clock) = self.clock {
            qserv.set_clock(clock);
        }
        qserv
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qserv_datagen::generate::{CatalogConfig, Patch};

    fn patch() -> Patch {
        Patch::generate(&CatalogConfig::small(300, 55))
    }

    #[test]
    fn every_object_stored_exactly_once_as_owned() {
        let p = patch();
        let q = ClusterBuilder::new(3).build(&p.objects, &p.sources);
        let total = q
            .query("SELECT COUNT(*) FROM Object")
            .expect("count runs")
            .scalar()
            .and_then(|v| v.as_i64())
            .expect("integer count");
        assert_eq!(total as usize, p.objects.len());
    }

    #[test]
    fn border_objects_populate_neighbor_overlap_stores() {
        // Craft an object just inside a chunk's eastern border: it must
        // appear in the eastern neighbour's overlap store.
        let chunker = Chunker::test_small();
        let bounds = chunker
            .chunk_bounds(chunker.locate(&LonLat::from_degrees(15.0, 5.0)).chunk_id)
            .expect("valid chunk");
        let edge_ra = bounds.lon_max_deg() - 0.01; // within 0.1° overlap
        let o = ObjectRow {
            object_id: 1,
            ra_ps: edge_ra,
            decl_ps: 5.0,
            flux_ps: [1.0; 6],
            u_flux_sg: 1.0,
            u_radius_ps: 0.0,
        };
        let q = ClusterBuilder::new(1).build(&[o], &[]);
        let worker = &q.workers()[0];
        let names = worker.table_names();
        // Owned row in its own chunk…
        let own = chunker.locate(&LonLat::from_degrees(edge_ra, 5.0)).chunk_id;
        assert!(names.contains(&format!("Object_{own}")));
        // …and a copy in the neighbouring chunk's overlap store.
        let neighbor = chunker
            .locate(&LonLat::from_degrees(bounds.lon_max_deg() + 0.01, 5.0))
            .chunk_id;
        let overlap_rows = {
            // The overlap table exists and carries exactly this row.
            let msg = format!(
                "-- SUBCHUNKS:\nSELECT COUNT(*) AS c FROM LSST.ObjectUnion_{neighbor} AS o;"
            );
            worker
                .execute_message(neighbor, &msg)
                .expect("union over neighbor")
                .get_by_name(0, "c")
                .and_then(|v| v.as_i64())
                .expect("count")
        };
        assert_eq!(
            overlap_rows, 1,
            "border row must be in the neighbour's overlap"
        );
    }

    #[test]
    fn interior_objects_do_not_leak_into_overlap_stores() {
        // An object at a chunk center is nobody's overlap row.
        let o = ObjectRow {
            object_id: 1,
            ra_ps: 15.0,
            decl_ps: 5.0,
            flux_ps: [1.0; 6],
            u_flux_sg: 1.0,
            u_radius_ps: 0.0,
        };
        let q = ClusterBuilder::new(1).build(&[o], &[]);
        let chunker = Chunker::test_small();
        let own = chunker.locate(&LonLat::from_degrees(15.0, 5.0)).chunk_id;
        // Only the owned chunk was materialized (placement covers
        // populated chunks only), and its overlap store is empty.
        let worker = &q.workers()[0];
        let msg = format!("-- SUBCHUNKS:\nSELECT COUNT(*) AS c FROM LSST.ObjectUnion_{own} AS o;");
        let union_rows = worker
            .execute_message(own, &msg)
            .expect("union executes")
            .get_by_name(0, "c")
            .and_then(|v| v.as_i64())
            .expect("count");
        assert_eq!(union_rows, 1, "union = owned row only, no overlap copies");
    }

    #[test]
    fn sources_colocate_with_their_objects() {
        let p = patch();
        let q = ClusterBuilder::new(4).build(&p.objects, &p.sources);
        let chunker = q.chunker();
        // For a sample of sources: the worker holding the object's chunk
        // must answer the per-object Source query entirely locally.
        for s in p.sources.iter().step_by(97) {
            let o = &p.objects[(s.object_id - 1) as usize];
            let loc = chunker.locate(&LonLat::from_degrees(o.ra_ps, o.decl_ps));
            let (r, stats) = q
                .query_with_stats(&format!(
                    "SELECT sourceId FROM Source WHERE objectId = {}",
                    s.object_id
                ))
                .expect("time series");
            assert_eq!(stats.chunks_dispatched, 1);
            assert!(
                r.rows
                    .iter()
                    .any(|row| row[0].as_i64() == Some(s.source_id)),
                "source {} missing from chunk {}",
                s.source_id,
                loc.chunk_id
            );
        }
    }

    #[test]
    fn schemas_match_datagen_rows() {
        assert!(object_schema().index_of("objectId").is_some());
        assert!(object_schema().index_of("yFlux_PS").is_some());
        assert!(object_schema().index_of("subChunkId").is_some());
        assert_eq!(object_schema().len(), 3 + 6 + 2 + 2);
        assert_eq!(source_schema().len(), 9);
        // A generated row must fit the schema.
        let p = patch();
        let o = &p.objects[0];
        assert_eq!(object_values(o, 1, 2).len(), object_schema().len());
        let s = &p.sources[0];
        assert_eq!(source_values(s, 1, 2).len(), source_schema().len());
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        ClusterBuilder::new(0);
    }
}
