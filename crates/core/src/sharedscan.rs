//! Shared scanning (paper §4.3; "planned for implementation" in §5).
//!
//! With table scans the norm, k concurrent full-scan queries each doing
//! their own pass would randomize disk access. Shared scanning (convoy
//! scheduling) reads the table *once per chunk* and lets every interested
//! query operate on the chunk while it is resident: "results from many
//! full-scan queries can be returned in little more than the time for a
//! single full-scan query."
//!
//! [`SharedScanner`] implements the scheduler the paper planned: it takes
//! a batch of queries, computes each one's chunk set, and walks the
//! *union* of chunks chunk-major, dispatching every query's physical
//! query for a chunk back-to-back so the chunk's data is touched once per
//! convoy pass instead of once per query. Each member keeps one
//! persistent streaming [`Merger`] for the whole convoy: chunk results
//! fold in as the convoy advances (chunk-major order is ascending, so
//! folds are naturally in-order), and a member whose pushed-down LIMIT is
//! satisfied simply stops receiving dispatches while the convoy carries
//! on for the others. Results are identical to running the queries
//! independently (property-tested in `tests/`, including under fault
//! injection in `tests/chaos.rs`). [`ScanReport::chunk_passes`] vs
//! [`ScanReport::naive_passes`] quantifies the saved I/O; the sim-backed
//! ablation bench converts that into seconds.

use crate::error::QservError;
use crate::master::{effective_width, CancelToken, Qserv, QueryStats};
use crate::merge::Merger;
use crate::rewrite::render_chunk_message;
use crate::stats::QueryMetrics;
use parking_lot::Mutex;
use qserv_engine::exec::ResultTable;
use qserv_obs::trace;
use qserv_sqlparse::parse_select;
use std::collections::BTreeSet;

/// Outcome of one convoy run.
#[derive(Clone, Debug)]
pub struct ScanReport {
    /// Per-query results, in input order — identical to what independent
    /// execution would return.
    pub results: Vec<ResultTable>,
    /// Chunks visited by the convoy (each counted once).
    pub chunk_passes: usize,
    /// Chunk visits independent execution would have made
    /// (Σ per-query chunk-set sizes).
    pub naive_passes: usize,
    /// Per-member pipeline statistics, in input order (dispatch counts,
    /// retries, LIMIT-cutoff skips, rows folded).
    pub stats: Vec<QueryStats>,
}

/// Outcome of [`SharedScanner::run_adaptive`]: the planner decided,
/// per member, whether convoy attachment pays off.
#[derive(Clone, Debug)]
pub struct AdaptiveReport {
    /// Per-query results, in input order — identical to what independent
    /// execution would return.
    pub results: Vec<ResultTable>,
    /// Members the planner attached to the convoy (scan-class plans).
    pub attached: usize,
    /// Members that ran independently (interactive plans: index lookups
    /// and small chunk sets a convoy would only delay).
    pub detached: usize,
    /// Chunks visited by the convoy pass (zero when nothing attached).
    pub chunk_passes: usize,
    /// Chunk visits the attached members would have made independently.
    pub naive_passes: usize,
}

/// The convoy scheduler over a running cluster.
pub struct SharedScanner<'q> {
    qserv: &'q Qserv,
}

impl<'q> SharedScanner<'q> {
    /// Creates a scheduler over `qserv`.
    pub fn new(qserv: &'q Qserv) -> SharedScanner<'q> {
        SharedScanner { qserv }
    }

    /// Runs a batch of queries as one convoy.
    pub fn run(&self, queries: &[&str]) -> Result<ScanReport, QservError> {
        // Prepare every query.
        let mut prepared = Vec::with_capacity(queries.len());
        for sql in queries {
            let stmt = parse_select(sql)?;
            if stmt.from.is_empty() {
                return Err(QservError::Analysis(
                    "shared scans need table queries".to_string(),
                ));
            }
            prepared.push(self.qserv.prepare_stmt(&stmt)?);
        }

        // The convoy's chunk ordering: ascending union of all chunk sets.
        let union: BTreeSet<i32> = prepared
            .iter()
            .flat_map(|p| p.chunks.iter().copied())
            .collect();
        let naive_passes: usize = prepared.iter().map(|p| p.chunks.len()).sum();

        // One persistent merger and per-member instrument set. Stats are
        // derived from the instruments when the convoy finishes.
        let mut mergers: Vec<Merger> = prepared.iter().map(|p| Merger::new(&p.plan)).collect();
        let metrics: Vec<QueryMetrics> = prepared
            .iter()
            .map(|p| {
                let qm = QueryMetrics::new();
                qm.used_secondary_index
                    .set(p.analysis.index_ids.is_some() as u64);
                qm.used_spatial_restriction
                    .set(p.analysis.spatial.is_some() as u64);
                qm
            })
            .collect();
        // Next fold sequence per member = how many of its chunks it has
        // consumed; the ascending chunk-major walk keeps each member's
        // own folds in order, so the reorder buffer never fills.
        let mut next_seq: Vec<usize> = vec![0; prepared.len()];
        let started = self.qserv.clock().now();
        // Convoys are not individually killable (yet): members share
        // dispatch, so a per-member token would cancel the whole pass.
        let token = CancelToken::new();

        // Walk chunk-major: all queries touch chunk c while it is "hot".
        // Within a chunk the convoy members are independent physical
        // queries, so they are dispatched from a thread pool; folds are
        // reassembled by query index, keeping per-query chunk order (and
        // thus merged results) identical to sequential execution.
        let mut chunk_passes = 0usize;
        for &chunk in &union {
            // Render + tag sequentially: QID assignment stays
            // deterministic in (chunk, query) order regardless of which
            // dispatcher thread later carries each message. A member
            // whose LIMIT is already satisfied is skipped — the convoy's
            // own LIMIT-cutoff cancellation.
            let mut jobs: Vec<(usize, String)> = Vec::new();
            for (qi, p) in prepared.iter().enumerate() {
                if !p.chunks.contains(&chunk) {
                    continue;
                }
                if mergers[qi].satisfied() {
                    metrics[qi].chunks_skipped_by_limit.inc();
                    continue;
                }
                let subs = self.qserv.subchunks_for(p, chunk);
                let message = self.qserv.tag_message(render_chunk_message(
                    &p.plan,
                    self.qserv.meta(),
                    chunk,
                    &subs,
                ));
                jobs.push((qi, message));
            }
            if jobs.is_empty() {
                continue;
            }
            chunk_passes += 1;

            type MemberOutcome =
                Result<(qserv_engine::table::Table, u64, crate::master::ChunkMeta), QservError>;
            let width = effective_width(self.qserv.dispatch_width, jobs.len());
            let queue = Mutex::new(jobs.into_iter());
            let done: Mutex<Vec<(usize, MemberOutcome)>> = Mutex::new(Vec::new());
            let ctx = trace::current();
            crossbeam::thread::scope(|scope| {
                for _ in 0..width {
                    scope.spawn(|_| {
                        let _tg = ctx.as_ref().map(|c| c.enter());
                        loop {
                            let job = queue.lock().next();
                            let Some((qi, message)) = job else { break };
                            let outcome = self.qserv.dispatch_one(chunk, &message, started, &token);
                            done.lock().push((qi, outcome));
                        }
                    });
                }
            })
            .map_err(|_| QservError::Fabric("convoy dispatcher thread panicked".to_string()))?;

            let mut collected = done.into_inner();
            collected.sort_by_key(|(qi, _)| *qi);
            for (qi, outcome) in collected {
                let (table, bytes, meta) = outcome?;
                let qm = &metrics[qi];
                qm.chunks_dispatched.inc();
                crate::master::record_chunk(qm, bytes, &meta);
                mergers[qi].fold(next_seq[qi], table)?;
                next_seq[qi] += 1;
            }
        }

        // Finish each member's merger and derive its stats view.
        let mut results = Vec::with_capacity(prepared.len());
        let mut stats = Vec::with_capacity(prepared.len());
        for (qi, merger) in mergers.into_iter().enumerate() {
            let qm = &metrics[qi];
            qm.rows_merged.set(merger.rows_folded() as u64);
            qm.peak_buffered_parts
                .set_max(merger.peak_buffered_parts() as u64);
            results.push(merger.finish()?);
            stats.push(qm.stats());
        }
        Ok(ScanReport {
            results,
            chunk_passes,
            naive_passes,
            stats,
        })
    }

    /// Runs a batch with planner-driven attachment: members whose plan
    /// is scan-class ([`crate::planner::PlanChoice::attach_convoy`])
    /// share one convoy pass; interactive members (index lookups, small
    /// chunk sets) run independently so a convoy of unrelated scans
    /// cannot delay them. Results are identical to [`SharedScanner::run`]
    /// either way — attachment is purely a scheduling decision.
    pub fn run_adaptive(&self, queries: &[&str]) -> Result<AdaptiveReport, QservError> {
        let mut attach_idx = Vec::new();
        let mut detach_idx = Vec::new();
        for (i, sql) in queries.iter().enumerate() {
            let stmt = parse_select(sql)?;
            if stmt.from.is_empty() {
                return Err(QservError::Analysis(
                    "shared scans need table queries".to_string(),
                ));
            }
            let p = self.qserv.prepare_stmt(&stmt)?;
            if p.choice.attach_convoy {
                attach_idx.push(i);
            } else {
                detach_idx.push(i);
            }
        }
        let mut results: Vec<Option<ResultTable>> = vec![None; queries.len()];
        let (chunk_passes, naive_passes) = if attach_idx.is_empty() {
            (0, 0)
        } else {
            let batch: Vec<&str> = attach_idx.iter().map(|&i| queries[i]).collect();
            let report = self.run(&batch)?;
            let naive = report.naive_passes;
            let passes = report.chunk_passes;
            for (&slot, table) in attach_idx.iter().zip(report.results) {
                results[slot] = Some(table);
            }
            (passes, naive)
        };
        for &i in &detach_idx {
            results[i] = Some(self.qserv.query(queries[i])?);
        }
        Ok(AdaptiveReport {
            results: results
                .into_iter()
                .map(|r| r.expect("every member resolved"))
                .collect(),
            attached: attach_idx.len(),
            detached: detach_idx.len(),
            chunk_passes,
            naive_passes,
        })
    }
}
