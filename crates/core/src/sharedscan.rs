//! Shared scanning (paper §4.3; "planned for implementation" in §5).
//!
//! With table scans the norm, k concurrent full-scan queries each doing
//! their own pass would randomize disk access. Shared scanning (convoy
//! scheduling) reads the table *once per chunk* and lets every interested
//! query operate on the chunk while it is resident: "results from many
//! full-scan queries can be returned in little more than the time for a
//! single full-scan query."
//!
//! [`SharedScanner`] implements the scheduler the paper planned: it takes
//! a batch of queries, computes each one's chunk set, and walks the
//! *union* of chunks chunk-major, dispatching every query's physical
//! query for a chunk back-to-back so the chunk's data is touched once per
//! convoy pass instead of once per query. Results are merged per query at
//! the end and are identical to running the queries independently
//! (property-tested in `tests/`). [`ScanReport::chunk_passes`] vs
//! [`ScanReport::naive_passes`] quantifies the saved I/O; the sim-backed
//! ablation bench converts that into seconds.

use crate::error::QservError;
use crate::master::{Qserv, QueryStats};
use crate::rewrite::render_chunk_message;
use parking_lot::Mutex;
use qserv_engine::exec::ResultTable;
use qserv_sqlparse::parse_select;
use std::collections::BTreeSet;

/// Outcome of one convoy run.
#[derive(Clone, Debug)]
pub struct ScanReport {
    /// Per-query results, in input order — identical to what independent
    /// execution would return.
    pub results: Vec<ResultTable>,
    /// Chunks visited by the convoy (each counted once).
    pub chunk_passes: usize,
    /// Chunk visits independent execution would have made
    /// (Σ per-query chunk-set sizes).
    pub naive_passes: usize,
}

/// The convoy scheduler over a running cluster.
pub struct SharedScanner<'q> {
    qserv: &'q Qserv,
}

impl<'q> SharedScanner<'q> {
    /// Creates a scheduler over `qserv`.
    pub fn new(qserv: &'q Qserv) -> SharedScanner<'q> {
        SharedScanner { qserv }
    }

    /// Runs a batch of queries as one convoy.
    pub fn run(&self, queries: &[&str]) -> Result<ScanReport, QservError> {
        // Prepare every query.
        let mut prepared = Vec::with_capacity(queries.len());
        for sql in queries {
            let stmt = parse_select(sql)?;
            if stmt.from.is_empty() {
                return Err(QservError::Analysis(
                    "shared scans need table queries".to_string(),
                ));
            }
            prepared.push(self.qserv.prepare_stmt(&stmt)?);
        }

        // The convoy's chunk ordering: ascending union of all chunk sets.
        let union: BTreeSet<i32> = prepared
            .iter()
            .flat_map(|p| p.chunks.iter().copied())
            .collect();
        let naive_passes: usize = prepared.iter().map(|p| p.chunks.len()).sum();

        // Walk chunk-major: all queries touch chunk c while it is "hot".
        // Within a chunk the convoy members are independent physical
        // queries, so they are dispatched from a thread pool; results are
        // reassembled by query index, keeping per-query chunk order (and
        // thus merged results) identical to sequential execution.
        let mut parts: Vec<Vec<qserv_engine::table::Table>> =
            (0..prepared.len()).map(|_| Vec::new()).collect();
        for &chunk in &union {
            // Render + tag sequentially: QID assignment stays
            // deterministic in (chunk, query) order regardless of which
            // dispatcher thread later carries each message.
            let jobs: Vec<(usize, String)> = prepared
                .iter()
                .enumerate()
                .filter(|(_, p)| p.chunks.contains(&chunk))
                .map(|(qi, p)| {
                    let subs = self.qserv.subchunks_for(p, chunk);
                    let message = self.qserv.tag_message(render_chunk_message(
                        &p.plan,
                        self.qserv.meta(),
                        chunk,
                        &subs,
                    ));
                    (qi, message)
                })
                .collect();

            type MemberOutcome = Result<(qserv_engine::table::Table, u64), QservError>;
            let width = self.qserv.dispatch_width.max(1).min(jobs.len().max(1));
            let queue = Mutex::new(jobs.into_iter());
            let done: Mutex<Vec<(usize, MemberOutcome)>> = Mutex::new(Vec::new());
            crossbeam::thread::scope(|scope| {
                for _ in 0..width {
                    scope.spawn(|_| loop {
                        let job = queue.lock().next();
                        let Some((qi, message)) = job else { break };
                        let outcome = self.dispatch(chunk, &message);
                        done.lock().push((qi, outcome));
                    });
                }
            })
            .map_err(|_| QservError::Fabric("convoy dispatcher thread panicked".to_string()))?;

            let mut collected = done.into_inner();
            collected.sort_by_key(|(qi, _)| *qi);
            for (qi, outcome) in collected {
                let (table, _bytes) = outcome?;
                parts[qi].push(table);
            }
        }

        // Merge per query.
        let mut results = Vec::with_capacity(prepared.len());
        for (p, tables) in prepared.iter().zip(parts) {
            let mut stats = QueryStats::default();
            results.push(self.qserv.merge(&p.plan, tables, &mut stats)?);
        }
        Ok(ScanReport {
            results,
            chunk_passes: union.len(),
            naive_passes,
        })
    }

    fn dispatch(
        &self,
        chunk: i32,
        message: &str,
    ) -> Result<(qserv_engine::table::Table, u64), QservError> {
        use qserv_xrd::cluster::{query_path, result_path};
        use qserv_xrd::md5_hex;
        let cluster = self.qserv.cluster();
        let worker = cluster.write_file(&query_path(chunk), message.as_bytes().to_vec())?;
        let rp = result_path(&md5_hex(message.as_bytes()));
        let payload = cluster.read_file(worker, &rp)?;
        cluster.unlink(worker, &rp)?;
        let text = std::str::from_utf8(&payload)
            .map_err(|_| QservError::Fabric("result not UTF-8".to_string()))?;
        if let Some(err) = text.strip_prefix("ERROR:") {
            return Err(QservError::Worker {
                chunk,
                message: err.trim().to_string(),
            });
        }
        let (_, table) =
            qserv_engine::dump::load_dump(text).map_err(|e| QservError::Merge(e.to_string()))?;
        Ok((table, payload.len() as u64))
    }
}
