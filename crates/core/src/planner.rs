//! Cost-based query planning.
//!
//! The paper's workload mix — interactive objectId lookups against
//! full-sky scans (§2, §6) — is exactly where a wrong access-path
//! choice costs orders of magnitude, and "Designing a Multi-petabyte
//! Database for LSST" motivates statistics-driven planning at this
//! scale. This module is the frontend's small cost model, fed by the
//! statistics the loader registers into [`crate::meta`]:
//!
//! * per-chunk **zone maps** ([`ChunkZones`]: column min/max per chunk),
//! * per-chunk **row counts** and per-column **distinct-value counts**
//!   ([`TableStats`]), collected at load time by
//!   [`qserv_engine::storage::table_column_stats`].
//!
//! It makes four decisions for a prepared query:
//!
//! 1. **Selectivity estimation per WHERE conjunct** with filter
//!    reordering: conjuncts are ranked by `(1 − selectivity) / cost`
//!    (drop rate per unit of evaluation work) and the chunk query's
//!    WHERE clause is rebuilt in that order. Pure conjuncts commute, so
//!    any order is semantics-preserving; the property battery in
//!    `tests/planner_oracle.rs` pins that.
//! 2. **Index-vs-scan** for the chunk set: when an objectId point/IN
//!    predicate is present, compare the cost of dispatching only the
//!    secondary index's chunks against the zone-pruned full scan.
//! 3. **ORDER BY + LIMIT top-n pushdown**: when statistics *prove* an
//!    ORDER BY column is a unique NULL-free key (exact distinct ==
//!    valid == rows), ties are impossible, the order is total, and each
//!    chunk's local top-n is a superset of its contribution to the
//!    global top-n — so the ORDER BY and LIMIT are pushed into the
//!    chunk query and the merge re-sorts a bounded set. Without the
//!    uniqueness proof the pushdown is skipped: a tied key could make
//!    different plans pick different (all correct, not bit-identical)
//!    prefixes.
//! 4. **Shared-scan convoy attachment** and the admission estimate: a
//!    full-scan plan over more chunks than the interactive threshold is
//!    marked for convoy attachment, and the costed chunk-elision result
//!    (the planned chunk count) is what the service's interactive/scan
//!    classification consumes.
//!
//! With no statistics registered (clusters assembled without the
//! loader), the planner degrades to the previous rule-based behavior:
//! index when available, no reordering, no pushdown.
//!
//! [`PlanOverride`] forces individual decisions — the plan-equivalence
//! test battery executes a query under every override combination and
//! asserts bit-identical results against the single-node oracle.

use crate::analysis::{zone_restrictions, Analysis, JoinClass};
use crate::meta::{ChunkZones, TableStats};
use crate::rewrite::{MergeShape, PhysicalPlan};
use qserv_sqlparse::ast::{BinaryOp, Expr, Literal};

/// Dispatch overhead per chunk, in cost units. Dominates at paper scale
/// — "table-scanning being the norm" (§4.3) is about chunk volume, not
/// per-row CPU.
const COST_PER_CHUNK: f64 = 1000.0;
/// Secondary-index probe cost per key.
const COST_PER_PROBE: f64 = 10.0;
/// Per-row weight of one unit of predicate-evaluation cost.
const COST_PER_ROW_EVAL: f64 = 0.01;
/// Per-row weight of materializing an output row into the merge.
const COST_PER_ROW_OUT: f64 = 0.05;
/// Selectivity assumed for conjuncts the estimator cannot model.
const DEFAULT_SEL: f64 = 0.33;
/// Selectivity assumed for a range over a column with no zone info.
const DEFAULT_RANGE_SEL: f64 = 0.3;
/// Selectivity assumed for an equality over a column with no distinct
/// count.
const DEFAULT_EQ_SEL: f64 = 0.1;
/// Chunk-count threshold between interactive and scan classification
/// (mirrors the service's default admission threshold).
pub const DEFAULT_INTERACTIVE_CHUNKS: usize = 8;

/// Forces individual planner decisions — the hook the plan-equivalence
/// battery uses to execute every enumerable plan of a query. `None`
/// fields leave the decision to the cost model. Overrides only select
/// among *sound* plans: `push_topn: Some(true)` still requires the
/// uniqueness proof, it just re-enables a pushdown the cost model might
/// skip.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanOverride {
    /// Force the secondary-index chunk narrowing on (`Some(true)`, kept
    /// only when an index predicate exists) or off (`Some(false)`).
    pub use_index: Option<bool>,
    /// Force ORDER BY + LIMIT pushdown off (`Some(false)`); `Some(true)`
    /// allows it whenever sound.
    pub push_topn: Option<bool>,
    /// Force predicate reordering off (`Some(false)`) or allow it
    /// (`Some(true)`).
    pub reorder: Option<bool>,
}

impl PlanOverride {
    /// Every combination of forced decisions — the plan lattice the
    /// oracle battery executes. 8 entries (2³).
    pub fn enumerate() -> Vec<PlanOverride> {
        let mut out = Vec::with_capacity(8);
        for &use_index in &[false, true] {
            for &push_topn in &[false, true] {
                for &reorder in &[false, true] {
                    out.push(PlanOverride {
                        use_index: Some(use_index),
                        push_topn: Some(push_topn),
                        reorder: Some(reorder),
                    });
                }
            }
        }
        out
    }
}

/// The chosen access path for the chunk set.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AccessPath {
    /// Dispatch only the chunks the secondary index maps the point/IN
    /// keys to.
    IndexLookup {
        /// Number of lookup keys.
        keys: usize,
    },
    /// Dispatch the (zone-pruned) spatial chunk set.
    #[default]
    FullScan,
}

/// One WHERE conjunct's estimate, in the order the plan evaluates them.
#[derive(Clone, Debug, PartialEq)]
pub struct ConjunctEstimate {
    /// Rendered predicate text.
    pub predicate: String,
    /// Estimated fraction of rows passing (row-weighted across chunks).
    pub selectivity: f64,
    /// Relative evaluation cost (expression size; function calls are
    /// weighted heavily).
    pub cost: f64,
}

/// Everything the planner decided for one query, kept on the prepared
/// plan for EXPLAIN, metrics, and the shared-scan scheduler.
#[derive(Clone, Debug, Default)]
pub struct PlanChoice {
    /// Chunk-set access path.
    pub access: AccessPath,
    /// Conjunct estimates in chosen evaluation order.
    pub conjuncts: Vec<ConjunctEstimate>,
    /// Whether the chunk query's WHERE clause was rebuilt in a new order.
    pub reordered: bool,
    /// `Some(n)` when ORDER BY + LIMIT n was pushed into the chunk query.
    pub topn_pushdown: Option<u64>,
    /// Estimated rows in the *merged* result.
    pub est_rows: f64,
    /// Estimated total cost of the chosen plan, in cost units.
    pub est_cost: f64,
    /// Chunk count of the full-scan alternative (after zone elision).
    pub scan_chunks: usize,
    /// Chunk count of the index alternative, when one exists.
    pub index_chunks: Option<usize>,
    /// Whether a shared-scan convoy should pick this query up (scan
    /// access over more chunks than the interactive threshold).
    pub attach_convoy: bool,
    /// Whether the planned chunk count classifies as a scan at the
    /// default admission threshold.
    pub scan_class: bool,
}

/// Planner inputs assembled by `Qserv::prepare_stmt`.
pub(crate) struct PlannerContext<'a> {
    pub analysis: &'a Analysis,
    pub zones: &'a ChunkZones,
    pub stats: &'a TableStats,
    /// Placement ∩ spatial restriction — the full-scan candidate set.
    pub scan_chunks: Vec<i32>,
    /// `scan_chunks` ∩ secondary-index chunks, when an index predicate
    /// exists.
    pub index_chunks: Option<Vec<i32>>,
}

/// Planner output: the decision record plus the chunk set to dispatch.
pub(crate) struct Planned {
    pub choice: PlanChoice,
    pub chunks: Vec<i32>,
    pub chunks_pruned: usize,
}

/// What the estimator understood about one conjunct.
enum ConjunctKind {
    /// `col = literal`.
    Eq(String, f64),
    /// `col ∈ [lo, hi]` from a comparison or BETWEEN.
    Range(String, f64, f64),
    /// `col IN (k integer literals)`.
    In(String, Vec<f64>),
    /// Anything else — estimated at [`DEFAULT_SEL`].
    Opaque,
}

/// Splits an expression into its top-level AND conjuncts (flattening
/// nested ANDs), cloning each leaf.
fn split_conjuncts(e: &Expr, out: &mut Vec<Expr>) {
    if let Expr::Binary {
        op: BinaryOp::And,
        lhs,
        rhs,
    } = e
    {
        split_conjuncts(lhs, out);
        split_conjuncts(rhs, out);
    } else {
        out.push(e.clone());
    }
}

/// Rebuilds a left-associated AND chain from conjuncts.
fn join_conjuncts(mut conjuncts: Vec<Expr>) -> Option<Expr> {
    let first = if conjuncts.is_empty() {
        return None;
    } else {
        conjuncts.remove(0)
    };
    Some(conjuncts.into_iter().fold(first, |acc, c| Expr::Binary {
        op: BinaryOp::And,
        lhs: Box::new(acc),
        rhs: Box::new(c),
    }))
}

fn literal_num(e: &Expr) -> Option<f64> {
    match e {
        Expr::Literal(Literal::Int(v)) => Some(*v as f64),
        Expr::Literal(Literal::Float(v)) => Some(*v),
        _ => None,
    }
}

fn bare_column(e: &Expr) -> Option<&str> {
    match e {
        Expr::Column {
            qualifier: None,
            name,
            ..
        } => Some(name),
        // A qualifier is fine for estimation purposes — single-table
        // queries have one binding, so `o.ra_PS` and `ra_PS` are the
        // same column.
        Expr::Column {
            qualifier: Some(_),
            name,
            ..
        } => Some(name),
        _ => None,
    }
}

/// Classifies a conjunct for the estimator.
fn classify_conjunct(e: &Expr) -> ConjunctKind {
    match e {
        Expr::Binary { op, lhs, rhs } => {
            let (col, lit, flipped) = match (bare_column(lhs), literal_num(rhs)) {
                (Some(c), Some(v)) => (c, v, false),
                _ => match (literal_num(lhs), bare_column(rhs)) {
                    (Some(v), Some(c)) => (c, v, true),
                    _ => return ConjunctKind::Opaque,
                },
            };
            let col = col.to_string();
            match (op, flipped) {
                (BinaryOp::Eq, _) => ConjunctKind::Eq(col, lit),
                (BinaryOp::Lt | BinaryOp::LtEq, false) | (BinaryOp::Gt | BinaryOp::GtEq, true) => {
                    ConjunctKind::Range(col, f64::NEG_INFINITY, lit)
                }
                (BinaryOp::Gt | BinaryOp::GtEq, false) | (BinaryOp::Lt | BinaryOp::LtEq, true) => {
                    ConjunctKind::Range(col, lit, f64::INFINITY)
                }
                _ => ConjunctKind::Opaque,
            }
        }
        Expr::Between {
            expr,
            negated: false,
            low,
            high,
        } => match (bare_column(expr), literal_num(low), literal_num(high)) {
            (Some(c), Some(lo), Some(hi)) => ConjunctKind::Range(c.to_string(), lo, hi),
            _ => ConjunctKind::Opaque,
        },
        Expr::InList {
            expr,
            negated: false,
            list,
        } => match bare_column(expr) {
            Some(c) => {
                let vals: Option<Vec<f64>> = list.iter().map(literal_num).collect();
                match vals {
                    Some(v) => ConjunctKind::In(c.to_string(), v),
                    None => ConjunctKind::Opaque,
                }
            }
            None => ConjunctKind::Opaque,
        },
        _ => ConjunctKind::Opaque,
    }
}

/// Relative evaluation cost of an expression: node count, with function
/// calls weighted at 8 (a `qserv_angSep` beats a comparison by far).
fn expr_cost(e: &Expr) -> f64 {
    let mut cost = 0.0;
    e.visit(&mut |node| {
        cost += match node {
            Expr::Function { .. } => 8.0,
            _ => 1.0,
        };
    });
    cost
}

/// Estimated fraction of chunk `chunk`'s rows passing `kind`, using the
/// chunk's zone map and the table's distinct counts.
fn chunk_selectivity(
    kind: &ConjunctKind,
    table: &str,
    chunk: i64,
    zones: &ChunkZones,
    stats: &TableStats,
) -> f64 {
    let sel = match kind {
        ConjunctKind::Eq(col, v) => {
            if let Some(z) = zones.zone(table, chunk, col) {
                if z.excluded_by(*v, *v) {
                    return 0.0;
                }
            }
            match stats.column(table, col) {
                Some(c) if c.distinct > 0 => 1.0 / c.distinct as f64,
                _ => DEFAULT_EQ_SEL,
            }
        }
        ConjunctKind::Range(col, lo, hi) => match zones.zone(table, chunk, col) {
            Some(z) if z.valid > 0 && z.max > z.min => {
                let overlap = hi.min(z.max) - lo.max(z.min);
                (overlap / (z.max - z.min)).clamp(0.0, 1.0)
            }
            Some(z) => {
                // Degenerate zone: a single value (or none).
                if z.valid == 0 || z.min < *lo || z.min > *hi {
                    0.0
                } else {
                    1.0
                }
            }
            None => DEFAULT_RANGE_SEL,
        },
        ConjunctKind::In(col, vals) => {
            let in_zone = match zones.zone(table, chunk, col) {
                Some(z) => vals.iter().filter(|v| !z.excluded_by(**v, **v)).count(),
                None => vals.len(),
            };
            match stats.column(table, col) {
                Some(c) if c.distinct > 0 => in_zone as f64 / c.distinct as f64,
                _ => (in_zone as f64 * DEFAULT_EQ_SEL).min(0.5),
            }
        }
        ConjunctKind::Opaque => DEFAULT_SEL,
    };
    sel.clamp(0.0, 1.0)
}

/// Estimated selected rows and evaluation cost of running `kinds` (in
/// the given order) over chunk set `chunks`: per chunk, rows × the
/// product of selectivities, with each conjunct's evaluation charged
/// only for the rows surviving the ones before it.
fn estimate_set(
    chunks: &[i32],
    kinds: &[(ConjunctKind, f64)],
    table: &str,
    zones: &ChunkZones,
    stats: &TableStats,
) -> (f64, f64) {
    let mut rows_out = 0.0;
    let mut eval_cost = 0.0;
    for &c in chunks {
        let rows = stats.chunk_rows(table, c as i64).unwrap_or(0) as f64;
        let mut surviving = rows;
        for (kind, cost) in kinds {
            eval_cost += surviving * cost * COST_PER_ROW_EVAL;
            surviving *= chunk_selectivity(kind, table, c as i64, zones, stats);
        }
        rows_out += surviving;
    }
    (rows_out, eval_cost)
}

/// Runs the cost model over a built physical plan, choosing the access
/// path and chunk set, reordering the chunk query's WHERE conjuncts,
/// and pushing ORDER BY + LIMIT down when provably sound. Mutates
/// `plan.chunk_stmt` only; the merge statement — and therefore the
/// final semantics — is untouched.
pub(crate) fn choose(
    ctx: PlannerContext<'_>,
    ov: Option<&PlanOverride>,
    plan: &mut PhysicalPlan,
) -> Planned {
    let analysis = ctx.analysis;
    let ov = ov.copied().unwrap_or_default();
    let single_table = (analysis.join == JoinClass::None && analysis.partitioned.len() == 1)
        .then(|| analysis.stmt.from[analysis.partitioned[0]].table.clone());
    let have_stats = !ctx.stats.is_empty();

    // Zone-map chunk elision on both candidate sets. Sound because a
    // pruned chunk would contribute zero rows anyway — the workers
    // still apply the full predicate — so elision only skips dispatches
    // whose results are the merge's fold identity.
    let mut scan_chunks = ctx.scan_chunks;
    let mut index_chunks = ctx.index_chunks;
    let mut scan_pruned = 0usize;
    let mut index_pruned = 0usize;
    if let Some(table) = &single_table {
        if !ctx.zones.is_empty() {
            let restrictions = zone_restrictions(&analysis.stmt);
            if !restrictions.is_empty() {
                let before = scan_chunks.len();
                scan_chunks.retain(|&c| !ctx.zones.chunk_excluded(table, c as i64, &restrictions));
                scan_pruned = before - scan_chunks.len();
                if let Some(idx) = &mut index_chunks {
                    let before = idx.len();
                    idx.retain(|&c| !ctx.zones.chunk_excluded(table, c as i64, &restrictions));
                    index_pruned = before - idx.len();
                }
            }
        }
    }

    // Conjunct estimates over the chunk query's WHERE clause (which
    // carries the re-materialized spatial predicate too).
    let mut conjunct_exprs: Vec<Expr> = Vec::new();
    if let Some(w) = &plan.chunk_stmt.where_clause {
        split_conjuncts(w, &mut conjunct_exprs);
    }
    let mut kinds: Vec<(ConjunctKind, f64)> = conjunct_exprs
        .iter()
        .map(|e| (classify_conjunct(e), expr_cost(e)))
        .collect();

    // Filter reordering: rank by drop rate per unit cost, (1 − sel)/cost
    // descending. Stable, so equal ranks keep the user's order. Applies
    // only to the single-table case with statistics — without row
    // counts the ranking would be arbitrary churn.
    let reorder_allowed = ov.reorder != Some(false) && single_table.is_some() && have_stats;
    let mut order: Vec<usize> = (0..conjunct_exprs.len()).collect();
    let global_sels: Vec<f64> = match &single_table {
        Some(table) => kinds
            .iter()
            .map(|(kind, _)| {
                let mut num = 0.0;
                let mut den = 0.0;
                for &c in &scan_chunks {
                    let rows = ctx.stats.chunk_rows(table, c as i64).unwrap_or(0) as f64;
                    num += rows * chunk_selectivity(kind, table, c as i64, ctx.zones, ctx.stats);
                    den += rows;
                }
                if den > 0.0 {
                    num / den
                } else {
                    DEFAULT_SEL
                }
            })
            .collect(),
        None => vec![DEFAULT_SEL; kinds.len()],
    };
    let mut reordered = false;
    if reorder_allowed && order.len() > 1 {
        order.sort_by(|&a, &b| {
            let rank = |i: usize| (1.0 - global_sels[i]) / kinds[i].1.max(1.0);
            rank(b)
                .partial_cmp(&rank(a))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        if order.windows(2).any(|w| w[0] > w[1]) {
            reordered = true;
            let new_exprs: Vec<Expr> = order.iter().map(|&i| conjunct_exprs[i].clone()).collect();
            plan.chunk_stmt.where_clause = join_conjuncts(new_exprs.clone());
            conjunct_exprs = new_exprs;
            let mut new_kinds = Vec::with_capacity(order.len());
            for &i in &order {
                new_kinds.push(std::mem::replace(
                    &mut kinds[i],
                    (ConjunctKind::Opaque, 0.0),
                ));
            }
            kinds = new_kinds;
        }
    }
    let ordered_sels: Vec<f64> = if reordered {
        order.iter().map(|&i| global_sels[i]).collect()
    } else {
        global_sels
    };

    // Cost the two access paths.
    let (scan_rows, scan_eval) = match &single_table {
        Some(table) => estimate_set(&scan_chunks, &kinds, table, ctx.zones, ctx.stats),
        None => (0.0, 0.0),
    };
    let scan_cost =
        scan_chunks.len() as f64 * COST_PER_CHUNK + scan_eval + scan_rows * COST_PER_ROW_OUT;
    let index_alt = index_chunks.as_ref().map(|idx| {
        let keys = analysis.index_ids.as_ref().map_or(0, |ids| ids.len());
        let (rows, _) = match &single_table {
            Some(table) => estimate_set(idx, &kinds, table, ctx.zones, ctx.stats),
            None => (0.0, 0.0),
        };
        let cost = idx.len() as f64 * COST_PER_CHUNK
            + keys as f64 * COST_PER_PROBE
            + rows * COST_PER_ROW_OUT;
        (keys, rows, cost)
    });

    let use_index = match (ov.use_index, &index_alt) {
        (_, None) => false,
        (Some(forced), Some(_)) => forced,
        // Tie goes to the index: its chunk set is a subset, so it is
        // never worse.
        (None, Some((_, _, index_cost))) => *index_cost <= scan_cost,
    };
    let (access, chunks, chunks_pruned, selected_rows, est_cost) = if use_index {
        let idx = index_chunks.clone().expect("use_index implies index set");
        let (keys, rows, cost) = index_alt.expect("use_index implies alternative");
        (
            AccessPath::IndexLookup { keys },
            idx,
            index_pruned,
            rows,
            cost,
        )
    } else {
        (
            AccessPath::FullScan,
            scan_chunks.clone(),
            scan_pruned,
            scan_rows,
            scan_cost,
        )
    };

    // ORDER BY + LIMIT top-n pushdown, gated on a proven-unique sort
    // key so every plan yields the identical prefix.
    let mut topn_pushdown = None;
    if ov.push_topn != Some(false) && !analysis.aggregated {
        if let (Some(table), MergeShape::TopN { n }) = (&single_table, &plan.shape) {
            let keys_sound = !plan.merge_stmt.order_by.is_empty()
                && plan.merge_stmt.order_by.iter().all(|o| {
                    matches!(
                        &o.expr,
                        Expr::Column {
                            qualifier: None,
                            ..
                        }
                    )
                })
                && plan.merge_stmt.order_by.iter().any(|o| {
                    matches!(&o.expr, Expr::Column { name, .. }
                        if ctx.stats.is_unique_key(table, name))
                });
            if keys_sound {
                plan.chunk_stmt.order_by = plan.merge_stmt.order_by.clone();
                plan.chunk_stmt.limit = Some(*n);
                topn_pushdown = Some(*n);
            }
        }
    }

    // Merged-result row estimate: selected rows, shrunk by grouping or
    // a LIMIT.
    let mut est_rows = selected_rows;
    if analysis.aggregated {
        est_rows = if analysis.stmt.group_by.is_empty() {
            1.0
        } else {
            let groups: f64 = match &single_table {
                Some(table) => analysis
                    .stmt
                    .group_by
                    .iter()
                    .map(|g| match bare_column(g) {
                        Some(col) => ctx
                            .stats
                            .column(table, col)
                            .map_or(DEFAULT_SEL * selected_rows.max(1.0), |c| c.distinct as f64),
                        None => DEFAULT_SEL * selected_rows.max(1.0),
                    })
                    .product(),
                None => selected_rows,
            };
            groups.min(selected_rows)
        };
    }
    if let Some(l) = analysis.stmt.limit {
        est_rows = est_rows.min(l as f64);
    }

    let attach_convoy = access == AccessPath::FullScan && chunks.len() > DEFAULT_INTERACTIVE_CHUNKS;
    let conjuncts = conjunct_exprs
        .iter()
        .zip(&ordered_sels)
        .zip(&kinds)
        .map(|((e, sel), (_, cost))| ConjunctEstimate {
            predicate: e.to_sql(),
            selectivity: *sel,
            cost: *cost,
        })
        .collect();
    Planned {
        choice: PlanChoice {
            access,
            conjuncts,
            reordered,
            topn_pushdown,
            est_rows,
            est_cost,
            scan_chunks: scan_chunks.len(),
            index_chunks: index_chunks.as_ref().map(Vec::len),
            attach_convoy,
            scan_class: chunks.len() > DEFAULT_INTERACTIVE_CHUNKS,
        },
        chunks,
        chunks_pruned,
    }
}

impl PlanChoice {
    /// The q-error of the row estimate against an observed actual:
    /// `max(est/actual, actual/est)` with both sides floored at 1 row.
    /// 1.0 is a perfect estimate.
    pub fn q_error(&self, actual_rows: u64) -> f64 {
        let est = self.est_rows.max(1.0);
        let act = (actual_rows as f64).max(1.0);
        (est / act).max(act / est)
    }

    /// Renders the choice as deterministic `(item, value)` rows — the
    /// body of the EXPLAIN result table.
    pub fn render_rows(&self) -> Vec<(String, String)> {
        let mut rows = Vec::new();
        let access = match self.access {
            AccessPath::IndexLookup { keys } => format!("index_lookup(keys={keys})"),
            AccessPath::FullScan => "full_scan".to_string(),
        };
        rows.push(("access_path".to_string(), access));
        rows.push(("scan_chunks".to_string(), self.scan_chunks.to_string()));
        rows.push((
            "index_chunks".to_string(),
            self.index_chunks.map_or("-".to_string(), |n| n.to_string()),
        ));
        for (i, c) in self.conjuncts.iter().enumerate() {
            rows.push((
                format!("predicate[{i}]"),
                format!(
                    "{} (sel={:.4} cost={:.0})",
                    c.predicate, c.selectivity, c.cost
                ),
            ));
        }
        rows.push(("reordered".to_string(), self.reordered.to_string()));
        rows.push((
            "topn_pushdown".to_string(),
            self.topn_pushdown
                .map_or("off".to_string(), |n| format!("n={n}")),
        ));
        rows.push(("est_rows".to_string(), format!("{:.1}", self.est_rows)));
        rows.push(("est_cost".to_string(), format!("{:.1}", self.est_cost)));
        rows.push((
            "shared_scan".to_string(),
            if self.attach_convoy {
                "attach".to_string()
            } else {
                "independent".to_string()
            },
        ));
        rows
    }
}
