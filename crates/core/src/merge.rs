//! Incremental (streaming) result merging.
//!
//! The paper's §5.3 master gathers *every* per-chunk result table and
//! only then runs the merge query — a hard barrier whose peak memory is
//! the sum of all chunk results. [`Merger`] folds each chunk result into
//! running merge state *as it arrives*, keyed by the plan-time
//! [`MergeShape`] classification:
//!
//! * **Append** — non-aggregated rows are appended directly; a
//!   pushed-down `LIMIT n` (no ORDER BY) marks the merger *satisfied*
//!   after n rows so the dispatcher can cancel the remaining chunk queue.
//! * **Fold** — partial aggregates combine into per-group accumulator
//!   state (a hash on the group key), so peak memory is O(groups).
//! * **TopN** — `ORDER BY … LIMIT n` keeps a bounded top-n candidate set
//!   instead of the full sort input.
//! * **Barrier** — everything else buffers parts and runs the oracle.
//!
//! Exactness: parts are applied in ascending chunk order (out-of-order
//! arrivals wait in a reorder buffer), accumulators are the engine's own
//! [`AggAcc`], and column-type widening replays [`merge_tables`]'s voting
//! incrementally — when a column's vote flips Int→Float, existing group
//! keys are re-coerced and re-keyed. The compacted state is then run
//! through the ordinary merge query, so the final projection, ORDER BY,
//! and LIMIT semantics are byte-identical to the barrier path. The
//! row-at-a-time [`merge_tables`] + merge-query pair stays in-tree as the
//! semantic oracle; `tests/streaming_merge.rs` property-tests the
//! equivalence. (One knowing concession: a pushed-down LIMIT cutoff
//! answers from the chunks it saw, which is a *valid* LIMIT answer but
//! only bit-identical to the oracle when workers return type-stable
//! columns — which the real pipeline does by construction.)

use crate::error::QservError;
use crate::rewrite::{ColumnRole, MergeShape, PhysicalPlan};
use qserv_engine::db::Database;
use qserv_engine::exec::{execute, AggAcc, AggKind, ResultTable};
use qserv_engine::schema::{ColumnDef, ColumnType, Schema};
use qserv_engine::table::Table;
use qserv_engine::value::{GroupKey, Value};
use qserv_sqlparse::ast::{Expr, OrderItem, SelectStatement};
use std::collections::{BTreeMap, HashMap};

/// One batch of merged rows emitted mid-query by a streaming sink (see
/// [`crate::Qserv::query_streaming`]): the rows appended since the last
/// drain, coerced under the type votes in effect when the batch was
/// cut. A later chunk may widen a column Int→Float, so consumers that
/// accumulate batches must re-coerce earlier rows when `types` widen —
/// which is exact, because the only widening step is Int→Float.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamBatch {
    /// Output column names (identical across every batch of one query).
    pub columns: Vec<String>,
    /// Per-column type votes at drain time; `None` means no populated
    /// part has voted yet (the column is all-NULL so far).
    pub types: Vec<Option<ColumnType>>,
    /// The batch rows, coerced under `types`.
    pub rows: Vec<Vec<Value>>,
}

/// Reassembles a streamed query from its [`StreamBatch`]es into the
/// single table a buffered execution would have returned — the
/// consumer-side inverse of [`Merger::drain_ready`], used by the result
/// cache, the equivalence gates, and any caller that wants streaming
/// transport with a buffered API. When a batch widens a column's type
/// (Int→Float, the only widening step), previously collected Int rows
/// are re-coerced, which is exact.
#[derive(Debug, Default)]
pub struct StreamCollector {
    columns: Option<Vec<String>>,
    types: Vec<Option<ColumnType>>,
    rows: Vec<Vec<Value>>,
}

impl StreamCollector {
    /// An empty collector.
    pub fn new() -> StreamCollector {
        StreamCollector::default()
    }

    /// Folds one batch in, re-coercing earlier rows under any widened
    /// column types.
    pub fn push(&mut self, batch: StreamBatch) {
        if self.columns.is_none() {
            self.columns = Some(batch.columns);
            self.types = vec![None; batch.types.len()];
        }
        for (i, ty) in batch.types.iter().enumerate() {
            let widened = matches!(
                (self.types[i], ty),
                (None, Some(_)) | (Some(ColumnType::Int), Some(ColumnType::Float))
            );
            if widened {
                self.types[i] = *ty;
                if *ty == Some(ColumnType::Float) {
                    for row in &mut self.rows {
                        if let Value::Int(x) = row[i] {
                            row[i] = Value::Float(x as f64);
                        }
                    }
                }
            }
        }
        let types = &self.types;
        self.rows.extend(batch.rows.into_iter().map(|row| {
            row.into_iter()
                .zip(types)
                .map(|(v, t)| coerce_owned(v, *t))
                .collect()
        }));
    }

    /// The per-column types collected so far.
    pub fn types(&self) -> &[Option<ColumnType>] {
        &self.types
    }

    /// Rows collected so far (the cache's size gate watches this).
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// The assembled table. Empty (no batches at all — an error before
    /// the final batch) yields an empty, columnless table.
    pub fn table(self) -> ResultTable {
        ResultTable {
            columns: self.columns.unwrap_or_default(),
            rows: self.rows,
        }
    }
}

/// Per-column types inferred by scanning a final result's values (the
/// tag source for shapes that emit a single terminal batch): any Float
/// makes the column Float, else any Int makes it Int, any Str makes it
/// Str, all-NULL stays `None`. Mixed Int/Float cannot occur in merge
/// output (values were coerced under the vote), and Str never mixes
/// with numerics (the vote errors on that), so scanning is a fold over
/// the same lattice the vote walks.
pub fn infer_value_types(result: &ResultTable) -> Vec<Option<ColumnType>> {
    let mut types: Vec<Option<ColumnType>> = vec![None; result.columns.len()];
    for row in &result.rows {
        for (slot, v) in types.iter_mut().zip(row) {
            let seen = match v {
                Value::Null => continue,
                Value::Int(_) => ColumnType::Int,
                Value::Float(_) => ColumnType::Float,
                Value::Str(_) => ColumnType::Str,
            };
            *slot = Some(match (*slot, seen) {
                (None, t) => t,
                (Some(ColumnType::Int), ColumnType::Float)
                | (Some(ColumnType::Float), ColumnType::Int) => ColumnType::Float,
                (Some(a), _) => a,
            });
        }
    }
    types
}

/// Concatenates per-chunk result tables, unifying schemas by widening
/// (Int + Float ⇒ Float; an empty chunk's all-NULL "Float" columns adopt
/// the populated chunks' types). This is the oracle the streaming shapes
/// are verified against.
pub fn merge_tables(parts: Vec<Table>) -> Result<Table, QservError> {
    let Some(first) = parts.first() else {
        return Ok(Table::new(Schema::new(vec![])));
    };
    let names: Vec<String> = first
        .schema()
        .columns()
        .iter()
        .map(|c| c.name.clone())
        .collect();
    // Widen column types across parts. Empty parts carry no evidence
    // (their dump schemas default all-NULL columns to Float), so only
    // populated parts vote; columns never populated stay Float.
    let mut types: Vec<Option<ColumnType>> = vec![None; names.len()];
    for part in &parts {
        check_names(&names, part)?;
        if part.num_rows() == 0 {
            continue;
        }
        for (i, c) in part.schema().columns().iter().enumerate() {
            types[i] = Some(vote_one(types[i], c.ty, &names[i])?.0);
        }
    }
    let types: Vec<ColumnType> = types
        .into_iter()
        .map(|t| t.unwrap_or(ColumnType::Float))
        .collect();
    let schema = Schema::new(
        names
            .iter()
            .zip(&types)
            .map(|(n, t)| ColumnDef::new(n, *t))
            .collect(),
    );
    let mut out = Table::new(schema);
    for part in &parts {
        for r in 0..part.num_rows() {
            let row: Vec<Value> = part
                .row(r)
                .into_iter()
                .zip(&types)
                .map(|(v, t)| coerce_owned(v, Some(*t)))
                .collect();
            out.push_row(row)
                .map_err(|e| QservError::Merge(e.to_string()))?;
        }
    }
    Ok(out)
}

/// The barrier path: accumulate all parts into one table, run the merge
/// query. Returns the result plus the merged row count (for stats).
pub fn merge_oracle(
    merge_stmt: &SelectStatement,
    parts: Vec<Table>,
) -> Result<(ResultTable, usize), QservError> {
    let merged = merge_tables(parts)?;
    let rows = merged.num_rows();
    let mut db = Database::new();
    db.create_table("result", merged);
    let result = execute(&db, merge_stmt)?;
    Ok((result, rows))
}

/// Validates a part's column names against the first part's.
fn check_names(names: &[String], part: &Table) -> Result<(), QservError> {
    let cols = part.schema().columns();
    if cols.len() != names.len() || cols.iter().zip(names).any(|(c, n)| &c.name != n) {
        return Err(QservError::Merge(format!(
            "chunk results disagree on columns: {:?} vs {:?}",
            names,
            cols.iter().map(|c| &c.name).collect::<Vec<_>>()
        )));
    }
    Ok(())
}

/// One step of the widening vote; the bool is "flipped Int→Float now",
/// which obliges a [`State::Fold`] re-key of existing groups.
fn vote_one(
    prev: Option<ColumnType>,
    seen: ColumnType,
    name: &str,
) -> Result<(ColumnType, bool), QservError> {
    match (prev, seen) {
        (None, t) => Ok((t, false)),
        (Some(a), b) if a == b => Ok((a, false)),
        (Some(ColumnType::Int), ColumnType::Float) => Ok((ColumnType::Float, true)),
        (Some(ColumnType::Float), ColumnType::Int) => Ok((ColumnType::Float, false)),
        (Some(a), b) => Err(QservError::Merge(format!(
            "column {name} has incompatible types across chunks: {a} vs {b}"
        ))),
    }
}

/// Widens a raw value to the column's current vote (the coercion
/// [`merge_tables`] applies when materializing the merged table).
fn coerce_owned(v: Value, ty: Option<ColumnType>) -> Value {
    match (ty, v) {
        (Some(ColumnType::Float), Value::Int(x)) => Value::Float(x as f64),
        (_, v) => v,
    }
}

fn coerce(v: &Value, ty: Option<ColumnType>) -> Value {
    coerce_owned(v.clone(), ty)
}

/// Per-group running state of a [`State::Fold`].
struct Group {
    /// First-seen raw value per Key/Rep column (NULL placeholder under
    /// accumulator columns).
    reps: Vec<Value>,
    /// One accumulator per Sum/Min/Max column.
    accs: Vec<Option<AggAcc>>,
}

/// Role vector resolved against actual part columns.
struct FoldResolved {
    roles: Vec<ColumnRole>,
    /// Column indices participating in group identity, ascending.
    key_pos: Vec<usize>,
}

enum State {
    Append {
        rows: Vec<Vec<Value>>,
        cutoff: Option<u64>,
        satisfied: bool,
    },
    TopN {
        n: usize,
        order: Vec<OrderItem>,
        /// Resolved (column index, desc) sort keys; `None` until the
        /// first part arrives.
        keys: Option<Vec<(usize, bool)>>,
        /// Candidate rows tagged with arrival rank (for stable ties);
        /// compacted back to n whenever it doubles.
        rows: Vec<(Vec<Value>, u64)>,
        arrival: u64,
    },
    Fold {
        /// (chunk output column name, role) from the plan.
        cols: Vec<(String, ColumnRole)>,
        resolved: Option<FoldResolved>,
        groups: HashMap<Vec<GroupKey>, Group>,
        /// Group keys in first-seen order.
        order: Vec<Vec<GroupKey>>,
    },
    Nearest {
        key: String,
        dist: String,
        /// (key column index, dist column index); `None` until the first
        /// part arrives. Unlike TopN/Fold there is no safe downgrade —
        /// the merge SQL cannot express keep-nearest — so resolution
        /// failure is an error.
        resolved: Option<(usize, usize)>,
        /// Best (minimum-distance) row seen so far per key. The update
        /// rule is commutative and associative, so the outcome is
        /// independent of part arrival order.
        best: HashMap<GroupKey, Vec<Value>>,
    },
    Barrier {
        parts: Vec<Table>,
    },
}

/// Folds per-chunk result tables into running merge state as they
/// arrive. Feed with [`Merger::fold`] (tagging each part with its
/// position in the ascending chunk order), then [`Merger::finish`].
pub struct Merger {
    merge_stmt: SelectStatement,
    state: State,
    /// Column names, fixed by the first applied part.
    names: Option<Vec<String>>,
    /// Per-column widening votes (populated parts only).
    votes: Vec<Option<ColumnType>>,
    /// Reorder buffer for out-of-order arrivals.
    pending: BTreeMap<usize, Table>,
    next_seq: usize,
    peak_buffered: usize,
    rows_folded: usize,
}

impl Merger {
    /// A merger for one query, shaped by the plan's [`MergeShape`].
    pub fn new(plan: &PhysicalPlan) -> Merger {
        let state = match &plan.shape {
            MergeShape::Append { cutoff } => State::Append {
                rows: Vec::new(),
                cutoff: *cutoff,
                satisfied: *cutoff == Some(0),
            },
            MergeShape::TopN { n } => State::TopN {
                n: *n as usize,
                order: plan.merge_stmt.order_by.clone(),
                keys: None,
                rows: Vec::new(),
                arrival: 0,
            },
            MergeShape::Fold { roles } => State::Fold {
                cols: plan
                    .chunk_stmt
                    .projections
                    .iter()
                    .map(|p| p.output_name())
                    .zip(roles.iter().copied())
                    .collect(),
                resolved: None,
                groups: HashMap::new(),
                order: Vec::new(),
            },
            MergeShape::Nearest { key, dist } => State::Nearest {
                key: key.clone(),
                dist: dist.clone(),
                resolved: None,
                best: HashMap::new(),
            },
            MergeShape::Barrier => State::Barrier { parts: Vec::new() },
        };
        Merger {
            merge_stmt: plan.merge_stmt.clone(),
            state,
            names: None,
            votes: Vec::new(),
            pending: BTreeMap::new(),
            next_seq: 0,
            peak_buffered: 0,
            rows_folded: 0,
        }
    }

    /// True once no further parts can change the result (a pushed-down
    /// LIMIT is met): the dispatcher may cancel the remaining chunks.
    pub fn satisfied(&self) -> bool {
        match &self.state {
            State::Append { satisfied, .. } => *satisfied,
            State::TopN { n, .. } => *n == 0,
            _ => false,
        }
    }

    /// Rows consumed into merge state so far.
    pub fn rows_folded(&self) -> usize {
        self.rows_folded
    }

    /// High-water mark of parts held materialized at once (reorder
    /// buffer plus any barrier buffering).
    pub fn peak_buffered_parts(&self) -> usize {
        self.peak_buffered
    }

    /// Approximate bytes of live merge state (reorder buffer + shape
    /// state) — the peak-memory proxy reported by `master_bench`.
    pub fn state_bytes(&self) -> u64 {
        fn value_bytes(v: &Value) -> u64 {
            16 + match v {
                Value::Str(s) => s.len() as u64,
                _ => 0,
            }
        }
        let pending: u64 = self.pending.values().map(|t| t.footprint_bytes()).sum();
        pending
            + match &self.state {
                State::Append { rows, .. } => rows.iter().flatten().map(value_bytes).sum::<u64>(),
                State::TopN { rows, .. } => rows
                    .iter()
                    .flat_map(|(r, _)| r)
                    .map(value_bytes)
                    .sum::<u64>(),
                State::Fold { groups, .. } => groups
                    .values()
                    .map(|g| g.reps.iter().map(value_bytes).sum::<u64>() + 32 * g.accs.len() as u64)
                    .sum(),
                State::Nearest { best, .. } => best
                    .values()
                    .map(|r| r.iter().map(value_bytes).sum::<u64>())
                    .sum(),
                State::Barrier { parts } => parts.iter().map(|t| t.footprint_bytes()).sum(),
            }
    }

    /// True when this merger's shape supports incremental row emission:
    /// the Append state under a pure `SELECT * FROM result [LIMIT n]`
    /// merge statement (exactly what `plain_merge` builds for the
    /// Append classification). Every in-order fold then appends final
    /// rows — no projection, reordering, or grouping remains — so they
    /// can leave through [`Merger::drain_ready`] immediately. The
    /// Append state never downgrades, so streamability is stable for
    /// the life of the query.
    pub fn streamable(&self) -> bool {
        matches!(self.state, State::Append { .. })
            && self.merge_stmt.where_clause.is_none()
            && self.merge_stmt.group_by.is_empty()
            && self.merge_stmt.order_by.is_empty()
            && self.merge_stmt.projections.len() == 1
            && self.merge_stmt.projections[0].alias.is_none()
            && matches!(self.merge_stmt.projections[0].expr, Expr::Star)
    }

    /// The per-column widening votes so far (`None` = no populated part
    /// has voted). Exposed so the streaming epilogue can type its final
    /// batch under the same votes the buffered path materializes with.
    pub fn vote_types(&self) -> &[Option<ColumnType>] {
        &self.votes
    }

    /// Takes the rows appended since the last drain as a [`StreamBatch`]
    /// coerced under the current votes; `None` when the shape is not
    /// [`Merger::streamable`], no part has applied yet, or nothing new
    /// has arrived. Drained rows are *gone* from the merge state —
    /// [`Merger::finish`] returns only the undrained remainder (its
    /// `SELECT * … LIMIT n` over the remainder is still exact, because
    /// the Append cutoff already capped drained + remaining at n).
    pub fn drain_ready(&mut self) -> Option<StreamBatch> {
        if !self.streamable() {
            return None;
        }
        let names = self.names.as_ref()?;
        let State::Append { rows, .. } = &mut self.state else {
            return None;
        };
        if rows.is_empty() {
            return None;
        }
        let taken = std::mem::take(rows);
        let types = self.votes.clone();
        let rows = taken
            .into_iter()
            .map(|row| {
                row.into_iter()
                    .zip(&self.votes)
                    .map(|(v, t)| coerce_owned(v, *t))
                    .collect()
            })
            .collect();
        Some(StreamBatch {
            columns: names.clone(),
            types,
            rows,
        })
    }

    /// Folds one chunk result. `seq` is the part's position in ascending
    /// chunk order; parts arriving ahead of their turn wait in the
    /// reorder buffer so folds stay deterministic (float addition is not
    /// associative — in-order folding is what makes the streaming result
    /// bit-identical to the oracle's).
    pub fn fold(&mut self, seq: usize, part: Table) -> Result<(), QservError> {
        if self.satisfied() {
            return Ok(());
        }
        self.pending.insert(seq, part);
        self.note_buffered();
        while let Some(part) = self.pending.remove(&self.next_seq) {
            self.next_seq += 1;
            self.apply(part)?;
            if self.satisfied() {
                self.pending.clear();
                break;
            }
        }
        self.note_buffered();
        Ok(())
    }

    fn note_buffered(&mut self) {
        let barrier = match &self.state {
            State::Barrier { parts } => parts.len(),
            _ => 0,
        };
        self.peak_buffered = self.peak_buffered.max(self.pending.len() + barrier);
    }

    /// Applies one in-order part to the shape state.
    fn apply(&mut self, part: Table) -> Result<(), QservError> {
        // Schema vote first: fixes names on the first part, widens types
        // on every populated one.
        let cols = part.schema().columns();
        if self.names.is_none() {
            self.names = Some(cols.iter().map(|c| c.name.clone()).collect());
            self.votes = vec![None; cols.len()];
        }
        let names = self.names.as_ref().expect("set above");
        check_names(names, &part)?;
        let mut flipped: Vec<usize> = Vec::new();
        if part.num_rows() > 0 {
            for (i, c) in cols.iter().enumerate() {
                let (ty, flip) = vote_one(self.votes[i], c.ty, &names[i])?;
                self.votes[i] = Some(ty);
                if flip {
                    flipped.push(i);
                }
            }
        }

        // Nearest resolves its two named columns on the first part. There
        // is no safe downgrade (the merge SQL cannot express keep-nearest)
        // so a miss is an error, not a barrier.
        if let State::Nearest {
            key,
            dist,
            resolved: resolved @ None,
            ..
        } = &mut self.state
        {
            let ki = names.iter().position(|c| c == key);
            let di = names.iter().position(|c| c == dist);
            if let (Some(k), Some(d)) = (ki, di) {
                *resolved = Some((k, d));
            } else {
                let msg = format!(
                    "XMatch merge needs columns {key:?} and {dist:?}; chunk result has {names:?}"
                );
                return Err(QservError::Merge(msg));
            }
        }

        // First-part resolution: shapes that cannot bind to the actual
        // columns downgrade to the barrier (always-correct) state.
        let downgrade = match &mut self.state {
            State::TopN {
                order,
                keys: keys @ None,
                ..
            } => {
                // Mirror of the engine's `output_index` over a
                // `SELECT * FROM result` merge: an ORDER BY key must
                // match an output column by rendered SQL text, else the
                // engine would evaluate it as a hidden sort key — which
                // needs full rows, not a heap.
                let resolved: Option<Vec<(usize, bool)>> = order
                    .iter()
                    .map(|o| {
                        let sql = o.expr.to_sql();
                        names.iter().position(|c| *c == sql).map(|i| (i, o.desc))
                    })
                    .collect();
                match resolved {
                    Some(k) => {
                        *keys = Some(k);
                        false
                    }
                    None => true,
                }
            }
            State::Fold {
                cols,
                resolved: resolved @ None,
                ..
            } => {
                let roles: Option<Vec<ColumnRole>> = names
                    .iter()
                    .map(|n| cols.iter().find(|(cn, _)| cn == n).map(|(_, role)| *role))
                    .collect();
                match roles {
                    Some(roles) if roles.len() == cols.len() => {
                        let key_pos = roles
                            .iter()
                            .enumerate()
                            .filter(|(_, r)| **r == ColumnRole::Key)
                            .map(|(i, _)| i)
                            .collect();
                        *resolved = Some(FoldResolved { roles, key_pos });
                        false
                    }
                    _ => true,
                }
            }
            _ => false,
        };
        if downgrade {
            self.state = State::Barrier { parts: Vec::new() };
        }

        let votes = &self.votes;
        match &mut self.state {
            State::Append {
                rows,
                cutoff,
                satisfied,
            } => {
                for r in 0..part.num_rows() {
                    if *satisfied {
                        break;
                    }
                    rows.push(part.row(r));
                    self.rows_folded += 1;
                    if let Some(n) = cutoff {
                        if rows.len() as u64 >= *n {
                            *satisfied = true;
                        }
                    }
                }
            }
            State::TopN {
                n,
                keys,
                rows,
                arrival,
                ..
            } => {
                let keys = keys.as_ref().expect("resolved above");
                for r in 0..part.num_rows() {
                    rows.push((part.row(r), *arrival));
                    *arrival += 1;
                    self.rows_folded += 1;
                    if *n > 0 && rows.len() >= 2 * *n {
                        rows.sort_by(|a, b| cmp_candidates(a, b, keys));
                        rows.truncate(*n);
                    }
                }
            }
            State::Fold {
                resolved,
                groups,
                order,
                ..
            } => {
                let resolved = resolved.as_ref().expect("resolved above");
                // An Int→Float flip on a key column changes group
                // identity (Int(1) and Float(1.0) hash apart): re-key
                // every existing group under the widened vote. Distinct
                // Int keys rounding to one f64 merge here, exactly as
                // the oracle's upfront widening would have merged them.
                if flipped.iter().any(|i| resolved.key_pos.contains(i)) {
                    let mut regrouped: HashMap<Vec<GroupKey>, Group> =
                        HashMap::with_capacity(groups.len());
                    let mut reordered: Vec<Vec<GroupKey>> = Vec::with_capacity(order.len());
                    for old_key in order.drain(..) {
                        let g = groups.remove(&old_key).expect("order tracks groups");
                        let new_key: Vec<GroupKey> = resolved
                            .key_pos
                            .iter()
                            .map(|&i| coerce(&g.reps[i], votes[i]).group_key())
                            .collect();
                        match regrouped.entry(new_key.clone()) {
                            std::collections::hash_map::Entry::Vacant(e) => {
                                e.insert(g);
                                reordered.push(new_key);
                            }
                            std::collections::hash_map::Entry::Occupied(mut e) => {
                                merge_groups(e.get_mut(), g);
                            }
                        }
                    }
                    *groups = regrouped;
                    *order = reordered;
                }
                // Hot path: the table is columnar, so cells are read
                // individually and the group key is built in a reused
                // scratch buffer — no per-row Vec allocations unless the
                // row opens a new group.
                let ncols = resolved.roles.len();
                let mut scratch: Vec<GroupKey> = Vec::with_capacity(resolved.key_pos.len());
                for r in 0..part.num_rows() {
                    self.rows_folded += 1;
                    scratch.clear();
                    for &i in &resolved.key_pos {
                        scratch.push(coerce(&part.get(r, i), votes[i]).group_key());
                    }
                    if let Some(g) = groups.get_mut(scratch.as_slice()) {
                        for (i, acc) in g.accs.iter_mut().enumerate() {
                            if let Some(acc) = acc {
                                acc.update(Some(&part.get(r, i)));
                            }
                        }
                    } else {
                        let mut reps = vec![Value::Null; ncols];
                        let mut accs: Vec<Option<AggAcc>> = Vec::with_capacity(ncols);
                        for (i, role) in resolved.roles.iter().enumerate() {
                            let kind = match role {
                                ColumnRole::Sum => Some(AggKind::Sum),
                                ColumnRole::Min => Some(AggKind::Min),
                                ColumnRole::Max => Some(AggKind::Max),
                                ColumnRole::Key | ColumnRole::Rep => None,
                            };
                            match kind {
                                Some(k) => {
                                    let mut acc = AggAcc::new(k);
                                    acc.update(Some(&part.get(r, i)));
                                    accs.push(Some(acc));
                                }
                                None => {
                                    reps[i] = part.get(r, i);
                                    accs.push(None);
                                }
                            }
                        }
                        let key = scratch.clone();
                        order.push(key.clone());
                        groups.insert(key, Group { reps, accs });
                    }
                }
            }
            State::Nearest { resolved, best, .. } => {
                let (ki, _di) = resolved.expect("resolved above");
                // An Int→Float flip on the key column changes group
                // identity: re-key surviving rows under the widened vote
                // (mirrors the Fold re-key).
                if flipped.contains(&ki) {
                    let old = std::mem::take(best);
                    for (_, row) in old {
                        let key = coerce(&row[ki], votes[ki]).group_key();
                        upsert_nearest(best, key, row, resolved.expect("resolved").1);
                    }
                }
                let di = resolved.expect("resolved above").1;
                for r in 0..part.num_rows() {
                    self.rows_folded += 1;
                    let row = part.row(r);
                    let key = coerce(&row[ki], votes[ki]).group_key();
                    upsert_nearest(best, key, row, di);
                }
            }
            State::Barrier { parts } => {
                self.rows_folded += part.num_rows();
                parts.push(part);
            }
        }
        Ok(())
    }

    /// Runs the merge query over the compacted state and returns the
    /// final result.
    pub fn finish(self) -> Result<ResultTable, QservError> {
        let names = self.names.unwrap_or_default();
        let votes = self.votes;
        let table = match self.state {
            State::Barrier { parts } => {
                return merge_oracle(&self.merge_stmt, parts).map(|(r, _)| r);
            }
            State::Append { rows, .. } => build_table(&names, &votes, rows)?,
            State::TopN {
                n, keys, mut rows, ..
            } => {
                if let Some(keys) = &keys {
                    rows.sort_by(|a, b| cmp_candidates(a, b, keys));
                    rows.truncate(n);
                }
                build_table(&names, &votes, rows.into_iter().map(|(r, _)| r).collect())?
            }
            State::Fold {
                resolved,
                groups,
                order,
                ..
            } => {
                let mut rows: Vec<Vec<Value>> = Vec::with_capacity(order.len());
                if let Some(resolved) = &resolved {
                    for key in &order {
                        let g = &groups[key];
                        let row: Vec<Value> = resolved
                            .roles
                            .iter()
                            .enumerate()
                            .map(|(i, role)| match role {
                                ColumnRole::Key | ColumnRole::Rep => g.reps[i].clone(),
                                _ => {
                                    let widen = votes[i] == Some(ColumnType::Float);
                                    g.accs[i]
                                        .as_ref()
                                        .expect("acc role has an accumulator")
                                        .finish_widened(widen)
                                }
                            })
                            .collect();
                        rows.push(row);
                    }
                }
                build_table(&names, &votes, rows)?
            }
            State::Nearest { resolved, best, .. } => {
                let mut rows: Vec<Vec<Value>> = best.into_values().collect();
                if let Some((ki, _)) = resolved {
                    // Keys are unique per row, so ordering by key alone is
                    // a total, arrival-order-independent order.
                    rows.sort_by(|a, b| a[ki].total_cmp(&b[ki]));
                }
                build_table(&names, &votes, rows)?
            }
        };
        let mut db = Database::new();
        db.create_table("result", table);
        execute(&db, &self.merge_stmt).map_err(QservError::from)
    }
}

/// Keep-nearest update: replaces the stored best row for `key` when
/// `row` is strictly closer, with equal distances broken by full-row
/// lexicographic comparison. Commutative and associative, so the merged
/// outcome is independent of fold order.
fn upsert_nearest(
    best: &mut HashMap<GroupKey, Vec<Value>>,
    key: GroupKey,
    row: Vec<Value>,
    di: usize,
) {
    match best.entry(key) {
        std::collections::hash_map::Entry::Vacant(e) => {
            e.insert(row);
        }
        std::collections::hash_map::Entry::Occupied(mut e) => {
            let cur = e.get();
            let replace = match row[di].total_cmp(&cur[di]) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Greater => false,
                std::cmp::Ordering::Equal => row
                    .iter()
                    .zip(cur.iter())
                    .find_map(|(a, b)| match a.total_cmp(b) {
                        std::cmp::Ordering::Equal => None,
                        ord => Some(ord == std::cmp::Ordering::Less),
                    })
                    .unwrap_or(false),
            };
            if replace {
                e.insert(row);
            }
        }
    }
}

/// Total order over top-n candidates: the resolved sort keys first
/// (ties broken by arrival rank), reproducing the engine's stable
/// sort-then-truncate.
fn cmp_candidates(
    a: &(Vec<Value>, u64),
    b: &(Vec<Value>, u64),
    keys: &[(usize, bool)],
) -> std::cmp::Ordering {
    for &(i, desc) in keys {
        let ord = a.0[i].total_cmp(&b.0[i]);
        if ord != std::cmp::Ordering::Equal {
            return if desc { ord.reverse() } else { ord };
        }
    }
    a.1.cmp(&b.1)
}

/// Materializes buffered raw rows under the voted schema.
fn build_table(
    names: &[String],
    votes: &[Option<ColumnType>],
    rows: Vec<Vec<Value>>,
) -> Result<Table, QservError> {
    let types: Vec<ColumnType> = votes
        .iter()
        .map(|t| t.unwrap_or(ColumnType::Float))
        .collect();
    let schema = Schema::new(
        names
            .iter()
            .zip(&types)
            .map(|(n, t)| ColumnDef::new(n, *t))
            .collect(),
    );
    let mut out = Table::new(schema);
    for row in rows {
        let row: Vec<Value> = row
            .into_iter()
            .zip(&types)
            .map(|(v, t)| coerce_owned(v, Some(*t)))
            .collect();
        out.push_row(row)
            .map_err(|e| QservError::Merge(e.to_string()))?;
    }
    Ok(out)
}

/// Merges a later group into an earlier one — only reachable when an
/// Int→Float key flip rounds two distinct Int keys onto one f64.
fn merge_groups(into: &mut Group, from: Group) {
    for (a, b) in into.accs.iter_mut().zip(from.accs) {
        if let (Some(a), Some(b)) = (a.as_mut(), b) {
            combine_acc(a, &b);
        }
    }
}

/// Combines two accumulators over disjoint row sets.
fn combine_acc(a: &mut AggAcc, b: &AggAcc) {
    match b {
        AggAcc::Count(y) => {
            if let AggAcc::Count(x) = a {
                *x += *y;
            }
        }
        AggAcc::Sum {
            int: i2,
            float: f2,
            saw_float: sf2,
            saw_any: sa2,
        } => {
            if let AggAcc::Sum {
                int,
                float,
                saw_float,
                saw_any,
            } = a
            {
                *int = int.saturating_add(*i2);
                *float += *f2;
                *saw_float |= *sf2;
                *saw_any |= *sa2;
            }
        }
        AggAcc::Avg { sum: s2, n: n2 } => {
            if let AggAcc::Avg { sum, n } = a {
                *sum += *s2;
                *n += *n2;
            }
        }
        AggAcc::MinMax { best: Some(v), .. } => a.update(Some(v)),
        AggAcc::MinMax { best: None, .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use crate::meta::CatalogMeta;
    use crate::rewrite::build_plan;
    use qserv_sqlparse::parse_select;

    fn table_of(cols: &[(&str, ColumnType)], rows: Vec<Vec<Value>>) -> Table {
        let schema = Schema::new(cols.iter().map(|(n, t)| ColumnDef::new(n, *t)).collect());
        let mut t = Table::new(schema);
        for r in rows {
            t.push_row(r).unwrap();
        }
        t
    }

    fn plan_for(sql: &str) -> PhysicalPlan {
        let meta = CatalogMeta::lsst();
        let a = analyze(&parse_select(sql).unwrap(), &meta).unwrap();
        build_plan(&a, &meta).unwrap()
    }

    #[test]
    fn merge_tables_widens_int_to_float() {
        let a = table_of(&[("x", ColumnType::Int)], vec![vec![Value::Int(1)]]);
        let b = table_of(&[("x", ColumnType::Float)], vec![vec![Value::Float(2.5)]]);
        let m = merge_tables(vec![a, b]).unwrap();
        assert_eq!(m.num_rows(), 2);
        assert_eq!(m.get(0, 0), Value::Float(1.0));
        assert_eq!(m.get(1, 0), Value::Float(2.5));
    }

    #[test]
    fn merge_tables_empty_part_adopts_other_schema() {
        let empty = table_of(&[("x", ColumnType::Float)], vec![]);
        let full = table_of(&[("x", ColumnType::Int)], vec![vec![Value::Int(3)]]);
        let m = merge_tables(vec![empty, full]).unwrap();
        assert_eq!(m.schema().columns()[0].ty, ColumnType::Int);
        assert_eq!(m.num_rows(), 1);
    }

    #[test]
    fn merge_tables_rejects_mismatched_columns() {
        let a = table_of(&[("x", ColumnType::Int)], vec![]);
        let b = table_of(&[("y", ColumnType::Int)], vec![]);
        assert!(merge_tables(vec![a, b]).is_err());
    }

    #[test]
    fn merge_tables_no_parts_is_empty() {
        let m = merge_tables(vec![]).unwrap();
        assert_eq!(m.num_rows(), 0);
    }

    #[test]
    fn append_cutoff_satisfies_mid_part() {
        let plan = plan_for("SELECT objectId FROM Object LIMIT 3");
        assert_eq!(plan.shape, MergeShape::Append { cutoff: Some(3) });
        let mut m = Merger::new(&plan);
        let part = table_of(
            &[("objectId", ColumnType::Int)],
            (0..5).map(|i| vec![Value::Int(i)]).collect(),
        );
        m.fold(0, part).unwrap();
        assert!(m.satisfied());
        assert_eq!(m.rows_folded(), 3);
        let r = m.finish().unwrap();
        assert_eq!(
            r.rows,
            vec![
                vec![Value::Int(0)],
                vec![Value::Int(1)],
                vec![Value::Int(2)]
            ]
        );
    }

    #[test]
    fn out_of_order_parts_fold_in_chunk_order() {
        let plan = plan_for("SELECT objectId FROM Object");
        let part = |v: i64| table_of(&[("objectId", ColumnType::Int)], vec![vec![Value::Int(v)]]);
        let mut m = Merger::new(&plan);
        m.fold(2, part(2)).unwrap();
        m.fold(1, part(1)).unwrap();
        assert_eq!(m.rows_folded(), 0, "parts wait for seq 0");
        assert_eq!(m.peak_buffered_parts(), 2);
        m.fold(0, part(0)).unwrap();
        assert_eq!(m.rows_folded(), 3);
        let r = m.finish().unwrap();
        assert_eq!(
            r.rows,
            vec![
                vec![Value::Int(0)],
                vec![Value::Int(1)],
                vec![Value::Int(2)]
            ]
        );
    }

    #[test]
    fn fold_matches_oracle_with_widening_rekey() {
        // Part 0 types the group key Int, part 1 flips it to Float:
        // Int(1) groups must re-key onto Float(1.0).
        let plan = plan_for("SELECT chunkId, COUNT(*) FROM Object GROUP BY chunkId");
        let cols_int = [("chunkId", ColumnType::Int), ("COUNT(*)", ColumnType::Int)];
        let cols_float = [
            ("chunkId", ColumnType::Float),
            ("COUNT(*)", ColumnType::Int),
        ];
        let p0 = table_of(
            &cols_int,
            vec![
                vec![Value::Int(1), Value::Int(10)],
                vec![Value::Int(2), Value::Int(20)],
            ],
        );
        let p1 = table_of(
            &cols_float,
            vec![
                vec![Value::Float(1.0), Value::Int(5)],
                vec![Value::Null, Value::Int(7)],
            ],
        );
        let (oracle, _) = merge_oracle(&plan.merge_stmt, vec![p0.clone(), p1.clone()]).unwrap();
        let mut m = Merger::new(&plan);
        m.fold(0, p0).unwrap();
        m.fold(1, p1).unwrap();
        let streamed = m.finish().unwrap();
        assert_eq!(streamed, oracle);
        // Int(1) and Float(1.0) landed in one group: 3 groups total.
        assert_eq!(streamed.num_rows(), 3);
    }

    #[test]
    fn topn_keeps_bounded_candidates() {
        let plan = plan_for("SELECT objectId FROM Object ORDER BY objectId DESC LIMIT 2");
        assert_eq!(plan.shape, MergeShape::TopN { n: 2 });
        let mut m = Merger::new(&plan);
        for (seq, base) in [0i64, 100, 50].into_iter().enumerate() {
            let part = table_of(
                &[("objectId", ColumnType::Int)],
                (0..20).map(|i| vec![Value::Int(base + i)]).collect(),
            );
            m.fold(seq, part).unwrap();
        }
        assert!(m.state_bytes() < 20 * 3 * 16, "candidate set stays bounded");
        let r = m.finish().unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int(119)], vec![Value::Int(118)]]);
    }

    #[test]
    fn incompatible_types_error_matches_oracle() {
        let plan = plan_for("SELECT objectId FROM Object");
        let a = table_of(&[("objectId", ColumnType::Int)], vec![vec![Value::Int(1)]]);
        let b = table_of(
            &[("objectId", ColumnType::Str)],
            vec![vec![Value::Str("x".into())]],
        );
        let oracle_err = merge_tables(vec![a.clone(), b.clone()]).unwrap_err();
        let mut m = Merger::new(&plan);
        m.fold(0, a).unwrap();
        let stream_err = m.fold(1, b).unwrap_err();
        assert_eq!(oracle_err.to_string(), stream_err.to_string());
    }
}
