//! # qserv — a distributed shared-nothing SQL query system
//!
//! A from-scratch Rust reproduction of **Qserv** (Wang, Monkewitz, Lim,
//! Becla: *Qserv: a distributed shared-nothing database for the LSST
//! catalog*, SC'11): the coordination layer that turns a single user SQL
//! query over sky-sized astronomical tables into thousands of per-chunk
//! physical queries, dispatches them over a data-addressed file fabric to
//! autonomous workers, and merges the results.
//!
//! ## Architecture (paper Figure 1)
//!
//! ```text
//!  user ──SQL──▶ [Qserv master/frontend]
//!                  │  parse → analyze → generate chunk queries   (§5.3)
//!                  │  write /query2/CC ─────────────┐            (§5.4)
//!                  ▼                                ▼
//!             [xrd fabric: redirector]      [worker = data server + plugin]
//!                  ▲                                │ build subchunk tables
//!                  │  read /result/md5(query) ◀─────┘ execute on engine
//!                  ▼                                   dump result as SQL
//!             merge + final aggregation (§5.4)
//! ```
//!
//! * [`meta`] — which tables are spatially partitioned and on which
//!   columns, which are replicated everywhere, and which column carries
//!   the secondary index.
//! * [`analysis`] — query analysis (§5.3): spatial restriction detection,
//!   objectId index opportunities, table references, join classification.
//! * [`planner`] — cost-based planning over load-time statistics (zone
//!   maps, row counts, distinct-value counts): per-conjunct selectivity
//!   estimation with filter reordering, index-vs-scan choice, proven-
//!   sound ORDER BY + LIMIT pushdown, and shared-scan attachment —
//!   surfaced through the service's `EXPLAIN` verb.
//! * [`rewrite`] — physical query generation: aggregate splitting
//!   (`AVG → SUM/COUNT`), `qserv_areaspec_box` → worker UDF predicates,
//!   chunk/subchunk table substitution, and the master's merge query.
//! * [`worker`] — the ofs-plugin worker: parses the chunk-query message,
//!   builds subchunk/overlap tables on demand, executes on the embedded
//!   engine, deposits a mysqldump-style result.
//! * [`loader`] — builds worker databases from synthesized catalog rows:
//!   chunk tables, overlap stores, per-chunk objectId indexes, and the
//!   frontend's secondary index.
//! * [`master`] — the [`Qserv`] frontend: end-to-end `query(sql)` with a
//!   multithreaded dispatcher over the fabric and result merging.
//! * [`merge`] — the streaming result pipeline: chunk results fold into
//!   incremental merge state as they arrive (append / per-group fold /
//!   top-n heap), with the row-at-a-time barrier merge kept as the
//!   semantic oracle.
//! * [`service`] — the concurrent query service: bounded admission with
//!   interactive/scan classification, deficit-round-robin fair
//!   scheduling (the Figure-14 starvation fix), and cooperative
//!   per-query cancellation (`KILL`).
//! * [`sharedscan`] — shared scanning (§4.3; "planned" in the paper,
//!   implemented here): concurrent full-scan queries share one pass over
//!   each chunk.
//! * [`multimaster`] — §7.6's multi-master deployment: several frontends
//!   load-balanced over one worker fleet.
//! * [`placement`] — epoch-stamped chunk→replica placement: node
//!   join/leave, replication repair after permanent node loss (chunk
//!   copies over the fabric), and metrics-driven hot-chunk routing.

pub mod analysis;
pub mod cache;
pub mod error;
pub mod loader;
pub mod master;
pub mod merge;
pub mod meta;
pub mod multimaster;
pub mod placement;
pub mod planner;
pub mod rewrite;
pub mod service;
pub mod sharedscan;
pub mod stats;
pub mod worker;

pub use cache::{normalize_sql, CachedResult, ResultCache};
pub use error::QservError;
pub use loader::ClusterBuilder;
pub use master::{CancelToken, Qserv, QueryStats, RetryPolicy, TracedQuery, XMatchSpec};
pub use merge::{
    infer_value_types, merge_oracle, merge_tables, Merger, StreamBatch, StreamCollector,
};
pub use meta::{CatalogMeta, ChunkZones, ColumnStat, ColumnZone, TableStats};
pub use multimaster::MasterPool;
pub use placement::{PlacementManager, PlacementMap, RebalanceReport, RoutingMode};
pub use planner::{AccessPath, ConjunctEstimate, PlanChoice, PlanOverride};
pub use rewrite::{ColumnRole, MergeShape};
pub use service::{
    CacheOutcome, FairScheduler, KillOutcome, Notifier, QueryClass, QueryHandle, QueryService,
    QueryState, QueryStatus, ServiceConfig, ServiceReply, StreamDone, StreamEvent, StreamHandle,
    StreamOutcome, Ticket,
};

// Chaos-testing surface: arm a fault plan at build time
// (`ClusterBuilder::fault_plan`), inspect what fired via
// `qserv.cluster().faults().stats()`.
pub use qserv_xrd::fault::{FabricOp, FaultPlan, FaultStats};

// Observability surface (qserv-obs): the injectable clock every layer
// waits on, the trace-tree type `query_traced` returns, and the metrics
// snapshot `QueryStats` is a view of.
pub use qserv_obs::trace;
pub use qserv_obs::{
    wall_clock, Clock, MetricsRegistry, MetricsSnapshot, SharedClock, Trace, VirtualClock,
};

// Re-export the pieces users need to drive the public API.
pub use qserv_engine::exec::ResultTable;
pub use qserv_engine::value::Value;
pub use qserv_partition::chunker::Chunker;
pub use qserv_partition::placement::PlacementStrategy;
pub use qserv_sqlparse::strip_explain;
