//! The concurrent query service: admission control, fair scheduling,
//! and cancellation.
//!
//! The paper evaluates Qserv under concurrent load (§7 drives up to 50
//! simultaneous queries; Figure 14 shows short queries starving behind
//! full scans when nothing schedules them). [`Qserv::query`] is a
//! library call — one query, one caller, no queueing — so this module
//! adds the *service* layer that sits between the proxy and the master:
//!
//! * **Admission control** — a bounded per-class queue. A full queue
//!   rejects with [`QservError::Busy`] (backpressure the proxy turns
//!   into a `BUSY` frame with a retry-after hint) instead of letting
//!   the frontend accumulate unbounded work.
//! * **Classification at analysis time** — a query's cost is the size
//!   of the chunk set it would dispatch (the same analysis `EXPLAIN`
//!   runs). At most [`ServiceConfig::interactive_chunk_threshold`]
//!   chunks → `Interactive`; more → `Scan`. Parse/analysis errors
//!   surface before admission and never occupy a queue slot.
//! * **Fair dequeue** — a deficit-round-robin scheduler over the two
//!   classes with a global concurrency limit and a *scan cap* that
//!   reserves execution slots for interactive queries, so a saturating
//!   scan workload cannot starve short queries (the Figure-14 fix).
//! * **Cooperative cancellation** — every admitted query carries a
//!   [`CancelToken`]; `KILL` cancels a queued query immediately and
//!   stops a running one at its next chunk-dispatch or merge-fold
//!   boundary, with result files consumed (never stranded) on the
//!   fabric.
//!
//! The scheduler itself ([`FairScheduler`]) is a pure state machine —
//! no threads, no clock — so property tests can replay arbitrary
//! arrival schedules against it deterministically on a virtual clock.

use crate::cache::{normalize_sql_tables, stream_batch_bytes, CachedResult, ResultCache};
use crate::error::QservError;
use crate::master::{CancelToken, Qserv, QueryStats};
use crate::merge::{infer_value_types, StreamBatch, StreamCollector};
use qserv_engine::exec::ResultTable;
use qserv_obs::clock::SharedClock;
use qserv_obs::trace;
use qserv_obs::{Counter, Gauge, Histogram, MetricsRegistry, MetricsSnapshot, Trace};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Canonical instrument names on the service's metrics registry.
pub mod names {
    /// Counter: interactive queries admitted to the queue.
    pub const ADMITTED_INTERACTIVE: &str = "service.admitted.interactive";
    /// Counter: scan queries admitted to the queue.
    pub const ADMITTED_SCAN: &str = "service.admitted.scan";
    /// Counter: interactive queries rejected with `Busy`.
    pub const REJECTED_INTERACTIVE: &str = "service.rejected.interactive";
    /// Counter: scan queries rejected with `Busy`.
    pub const REJECTED_SCAN: &str = "service.rejected.scan";
    /// Counter: queries that completed successfully.
    pub const COMPLETED: &str = "service.completed";
    /// Counter: queries that failed with an execution error.
    pub const FAILED: &str = "service.failed";
    /// Counter: queries cancelled (queued or running) by `KILL`.
    pub const CANCELLED: &str = "service.cancelled";
    /// Gauge: interactive queries currently queued.
    pub const QUEUE_DEPTH_INTERACTIVE: &str = "service.queue_depth.interactive";
    /// Gauge: scan queries currently queued.
    pub const QUEUE_DEPTH_SCAN: &str = "service.queue_depth.scan";
    /// Gauge (high-water): deepest the interactive queue ever got.
    pub const QUEUE_PEAK_INTERACTIVE: &str = "service.queue_peak.interactive";
    /// Gauge (high-water): deepest the scan queue ever got.
    pub const QUEUE_PEAK_SCAN: &str = "service.queue_peak.scan";
    /// Gauge: queries executing right now.
    pub const RUNNING: &str = "service.running";
    /// Histogram: queueing wait (ms) of interactive queries.
    pub const WAIT_MS_INTERACTIVE: &str = "service.wait_ms.interactive";
    /// Histogram: queueing wait (ms) of scan queries.
    pub const WAIT_MS_SCAN: &str = "service.wait_ms.scan";
    /// Histogram: execution time (ms) of interactive queries.
    pub const RUN_MS_INTERACTIVE: &str = "service.run_ms.interactive";
    /// Histogram: execution time (ms) of scan queries.
    pub const RUN_MS_SCAN: &str = "service.run_ms.scan";
    /// Counter: queries served whole from the result cache.
    pub const CACHE_HIT: &str = "proxy.cache.hit";
    /// Counter: cacheable queries that had to execute.
    pub const CACHE_MISS: &str = "proxy.cache.miss";
    /// Counter: cache entries evicted by the byte budget.
    pub const CACHE_EVICT: &str = "proxy.cache.evict";
}

/// The two §7 workload classes the service schedules between.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum QueryClass {
    /// Few chunks (secondary-index or spatially restricted): latency
    /// matters.
    Interactive,
    /// A large chunk set (full-sky scan): throughput matters, latency
    /// does not.
    Scan,
}

impl QueryClass {
    fn idx(self) -> usize {
        match self {
            QueryClass::Interactive => 0,
            QueryClass::Scan => 1,
        }
    }

    /// Stable lowercase name (used in `STATUS` rows and metrics).
    pub fn as_str(self) -> &'static str {
        match self {
            QueryClass::Interactive => "interactive",
            QueryClass::Scan => "scan",
        }
    }
}

/// Tuning knobs for [`QueryService`] (and the [`FairScheduler`] inside
/// it).
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Queries executing concurrently, all classes together (also the
    /// executor-pool width).
    pub max_concurrent: usize,
    /// Of those, how many may be scans. The difference
    /// `max_concurrent - max_scan_concurrent` is the slot reserve that
    /// keeps interactive queries responsive under scan saturation.
    pub max_scan_concurrent: usize,
    /// Queued (admitted, not yet running) queries allowed per class;
    /// beyond this, `submit` rejects with [`QservError::Busy`].
    pub queue_capacity: usize,
    /// Chunk-set sizes up to this classify as `Interactive`.
    pub interactive_chunk_threshold: usize,
    /// Deficit-round-robin quantum credited to the interactive class
    /// per scheduling round (units: chunks).
    pub interactive_quantum: u64,
    /// Quantum credited to the scan class per round.
    pub scan_quantum: u64,
    /// The retry-after hint carried by [`QservError::Busy`].
    pub retry_after: Duration,
    /// Disable fair scheduling: one arrival-order queue, no scan cap.
    /// This is the paper's unscheduled baseline (Figure 14's starvation)
    /// — kept for the bench comparison and the simulator replay.
    pub fifo: bool,
    /// Byte budget of the normalized-query result cache. `0` disables
    /// caching entirely — the default, so repeated queries re-execute
    /// unless a deployment opts in.
    pub cache_capacity_bytes: u64,
    /// Largest single result the cache admits (and the point at which a
    /// streaming query stops collecting itself for the cache).
    pub cache_max_entry_bytes: u64,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            max_concurrent: 4,
            max_scan_concurrent: 2,
            queue_capacity: 64,
            interactive_chunk_threshold: 8,
            // Interactive gets the larger quantum: many cheap tickets
            // per round vs. the occasional expensive scan ticket.
            interactive_quantum: 64,
            scan_quantum: 16,
            retry_after: Duration::from_millis(25),
            fifo: false,
            cache_capacity_bytes: 0,
            cache_max_entry_bytes: 4 << 20,
        }
    }
}

/// One schedulable query in the [`FairScheduler`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Ticket {
    /// Service-wide query id (the `KILL` handle).
    pub qid: u64,
    /// Admission class.
    pub class: QueryClass,
    /// Scheduling cost: the chunk-set size (≥ 1).
    pub cost: u64,
    /// Arrival order, for FIFO mode and tie-breaking.
    pub seq: u64,
}

/// Deficit-round-robin admission scheduler over the two query classes.
///
/// A pure state machine: `admit` enqueues, `next_ticket` picks the
/// ticket that may start now (or `None` — queues empty, concurrency
/// limit reached, or the scan cap blocking every waiter), `complete`
/// releases a slot.
/// No threads, no clock — [`QueryService`] drives it under a mutex, and
/// the fairness property test replays random arrival schedules against
/// it on a virtual clock.
///
/// DRR, as applied here: each class queue owns a *deficit counter*.
/// When both classes have waiters, the round-robin pointer visits a
/// class, credits its quantum, and dequeues its head if the head's cost
/// fits the accumulated deficit — otherwise the pointer moves on and
/// the deficit persists, so an expensive scan eventually accumulates
/// the credit to run, while a stream of cheap interactive tickets keeps
/// flowing in between. When only one class has eligible waiters the
/// scheduler is work-conserving: it dequeues without charging deficit.
#[derive(Debug)]
pub struct FairScheduler {
    fifo: bool,
    max_concurrent: usize,
    max_scan_concurrent: usize,
    queue_capacity: usize,
    quantum: [u64; 2],
    queues: [VecDeque<Ticket>; 2],
    deficit: [u64; 2],
    turn: usize,
    /// Whether the current turn's quantum has been credited (DRR
    /// credits once per visit, then serves until the deficit runs out).
    visited: bool,
    running: [usize; 2],
    arrivals: u64,
}

impl FairScheduler {
    /// A scheduler with `cfg`'s queue/concurrency/quantum knobs.
    pub fn new(cfg: &ServiceConfig) -> FairScheduler {
        FairScheduler {
            fifo: cfg.fifo,
            max_concurrent: cfg.max_concurrent.max(1),
            max_scan_concurrent: cfg.max_scan_concurrent.max(1),
            queue_capacity: cfg.queue_capacity.max(1),
            quantum: [cfg.interactive_quantum.max(1), cfg.scan_quantum.max(1)],
            queues: [VecDeque::new(), VecDeque::new()],
            deficit: [0, 0],
            turn: 0,
            visited: false,
            running: [0, 0],
            arrivals: 0,
        }
    }

    /// Enqueues a query; `false` means the class queue is full (the
    /// caller surfaces [`QservError::Busy`]).
    pub fn admit(&mut self, qid: u64, class: QueryClass, cost: u64) -> bool {
        let q = &mut self.queues[class.idx()];
        if q.len() >= self.queue_capacity {
            return false;
        }
        let seq = self.arrivals;
        self.arrivals += 1;
        q.push_back(Ticket {
            qid,
            class,
            cost: cost.max(1),
            seq,
        });
        true
    }

    /// Removes a queued query (a `KILL` before it started); `false` if
    /// it is not queued.
    pub fn remove(&mut self, qid: u64) -> bool {
        for q in &mut self.queues {
            if let Some(pos) = q.iter().position(|t| t.qid == qid) {
                q.remove(pos);
                return true;
            }
        }
        false
    }

    /// The next ticket allowed to start, if any. The caller owns the
    /// released slot and must pair it with [`FairScheduler::complete`].
    pub fn next_ticket(&mut self) -> Option<Ticket> {
        if self.running_total() >= self.max_concurrent {
            return None;
        }
        if self.fifo {
            // Arrival order across classes, no scan cap: the paper's
            // unscheduled baseline.
            let c = match (self.queues[0].front(), self.queues[1].front()) {
                (Some(a), Some(b)) => {
                    if a.seq < b.seq {
                        0
                    } else {
                        1
                    }
                }
                (Some(_), None) => 0,
                (None, Some(_)) => 1,
                (None, None) => return None,
            };
            return Some(self.pop(c));
        }
        loop {
            // A class with an empty queue forfeits its credit — classic
            // DRR, so an idle class cannot bank an unbounded burst.
            for c in 0..2 {
                if self.queues[c].is_empty() {
                    self.deficit[c] = 0;
                }
            }
            let eligible = |s: &FairScheduler, c: usize| {
                !s.queues[c].is_empty() && (c == 0 || s.running[1] < s.max_scan_concurrent)
            };
            match (eligible(self, 0), eligible(self, 1)) {
                (false, false) => return None,
                // Only one class has eligible waiters: work-conserving
                // dequeue, no deficit charged.
                (true, false) => return Some(self.pop(0)),
                (false, true) => return Some(self.pop(1)),
                (true, true) => {
                    let c = self.turn;
                    if !self.visited {
                        self.deficit[c] += self.quantum[c];
                        self.visited = true;
                    }
                    let cost = self.queues[c].front().expect("eligible queue").cost;
                    if cost <= self.deficit[c] {
                        self.deficit[c] -= cost;
                        return Some(self.pop(c));
                    }
                    // Credit exhausted (or the head too expensive for
                    // this round's quantum): the deficit persists — an
                    // expensive scan banks credit across rounds — and
                    // the other class gets its visit.
                    self.turn = 1 - c;
                    self.visited = false;
                }
            }
        }
    }

    fn pop(&mut self, c: usize) -> Ticket {
        let t = self.queues[c].pop_front().expect("pop from empty queue");
        self.running[c] += 1;
        t
    }

    /// Releases the execution slot a [`FairScheduler::next_ticket`]
    /// ticket held.
    pub fn complete(&mut self, class: QueryClass) {
        let c = class.idx();
        debug_assert!(self.running[c] > 0, "complete without a running query");
        self.running[c] = self.running[c].saturating_sub(1);
    }

    /// Queued (not yet running) queries of `class`.
    pub fn queued(&self, class: QueryClass) -> usize {
        self.queues[class.idx()].len()
    }

    /// Running queries of `class`.
    pub fn running(&self, class: QueryClass) -> usize {
        self.running[class.idx()]
    }

    /// Running queries, all classes.
    pub fn running_total(&self) -> usize {
        self.running[0] + self.running[1]
    }
}

/// Lifecycle of a submitted query, as `STATUS` reports it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryState {
    /// Admitted, waiting for an execution slot.
    Queued,
    /// Executing on the master.
    Running,
    /// Finished successfully.
    Done,
    /// Finished with an execution error.
    Failed,
    /// Cancelled by `KILL` (or service shutdown).
    Cancelled,
}

impl QueryState {
    /// Stable lowercase name (used in `STATUS` rows).
    pub fn as_str(self) -> &'static str {
        match self {
            QueryState::Queued => "queued",
            QueryState::Running => "running",
            QueryState::Done => "done",
            QueryState::Failed => "failed",
            QueryState::Cancelled => "cancelled",
        }
    }
}

/// What `KILL <qid>` accomplished.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KillOutcome {
    /// The query was still queued: removed, its waiter gets
    /// [`QservError::Cancelled`] immediately.
    CancelledQueued,
    /// The query is running: its token is cancelled, it stops at the
    /// next chunk or fold boundary.
    Cancelling,
    /// The query had already reached a terminal state.
    Finished,
    /// No such query id.
    Unknown,
}

impl KillOutcome {
    /// Stable lowercase name (used in the `KILL` result row).
    pub fn as_str(self) -> &'static str {
        match self {
            KillOutcome::CancelledQueued => "cancelled",
            KillOutcome::Cancelling => "cancelling",
            KillOutcome::Finished => "finished",
            KillOutcome::Unknown => "unknown",
        }
    }
}

/// One `STATUS` row.
#[derive(Clone, Debug)]
pub struct QueryStatus {
    /// Service-wide query id.
    pub qid: u64,
    /// Admission class.
    pub class: QueryClass,
    /// Current lifecycle state.
    pub state: QueryState,
    /// The SQL text (truncated for display).
    pub sql: String,
    /// Time spent queued (final once running).
    pub wait: Duration,
    /// Time spent executing so far (final once terminal).
    pub run: Duration,
}

/// Everything the service hands back for one completed query.
#[derive(Debug)]
pub struct ServiceReply {
    /// Service-wide query id.
    pub qid: u64,
    /// Admission class.
    pub class: QueryClass,
    /// Rows + stats, or the failure ([`QservError::Cancelled`] after a
    /// `KILL`).
    pub result: Result<(ResultTable, QueryStats), QservError>,
    /// The span tree, for traced submissions — present even when
    /// `result` is an error, so a killed query's trace still validates.
    pub trace: Option<Trace>,
    /// Time the query spent queued.
    pub wait: Duration,
    /// Time the query spent executing.
    pub run: Duration,
}

/// The submitter's side of an admitted query: await the reply, or
/// cancel it.
pub struct QueryHandle {
    /// Service-wide query id (the `KILL` handle).
    pub qid: u64,
    /// Admission class the query was classified into.
    pub class: QueryClass,
    token: CancelToken,
    rx: mpsc::Receiver<ServiceReply>,
}

impl QueryHandle {
    /// Blocks until the query finishes (or is cancelled) and returns
    /// the reply.
    pub fn wait(self) -> ServiceReply {
        let qid = self.qid;
        let class = self.class;
        self.rx.recv().unwrap_or(ServiceReply {
            qid,
            class,
            result: Err(QservError::Cancelled),
            trace: None,
            wait: Duration::ZERO,
            run: Duration::ZERO,
        })
    }

    /// The query's cancellation token (shared with the service).
    pub fn token(&self) -> &CancelToken {
        &self.token
    }
}

/// Callback invoked after each streaming event is queued. The proxy
/// wires this to its reactor waker so a blocked event loop learns of
/// new frames without polling the channel.
pub type Notifier = Arc<dyn Fn() + Send + Sync>;

/// Streaming replies buffer this many events before the executor's
/// send blocks — the backpressure that ultimately stalls chunk workers
/// when a client stops draining. A cache hit needs exactly this many
/// slots to park its batch + done pair before the handle is returned.
const STREAM_EVENT_BACKLOG: usize = 2;

/// How the result cache participated in one query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Caching disabled, or the query is not cacheable (no chunk work).
    Off,
    /// Consulted and absent: the query executed (and, on success, may
    /// have populated the cache).
    Miss,
    /// Served whole from the cache without executing.
    Hit,
}

impl CacheOutcome {
    /// Stable lowercase name (the proxy's `END … cache:<name>` tag).
    pub fn as_str(self) -> &'static str {
        match self {
            CacheOutcome::Off => "off",
            CacheOutcome::Miss => "miss",
            CacheOutcome::Hit => "hit",
        }
    }
}

/// Terminal event of a streaming query; nothing follows it.
#[derive(Debug)]
pub struct StreamDone {
    /// Service-wide query id.
    pub qid: u64,
    /// Admission class.
    pub class: QueryClass,
    /// Stats on success, or the failure. An error after batches were
    /// already delivered means those rows must be discarded — the
    /// result is the error.
    pub result: Result<QueryStats, QservError>,
    /// The span tree, for traced submissions.
    pub trace: Option<Trace>,
    /// Time the query spent queued.
    pub wait: Duration,
    /// Time the query spent executing.
    pub run: Duration,
    /// Whether the cache served, missed, or sat out this query.
    pub cache: CacheOutcome,
}

/// What a streaming submission's channel carries: zero or more row
/// batches, then exactly one [`StreamEvent::Done`].
#[derive(Debug)]
pub enum StreamEvent {
    /// Merged rows in final order, typed with the merger's votes so
    /// far. A later batch may widen a column (Int → Float); consumers
    /// re-coerce previously delivered values, which is exact.
    Batch(StreamBatch),
    /// The query finished.
    Done(StreamDone),
}

/// The submitter's side of a streaming query: drain events as they
/// arrive, or cancel.
pub struct StreamHandle {
    /// Service-wide query id (the `KILL` handle).
    pub qid: u64,
    /// Admission class.
    pub class: QueryClass,
    /// True when the events were served from the result cache.
    pub cache_hit: bool,
    token: CancelToken,
    rx: mpsc::Receiver<StreamEvent>,
}

/// Everything a drained stream folds down to (what
/// [`StreamHandle::collect`] returns).
#[derive(Debug)]
pub struct StreamOutcome {
    /// The reassembled table + stats, or the failure.
    pub result: Result<(ResultTable, QueryStats), QservError>,
    /// The span tree, for traced submissions.
    pub trace: Option<Trace>,
    /// Time the query spent queued.
    pub wait: Duration,
    /// Time the query spent executing.
    pub run: Duration,
    /// Whether the cache served, missed, or sat out this query.
    pub cache: CacheOutcome,
}

impl StreamHandle {
    /// Blocks for the next event; `None` once the stream is exhausted
    /// (or the service died — treat as cancelled).
    pub fn recv(&self) -> Option<StreamEvent> {
        self.rx.recv().ok()
    }

    /// Non-blocking [`StreamHandle::recv`].
    pub fn try_recv(&self) -> Option<StreamEvent> {
        self.rx.try_recv().ok()
    }

    /// The query's cancellation token (shared with the service).
    pub fn token(&self) -> &CancelToken {
        &self.token
    }

    /// Cancels the query; in-flight batches already delivered stay
    /// delivered, and `Done` reports [`QservError::Cancelled`].
    pub fn cancel(&self) {
        self.token.cancel();
    }

    /// Drains the stream to completion and reassembles the buffered
    /// result — byte-identical to what a non-streaming submit returns,
    /// including Int → Float re-coercion when a late batch widened a
    /// column.
    pub fn collect(self) -> StreamOutcome {
        let mut collector = StreamCollector::default();
        while let Some(ev) = self.recv() {
            match ev {
                StreamEvent::Batch(batch) => collector.push(batch),
                StreamEvent::Done(done) => {
                    return StreamOutcome {
                        result: done.result.map(|stats| (collector.table(), stats)),
                        trace: done.trace,
                        wait: done.wait,
                        run: done.run,
                        cache: done.cache,
                    };
                }
            }
        }
        // Channel closed without a Done: the service was dropped.
        StreamOutcome {
            result: Err(QservError::Cancelled),
            trace: None,
            wait: Duration::ZERO,
            run: Duration::ZERO,
            cache: CacheOutcome::Off,
        }
    }
}

/// Handles on the service-wide metrics registry.
struct ServiceMetrics {
    registry: Arc<MetricsRegistry>,
    admitted: [Counter; 2],
    rejected: [Counter; 2],
    completed: Counter,
    failed: Counter,
    cancelled: Counter,
    queue_depth: [Gauge; 2],
    queue_peak: [Gauge; 2],
    running: Gauge,
    wait_ms: [Histogram; 2],
    run_ms: [Histogram; 2],
    cache_hit: Counter,
    cache_miss: Counter,
    cache_evict: Counter,
}

impl ServiceMetrics {
    fn new() -> ServiceMetrics {
        let r = Arc::new(MetricsRegistry::new());
        ServiceMetrics {
            admitted: [
                r.counter(names::ADMITTED_INTERACTIVE),
                r.counter(names::ADMITTED_SCAN),
            ],
            rejected: [
                r.counter(names::REJECTED_INTERACTIVE),
                r.counter(names::REJECTED_SCAN),
            ],
            completed: r.counter(names::COMPLETED),
            failed: r.counter(names::FAILED),
            cancelled: r.counter(names::CANCELLED),
            queue_depth: [
                r.gauge(names::QUEUE_DEPTH_INTERACTIVE),
                r.gauge(names::QUEUE_DEPTH_SCAN),
            ],
            queue_peak: [
                r.gauge(names::QUEUE_PEAK_INTERACTIVE),
                r.gauge(names::QUEUE_PEAK_SCAN),
            ],
            running: r.gauge(names::RUNNING),
            wait_ms: [
                r.histogram(names::WAIT_MS_INTERACTIVE),
                r.histogram(names::WAIT_MS_SCAN),
            ],
            run_ms: [
                r.histogram(names::RUN_MS_INTERACTIVE),
                r.histogram(names::RUN_MS_SCAN),
            ],
            cache_hit: r.counter(names::CACHE_HIT),
            cache_miss: r.counter(names::CACHE_MISS),
            cache_evict: r.counter(names::CACHE_EVICT),
            registry: r,
        }
    }
}

/// Where a finished query's reply goes: a single buffered message, or
/// a stream of batch events.
enum ReplyTo {
    Buffered(mpsc::SyncSender<ServiceReply>),
    Streaming {
        tx: mpsc::SyncSender<StreamEvent>,
        notify: Option<Notifier>,
    },
}

/// A queued query's execution context, parked until a slot frees.
struct PendingEntry {
    sql: String,
    /// `Some(root span name)` for traced submissions.
    traced: Option<String>,
    reply: ReplyTo,
    /// `Some((data version, normalized text))` when the query should
    /// populate the result cache on success.
    cache_key: Option<(u64, String)>,
    token: CancelToken,
    admitted_at: Duration,
}

/// The `STATUS` registry entry for one query (kept through terminal
/// states, pruned oldest-first).
struct Record {
    class: QueryClass,
    state: QueryState,
    sql: String,
    token: CancelToken,
    admitted_at: Duration,
    started_at: Option<Duration>,
    finished_at: Option<Duration>,
}

/// Terminal records kept for `STATUS` before pruning kicks in.
const RECORD_HISTORY: usize = 512;

/// `STATUS` shows at most this much SQL per query.
const SQL_DISPLAY_LEN: usize = 120;

struct ServiceState {
    sched: FairScheduler,
    pending: HashMap<u64, PendingEntry>,
    records: BTreeMap<u64, Record>,
    shutdown: bool,
}

struct Inner {
    qserv: Arc<Qserv>,
    cfg: ServiceConfig,
    state: Mutex<ServiceState>,
    cv: Condvar,
    metrics: ServiceMetrics,
    next_qid: AtomicU64,
    clock: SharedClock,
    cache: Mutex<ResultCache>,
}

/// The concurrent query service over one [`Qserv`] frontend.
///
/// `submit` classifies and enqueues (or rejects with
/// [`QservError::Busy`]); an executor pool of
/// [`ServiceConfig::max_concurrent`] threads drains the
/// [`FairScheduler`]; `kill` cancels by qid; `status` lists every known
/// query. Dropping the service cancels running queries, drains the
/// queue with [`QservError::Cancelled`], and joins the executors.
pub struct QueryService {
    inner: Arc<Inner>,
    executors: Vec<JoinHandle<()>>,
}

impl QueryService {
    /// Starts the service (and its executor pool) over `qserv`.
    pub fn start(qserv: Arc<Qserv>, cfg: ServiceConfig) -> QueryService {
        let clock = qserv.clock().clone();
        let inner = Arc::new(Inner {
            state: Mutex::new(ServiceState {
                sched: FairScheduler::new(&cfg),
                pending: HashMap::new(),
                records: BTreeMap::new(),
                shutdown: false,
            }),
            cv: Condvar::new(),
            metrics: ServiceMetrics::new(),
            next_qid: AtomicU64::new(1),
            clock,
            cache: Mutex::new(ResultCache::new(
                cfg.cache_capacity_bytes,
                cfg.cache_max_entry_bytes,
            )),
            cfg,
            qserv,
        });
        let width = inner.cfg.max_concurrent.max(1);
        let executors = (0..width)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || inner.executor_loop())
            })
            .collect();
        QueryService { inner, executors }
    }

    /// The service defaults over `qserv`.
    pub fn with_defaults(qserv: Arc<Qserv>) -> QueryService {
        QueryService::start(qserv, ServiceConfig::default())
    }

    /// The frontend this service schedules onto.
    pub fn qserv(&self) -> &Arc<Qserv> {
        &self.inner.qserv
    }

    /// The configuration in effect.
    pub fn config(&self) -> &ServiceConfig {
        &self.inner.cfg
    }

    /// Submits a query for scheduled execution. Returns immediately
    /// with a handle (await it with [`QueryHandle::wait`]), or an error:
    /// parse/analysis failures surface here, and a full class queue
    /// rejects with [`QservError::Busy`].
    pub fn submit(&self, sql: &str) -> Result<QueryHandle, QservError> {
        self.inner.submit(sql, None)
    }

    /// Like [`QueryService::submit`], but the query records a full span
    /// tree rooted at `root` (the proxy passes `"proxy.request"`), with
    /// a `service.admit` span annotating class, cost, and queueing wait.
    pub fn submit_traced(&self, sql: &str, root: &str) -> Result<QueryHandle, QservError> {
        self.inner.submit(sql, Some(root.to_string()))
    }

    /// Submits a query whose results stream back as merged batches
    /// while later chunks are still scanning. Admission, classification,
    /// and rejection behave exactly like [`QueryService::submit`]; the
    /// reply arrives as [`StreamEvent`]s on the returned handle. Dropping
    /// the handle mid-stream cancels the remaining chunk work.
    pub fn submit_streaming(&self, sql: &str) -> Result<StreamHandle, QservError> {
        self.inner.submit_streaming(sql, None, None)
    }

    /// [`QueryService::submit_streaming`] with a span tree rooted at
    /// `root`, delivered in the terminal [`StreamDone`].
    pub fn submit_streaming_traced(
        &self,
        sql: &str,
        root: &str,
    ) -> Result<StreamHandle, QservError> {
        self.inner
            .submit_streaming(sql, Some(root.to_string()), None)
    }

    /// [`QueryService::submit_streaming`] with a wake callback invoked
    /// after each event is queued — the proxy's reactor hook — and an
    /// optional trace root.
    pub fn submit_streaming_with_notify(
        &self,
        sql: &str,
        root: Option<&str>,
        notify: Notifier,
    ) -> Result<StreamHandle, QservError> {
        self.inner
            .submit_streaming(sql, root.map(|s| s.to_string()), Some(notify))
    }

    /// Plans `sql` without executing it and renders the planner's
    /// choice — access path, predicate order with estimates, pushdown,
    /// cost — as a deterministic result table (the proxy's `EXPLAIN`
    /// verb). Plans are cached under an `EXPLAIN`-tagged key, disjoint
    /// from the entry the query's own results would occupy.
    pub fn explain(&self, sql: &str) -> Result<ResultTable, QservError> {
        self.inner.explain(sql)
    }

    /// Drops every cached result. Version bumps on load/attach already
    /// invalidate stale entries; this is the explicit hammer.
    pub fn clear_result_cache(&self) {
        self.inner
            .cache
            .lock()
            .expect("result cache poisoned")
            .clear();
    }

    /// Entries currently held by the result cache.
    pub fn result_cache_len(&self) -> usize {
        self.inner
            .cache
            .lock()
            .expect("result cache poisoned")
            .len()
    }

    /// Cancels a query by id; see [`KillOutcome`] for what happened.
    pub fn kill(&self, qid: u64) -> KillOutcome {
        self.inner.kill(qid)
    }

    /// Every query the service knows about (queued, running, and recent
    /// terminal), ascending by qid.
    pub fn status(&self) -> Vec<QueryStatus> {
        self.inner.status()
    }

    /// Point-in-time view of the service instruments (queue depths,
    /// wait/run histograms, admission counters).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.inner.metrics.registry.snapshot()
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        {
            let mut st = self.inner.state.lock().expect("service state poisoned");
            st.shutdown = true;
            // Stop running queries at their next boundary…
            for rec in st.records.values() {
                if rec.state == QueryState::Running {
                    rec.token.cancel();
                }
            }
            // …and drain the queue: every parked submitter gets a
            // Cancelled reply instead of hanging on a dead channel.
            let queued: Vec<u64> = st.pending.keys().copied().collect();
            let now = self.inner.clock.now();
            for qid in queued {
                st.sched.remove(qid);
                self.inner.finish_queued(&mut st, qid, now);
            }
        }
        self.inner.cv.notify_all();
        for h in self.executors.drain(..) {
            let _ = h.join();
        }
    }
}

/// Which reply shape a submission asked for.
enum SubmitMode {
    Buffered,
    Streaming(Option<Notifier>),
}

/// What [`Inner::submit_inner`] produced (matching the mode).
enum Submitted {
    Buffered(QueryHandle),
    Streaming(StreamHandle),
}

impl Inner {
    fn submit(&self, sql: &str, traced: Option<String>) -> Result<QueryHandle, QservError> {
        match self.submit_inner(sql, traced, SubmitMode::Buffered)? {
            Submitted::Buffered(h) => Ok(h),
            Submitted::Streaming(_) => unreachable!("buffered submit yields a buffered handle"),
        }
    }

    fn submit_streaming(
        &self,
        sql: &str,
        traced: Option<String>,
        notify: Option<Notifier>,
    ) -> Result<StreamHandle, QservError> {
        match self.submit_inner(sql, traced, SubmitMode::Streaming(notify))? {
            Submitted::Streaming(h) => Ok(h),
            Submitted::Buffered(_) => unreachable!("streaming submit yields a streaming handle"),
        }
    }

    fn submit_inner(
        &self,
        sql: &str,
        traced: Option<String>,
        mode: SubmitMode,
    ) -> Result<Submitted, QservError> {
        // Consult the result cache first: a hit bypasses admission
        // entirely (no queue slot, no executor) — that is the whole
        // point of caching repeated lookups.
        let mut cache_key = None;
        if self.cfg.cache_capacity_bytes > 0 {
            // The key's version sums the global data version with the
            // versions of the tables this query reads, so a per-table
            // bump orphans only the entries that touched that table.
            let (normalized, tables) = normalize_sql_tables(sql)?;
            let version = self.qserv.version_for_tables(&tables);
            let hit = self
                .cache
                .lock()
                .expect("result cache poisoned")
                .get(version, &normalized);
            if let Some(entry) = hit {
                self.metrics.cache_hit.inc();
                return Ok(self.serve_cached(sql, &entry, traced, mode));
            }
            cache_key = Some((version, normalized));
        }
        // Classify before admission: the cost is the chunk-set size the
        // master would dispatch, so a broken query errors here and a
        // scan cannot masquerade as interactive.
        let cost = self.qserv.chunk_count(sql)? as u64;
        if cost == 0 {
            // FROM-less constants never dispatch work; caching them
            // would only churn the budget.
            cache_key = None;
        }
        if cache_key.is_some() {
            self.metrics.cache_miss.inc();
        }
        let class = if cost <= self.cfg.interactive_chunk_threshold as u64 {
            QueryClass::Interactive
        } else {
            QueryClass::Scan
        };
        let token = CancelToken::new();
        let qid = self.next_qid.fetch_add(1, Ordering::Relaxed);
        let (reply, handle) = match mode {
            // Buffered by one: the executor's send always completes
            // even if the submitter abandoned the handle.
            SubmitMode::Buffered => {
                let (tx, rx) = mpsc::sync_channel(1);
                (
                    ReplyTo::Buffered(tx),
                    Submitted::Buffered(QueryHandle {
                        qid,
                        class,
                        token: token.clone(),
                        rx,
                    }),
                )
            }
            SubmitMode::Streaming(notify) => {
                let (tx, rx) = mpsc::sync_channel(STREAM_EVENT_BACKLOG);
                (
                    ReplyTo::Streaming { tx, notify },
                    Submitted::Streaming(StreamHandle {
                        qid,
                        class,
                        cache_hit: false,
                        token: token.clone(),
                        rx,
                    }),
                )
            }
        };
        {
            let mut st = self.state.lock().expect("service state poisoned");
            if st.shutdown {
                return Err(QservError::Cancelled);
            }
            if !st.sched.admit(qid, class, cost) {
                self.metrics.rejected[class.idx()].inc();
                return Err(QservError::Busy {
                    retry_after_ms: self.cfg.retry_after.as_millis() as u64,
                });
            }
            self.metrics.admitted[class.idx()].inc();
            let depth = st.sched.queued(class) as u64;
            self.metrics.queue_depth[class.idx()].set(depth);
            self.metrics.queue_peak[class.idx()].set_max(depth);
            let admitted_at = self.clock.now();
            st.pending.insert(
                qid,
                PendingEntry {
                    sql: sql.to_string(),
                    traced,
                    reply,
                    cache_key,
                    token: token.clone(),
                    admitted_at,
                },
            );
            st.records.insert(
                qid,
                Record {
                    class,
                    state: QueryState::Queued,
                    sql: display_sql(sql),
                    token: token.clone(),
                    admitted_at,
                    started_at: None,
                    finished_at: None,
                },
            );
            Self::prune_records(&mut st);
        }
        self.cv.notify_all();
        Ok(handle)
    }

    /// Plans `sql` without executing it (the proxy's `EXPLAIN` verb) and
    /// renders the chosen plan as a result table. Cached under an
    /// `EXPLAIN `-prefixed key — the verb is part of the key, so an
    /// EXPLAIN never serves (or populates) the result-cache entry of the
    /// query itself, and vice versa.
    fn explain(&self, sql: &str) -> Result<ResultTable, QservError> {
        let mut cache_key = None;
        if self.cfg.cache_capacity_bytes > 0 {
            let (normalized, tables) = normalize_sql_tables(sql)?;
            let version = self.qserv.version_for_tables(&tables);
            let key = format!("EXPLAIN {normalized}");
            let hit = self
                .cache
                .lock()
                .expect("result cache poisoned")
                .get(version, &key);
            if let Some(entry) = hit {
                self.metrics.cache_hit.inc();
                return Ok(entry.table.clone());
            }
            cache_key = Some((version, key));
        }
        let table = self.qserv.explain_table(sql)?;
        if let Some(key) = cache_key {
            self.metrics.cache_miss.inc();
            let types = infer_value_types(&table);
            self.populate_cache(
                key,
                CachedResult {
                    table: table.clone(),
                    types,
                    stats: QueryStats::default(),
                    class: QueryClass::Interactive,
                },
            );
        }
        Ok(table)
    }

    /// Replays a cached result as if the query ran instantly: a `Done`
    /// record for `STATUS`, a hit-annotated trace when asked, and the
    /// reply (or batch + done events) pre-loaded on the channel.
    fn serve_cached(
        &self,
        sql: &str,
        entry: &CachedResult,
        traced: Option<String>,
        mode: SubmitMode,
    ) -> Submitted {
        let qid = self.next_qid.fetch_add(1, Ordering::Relaxed);
        let class = entry.class;
        let token = CancelToken::new();
        let now = self.clock.now();
        {
            let mut st = self.state.lock().expect("service state poisoned");
            st.records.insert(
                qid,
                Record {
                    class,
                    state: QueryState::Done,
                    sql: display_sql(sql),
                    token: token.clone(),
                    admitted_at: now,
                    started_at: Some(now),
                    finished_at: Some(now),
                },
            );
            Self::prune_records(&mut st);
        }
        self.metrics.completed.inc();
        let trace = traced.map(|root_name| {
            let trace = Trace::new(self.clock.clone());
            {
                let root = trace::with_root(&trace, &root_name);
                root.annotate("sql", sql);
                let g = trace::span("service.cache");
                if let Some(g) = &g {
                    g.annotate("qid", &qid.to_string());
                    g.annotate("outcome", "hit");
                }
            }
            trace
        });
        match mode {
            SubmitMode::Buffered => {
                let (tx, rx) = mpsc::sync_channel(1);
                let _ = tx.try_send(ServiceReply {
                    qid,
                    class,
                    result: Ok((entry.table.clone(), entry.stats.clone())),
                    trace,
                    wait: Duration::ZERO,
                    run: Duration::ZERO,
                });
                Submitted::Buffered(QueryHandle {
                    qid,
                    class,
                    token,
                    rx,
                })
            }
            SubmitMode::Streaming(notify) => {
                let (tx, rx) = mpsc::sync_channel(STREAM_EVENT_BACKLOG);
                let _ = tx.try_send(StreamEvent::Batch(StreamBatch {
                    columns: entry.table.columns.clone(),
                    types: entry.types.clone(),
                    rows: entry.table.rows.clone(),
                }));
                let _ = tx.try_send(StreamEvent::Done(StreamDone {
                    qid,
                    class,
                    result: Ok(entry.stats.clone()),
                    trace,
                    wait: Duration::ZERO,
                    run: Duration::ZERO,
                    cache: CacheOutcome::Hit,
                }));
                if let Some(n) = &notify {
                    n();
                }
                Submitted::Streaming(StreamHandle {
                    qid,
                    class,
                    cache_hit: true,
                    token,
                    rx,
                })
            }
        }
    }

    /// One executor thread: take the scheduler's next ticket, run it,
    /// release the slot, repeat.
    fn executor_loop(&self) {
        loop {
            let (ticket, entry) = {
                let mut st = self.state.lock().expect("service state poisoned");
                loop {
                    if st.shutdown {
                        return;
                    }
                    if let Some(ticket) = st.sched.next_ticket() {
                        let entry = st
                            .pending
                            .remove(&ticket.qid)
                            .expect("scheduled ticket has a pending entry");
                        let now = self.clock.now();
                        if let Some(rec) = st.records.get_mut(&ticket.qid) {
                            rec.state = QueryState::Running;
                            rec.started_at = Some(now);
                        }
                        self.metrics.queue_depth[ticket.class.idx()]
                            .set(st.sched.queued(ticket.class) as u64);
                        self.metrics.running.set(st.sched.running_total() as u64);
                        break (ticket, entry);
                    }
                    st = self.cv.wait(st).expect("service state poisoned");
                }
            };
            let done = self.execute(&ticket, entry);
            {
                let mut st = self.state.lock().expect("service state poisoned");
                st.sched.complete(ticket.class);
                self.metrics.running.set(st.sched.running_total() as u64);
                let now = self.clock.now();
                if let Some(rec) = st.records.get_mut(&ticket.qid) {
                    rec.finished_at = Some(now);
                    rec.state = if done.ok {
                        QueryState::Done
                    } else if done.cancelled {
                        QueryState::Cancelled
                    } else {
                        QueryState::Failed
                    };
                }
                if done.ok {
                    self.metrics.completed.inc();
                } else if done.cancelled {
                    self.metrics.cancelled.inc();
                } else {
                    self.metrics.failed.inc();
                }
                self.metrics.wait_ms[ticket.class.idx()].record(done.wait.as_millis() as u64);
                self.metrics.run_ms[ticket.class.idx()].record(done.run.as_millis() as u64);
            }
            // Freed a slot: wake a peer in case the scheduler was
            // blocked on the concurrency limit.
            self.cv.notify_all();
            // Deliver after the record turned terminal, so a client that
            // sees the reply also sees a consistent STATUS. The
            // submitter may have dropped its handle; that is its loss,
            // not an executor error.
            (done.deliver)();
        }
    }

    /// Runs one admitted query on the master, under a trace when asked.
    /// Streaming replies deliver their batches *during* execution; only
    /// the terminal event is deferred into `deliver`.
    fn execute(&self, ticket: &Ticket, entry: PendingEntry) -> ExecDone {
        let started = self.clock.now();
        let PendingEntry {
            sql,
            traced,
            reply,
            cache_key,
            token,
            admitted_at,
        } = entry;
        let wait = started.saturating_sub(admitted_at);
        let cache_outcome = if cache_key.is_some() {
            CacheOutcome::Miss
        } else {
            CacheOutcome::Off
        };
        let qid = ticket.qid;
        let class = ticket.class;
        match reply {
            ReplyTo::Buffered(tx) => {
                let (result, trace) = match &traced {
                    Some(root_name) => {
                        let trace = Trace::new(self.clock.clone());
                        let outcome = {
                            let root = trace::with_root(&trace, root_name);
                            root.annotate("sql", &sql);
                            {
                                // The admission decision as a (zero-length)
                                // span: queue time itself elapsed before this
                                // trace existed, so it is carried as an
                                // annotation — a span over it would escape
                                // the root interval and fail `validate()`.
                                let g = trace::span("service.admit");
                                if let Some(g) = &g {
                                    g.annotate("qid", &qid.to_string());
                                    g.annotate("class", class.as_str());
                                    g.annotate("cost", &ticket.cost.to_string());
                                    g.annotate("wait_ms", &wait.as_millis().to_string());
                                    g.annotate("cache", cache_outcome.as_str());
                                }
                            }
                            let r = self.qserv.query_inner(&sql, &token);
                            if token.is_cancelled() {
                                let g = trace::span("service.cancel");
                                if let Some(g) = &g {
                                    g.annotate("qid", &qid.to_string());
                                }
                            }
                            r
                        };
                        (outcome.map(|(rows, qm)| (rows, qm.stats())), Some(trace))
                    }
                    None => (self.qserv.query_cancellable(&sql, &token), None),
                };
                if let (Some(key), Ok((table, stats))) = (cache_key, &result) {
                    self.populate_cache(
                        key,
                        CachedResult {
                            table: table.clone(),
                            types: infer_value_types(table),
                            stats: stats.clone(),
                            class,
                        },
                    );
                }
                let run = self.clock.now().saturating_sub(started);
                let ok = result.is_ok();
                let cancelled = matches!(result, Err(QservError::Cancelled));
                let service_reply = ServiceReply {
                    qid,
                    class,
                    result,
                    trace,
                    wait,
                    run,
                };
                ExecDone {
                    ok,
                    cancelled,
                    wait,
                    run,
                    deliver: Box::new(move || {
                        let _ = tx.try_send(service_reply);
                    }),
                }
            }
            ReplyTo::Streaming { tx, notify } => {
                // Collect a copy for the cache while streaming, unless
                // the result outgrows the per-entry cap along the way.
                let mut collector = cache_key.as_ref().map(|_| StreamCollector::default());
                let mut collected_bytes: u64 = 0;
                let max_entry = self.cfg.cache_max_entry_bytes;
                let mut sink = |batch: StreamBatch| -> bool {
                    if collector.is_some() {
                        collected_bytes =
                            collected_bytes.saturating_add(stream_batch_bytes(&batch));
                        if collected_bytes > max_entry {
                            collector = None;
                        } else if let Some(c) = collector.as_mut() {
                            c.push(batch.clone());
                        }
                    }
                    // A blocking send is the backpressure: the merge
                    // (and, through it, chunk dispatch) stalls until the
                    // client drains. A hung-up receiver errors the send,
                    // which cancels the rest of the query.
                    let delivered = tx.send(StreamEvent::Batch(batch)).is_ok();
                    if let Some(n) = &notify {
                        n();
                    }
                    delivered
                };
                let (result, trace) = match &traced {
                    Some(root_name) => {
                        let trace = Trace::new(self.clock.clone());
                        let r = {
                            let root = trace::with_root(&trace, root_name);
                            root.annotate("sql", &sql);
                            {
                                let g = trace::span("service.admit");
                                if let Some(g) = &g {
                                    g.annotate("qid", &qid.to_string());
                                    g.annotate("class", class.as_str());
                                    g.annotate("cost", &ticket.cost.to_string());
                                    g.annotate("wait_ms", &wait.as_millis().to_string());
                                    g.annotate("cache", cache_outcome.as_str());
                                }
                            }
                            let r = self.qserv.query_streaming(&sql, &token, &mut sink);
                            if token.is_cancelled() {
                                let g = trace::span("service.cancel");
                                if let Some(g) = &g {
                                    g.annotate("qid", &qid.to_string());
                                }
                            }
                            r
                        };
                        (r, Some(trace))
                    }
                    None => (self.qserv.query_streaming(&sql, &token, &mut sink), None),
                };
                if let (Some(key), Ok(stats), Some(c)) = (cache_key, &result, collector) {
                    self.populate_cache(
                        key,
                        CachedResult {
                            types: c.types().to_vec(),
                            table: c.table(),
                            stats: stats.clone(),
                            class,
                        },
                    );
                }
                let run = self.clock.now().saturating_sub(started);
                let ok = result.is_ok();
                let cancelled = matches!(result, Err(QservError::Cancelled));
                let done = StreamDone {
                    qid,
                    class,
                    result,
                    trace,
                    wait,
                    run,
                    cache: cache_outcome,
                };
                ExecDone {
                    ok,
                    cancelled,
                    wait,
                    run,
                    deliver: Box::new(move || {
                        let _ = tx.send(StreamEvent::Done(done));
                        if let Some(n) = &notify {
                            n();
                        }
                    }),
                }
            }
        }
    }

    /// Stores a completed result under its normalized key, charging the
    /// evict counter for whatever the byte budget pushed out.
    fn populate_cache(&self, key: (u64, String), entry: CachedResult) {
        let (version, normalized) = key;
        let evicted = self.cache.lock().expect("result cache poisoned").insert(
            version,
            normalized,
            Arc::new(entry),
        );
        if evicted > 0 {
            self.metrics.cache_evict.add(evicted);
        }
    }

    fn kill(&self, qid: u64) -> KillOutcome {
        let outcome = {
            let mut st = self.state.lock().expect("service state poisoned");
            let Some(state) = st.records.get(&qid).map(|r| r.state) else {
                return KillOutcome::Unknown;
            };
            match state {
                QueryState::Queued => {
                    st.sched.remove(qid);
                    let now = self.clock.now();
                    self.finish_queued(&mut st, qid, now);
                    KillOutcome::CancelledQueued
                }
                QueryState::Running => {
                    if let Some(rec) = st.records.get(&qid) {
                        rec.token.cancel();
                    }
                    KillOutcome::Cancelling
                }
                _ => KillOutcome::Finished,
            }
        };
        self.cv.notify_all();
        outcome
    }

    /// Finalizes a still-queued query as cancelled: reply sent, record
    /// closed, metrics updated. Caller already removed it from the
    /// scheduler and holds the state lock.
    fn finish_queued(&self, st: &mut ServiceState, qid: u64, now: Duration) {
        let Some(entry) = st.pending.remove(&qid) else {
            return;
        };
        let mut class = QueryClass::Interactive;
        if let Some(rec) = st.records.get_mut(&qid) {
            class = rec.class;
            rec.state = QueryState::Cancelled;
            rec.finished_at = Some(now);
        }
        entry.token.cancel();
        self.metrics.cancelled.inc();
        self.metrics.queue_depth[class.idx()].set(st.sched.queued(class) as u64);
        let wait = now.saturating_sub(entry.admitted_at);
        match entry.reply {
            ReplyTo::Buffered(tx) => {
                let _ = tx.try_send(ServiceReply {
                    qid,
                    class,
                    result: Err(QservError::Cancelled),
                    trace: None,
                    wait,
                    run: Duration::ZERO,
                });
            }
            // Nothing streamed yet (the query never ran), so the empty
            // channel has room for the terminal event.
            ReplyTo::Streaming { tx, notify } => {
                let _ = tx.try_send(StreamEvent::Done(StreamDone {
                    qid,
                    class,
                    result: Err(QservError::Cancelled),
                    trace: None,
                    wait,
                    run: Duration::ZERO,
                    cache: CacheOutcome::Off,
                }));
                if let Some(n) = &notify {
                    n();
                }
            }
        }
    }

    fn status(&self) -> Vec<QueryStatus> {
        let st = self.state.lock().expect("service state poisoned");
        let now = self.clock.now();
        st.records
            .iter()
            .map(|(&qid, rec)| {
                let wait = rec
                    .started_at
                    .or(rec.finished_at)
                    .unwrap_or(now)
                    .saturating_sub(rec.admitted_at);
                let run = match rec.started_at {
                    Some(s) => rec.finished_at.unwrap_or(now).saturating_sub(s),
                    None => Duration::ZERO,
                };
                QueryStatus {
                    qid,
                    class: rec.class,
                    state: rec.state,
                    sql: rec.sql.clone(),
                    wait,
                    run,
                }
            })
            .collect()
    }

    /// Caps the `STATUS` registry: oldest *terminal* records go first;
    /// queued/running entries are never pruned.
    fn prune_records(st: &mut ServiceState) {
        while st.records.len() > RECORD_HISTORY {
            let victim = st
                .records
                .iter()
                .find(|(_, r)| {
                    matches!(
                        r.state,
                        QueryState::Done | QueryState::Failed | QueryState::Cancelled
                    )
                })
                .map(|(&qid, _)| qid);
            match victim {
                Some(qid) => {
                    st.records.remove(&qid);
                }
                None => break,
            }
        }
    }
}

/// A finished execution: how it ended (for the record and metrics,
/// updated under the state lock) plus a deferred delivery closure (run
/// after the lock drops, so a blocked send never holds service state).
struct ExecDone {
    ok: bool,
    cancelled: bool,
    wait: Duration,
    run: Duration,
    deliver: Box<dyn FnOnce() + Send>,
}

fn display_sql(sql: &str) -> String {
    let flat: String = sql
        .chars()
        .map(|c| if c == '\n' || c == '\t' { ' ' } else { c })
        .collect();
    if flat.len() <= SQL_DISPLAY_LEN {
        flat
    } else {
        let cut = flat
            .char_indices()
            .take_while(|(i, _)| *i < SQL_DISPLAY_LEN)
            .last()
            .map(|(i, c)| i + c.len_utf8())
            .unwrap_or(0);
        format!("{}…", &flat[..cut])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(max_concurrent: usize, max_scan: usize) -> ServiceConfig {
        ServiceConfig {
            max_concurrent,
            max_scan_concurrent: max_scan,
            queue_capacity: 16,
            ..ServiceConfig::default()
        }
    }

    #[test]
    fn scan_cap_reserves_slots_for_interactive() {
        let mut s = FairScheduler::new(&cfg(4, 2));
        for qid in 0..6 {
            assert!(s.admit(qid, QueryClass::Scan, 100));
        }
        // Scans fill only their cap, not the whole service.
        assert_eq!(s.next_ticket().map(|t| t.class), Some(QueryClass::Scan));
        assert_eq!(s.next_ticket().map(|t| t.class), Some(QueryClass::Scan));
        assert_eq!(s.next_ticket(), None, "scan cap reached");
        // An interactive arrival gets one of the reserved slots at once.
        assert!(s.admit(100, QueryClass::Interactive, 1));
        assert_eq!(s.next_ticket().map(|t| t.qid), Some(100));
    }

    #[test]
    fn drr_interleaves_classes_under_contention() {
        let mut s = FairScheduler::new(&ServiceConfig {
            max_concurrent: 1,
            max_scan_concurrent: 1,
            interactive_quantum: 4,
            scan_quantum: 4,
            ..ServiceConfig::default()
        });
        // Equal quanta, equal costs: strict alternation.
        for qid in 0..4 {
            assert!(s.admit(qid, QueryClass::Interactive, 4));
            assert!(s.admit(10 + qid, QueryClass::Scan, 4));
        }
        let mut order = Vec::new();
        for _ in 0..8 {
            let t = s.next_ticket().expect("slot free");
            order.push(t.class);
            s.complete(t.class);
        }
        let interleaved = order.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(
            interleaved >= 6,
            "equal-weight DRR should alternate: {order:?}"
        );
    }

    #[test]
    fn expensive_scan_eventually_accumulates_credit() {
        let mut s = FairScheduler::new(&ServiceConfig {
            max_concurrent: 2,
            max_scan_concurrent: 1,
            interactive_quantum: 8,
            scan_quantum: 8,
            ..ServiceConfig::default()
        });
        assert!(s.admit(0, QueryClass::Scan, 1000));
        for qid in 1..5 {
            assert!(s.admit(qid, QueryClass::Interactive, 1));
        }
        // The scan's cost dwarfs any one quantum, yet next() terminates
        // and the scan is not starved out of its slot.
        let mut scan_started = false;
        for _ in 0..6 {
            match s.next_ticket() {
                Some(t) => {
                    if t.class == QueryClass::Scan {
                        scan_started = true;
                    }
                    s.complete(t.class);
                }
                None => break,
            }
        }
        assert!(scan_started, "an expensive scan must still be scheduled");
    }

    #[test]
    fn work_conserving_when_one_class_is_idle() {
        let mut s = FairScheduler::new(&cfg(2, 1));
        assert!(s.admit(0, QueryClass::Scan, 500));
        // No interactive waiters: the scan runs without deficit delay.
        assert_eq!(s.next_ticket().map(|t| t.qid), Some(0));
    }

    #[test]
    fn queue_capacity_rejects() {
        let mut s = FairScheduler::new(&ServiceConfig {
            queue_capacity: 2,
            ..ServiceConfig::default()
        });
        assert!(s.admit(0, QueryClass::Interactive, 1));
        assert!(s.admit(1, QueryClass::Interactive, 1));
        assert!(!s.admit(2, QueryClass::Interactive, 1), "queue is full");
        // The other class has its own queue.
        assert!(s.admit(3, QueryClass::Scan, 100));
    }

    #[test]
    fn remove_cancels_a_queued_ticket() {
        let mut s = FairScheduler::new(&cfg(2, 1));
        assert!(s.admit(7, QueryClass::Interactive, 1));
        assert!(s.remove(7));
        assert!(!s.remove(7), "already gone");
        assert_eq!(s.next_ticket(), None);
    }

    #[test]
    fn fifo_mode_is_arrival_ordered_and_uncapped() {
        let mut s = FairScheduler::new(&ServiceConfig {
            fifo: true,
            max_concurrent: 4,
            max_scan_concurrent: 1,
            ..ServiceConfig::default()
        });
        assert!(s.admit(0, QueryClass::Scan, 100));
        assert!(s.admit(1, QueryClass::Scan, 100));
        assert!(s.admit(2, QueryClass::Interactive, 1));
        // FIFO ignores the scan cap and the class queues: pure arrival
        // order — which is exactly how Figure 14's starvation happens.
        assert_eq!(s.next_ticket().map(|t| t.qid), Some(0));
        assert_eq!(s.next_ticket().map(|t| t.qid), Some(1));
        assert_eq!(s.next_ticket().map(|t| t.qid), Some(2));
    }

    #[test]
    fn concurrency_limit_blocks_until_complete() {
        let mut s = FairScheduler::new(&cfg(1, 1));
        assert!(s.admit(0, QueryClass::Interactive, 1));
        assert!(s.admit(1, QueryClass::Interactive, 1));
        let t = s.next_ticket().expect("first runs");
        assert_eq!(s.next_ticket(), None, "limit is 1");
        s.complete(t.class);
        assert_eq!(s.next_ticket().map(|t| t.qid), Some(1));
    }

    #[test]
    fn display_sql_truncates_on_char_boundary() {
        let long = "é".repeat(200);
        let shown = display_sql(&long);
        assert!(shown.ends_with('…'));
        assert!(shown.chars().count() <= SQL_DISPLAY_LEN + 1);
        assert_eq!(display_sql("SELECT 1"), "SELECT 1");
        assert_eq!(display_sql("a\nb\tc"), "a b c");
    }
}
