//! Per-query statistics as a thin view over a [`MetricsRegistry`].
//!
//! `QueryStats` used to be a hand-written struct that grew one field per
//! PR, updated by `&mut` threading through the dispatch paths. The
//! fields survive unchanged (tests read them directly), but they are now
//! *derived*: dispatch updates named instruments on a per-query
//! [`qserv_obs::MetricsRegistry`] — atomics, safe to touch from any
//! dispatcher thread — and [`QueryStats`] is built from a snapshot at
//! the end. New measurements (per-chunk latency and attempt histograms,
//! say) are one `registry.histogram(...)` call, not a struct change.

use qserv_obs::{Counter, Gauge, Histogram, MetricsRegistry, MetricsSnapshot};
use std::sync::Arc;

/// Canonical instrument names on a per-query registry.
pub mod names {
    /// Counter: chunk queries dispatched.
    pub const CHUNKS_DISPATCHED: &str = "query.chunks_dispatched";
    /// Gauge: rows accumulated into the master's merge state.
    pub const ROWS_MERGED: &str = "query.rows_merged";
    /// Counter: bytes of result text transferred from workers.
    pub const RESULT_BYTES: &str = "query.result_bytes";
    /// Gauge (0/1): secondary index restricted the chunk set.
    pub const USED_SECONDARY_INDEX: &str = "query.used_secondary_index";
    /// Gauge (0/1): spatial restriction narrowed the chunk set.
    pub const USED_SPATIAL_RESTRICTION: &str = "query.used_spatial_restriction";
    /// Counter: chunks needing more than one dispatch attempt.
    pub const CHUNKS_RETRIED: &str = "query.chunks_retried";
    /// Counter: retries that landed on a different replica.
    pub const REPLICA_FAILOVERS: &str = "query.replica_failovers";
    /// Counter: injected fabric faults observed (and retried past).
    pub const INJECTED_FAULTS_OBSERVED: &str = "query.injected_faults_observed";
    /// Counter: chunks never dispatched thanks to LIMIT cutoff.
    pub const CHUNKS_SKIPPED_BY_LIMIT: &str = "query.chunks_skipped_by_limit";
    /// Gauge (high-water): chunk results materialized at once.
    pub const PEAK_BUFFERED_PARTS: &str = "query.peak_buffered_parts";
    /// Gauge: ms from first incremental fold to last part arrival.
    pub const MERGE_OVERLAP_MS: &str = "query.merge_overlap_ms";
    /// Counter: chunks elided before dispatch by zone-map pruning.
    pub const CHUNKS_PRUNED: &str = "query.chunks_pruned";
    /// Counter: row-group pages elided by worker zone maps (cold scans).
    pub const PAGES_PRUNED: &str = "query.pages_pruned";
    /// Counter: row-group pages decoded from disk (cold scans).
    pub const PAGES_SCANNED: &str = "query.pages_scanned";
    /// Gauge: the planner's estimated merged-result row count.
    pub const PLANNER_EST_ROWS: &str = "planner.est_rows";
    /// Gauge: estimate-vs-actual q-error × 100 (100 = perfect).
    pub const PLANNER_QERROR_PCT: &str = "planner.qerror_pct";
    /// Gauge (0/1): the planner chose the secondary-index access path.
    pub const PLANNER_INDEX_LOOKUP: &str = "planner.index_lookup";
    /// Gauge (0/1): the planner pushed ORDER BY + LIMIT into the chunks.
    pub const PLANNER_TOPN_PUSHDOWN: &str = "planner.topn_pushdown";
    /// Gauge (0/1): the planner reordered the WHERE conjuncts.
    pub const PLANNER_REORDERED: &str = "planner.predicates_reordered";
    /// Histogram: dispatch attempts per completed chunk.
    pub const CHUNK_ATTEMPTS: &str = "chunk.attempts";
    /// Histogram: per-chunk dispatch latency (clock ns, retries included).
    pub const CHUNK_LATENCY_NS: &str = "chunk.dispatch_latency_ns";
}

/// Per-query execution statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Chunk queries dispatched.
    pub chunks_dispatched: usize,
    /// Rows accumulated into the master's merge table.
    pub rows_merged: usize,
    /// Bytes of result text transferred from workers.
    pub result_bytes: u64,
    /// True when the secondary index restricted the chunk set (§5.5).
    pub used_secondary_index: bool,
    /// True when the spatial restriction narrowed the chunk set (§5.3).
    pub used_spatial_restriction: bool,
    /// Chunks that needed more than one dispatch attempt.
    pub chunks_retried: usize,
    /// Retry attempts that landed on a different replica than the
    /// attempt before them.
    pub replica_failovers: usize,
    /// Injected fabric faults this query ran into (and retried past,
    /// when it succeeded).
    pub injected_faults_observed: u64,
    /// Chunks the streaming pipeline never dispatched because a
    /// pushed-down LIMIT was already satisfied (LIMIT-cutoff
    /// cancellation).
    pub chunks_skipped_by_limit: usize,
    /// High-water mark of chunk results held materialized at once by the
    /// merger (reorder buffer + any barrier buffering). The barrier path
    /// reports the full part count here.
    pub peak_buffered_parts: usize,
    /// Clock span (ms) from the first incremental fold to the last part
    /// arrival — the window in which merging overlapped dispatch. Zero
    /// on the barrier path, which merges only after dispatch ends.
    pub merge_overlap_ms: u64,
    /// Chunks elided before dispatch by the per-chunk zone maps.
    pub chunks_pruned: usize,
    /// Row-group pages workers elided via zone maps during cold scans.
    pub pages_pruned: u64,
    /// Row-group pages workers decoded from disk during cold scans.
    pub pages_scanned: u64,
    /// The planner's estimated merged-result row count (rounded).
    pub planner_est_rows: u64,
    /// Estimate-vs-actual q-error × 100 (100 = perfect estimate; 0 when
    /// the query never recorded an actual, e.g. errors or plain
    /// EXPLAIN).
    pub planner_qerror_pct: u64,
}

impl QueryStats {
    /// Builds the view from a registry snapshot (see [`names`]).
    pub fn from_snapshot(s: &MetricsSnapshot) -> QueryStats {
        QueryStats {
            chunks_dispatched: s.counter(names::CHUNKS_DISPATCHED) as usize,
            rows_merged: s.gauge(names::ROWS_MERGED) as usize,
            result_bytes: s.counter(names::RESULT_BYTES),
            used_secondary_index: s.gauge(names::USED_SECONDARY_INDEX) != 0,
            used_spatial_restriction: s.gauge(names::USED_SPATIAL_RESTRICTION) != 0,
            chunks_retried: s.counter(names::CHUNKS_RETRIED) as usize,
            replica_failovers: s.counter(names::REPLICA_FAILOVERS) as usize,
            injected_faults_observed: s.counter(names::INJECTED_FAULTS_OBSERVED),
            chunks_skipped_by_limit: s.counter(names::CHUNKS_SKIPPED_BY_LIMIT) as usize,
            peak_buffered_parts: s.gauge(names::PEAK_BUFFERED_PARTS) as usize,
            merge_overlap_ms: s.gauge(names::MERGE_OVERLAP_MS),
            chunks_pruned: s.counter(names::CHUNKS_PRUNED) as usize,
            pages_pruned: s.counter(names::PAGES_PRUNED),
            pages_scanned: s.counter(names::PAGES_SCANNED),
            planner_est_rows: s.gauge(names::PLANNER_EST_ROWS),
            planner_qerror_pct: s.gauge(names::PLANNER_QERROR_PCT),
        }
    }
}

/// Pre-created instrument handles on one per-query registry: what the
/// dispatch paths actually update. Cheap handles — clone freely into
/// dispatcher threads.
#[derive(Clone)]
pub(crate) struct QueryMetrics {
    registry: Arc<MetricsRegistry>,
    pub chunks_dispatched: Counter,
    pub rows_merged: Gauge,
    pub result_bytes: Counter,
    pub used_secondary_index: Gauge,
    pub used_spatial_restriction: Gauge,
    pub chunks_retried: Counter,
    pub replica_failovers: Counter,
    pub injected_faults_observed: Counter,
    pub chunks_skipped_by_limit: Counter,
    pub peak_buffered_parts: Gauge,
    pub merge_overlap_ms: Gauge,
    pub chunks_pruned: Counter,
    pub pages_pruned: Counter,
    pub pages_scanned: Counter,
    pub planner_est_rows: Gauge,
    pub planner_qerror_pct: Gauge,
    pub planner_index_lookup: Gauge,
    pub planner_topn_pushdown: Gauge,
    pub planner_reordered: Gauge,
    pub chunk_attempts: Histogram,
    pub chunk_latency_ns: Histogram,
}

impl QueryMetrics {
    /// Handles over a fresh registry.
    pub fn new() -> QueryMetrics {
        let registry = Arc::new(MetricsRegistry::new());
        QueryMetrics {
            chunks_dispatched: registry.counter(names::CHUNKS_DISPATCHED),
            rows_merged: registry.gauge(names::ROWS_MERGED),
            result_bytes: registry.counter(names::RESULT_BYTES),
            used_secondary_index: registry.gauge(names::USED_SECONDARY_INDEX),
            used_spatial_restriction: registry.gauge(names::USED_SPATIAL_RESTRICTION),
            chunks_retried: registry.counter(names::CHUNKS_RETRIED),
            replica_failovers: registry.counter(names::REPLICA_FAILOVERS),
            injected_faults_observed: registry.counter(names::INJECTED_FAULTS_OBSERVED),
            chunks_skipped_by_limit: registry.counter(names::CHUNKS_SKIPPED_BY_LIMIT),
            peak_buffered_parts: registry.gauge(names::PEAK_BUFFERED_PARTS),
            merge_overlap_ms: registry.gauge(names::MERGE_OVERLAP_MS),
            chunks_pruned: registry.counter(names::CHUNKS_PRUNED),
            pages_pruned: registry.counter(names::PAGES_PRUNED),
            pages_scanned: registry.counter(names::PAGES_SCANNED),
            planner_est_rows: registry.gauge(names::PLANNER_EST_ROWS),
            planner_qerror_pct: registry.gauge(names::PLANNER_QERROR_PCT),
            planner_index_lookup: registry.gauge(names::PLANNER_INDEX_LOOKUP),
            planner_topn_pushdown: registry.gauge(names::PLANNER_TOPN_PUSHDOWN),
            planner_reordered: registry.gauge(names::PLANNER_REORDERED),
            chunk_attempts: registry.histogram(names::CHUNK_ATTEMPTS),
            chunk_latency_ns: registry.histogram(names::CHUNK_LATENCY_NS),
            registry,
        }
    }

    /// Point-in-time view of every instrument.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// The classic stats view.
    pub fn stats(&self) -> QueryStats {
        QueryStats::from_snapshot(&self.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_view_reflects_instruments() {
        let qm = QueryMetrics::new();
        qm.chunks_dispatched.add(7);
        qm.rows_merged.set(123);
        qm.result_bytes.add(4096);
        qm.used_secondary_index.set(1);
        qm.chunks_retried.inc();
        qm.injected_faults_observed.add(3);
        qm.peak_buffered_parts.set_max(5);
        qm.peak_buffered_parts.set_max(2);
        let s = qm.stats();
        assert_eq!(s.chunks_dispatched, 7);
        assert_eq!(s.rows_merged, 123);
        assert_eq!(s.result_bytes, 4096);
        assert!(s.used_secondary_index);
        assert!(!s.used_spatial_restriction);
        assert_eq!(s.chunks_retried, 1);
        assert_eq!(s.injected_faults_observed, 3);
        assert_eq!(s.peak_buffered_parts, 5);
    }

    #[test]
    fn empty_registry_views_as_default_stats() {
        assert_eq!(QueryMetrics::new().stats(), QueryStats::default());
    }

    #[test]
    fn histograms_ride_along_in_the_snapshot() {
        let qm = QueryMetrics::new();
        qm.chunk_attempts.record(1);
        qm.chunk_attempts.record(3);
        let snap = qm.snapshot();
        let h = snap.histogram(names::CHUNK_ATTEMPTS);
        assert_eq!((h.count, h.sum, h.max), (2, 4, 3));
        // The view ignores histograms; the snapshot carries them.
        assert_eq!(QueryStats::from_snapshot(&snap).chunks_dispatched, 0);
    }
}
