//! Physical query generation (paper §5.3–5.4).
//!
//! Turns an analyzed user statement into (a) a *chunk query template*
//! rendered per chunk for worker execution, and (b) the *merge query* the
//! master runs over the gathered results. The paper's worked example is
//! the specification:
//!
//! > The `AVG(uFlux_SG)` function call is converted into a
//! > `SUM(uFlux_SG)` and `COUNT(uFlux_SG)` pair for chunk queries and
//! > ``SUM(`SUM(uFlux_SG)`) / SUM(`COUNT(uFlux_SG)`)`` to aggregate the
//! > resulting rows… The reference to the `Object` table is converted to
//! > `LSST.Object_CC`… The `qserv_areaspec_box(…)` pseudo-function call…
//! > is rewritten as `qserv_ptInSphericalBox(ra_PS, decl_PS, …) = 1`.
//!
//! Worker-side table naming (paper §5.2 plus the overlap stores of §4.4):
//!
//! | name                 | contents                                      |
//! |----------------------|-----------------------------------------------|
//! | `T_CC`               | rows owned by chunk CC                        |
//! | `TOverlap_CC`        | neighbours' rows within overlap of CC         |
//! | `TUnion_CC`          | `T_CC ∪ TOverlap_CC` (generated on demand)    |
//! | `T_CC_SS`            | owned rows in subchunk SS (on demand)         |
//! | `TFullOverlap_CC_SS` | all rows in SS dilated by overlap (on demand) |

use crate::analysis::{Analysis, JoinClass, SpatialSpec};
use crate::error::QservError;
use crate::meta::CatalogMeta;
use qserv_engine::eval::is_aggregate;
use qserv_sqlparse::ast::{BinaryOp, Expr, Projection, SelectStatement, TableRef};

/// The distributable form of one user query.
#[derive(Clone, Debug)]
pub struct PhysicalPlan {
    /// Chunk-query template. FROM still names logical tables;
    /// [`render_chunk_message`] substitutes per-chunk physical names.
    pub chunk_stmt: SelectStatement,
    /// The master's merge query over the accumulated `result` table.
    pub merge_stmt: SelectStatement,
    /// Join classification carried from analysis.
    pub join: JoinClass,
    /// Indices into `chunk_stmt.from` of partitioned tables.
    pub partitioned: Vec<usize>,
    /// Spatial restriction carried from analysis (for chunk selection).
    pub spatial: Option<SpatialSpec>,
    /// How chunk results can be folded into merge state incrementally.
    pub shape: MergeShape,
}

/// How the master's streaming pipeline (`crate::merge`) may fold chunk
/// results into merge state as they arrive, classified once at plan time
/// from the merge statement. `Barrier` — buffer every part and run the
/// row-at-a-time `merge_tables` + merge-query oracle — is always safe;
/// the other shapes are proven equivalent to it by the streaming-merge
/// property test.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MergeShape {
    /// Non-aggregated, no merge-side ORDER BY: append rows as they
    /// arrive. When `cutoff` is set (a pushed-down `LIMIT n`), the
    /// pipeline is satisfied after n rows and the remaining chunk queue
    /// can be cancelled — undispatched chunks are never sent.
    Append {
        /// The pushed-down row budget, if any.
        cutoff: Option<u64>,
    },
    /// Non-aggregated `ORDER BY … LIMIT n`: a bounded top-n heap replaces
    /// the full sort input. Sort keys are resolved against the first
    /// part's column names; if any key needs expression evaluation
    /// (the engine's hidden-sort-key path) the merger downgrades itself
    /// to `Barrier` at run time.
    TopN {
        /// The result-row budget bounding the heap.
        n: u64,
    },
    /// Aggregated: one combine role per chunk-statement projection. Each
    /// arriving partial-aggregate table folds into running per-group
    /// state, so peak master memory is O(groups), not O(Σ chunk results).
    Fold {
        /// Roles parallel to `chunk_stmt.projections`.
        roles: Vec<ColumnRole>,
    },
    /// Cross-catalog XMatch keep-nearest: per distinct `key` value keep
    /// the single row whose `dist` column is smallest (ties broken by a
    /// deterministic full-row comparison), emitting rows in ascending
    /// key order at finish. Installed by the frontend's XMatch operator
    /// — [`classify_merge`] never produces it, because the merge SQL
    /// subset cannot express a per-group argmin.
    Nearest {
        /// Chunk-result column carrying the match key (catalog A's id).
        key: String,
        /// Chunk-result column carrying the candidate distance.
        dist: String,
    },
    /// Not incrementally foldable: buffer all parts, then run the oracle
    /// verbatim.
    Barrier,
}

/// What the merge statement does with one chunk-result column.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColumnRole {
    /// GROUP BY key: part of group identity; first-seen value kept.
    Key,
    /// Passed through: first-seen value per group kept (the engine's
    /// representative-row semantics).
    Rep,
    /// Folded with SUM.
    Sum,
    /// Folded with MIN.
    Min,
    /// Folded with MAX.
    Max,
}

/// Classifies how the merge statement can consume chunk results
/// incrementally. Anything this function does not recognize — qualified
/// columns, aggregate calls other than SUM/MIN/MAX over a plain result
/// column, a column both folded and projected bare — lands on
/// [`MergeShape::Barrier`], never on a wrong fold.
fn classify_merge(
    chunk_stmt: &SelectStatement,
    merge_stmt: &SelectStatement,
    aggregated: bool,
) -> MergeShape {
    if !aggregated {
        return if merge_stmt.order_by.is_empty() {
            MergeShape::Append {
                cutoff: merge_stmt.limit,
            }
        } else if let Some(n) = merge_stmt.limit {
            MergeShape::TopN { n }
        } else {
            // Full sort at finish: append everything, let the merge
            // query order it.
            MergeShape::Append { cutoff: None }
        };
    }

    let cols: Vec<String> = chunk_stmt
        .projections
        .iter()
        .map(|p| p.output_name())
        .collect();
    let position = |name: &str| cols.iter().position(|c| c == name);
    let mut roles = vec![ColumnRole::Rep; cols.len()];
    // Rep is the unclaimed default; a column may be claimed once (or
    // repeatedly for the same role — shared components like the SUM of
    // an AVG+SUM pair).
    fn assign(roles: &mut [ColumnRole], i: usize, r: ColumnRole) -> bool {
        if roles[i] == ColumnRole::Rep || roles[i] == r {
            roles[i] = r;
            true
        } else {
            false
        }
    }

    for g in &merge_stmt.group_by {
        let Expr::Column {
            qualifier: None,
            name,
            ..
        } = g
        else {
            return MergeShape::Barrier;
        };
        let Some(i) = position(name) else {
            return MergeShape::Barrier;
        };
        if !assign(&mut roles, i, ColumnRole::Key) {
            return MergeShape::Barrier;
        }
    }

    for p in &merge_stmt.projections {
        // Every aggregate call must be SUM/MIN/MAX over one unqualified
        // result column; every column occurrence outside an aggregate
        // argument must be a Key/Rep passthrough.
        let mut aggs: Vec<(String, Vec<Expr>)> = Vec::new();
        let mut foldable = true;
        let mut occurrences: Vec<String> = Vec::new();
        p.expr.visit(&mut |e| match e {
            Expr::Function { name, args } if is_aggregate(name) => {
                aggs.push((name.clone(), args.clone()));
            }
            Expr::Column {
                qualifier, name, ..
            } => {
                if qualifier.is_some() {
                    foldable = false;
                }
                occurrences.push(name.clone());
            }
            _ => {}
        });
        if !foldable {
            return MergeShape::Barrier;
        }
        let mut inside_aggs: Vec<String> = Vec::new();
        for (name, args) in &aggs {
            let role = match name.to_ascii_lowercase().as_str() {
                "sum" => ColumnRole::Sum,
                "min" => ColumnRole::Min,
                "max" => ColumnRole::Max,
                // COUNT and AVG never survive to the merge side of a
                // two-phase split; seeing one means an unknown rewrite.
                _ => return MergeShape::Barrier,
            };
            let [Expr::Column {
                qualifier: None,
                name: col,
                ..
            }] = args.as_slice()
            else {
                return MergeShape::Barrier;
            };
            let Some(i) = position(col) else {
                return MergeShape::Barrier;
            };
            if !assign(&mut roles, i, role) {
                return MergeShape::Barrier;
            }
            inside_aggs.push(col.clone());
        }
        // Occurrence counting: a column referenced more often than it is
        // consumed by aggregate arguments also appears bare.
        for name in &occurrences {
            let total = occurrences.iter().filter(|n| *n == name).count();
            let consumed = inside_aggs.iter().filter(|n| *n == name).count();
            if total > consumed {
                let Some(i) = position(name) else {
                    return MergeShape::Barrier;
                };
                if !matches!(roles[i], ColumnRole::Key | ColumnRole::Rep) {
                    return MergeShape::Barrier;
                }
            }
        }
    }

    MergeShape::Fold { roles }
}

/// Builds the physical plan from an analysis.
pub fn build_plan(analysis: &Analysis, meta: &CatalogMeta) -> Result<PhysicalPlan, QservError> {
    let mut chunk_stmt = analysis.stmt.clone();

    if analysis.partitioned.is_empty() && !chunk_stmt.from.is_empty() {
        return Err(QservError::Analysis(
            "query references no partitioned table; nothing to distribute".to_string(),
        ));
    }
    if matches!(
        analysis.join,
        JoinClass::ChunkEqui | JoinClass::SubchunkNear
    ) && chunk_stmt
        .projections
        .iter()
        .any(|p| matches!(p.expr, Expr::Star))
    {
        return Err(QservError::Analysis(
            "SELECT * is not supported in joins (duplicate column names); project columns explicitly"
                .to_string(),
        ));
    }

    // Pin binding names: give every partitioned table an explicit alias so
    // column qualifiers keep resolving after the table is renamed to its
    // chunk form.
    for &i in &analysis.partitioned {
        let t = &mut chunk_stmt.from[i];
        if t.alias.is_none() {
            t.alias = Some(t.table.clone());
        }
    }

    // Re-materialize the spatial restriction as a worker UDF predicate
    // on the first partitioned table's partition columns (§5.3's
    // `qserv_ptInSphericalBox(ra_PS, decl_PS, ...) = 1`; circles become
    // `qserv_angSep(ra_PS, decl_PS, center...) <= r`).
    if let Some(spec) = &analysis.spatial {
        let director = &chunk_stmt.from[analysis.partitioned[0]];
        let pinfo = meta
            .partition_info(&director.table)
            .expect("analysis guarantees the table is partitioned");
        let binding = director.binding_name().to_string();
        let pred = match spec {
            SpatialSpec::Box(b) => Expr::binary(
                Expr::func(
                    "qserv_ptInSphericalBox",
                    vec![
                        Expr::qcol(&binding, &pinfo.lon_col),
                        Expr::qcol(&binding, &pinfo.lat_col),
                        Expr::float(b.lon_min_deg()),
                        Expr::float(b.lat_min_deg()),
                        Expr::float(b.lon_min_deg() + b.lon_extent_deg()),
                        Expr::float(b.lat_max_deg()),
                    ],
                ),
                BinaryOp::Eq,
                Expr::int(1),
            ),
            SpatialSpec::Circle { ra, decl, radius } => Expr::binary(
                Expr::func(
                    "qserv_angSep",
                    vec![
                        Expr::qcol(&binding, &pinfo.lon_col),
                        Expr::qcol(&binding, &pinfo.lat_col),
                        Expr::float(*ra),
                        Expr::float(*decl),
                    ],
                ),
                BinaryOp::LtEq,
                Expr::float(*radius),
            ),
        };
        chunk_stmt.where_clause = Some(match chunk_stmt.where_clause.take() {
            Some(w) => Expr::and(pred, w),
            None => pred,
        });
    }

    // Split projections for two-phase aggregation.
    let merge_stmt = if analysis.aggregated {
        split_aggregates(&mut chunk_stmt)
    } else {
        plain_merge(&mut chunk_stmt)
    };

    let shape = classify_merge(&chunk_stmt, &merge_stmt, analysis.aggregated);
    Ok(PhysicalPlan {
        chunk_stmt,
        merge_stmt,
        join: analysis.join,
        partitioned: analysis.partitioned.clone(),
        spatial: analysis.spatial,
        shape,
    })
}

/// For a non-aggregated query: chunk queries project the user expressions
/// (aliased to stable output names) and the merge passes rows through with
/// the user's ORDER BY / LIMIT.
fn plain_merge(chunk_stmt: &mut SelectStatement) -> SelectStatement {
    for p in chunk_stmt.projections.iter_mut() {
        if p.alias.is_none() && !matches!(p.expr, Expr::Column { .. } | Expr::Star) {
            p.alias = Some(p.expr.to_sql());
        }
    }
    let merge = SelectStatement {
        projections: vec![Projection {
            expr: Expr::Star,
            alias: None,
        }],
        from: vec![TableRef::named("result")],
        where_clause: None,
        group_by: vec![],
        order_by: chunk_stmt.order_by.clone(),
        limit: chunk_stmt.limit,
    };
    // LIMIT may be pushed to chunk queries only when there is no ORDER BY
    // (any N rows per chunk then suffice). With an ORDER BY, every chunk
    // must return all matches so the merge can pick the global top-N.
    if !chunk_stmt.order_by.is_empty() {
        chunk_stmt.limit = None;
    }
    chunk_stmt.order_by.clear();
    merge
}

/// A backtick-quoted reference to a chunk-result column.
fn result_col(name: &str) -> Expr {
    Expr::Column {
        qualifier: None,
        name: name.to_string(),
        quoted: true,
    }
}

/// Rewrites aggregated projections into the chunk/merge pair of §5.3,
/// replacing `chunk_stmt`'s projections with component aggregates and
/// group keys and returning the merge statement.
fn split_aggregates(chunk_stmt: &mut SelectStatement) -> SelectStatement {
    let mut chunk_projs: Vec<Projection> = Vec::new();
    let mut merge_projs: Vec<Projection> = Vec::new();

    let add_chunk_proj = |chunk_projs: &mut Vec<Projection>, expr: Expr, name: &str| {
        if !chunk_projs.iter().any(|p| p.alias.as_deref() == Some(name)) {
            chunk_projs.push(Projection {
                expr,
                alias: Some(name.to_string()),
            });
        }
    };

    for p in &chunk_stmt.projections {
        let out_name = p.output_name();

        // Pass 1: find the aggregate calls in this projection and add
        // their chunk-level components.
        let mut aggs: Vec<Expr> = Vec::new();
        p.expr.visit(&mut |e| {
            if let Expr::Function { name, .. } = e {
                if is_aggregate(name) && !aggs.contains(e) {
                    aggs.push(e.clone());
                }
            }
        });
        for a in &aggs {
            let (name, args) = match a {
                Expr::Function { name, args } => (name.to_ascii_lowercase(), args),
                _ => unreachable!("aggs holds Function nodes only"),
            };
            match (name.as_str(), args.first()) {
                ("avg", Some(arg)) => {
                    let sum_name = format!("SUM({})", arg.to_sql());
                    let cnt_name = format!("COUNT({})", arg.to_sql());
                    add_chunk_proj(
                        &mut chunk_projs,
                        Expr::func("SUM", vec![arg.clone()]),
                        &sum_name,
                    );
                    add_chunk_proj(
                        &mut chunk_projs,
                        Expr::func("COUNT", vec![arg.clone()]),
                        &cnt_name,
                    );
                }
                _ => {
                    add_chunk_proj(&mut chunk_projs, a.clone(), &a.to_sql());
                }
            }
        }

        if aggs.is_empty() {
            // A group key (or per-group constant): chunk projects it, merge
            // passes it through by output name.
            add_chunk_proj(&mut chunk_projs, p.expr.clone(), &out_name);
            merge_projs.push(Projection {
                expr: result_col(&out_name),
                alias: Some(out_name),
            });
        } else {
            // Pass 2: rewrite the projection, mapping each aggregate node
            // to its merge-side expression (a pure function of the node).
            let merge_expr = p.expr.clone().rewrite(&mut |e| {
                if let Expr::Function { name, args } = &e {
                    if is_aggregate(name) {
                        let sql = e.to_sql();
                        let lname = name.to_ascii_lowercase();
                        return match (lname.as_str(), args.first()) {
                            ("avg", Some(arg)) => Expr::binary(
                                Expr::func(
                                    "SUM",
                                    vec![result_col(&format!("SUM({})", arg.to_sql()))],
                                ),
                                BinaryOp::Div,
                                Expr::func(
                                    "SUM",
                                    vec![result_col(&format!("COUNT({})", arg.to_sql()))],
                                ),
                            ),
                            ("count", _) | ("sum", _) => Expr::func("SUM", vec![result_col(&sql)]),
                            ("min", _) => Expr::func("MIN", vec![result_col(&sql)]),
                            ("max", _) => Expr::func("MAX", vec![result_col(&sql)]),
                            _ => e,
                        };
                    }
                }
                e
            });
            merge_projs.push(Projection {
                expr: merge_expr,
                alias: Some(out_name),
            });
        }
    }

    // GROUP BY: the chunk query groups by the user's expressions; the
    // merge re-groups by the corresponding chunk-result columns. Keys not
    // already projected get hidden projections.
    let mut merge_group_by = Vec::new();
    for (i, g) in chunk_stmt.group_by.iter().enumerate() {
        let gsql = g.to_sql();
        // A chunk projection whose expression (or alias target) is this key?
        let existing = chunk_projs
            .iter()
            .find(|p| p.expr.to_sql() == gsql || p.alias.as_deref() == Some(gsql.as_str()));
        let col_name = match existing {
            Some(p) => p.output_name(),
            None => {
                let hidden = format!("QS_GB{i}");
                chunk_projs.push(Projection {
                    expr: g.clone(),
                    alias: Some(hidden.clone()),
                });
                hidden
            }
        };
        merge_group_by.push(result_col(&col_name));
    }

    let merge = SelectStatement {
        projections: merge_projs,
        from: vec![TableRef::named("result")],
        where_clause: None,
        group_by: merge_group_by,
        order_by: chunk_stmt.order_by.clone(),
        limit: chunk_stmt.limit,
    };
    chunk_stmt.projections = chunk_projs;
    chunk_stmt.order_by.clear();
    chunk_stmt.limit = None; // LIMIT on partial aggregates would be wrong
    merge
}

/// The physical table name of chunk `CC` for base table `t`.
pub fn chunk_table(t: &str, chunk: i32) -> String {
    format!("{t}_{chunk}")
}

/// The overlap-store table of chunk `CC` (loader-created).
pub fn overlap_table(t: &str, chunk: i32) -> String {
    format!("{t}Overlap_{chunk}")
}

/// The on-demand chunk ∪ overlap union table.
pub fn union_table(t: &str, chunk: i32) -> String {
    format!("{t}Union_{chunk}")
}

/// The on-demand subchunk table `T_CC_SS`.
pub fn subchunk_table(t: &str, chunk: i32, subchunk: i32) -> String {
    format!("{t}_{chunk}_{subchunk}")
}

/// The on-demand dilated subchunk table `TFullOverlap_CC_SS`.
pub fn full_overlap_table(t: &str, chunk: i32, subchunk: i32) -> String {
    format!("{t}FullOverlap_{chunk}_{subchunk}")
}

/// Renders the full dispatch message for one chunk: the `-- SUBCHUNKS:`
/// header line followed by one or more `;`-terminated SQL statements
/// (paper §5.4 "Chunk Query Representation").
pub fn render_chunk_message(
    plan: &PhysicalPlan,
    meta: &CatalogMeta,
    chunk: i32,
    subchunks: &[i32],
) -> String {
    let mut msg = String::from("-- SUBCHUNKS:");
    for (i, s) in subchunks.iter().enumerate() {
        if i > 0 {
            msg.push(',');
        }
        msg.push(' ');
        msg.push_str(&s.to_string());
    }
    msg.push('\n');

    let db = meta.database().to_string();
    match plan.join {
        JoinClass::None | JoinClass::ChunkEqui => {
            let mut stmt = plan.chunk_stmt.clone();
            for (pos, &i) in plan.partitioned.iter().enumerate() {
                let t = &mut stmt.from[i];
                t.database = Some(db.clone());
                t.table = if plan.join == JoinClass::ChunkEqui && pos == 1 {
                    // Second binding reads chunk ∪ overlap so borderline
                    // partners are never missed (§4.4 "Overlap").
                    union_table(&t.table, chunk)
                } else {
                    chunk_table(&t.table, chunk)
                };
            }
            msg.push_str(&stmt.to_sql());
            msg.push_str(";\n");
        }
        JoinClass::SubchunkNear => {
            // One statement per subchunk: o1 over the subchunk's owned
            // rows, o2 over the overlap-dilated subchunk (§4.4, §5.2).
            for &ss in subchunks {
                let mut stmt = plan.chunk_stmt.clone();
                for (pos, &i) in plan.partitioned.iter().enumerate() {
                    let t = &mut stmt.from[i];
                    t.database = Some(db.clone());
                    t.table = if pos == 0 {
                        subchunk_table(&t.table, chunk, ss)
                    } else {
                        full_overlap_table(&t.table, chunk, ss)
                    };
                }
                msg.push_str(&stmt.to_sql());
                msg.push_str(";\n");
            }
        }
    }
    msg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use qserv_sqlparse::parse_select;

    fn plan_for(sql: &str) -> PhysicalPlan {
        let meta = CatalogMeta::lsst();
        let a = analyze(&parse_select(sql).unwrap(), &meta).unwrap();
        build_plan(&a, &meta).unwrap()
    }

    #[test]
    fn paper_example_from_5_3() {
        // The worked example of §5.3.
        let p = plan_for(
            "SELECT AVG(uFlux_SG) FROM Object \
             WHERE qserv_areaspec_box(0.0, 0.0, 10.0, 10.0) AND uRadius_PS > 0.04;",
        );
        let chunk_sql = p.chunk_stmt.to_sql();
        assert!(
            chunk_sql.contains("SUM(uFlux_SG) AS `SUM(uFlux_SG)`"),
            "chunk query must split AVG into SUM: {chunk_sql}"
        );
        assert!(
            chunk_sql.contains("COUNT(uFlux_SG) AS `COUNT(uFlux_SG)`"),
            "…and COUNT: {chunk_sql}"
        );
        assert!(
            chunk_sql.contains(
                "qserv_ptInSphericalBox(Object.ra_PS, Object.decl_PS, 0.0, 0.0, 10.0, 10.0) = 1"
            ),
            "areaspec must become the worker UDF predicate: {chunk_sql}"
        );
        assert!(chunk_sql.contains("uRadius_PS > 0.04"));
        let merge_sql = p.merge_stmt.to_sql();
        assert!(
            merge_sql.contains("SUM(`SUM(uFlux_SG)`) / SUM(`COUNT(uFlux_SG)`)"),
            "merge must recombine the pair: {merge_sql}"
        );
        assert!(merge_sql.contains("FROM result"));
    }

    #[test]
    fn chunk_table_substitution_like_paper() {
        let p = plan_for("SELECT COUNT(*) FROM Object");
        let msg = render_chunk_message(&p, &CatalogMeta::lsst(), 1234, &[]);
        assert!(
            msg.contains("FROM LSST.Object_1234 AS Object"),
            "table must become LSST.Object_CC: {msg}"
        );
        assert!(msg.starts_with("-- SUBCHUNKS:\n"), "header first: {msg}");
        assert!(msg.trim_end().ends_with(';'));
    }

    #[test]
    fn count_star_merge_is_sum() {
        let p = plan_for("SELECT COUNT(*) FROM Object");
        assert!(p.chunk_stmt.to_sql().contains("COUNT(*) AS `COUNT(*)`"));
        let merge = p.merge_stmt.to_sql();
        assert!(merge.contains("SUM(`COUNT(*)`) AS `COUNT(*)`"), "{merge}");
    }

    #[test]
    fn min_max_merge_preserved() {
        let p = plan_for("SELECT MIN(ra_PS), MAX(ra_PS) FROM Object");
        let merge = p.merge_stmt.to_sql();
        assert!(merge.contains("MIN(`MIN(ra_PS)`)"));
        assert!(merge.contains("MAX(`MAX(ra_PS)`)"));
    }

    #[test]
    fn hv3_group_by_round_trip() {
        let p = plan_for(
            "SELECT count(*) AS n, AVG(ra_PS), AVG(decl_PS), chunkId \
             FROM Object GROUP BY chunkId",
        );
        let chunk = p.chunk_stmt.to_sql();
        // Chunk query groups by chunkId and projects it plus components.
        assert!(chunk.contains("GROUP BY chunkId"));
        assert!(chunk.contains("count(*) AS `count(*)`"));
        assert!(chunk.contains("SUM(ra_PS)"));
        assert!(chunk.contains("COUNT(decl_PS)"));
        assert!(chunk.contains("chunkId"));
        let merge = p.merge_stmt.to_sql();
        assert!(merge.contains("SUM(`count(*)`) AS n"), "{merge}");
        assert!(merge.contains("GROUP BY `chunkId`"), "{merge}");
        assert!(merge.contains("AS `AVG(ra_PS)`"), "{merge}");
    }

    #[test]
    fn group_key_not_projected_gets_hidden_column() {
        let p = plan_for("SELECT COUNT(*) FROM Object GROUP BY chunkId");
        let chunk = p.chunk_stmt.to_sql();
        assert!(chunk.contains("chunkId AS QS_GB0"), "{chunk}");
        let merge = p.merge_stmt.to_sql();
        assert!(merge.contains("GROUP BY `QS_GB0`"), "{merge}");
        // But the hidden key is not a merge output column.
        assert!(!merge.contains("QS_GB0`,"));
    }

    #[test]
    fn shared_aggregate_component_deduplicated() {
        let p = plan_for("SELECT AVG(ra_PS), SUM(ra_PS) FROM Object");
        let sums = p
            .chunk_stmt
            .projections
            .iter()
            .filter(|x| x.alias.as_deref() == Some("SUM(ra_PS)"))
            .count();
        assert_eq!(sums, 1, "SUM(ra_PS) projected once, used twice");
    }

    #[test]
    fn expression_over_aggregates() {
        let p = plan_for("SELECT SUM(ra_PS) / COUNT(*) FROM Object");
        let merge = p.merge_stmt.to_sql();
        assert!(
            merge.contains("SUM(`SUM(ra_PS)`) / SUM(`COUNT(*)`)"),
            "{merge}"
        );
    }

    #[test]
    fn plain_query_pass_through_merge() {
        let p = plan_for("SELECT objectId, ra_PS FROM Object WHERE objectId = 7");
        assert_eq!(p.merge_stmt.to_sql(), "SELECT * FROM result");
        assert!(p.chunk_stmt.to_sql().contains("objectId = 7"));
    }

    #[test]
    fn projection_expressions_get_stable_aliases() {
        let p = plan_for("SELECT fluxToAbMag(psfFlux) FROM Source WHERE objectId = 1");
        let chunk = p.chunk_stmt.to_sql();
        assert!(
            chunk.contains("fluxToAbMag(psfFlux) AS `fluxToAbMag(psfFlux)`"),
            "{chunk}"
        );
    }

    #[test]
    fn order_by_and_limit_stay_at_merge() {
        let p = plan_for("SELECT objectId FROM Object ORDER BY objectId DESC LIMIT 5");
        assert!(p.chunk_stmt.order_by.is_empty());
        // With ORDER BY the limit cannot be pushed down: the global top-5
        // needs every chunk's full candidate set.
        assert_eq!(p.chunk_stmt.limit, None);
        let p2 = plan_for("SELECT objectId FROM Object LIMIT 5");
        assert_eq!(p2.chunk_stmt.limit, Some(5)); // valid pushdown
        let merge = p.merge_stmt.to_sql();
        assert!(merge.contains("ORDER BY objectId DESC LIMIT 5"));
    }

    #[test]
    fn aggregate_limit_not_pushed_down() {
        let p = plan_for("SELECT COUNT(*) FROM Object GROUP BY chunkId LIMIT 3");
        assert_eq!(p.chunk_stmt.limit, None);
        assert_eq!(p.merge_stmt.limit, Some(3));
    }

    #[test]
    fn near_neighbor_renders_per_subchunk_statements() {
        let p = plan_for(
            "SELECT count(*) FROM Object o1, Object o2 \
             WHERE qserv_areaspec_box(-5, -5, 5, -5) \
             AND qserv_angSep(o1.ra_PS, o1.decl_PS, o2.ra_PS, o2.decl_PS) < 0.1",
        );
        let msg = render_chunk_message(&p, &CatalogMeta::lsst(), 77, &[3, 8]);
        assert!(msg.starts_with("-- SUBCHUNKS: 3, 8\n"), "{msg}");
        assert!(msg.contains("FROM LSST.Object_77_3 AS o1, LSST.ObjectFullOverlap_77_3 AS o2"));
        assert!(msg.contains("FROM LSST.Object_77_8 AS o1, LSST.ObjectFullOverlap_77_8 AS o2"));
        assert_eq!(msg.matches(";\n").count(), 2);
        // Spatial restriction applies to the owned (o1) side.
        assert!(msg.contains("qserv_ptInSphericalBox(o1.ra_PS, o1.decl_PS"));
    }

    #[test]
    fn chunk_equi_join_uses_union_second_binding() {
        let p = plan_for(
            "SELECT o.objectId, s.sourceId FROM Object o, Source s \
             WHERE o.objectId = s.objectId",
        );
        let msg = render_chunk_message(&p, &CatalogMeta::lsst(), 5, &[]);
        assert!(
            msg.contains("FROM LSST.Object_5 AS o, LSST.SourceUnion_5 AS s"),
            "{msg}"
        );
    }

    #[test]
    fn star_in_join_rejected() {
        let meta = CatalogMeta::lsst();
        let a = analyze(
            &parse_select("SELECT * FROM Object o, Source s WHERE o.objectId = s.objectId")
                .unwrap(),
            &meta,
        )
        .unwrap();
        assert!(build_plan(&a, &meta).is_err());
    }

    #[test]
    fn rendered_messages_reparse() {
        // Every statement in every rendered message must parse — workers
        // run a real parser on them.
        for sql in [
            "SELECT COUNT(*) FROM Object",
            "SELECT AVG(uFlux_SG) FROM Object WHERE qserv_areaspec_box(0.0,0.0,10.0,10.0) AND uRadius_PS > 0.04",
            "SELECT count(*) AS n, AVG(ra_PS), chunkId FROM Object GROUP BY chunkId",
            "SELECT o.objectId, s.sourceId FROM Object o, Source s WHERE o.objectId = s.objectId",
            "SELECT count(*) FROM Object o1, Object o2 WHERE qserv_angSep(o1.ra_PS, o1.decl_PS, o2.ra_PS, o2.decl_PS) < 0.1",
        ] {
            let p = plan_for(sql);
            let msg = render_chunk_message(&p, &CatalogMeta::lsst(), 42, &[1, 2]);
            for stmt in msg.lines().skip(1).collect::<String>().split(';') {
                let stmt = stmt.trim();
                if !stmt.is_empty() {
                    parse_select(stmt).unwrap_or_else(|e| {
                        panic!("rendered statement failed to reparse: {e}\n{stmt}")
                    });
                }
            }
            // Merge statements must reparse too.
            parse_select(&p.merge_stmt.to_sql()).expect("merge reparses");
        }
    }

    #[test]
    fn replicated_only_query_rejected() {
        let meta = CatalogMeta::lsst();
        let a = analyze(&parse_select("SELECT * FROM Filter").unwrap(), &meta).unwrap();
        assert!(build_plan(&a, &meta).is_err());
    }
}
