//! Elastic chunk placement: epoch-stamped replica maps, membership
//! change, replication repair, and hot-chunk routing.
//!
//! The paper assumes a fixed fleet with static replication; production
//! scale demands membership change ("Designing a Multi-petabyte Database
//! for LSST" frames re-replication and placement as *the* petabyte-scale
//! problem). This module replaces the frozen
//! [`Placement`] vectors baked into the master with:
//!
//! * [`PlacementMap`] — an immutable, epoch-stamped chunk → replica
//!   assignment plus the member-node set. Queries pin one snapshot at
//!   prepare time and complete against it; membership operations commit
//!   new maps at higher epochs.
//! * [`PlacementManager`] — owns the current map, per-node latency heat
//!   (fed by the master's per-chunk dispatch latencies, closing the loop
//!   from `qserv-obs`'s histograms into routing), and the `placement.*`
//!   metrics registry.
//! * Membership operations on [`Qserv`] — [`Qserv::fail_node`] /
//!   [`Qserv::join_node`] / [`Qserv::leave_node`] / [`Qserv::repair`] /
//!   [`Qserv::rebalance`] — which copy chunk payloads (`.qchunk` file
//!   bytes or SQL dumps) between workers *over the fabric*, so seeded
//!   fault plans exercise the copy path. A replica is acknowledged (and
//!   the epoch bumped) only after its payload survives an md5 check on
//!   the destination and installs into the worker's database; faults
//!   mid-copy therefore never lose an acked replica.

use crate::error::QservError;
use crate::master::Qserv;
use parking_lot::{Mutex, RwLock};
use qserv_obs::trace;
use qserv_obs::{MetricsRegistry, MetricsSnapshot};
use qserv_partition::placement::Placement;
use qserv_xrd::cluster::{chunk_data_path, query_path, XrdError};
use qserv_xrd::md5_hex;
use qserv_xrd::server::ServerId;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::Duration;

/// An immutable chunk → replica assignment at one epoch.
///
/// Source-compatible with the frozen `Placement` everywhere the master
/// used it ([`PlacementMap::chunks`], [`PlacementMap::nodes_of`]), plus
/// the membership views the elastic operations need.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlacementMap {
    epoch: u64,
    replication: usize,
    map: BTreeMap<i32, Vec<ServerId>>,
    members: BTreeSet<ServerId>,
}

impl PlacementMap {
    /// Wraps a static load-time placement as epoch 0 with the given
    /// member set.
    pub fn from_static(
        placement: &Placement,
        members: impl IntoIterator<Item = ServerId>,
    ) -> PlacementMap {
        let map: BTreeMap<i32, Vec<ServerId>> = placement
            .chunks()
            .into_iter()
            .map(|c| {
                (
                    c,
                    placement
                        .nodes_of(c)
                        .expect("chunk came from this placement")
                        .to_vec(),
                )
            })
            .collect();
        PlacementMap {
            epoch: 0,
            replication: placement.replication(),
            map,
            members: members.into_iter().collect(),
        }
    }

    /// The epoch this map was committed at (0 = the load-time map).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The configured replication factor.
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// Every known chunk id, ascending.
    pub fn chunks(&self) -> Vec<i32> {
        self.map.keys().copied().collect()
    }

    /// Replica nodes of `chunk` (primary first), `None` for unknown ids.
    pub fn nodes_of(&self, chunk: i32) -> Option<&[ServerId]> {
        self.map.get(&chunk).map(|v| v.as_slice())
    }

    /// The member-node set (nodes eligible to hold replicas), ascending.
    pub fn members(&self) -> Vec<ServerId> {
        self.members.iter().copied().collect()
    }

    /// Whether `node` is a member.
    pub fn is_member(&self, node: ServerId) -> bool {
        self.members.contains(&node)
    }

    /// Chunks with a replica on `node`, ascending.
    pub fn chunks_on(&self, node: ServerId) -> Vec<i32> {
        self.map
            .iter()
            .filter(|(_, ns)| ns.contains(&node))
            .map(|(&c, _)| c)
            .collect()
    }

    /// Replica count per member node (members with no chunks included at
    /// zero) — the balance measure rebalancing levels.
    pub fn load(&self) -> BTreeMap<ServerId, usize> {
        let mut load: BTreeMap<ServerId, usize> = self.members.iter().map(|&n| (n, 0)).collect();
        for ns in self.map.values() {
            for n in ns {
                if let Some(c) = load.get_mut(n) {
                    *c += 1;
                }
            }
        }
        load
    }

    /// Chunks holding fewer than `replication` replicas on member nodes,
    /// ascending.
    pub fn under_replicated(&self) -> Vec<i32> {
        self.map
            .iter()
            .filter(|(_, ns)| {
                ns.iter().filter(|n| self.members.contains(n)).count() < self.replication
            })
            .map(|(&c, _)| c)
            .collect()
    }

    /// Starts an edit of this map; [`PlacementEdit::commit`] seals it at
    /// `epoch + 1`.
    pub fn edit(&self) -> PlacementEdit {
        PlacementEdit { next: self.clone() }
    }
}

/// A mutable working copy of a [`PlacementMap`]; one membership
/// operation's worth of mutations, committed as a single epoch bump.
pub struct PlacementEdit {
    next: PlacementMap,
}

impl PlacementEdit {
    /// Adds `node` to the member set.
    pub fn add_member(&mut self, node: ServerId) -> &mut Self {
        self.next.members.insert(node);
        self
    }

    /// Removes `node` from the member set and strips it from every
    /// replica list (the permanent-loss bookkeeping; the data may
    /// already be gone).
    pub fn remove_member(&mut self, node: ServerId) -> &mut Self {
        self.next.members.remove(&node);
        for ns in self.next.map.values_mut() {
            ns.retain(|&n| n != node);
        }
        self
    }

    /// Records a new replica of `chunk` on `node`.
    pub fn add_replica(&mut self, chunk: i32, node: ServerId) -> &mut Self {
        let ns = self.next.map.entry(chunk).or_default();
        if !ns.contains(&node) {
            ns.push(node);
        }
        self
    }

    /// Forgets the replica of `chunk` on `node`.
    pub fn remove_replica(&mut self, chunk: i32, node: ServerId) -> &mut Self {
        if let Some(ns) = self.next.map.get_mut(&chunk) {
            ns.retain(|&n| n != node);
        }
        self
    }

    /// Seals the edit one epoch above the map it was opened from.
    pub fn commit(mut self) -> PlacementMap {
        self.next.epoch += 1;
        self.next
    }
}

/// How dispatch picks among a chunk's replicas.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RoutingMode {
    /// The redirector's per-path rotation (the pre-placement behavior;
    /// keeps seeded fault schedules bit-reproducible). The default.
    Static,
    /// Order replicas by per-node latency heat (EWMA of observed chunk
    /// dispatch latencies), coldest first — the metrics-driven hot-chunk
    /// routing loop.
    LatencyAware,
}

/// EWMA smoothing factor for node heat.
const HEAT_ALPHA: f64 = 0.3;

/// Owns the current [`PlacementMap`], node heat, and `placement.*`
/// metrics. Shared (`Arc`) by every frontend over one cluster, so
/// multi-master deployments see one placement truth.
pub struct PlacementManager {
    current: RwLock<Arc<PlacementMap>>,
    /// Per-node EWMA of observed chunk-dispatch latency, in ns.
    heat: Mutex<BTreeMap<ServerId, f64>>,
    routing: RwLock<RoutingMode>,
    metrics: MetricsRegistry,
    /// Serializes membership operations; queries never take it.
    admin: Mutex<()>,
}

impl PlacementManager {
    /// Wraps a load-time placement as epoch 0; the placement's nodes are
    /// the initial members (fleet servers beyond them are standbys
    /// awaiting [`Qserv::join_node`]).
    pub fn from_static(placement: &Placement) -> PlacementManager {
        let map = PlacementMap::from_static(placement, 0..placement.num_nodes());
        let metrics = MetricsRegistry::default();
        metrics.gauge("placement.epoch").set(0);
        metrics
            .gauge("placement.members")
            .set(map.members.len() as u64);
        PlacementManager {
            current: RwLock::new(Arc::new(map)),
            heat: Mutex::new(BTreeMap::new()),
            routing: RwLock::new(RoutingMode::Static),
            metrics,
            admin: Mutex::new(()),
        }
    }

    /// The current map. Queries pin this once at prepare time.
    pub fn snapshot(&self) -> Arc<PlacementMap> {
        Arc::clone(&self.current.read())
    }

    /// Installs `map` as current. Panics on a non-monotonic epoch —
    /// commits happen under the admin lock, so a regression is a bug.
    pub fn install(&self, map: PlacementMap) -> Arc<PlacementMap> {
        let mut cur = self.current.write();
        assert!(
            map.epoch > cur.epoch,
            "placement epoch must advance ({} -> {})",
            cur.epoch,
            map.epoch
        );
        self.metrics.gauge("placement.epoch").set(map.epoch);
        self.metrics
            .gauge("placement.members")
            .set(map.members.len() as u64);
        *cur = Arc::new(map);
        Arc::clone(&cur)
    }

    /// The routing mode in effect.
    pub fn routing(&self) -> RoutingMode {
        *self.routing.read()
    }

    /// Switches replica routing. [`RoutingMode::Static`] (the default)
    /// leaves dispatch byte-identical to the pre-placement master.
    pub fn set_routing(&self, mode: RoutingMode) {
        *self.routing.write() = mode;
    }

    /// Feeds one observed chunk-dispatch latency into `server`'s heat —
    /// the hook the master calls after every successful dispatch.
    pub fn observe(&self, server: ServerId, latency: Duration) {
        let mut heat = self.heat.lock();
        let ns = latency.as_nanos() as f64;
        heat.entry(server)
            .and_modify(|h| *h = *h * (1.0 - HEAT_ALPHA) + ns * HEAT_ALPHA)
            .or_insert(ns);
    }

    /// The current per-node heat (EWMA latency in ns), for inspection.
    pub fn node_heat(&self) -> BTreeMap<ServerId, f64> {
        self.heat.lock().clone()
    }

    /// The replica preference order for `chunk`: empty under
    /// [`RoutingMode::Static`] (callers then use the redirector's
    /// rotation unchanged); under [`RoutingMode::LatencyAware`] the
    /// chunk's replicas sorted coldest-first (ties by node id, so the
    /// order is deterministic for a given heat state).
    pub fn route(&self, chunk: i32) -> Vec<ServerId> {
        if self.routing() != RoutingMode::LatencyAware {
            return Vec::new();
        }
        let snap = self.snapshot();
        let Some(replicas) = snap.nodes_of(chunk) else {
            return Vec::new();
        };
        if replicas.len() < 2 {
            return replicas.to_vec();
        }
        let heat = self.heat.lock();
        let mut ordered = replicas.to_vec();
        ordered.sort_by(|&a, &b| {
            let (ha, hb) = (
                heat.get(&a).copied().unwrap_or(0.0),
                heat.get(&b).copied().unwrap_or(0.0),
            );
            ha.partial_cmp(&hb)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        if ordered != replicas {
            self.metrics.counter("placement.hot_reroutes").inc();
        }
        ordered
    }

    /// The `placement.*` metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Snapshot of the `placement.*` metrics.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    pub(crate) fn admin_lock(&self) -> parking_lot::MutexGuard<'_, ()> {
        self.admin.lock()
    }
}

/// What one membership operation did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RebalanceReport {
    /// The epoch current after the operation.
    pub epoch: u64,
    /// New replicas created (repair copies).
    pub replicas_created: usize,
    /// Replicas moved between members (rebalance/drain copies).
    pub chunks_moved: usize,
    /// Payload bytes shipped over the fabric.
    pub bytes_copied: u64,
    /// Transient copy failures retried (injected faults, corruption
    /// caught by the digest check).
    pub copy_retries: u64,
    /// Chunks whose every replica is gone — unrecoverable without
    /// reload. Empty unless replication was insufficient for the loss.
    pub chunks_lost: Vec<i32>,
}

/// A single copy-step failure, classified before it collapses into
/// [`QservError::Fabric`] text (transience drives the retry loop).
enum CopyErr {
    Xrd(XrdError),
    /// Digest mismatch or missing readback — corruption in flight; the
    /// next attempt redraws the fault schedule, so always retryable.
    Digest(String),
}

impl CopyErr {
    fn transient(&self) -> bool {
        match self {
            CopyErr::Xrd(x) => x.is_transient(),
            CopyErr::Digest(_) => true,
        }
    }

    fn into_qserv(self) -> QservError {
        match self {
            CopyErr::Xrd(x) => x.into(),
            CopyErr::Digest(m) => QservError::Fabric(m),
        }
    }
}

impl Qserv {
    /// Permanently fails `node`: marks its server offline, strips it
    /// from membership and every replica list (one epoch), then repairs
    /// replication from surviving replicas. In-flight queries holding
    /// the old epoch retry cleanly: the offline server classifies as
    /// transient and failover steers to a surviving replica.
    pub fn fail_node(&self, node: ServerId) -> Result<RebalanceReport, QservError> {
        let manager = self.placement_manager();
        let _admin = manager.admin_lock();
        let span = trace::span("placement.repair");
        if let Some(g) = &span {
            g.annotate("failed_node", &node.to_string());
        }
        if let Some(s) = self.cluster().server(node) {
            s.set_online(false);
        }
        let snap = manager.snapshot();
        if !snap.is_member(node) {
            return Err(QservError::Fabric(format!(
                "node {node} is not a placement member"
            )));
        }
        let mut edit = snap.edit();
        edit.remove_member(node);
        manager.install(edit.commit());
        self.cluster().redirector().invalidate_cache();
        self.repair_locked()
    }

    /// Restores the replication factor for every under-replicated chunk
    /// by copying payloads from surviving replicas to the least-loaded
    /// members. Each successful copy commits its own epoch, so a crash
    /// mid-repair leaves every acked replica recorded.
    pub fn repair(&self) -> Result<RebalanceReport, QservError> {
        let _admin = self.placement_manager().admin_lock();
        self.repair_locked()
    }

    /// Activates standby `node` (a fleet server holding no chunks) as a
    /// member and rebalances chunk replicas onto it.
    pub fn join_node(&self, node: ServerId) -> Result<RebalanceReport, QservError> {
        let manager = self.placement_manager();
        let _admin = manager.admin_lock();
        let span = trace::span("placement.rebalance");
        if let Some(g) = &span {
            g.annotate("joined_node", &node.to_string());
        }
        let Some(server) = self.cluster().server(node) else {
            return Err(QservError::Fabric(format!(
                "node {node} is not part of the fleet"
            )));
        };
        let snap = manager.snapshot();
        if snap.is_member(node) {
            return Err(QservError::Fabric(format!(
                "node {node} is already a placement member"
            )));
        }
        server.set_online(true);
        let mut edit = snap.edit();
        edit.add_member(node);
        manager.install(edit.commit());
        self.rebalance_locked()
    }

    /// Gracefully drains `node`: every replica it holds is copied to
    /// another member first (copy-then-detach, so no epoch ever records
    /// fewer live replicas than before), then the node leaves
    /// membership and returns to standby.
    pub fn leave_node(&self, node: ServerId) -> Result<RebalanceReport, QservError> {
        let manager = self.placement_manager();
        let _admin = manager.admin_lock();
        let span = trace::span("placement.rebalance");
        if let Some(g) = &span {
            g.annotate("leaving_node", &node.to_string());
        }
        if !manager.snapshot().is_member(node) {
            return Err(QservError::Fabric(format!(
                "node {node} is not a placement member"
            )));
        }
        let mut report = RebalanceReport::default();
        for chunk in manager.snapshot().chunks_on(node) {
            let snap = manager.snapshot();
            let holders = snap.nodes_of(chunk).unwrap_or(&[]).to_vec();
            match pick_least_loaded(&snap, &holders) {
                Some(dst) => {
                    self.copy_chunk(chunk, node, dst, &mut report)?;
                    let mut edit = manager.snapshot().edit();
                    edit.add_replica(chunk, dst).remove_replica(chunk, node);
                    manager.install(edit.commit());
                    report.chunks_moved += 1;
                    manager.metrics().counter("placement.chunks_moved").inc();
                }
                None if holders.iter().any(|&h| h != node && snap.is_member(h)) => {
                    // Every other member already holds the chunk: the
                    // factor is capped by the shrinking membership.
                    let mut edit = snap.edit();
                    edit.remove_replica(chunk, node);
                    manager.install(edit.commit());
                }
                None => {
                    return Err(QservError::Fabric(format!(
                        "cannot drain chunk {chunk} off node {node}: no member can take it"
                    )));
                }
            }
            self.detach_replica(chunk, node);
        }
        let mut edit = manager.snapshot().edit();
        edit.remove_member(node);
        let map = manager.install(edit.commit());
        self.cluster().redirector().invalidate_cache();
        report.epoch = map.epoch();
        Ok(report)
    }

    /// Moves replicas from the most- to the least-loaded members until
    /// replica counts differ by at most one.
    pub fn rebalance(&self) -> Result<RebalanceReport, QservError> {
        let _admin = self.placement_manager().admin_lock();
        self.rebalance_locked()
    }

    fn repair_locked(&self) -> Result<RebalanceReport, QservError> {
        let manager = self.placement_manager();
        let span = trace::span("placement.repair");
        let mut report = RebalanceReport::default();
        // Chunks repair cannot help: lost (no live source) or capped by
        // membership size. Skipping them keeps the loop terminating.
        let mut skip: BTreeSet<i32> = BTreeSet::new();
        loop {
            let snap = manager.snapshot();
            let mut acted = false;
            for chunk in snap.under_replicated() {
                if skip.contains(&chunk) {
                    continue;
                }
                let holders = snap.nodes_of(chunk).unwrap_or(&[]).to_vec();
                let Some(dst) = pick_least_loaded(&snap, &holders) else {
                    skip.insert(chunk);
                    continue;
                };
                let Some(src) = holders
                    .iter()
                    .copied()
                    .find(|&h| self.replica_alive(chunk, h))
                else {
                    report.chunks_lost.push(chunk);
                    manager.metrics().counter("placement.chunks_lost").inc();
                    skip.insert(chunk);
                    continue;
                };
                self.copy_chunk(chunk, src, dst, &mut report)?;
                let mut edit = manager.snapshot().edit();
                edit.add_replica(chunk, dst);
                manager.install(edit.commit());
                report.replicas_created += 1;
                manager.metrics().counter("placement.repairs").inc();
                acted = true;
                break; // re-snapshot: load changed
            }
            if !acted {
                break;
            }
        }
        report.epoch = manager.snapshot().epoch();
        if let Some(g) = &span {
            g.annotate("replicas_created", &report.replicas_created.to_string());
            g.annotate("epoch", &report.epoch.to_string());
        }
        Ok(report)
    }

    fn rebalance_locked(&self) -> Result<RebalanceReport, QservError> {
        let manager = self.placement_manager();
        let span = trace::span("placement.rebalance");
        let mut report = RebalanceReport::default();
        loop {
            let snap = manager.snapshot();
            let load = snap.load();
            let Some((&donor, &hi)) = load.iter().max_by_key(|&(&n, &c)| (c, usize::MAX - n))
            else {
                break;
            };
            let Some((&recipient, &lo)) = load.iter().min_by_key(|&(&n, &c)| (c, n)) else {
                break;
            };
            if hi <= lo + 1 {
                break;
            }
            // The smallest chunk on the donor that the recipient does
            // not already hold.
            let Some(chunk) = snap
                .chunks_on(donor)
                .into_iter()
                .find(|&c| !snap.nodes_of(c).unwrap_or(&[]).contains(&recipient))
            else {
                break;
            };
            self.copy_chunk(chunk, donor, recipient, &mut report)?;
            let mut edit = manager.snapshot().edit();
            edit.add_replica(chunk, recipient)
                .remove_replica(chunk, donor);
            manager.install(edit.commit());
            self.detach_replica(chunk, donor);
            report.chunks_moved += 1;
            manager.metrics().counter("placement.chunks_moved").inc();
        }
        report.epoch = manager.snapshot().epoch();
        if let Some(g) = &span {
            g.annotate("chunks_moved", &report.chunks_moved.to_string());
            g.annotate("epoch", &report.epoch.to_string());
        }
        Ok(report)
    }

    /// Whether node `n`'s replica of `chunk` can serve as a copy source.
    fn replica_alive(&self, chunk: i32, n: ServerId) -> bool {
        self.cluster().server(n).is_some_and(|s| s.is_online())
            && self.workers().get(n).is_some_and(|w| w.holds_chunk(chunk))
    }

    /// Ships every table payload of `chunk` from worker `src` to worker
    /// `dst` over the fabric, verifying an md5 digest per file, then
    /// installs and exports the new replica. Transient fabric errors and
    /// digest mismatches retry under the master's retry budget (backoff
    /// on the master's clock); the replica is installed — and may be
    /// acked by the caller — only after every payload verified.
    fn copy_chunk(
        &self,
        chunk: i32,
        src: ServerId,
        dst: ServerId,
        report: &mut RebalanceReport,
    ) -> Result<(), QservError> {
        let span = trace::span("placement.copy");
        if let Some(g) = &span {
            g.annotate("chunk", &chunk.to_string());
            g.annotate("src", &src.to_string());
            g.annotate("dst", &dst.to_string());
        }
        let manager = self.placement_manager();
        let src_server = self
            .cluster()
            .server(src)
            .ok_or_else(|| QservError::Fabric(format!("copy source {src} does not exist")))?;
        let dst_server = self
            .cluster()
            .server(dst)
            .ok_or_else(|| QservError::Fabric(format!("copy target {dst} does not exist")))?;
        let files = self.workers()[src]
            .export_chunk(chunk)
            .map_err(|e| QservError::Fabric(format!("export chunk {chunk} from {src}: {e}")))?;
        if files.is_empty() {
            return Err(QservError::Fabric(format!(
                "node {src} holds no tables of chunk {chunk}"
            )));
        }
        let mut staged: Vec<(String, Vec<u8>)> = Vec::with_capacity(files.len());
        for (label, bytes) in files {
            let path = chunk_data_path(&label, chunk);
            let digest = md5_hex(&bytes);
            // Stage on the source's local store; the *transfer* below is
            // the fault-injected fabric part.
            src_server.put_file(&path, bytes);
            let max_attempts = self.retry.max_attempts.max(1);
            let mut attempt = 0usize;
            let verified: Vec<u8> = loop {
                let outcome: Result<Vec<u8>, CopyErr> = (|| {
                    let data = self.cluster().read_file(src, &path).map_err(CopyErr::Xrd)?;
                    if md5_hex(&data) != digest {
                        return Err(CopyErr::Digest(format!(
                            "chunk {chunk} payload {label} corrupted in flight"
                        )));
                    }
                    self.cluster()
                        .put_file_direct(dst, &path, (*data).clone())
                        .map_err(CopyErr::Xrd)?;
                    let back = dst_server.get_file(&path).ok_or_else(|| {
                        CopyErr::Digest(format!(
                            "chunk {chunk} payload {label} missing on {dst} after write"
                        ))
                    })?;
                    if md5_hex(&back) != digest {
                        return Err(CopyErr::Digest(format!(
                            "chunk {chunk} payload {label} corrupted on write to {dst}"
                        )));
                    }
                    Ok((*back).clone())
                })();
                match outcome {
                    Ok(data) => break data,
                    Err(e) => {
                        attempt += 1;
                        if attempt >= max_attempts || !e.transient() {
                            src_server.delete_file(&path);
                            dst_server.delete_file(&path);
                            return Err(e.into_qserv());
                        }
                        report.copy_retries += 1;
                        manager.metrics().counter("placement.copy_retries").inc();
                        let backoff = self
                            .retry
                            .backoff_base
                            .saturating_mul(1u32 << (attempt - 1).min(16));
                        if !backoff.is_zero() {
                            self.clock().sleep(backoff);
                        }
                    }
                }
            };
            report.bytes_copied += verified.len() as u64;
            manager
                .metrics()
                .counter("placement.copy_bytes")
                .add(verified.len() as u64);
            src_server.delete_file(&path);
            dst_server.delete_file(&path);
            staged.push((label, verified));
        }
        self.workers()[dst]
            .import_chunk(chunk, &staged, self.storage_dir())
            .map_err(|e| QservError::Fabric(format!("install chunk {chunk} on {dst}: {e}")))?;
        dst_server.export(&query_path(chunk));
        self.cluster().redirector().invalidate_cache();
        Ok(())
    }

    /// Drops `chunk`'s tables and export from `node` after a move. Old
    /// in-flight queries already routed there get a retryable NACK from
    /// the worker and fail over to the new replica.
    fn detach_replica(&self, chunk: i32, node: ServerId) {
        if let Some(w) = self.workers().get(node) {
            w.detach_chunk(chunk);
        }
        if let Some(s) = self.cluster().server(node) {
            s.unexport(&query_path(chunk));
        }
        self.cluster().redirector().invalidate_cache();
    }
}

/// The member with the fewest replicas that does not already hold the
/// chunk (ties to the lowest node id).
fn pick_least_loaded(snap: &PlacementMap, holders: &[ServerId]) -> Option<ServerId> {
    snap.load()
        .into_iter()
        .filter(|(n, _)| !holders.contains(n))
        .min_by_key(|&(n, c)| (c, n))
        .map(|(n, _)| n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qserv_partition::placement::PlacementStrategy;

    fn map3() -> PlacementMap {
        let p = Placement::new(&[1, 2, 3, 4, 5, 6], 3, 2, PlacementStrategy::RoundRobin);
        PlacementMap::from_static(&p, 0..3)
    }

    #[test]
    fn from_static_preserves_replicas_at_epoch_zero() {
        let p = Placement::new(&[1, 2, 3], 3, 2, PlacementStrategy::RoundRobin);
        let m = PlacementMap::from_static(&p, 0..3);
        assert_eq!(m.epoch(), 0);
        assert_eq!(m.replication(), 2);
        assert_eq!(m.chunks(), vec![1, 2, 3]);
        for c in m.chunks() {
            assert_eq!(m.nodes_of(c).unwrap(), p.nodes_of(c).unwrap());
        }
        assert_eq!(m.members(), vec![0, 1, 2]);
        assert!(m.under_replicated().is_empty());
    }

    #[test]
    fn edits_commit_monotonic_epochs() {
        let m = map3();
        let mut e = m.edit();
        e.add_member(3).add_replica(1, 3);
        let m2 = e.commit();
        assert_eq!(m2.epoch(), 1);
        assert!(m2.is_member(3));
        assert!(m2.nodes_of(1).unwrap().contains(&3));
        // The source map is untouched (queries pin it safely).
        assert_eq!(m.epoch(), 0);
        assert!(!m.is_member(3));
    }

    #[test]
    fn remove_member_strips_replicas_and_reports_under_replication() {
        let m = map3();
        let mut e = m.edit();
        e.remove_member(0);
        let m2 = e.commit();
        assert!(!m2.is_member(0));
        for c in m2.chunks() {
            assert!(!m2.nodes_of(c).unwrap().contains(&0));
        }
        let under = m2.under_replicated();
        assert!(!under.is_empty(), "losing a node must under-replicate");
        for c in &under {
            assert!(m2.nodes_of(*c).unwrap().len() < m2.replication());
        }
    }

    #[test]
    fn load_counts_members_with_zero_chunks() {
        let m = map3();
        let mut e = m.edit();
        e.add_member(7);
        let m2 = e.commit();
        assert_eq!(m2.load().get(&7), Some(&0));
        let total: usize = m2.load().values().sum();
        assert_eq!(total, 12, "6 chunks x 2 replicas");
    }

    #[test]
    fn manager_snapshot_pins_while_installs_advance() {
        let p = Placement::new(&[1, 2], 2, 1, PlacementStrategy::RoundRobin);
        let mgr = PlacementManager::from_static(&p);
        let pinned = mgr.snapshot();
        let mut e = pinned.edit();
        e.add_replica(1, 1);
        mgr.install(e.commit());
        assert_eq!(pinned.epoch(), 0, "pinned snapshot is immutable");
        assert_eq!(mgr.snapshot().epoch(), 1);
        assert_eq!(mgr.metrics_snapshot().gauge("placement.epoch"), 1);
    }

    #[test]
    #[should_panic(expected = "epoch must advance")]
    fn stale_install_panics() {
        let p = Placement::new(&[1], 1, 1, PlacementStrategy::RoundRobin);
        let mgr = PlacementManager::from_static(&p);
        let e = mgr.snapshot().edit();
        mgr.install(e.commit());
        // Re-commit from a stale epoch-0 map: 1 -> 1 must be rejected.
        let stale = PlacementMap::from_static(&p, 0..1).edit();
        mgr.install(stale.commit());
    }

    #[test]
    fn static_routing_returns_no_preference() {
        let p = Placement::new(&[1, 2], 2, 2, PlacementStrategy::RoundRobin);
        let mgr = PlacementManager::from_static(&p);
        mgr.observe(0, Duration::from_millis(50));
        assert!(mgr.route(1).is_empty(), "static mode never reorders");
    }

    #[test]
    fn latency_aware_routing_orders_coldest_first() {
        let p = Placement::new(&[1], 2, 2, PlacementStrategy::RoundRobin);
        let mgr = PlacementManager::from_static(&p);
        mgr.set_routing(RoutingMode::LatencyAware);
        // No heat yet: deterministic id order.
        assert_eq!(mgr.route(1), vec![0, 1]);
        // Node 0 runs hot: node 1 becomes preferred.
        for _ in 0..8 {
            mgr.observe(0, Duration::from_millis(80));
            mgr.observe(1, Duration::from_millis(2));
        }
        assert_eq!(mgr.route(1), vec![1, 0]);
        assert!(mgr.metrics_snapshot().counter("placement.hot_reroutes") >= 1);
        // Heat decays toward new observations.
        for _ in 0..64 {
            mgr.observe(0, Duration::from_micros(10));
            mgr.observe(1, Duration::from_millis(90));
        }
        assert_eq!(mgr.route(1), vec![0, 1]);
    }
}
