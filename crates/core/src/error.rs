//! The crate-wide error type.

use qserv_engine::exec::ExecError;
use qserv_sqlparse::parser::ParseError;
use qserv_xrd::cluster::XrdError;
use std::fmt;

/// Everything that can go wrong answering a user query.
#[derive(Clone, Debug, PartialEq)]
pub enum QservError {
    /// The SQL failed to parse.
    Parse(ParseError),
    /// Query analysis rejected the statement (message explains).
    Analysis(String),
    /// A worker-side execution failure, tagged with the chunk.
    Worker {
        /// Chunk whose physical query failed.
        chunk: i32,
        /// Worker error text.
        message: String,
    },
    /// A fabric (dispatch/result transfer) failure.
    Fabric(String),
    /// The query's wall-clock deadline expired before every chunk was
    /// dispatched and collected (see
    /// [`crate::master::RetryPolicy::deadline`]).
    Timeout {
        /// Chunk being dispatched when the deadline expired.
        chunk: i32,
        /// Milliseconds elapsed since the query started.
        elapsed_ms: u64,
    },
    /// Result merging or final aggregation failed.
    Merge(String),
}

impl fmt::Display for QservError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QservError::Parse(e) => write!(f, "parse: {e}"),
            QservError::Analysis(m) => write!(f, "analysis: {m}"),
            QservError::Worker { chunk, message } => {
                write!(f, "worker (chunk {chunk}): {message}")
            }
            QservError::Fabric(m) => write!(f, "fabric: {m}"),
            QservError::Timeout { chunk, elapsed_ms } => {
                write!(f, "timeout: query deadline expired after {elapsed_ms} ms (dispatching chunk {chunk})")
            }
            QservError::Merge(m) => write!(f, "merge: {m}"),
        }
    }
}

impl std::error::Error for QservError {}

impl From<ParseError> for QservError {
    fn from(e: ParseError) -> QservError {
        QservError::Parse(e)
    }
}

impl From<XrdError> for QservError {
    fn from(e: XrdError) -> QservError {
        QservError::Fabric(e.to_string())
    }
}

impl From<ExecError> for QservError {
    fn from(e: ExecError) -> QservError {
        QservError::Merge(e.to_string())
    }
}
