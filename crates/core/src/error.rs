//! The crate-wide error type.

use qserv_engine::exec::ExecError;
use qserv_sqlparse::parser::ParseError;
use qserv_xrd::cluster::XrdError;
use std::fmt;

/// Everything that can go wrong answering a user query.
#[derive(Clone, Debug, PartialEq)]
pub enum QservError {
    /// The SQL failed to parse.
    Parse(ParseError),
    /// Query analysis rejected the statement (message explains).
    Analysis(String),
    /// A worker-side execution failure, tagged with the chunk.
    Worker {
        /// Chunk whose physical query failed.
        chunk: i32,
        /// Worker error text.
        message: String,
    },
    /// A fabric (dispatch/result transfer) failure.
    Fabric(String),
    /// The query's wall-clock deadline expired before every chunk was
    /// dispatched and collected (see
    /// [`crate::master::RetryPolicy::deadline`]).
    Timeout {
        /// Chunk being dispatched when the deadline expired.
        chunk: i32,
        /// Milliseconds elapsed since the query started.
        elapsed_ms: u64,
    },
    /// Result merging or final aggregation failed.
    Merge(String),
    /// The query was cancelled (a `KILL`, or its service handle was
    /// dropped) before it completed. Cooperative: dispatch stops at the
    /// next chunk boundary and in-flight result files are consumed.
    Cancelled,
    /// The service's admission queue for the query's class is full.
    /// Backpressure, not failure: retry after the advertised delay.
    Busy {
        /// Suggested client backoff before resubmitting.
        retry_after_ms: u64,
    },
}

impl fmt::Display for QservError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QservError::Parse(e) => write!(f, "parse: {e}"),
            QservError::Analysis(m) => write!(f, "analysis: {m}"),
            QservError::Worker { chunk, message } => {
                write!(f, "worker (chunk {chunk}): {message}")
            }
            QservError::Fabric(m) => write!(f, "fabric: {m}"),
            QservError::Timeout { chunk, elapsed_ms } => {
                write!(f, "timeout: query deadline expired after {elapsed_ms} ms (dispatching chunk {chunk})")
            }
            QservError::Merge(m) => write!(f, "merge: {m}"),
            QservError::Cancelled => write!(f, "cancelled"),
            QservError::Busy { retry_after_ms } => {
                write!(
                    f,
                    "busy: admission queue full, retry after {retry_after_ms} ms"
                )
            }
        }
    }
}

impl std::error::Error for QservError {}

impl From<ParseError> for QservError {
    fn from(e: ParseError) -> QservError {
        QservError::Parse(e)
    }
}

impl From<XrdError> for QservError {
    fn from(e: XrdError) -> QservError {
        QservError::Fabric(e.to_string())
    }
}

impl From<ExecError> for QservError {
    fn from(e: ExecError) -> QservError {
        QservError::Merge(e.to_string())
    }
}
