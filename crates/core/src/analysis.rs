//! Query analysis (paper §5.3).
//!
//! Parsing serves several functions in Qserv, quoted from the paper:
//! *detect spatial restrictions* (so spatial queries don't become full-sky
//! queries), *detect index opportunities* (the objectId secondary index),
//! *detect database and table references* (for rewriting and access
//! restriction), *detect aliases and joins*, and *prepare for results
//! merging and aggregation*. [`analyze`] performs all of those over a
//! parsed statement and produces an [`Analysis`] the rewriter consumes.

use crate::error::QservError;
use crate::meta::CatalogMeta;
use qserv_engine::eval::is_aggregate;
use qserv_sphgeom::region::Region;
use qserv_sphgeom::{Angle, LonLat, SphericalBox, SphericalCircle};
use qserv_sqlparse::ast::{BinaryOp, Expr, Literal, SelectStatement};

/// A frontend spatial restriction: the region named by a
/// `qserv_areaspec_*` pseudo-function. Real Qserv grew several of these;
/// the paper's evaluation uses the box, and the circle is the natural
/// companion for radius searches.
#[derive(Clone, Copy, Debug)]
pub enum SpatialSpec {
    /// `qserv_areaspec_box(lonMin, latMin, lonMax, latMax)`.
    Box(SphericalBox),
    /// `qserv_areaspec_circle(lon, lat, radiusDeg)`.
    Circle {
        /// Center right ascension, degrees.
        ra: f64,
        /// Center declination, degrees.
        decl: f64,
        /// Angular radius, degrees.
        radius: f64,
    },
}

impl SpatialSpec {
    /// A conservative bounding box, used for chunk selection.
    pub fn bounding_box(&self) -> SphericalBox {
        match self {
            SpatialSpec::Box(b) => *b,
            SpatialSpec::Circle { ra, decl, radius } => SphericalCircle::new(
                LonLat::from_degrees(*ra, *decl),
                Angle::from_degrees(*radius),
            )
            .bounding_box(),
        }
    }
}

/// How a multi-table query executes across partitions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JoinClass {
    /// Single partitioned table (or none): plain chunk dispatch.
    None,
    /// Two partitioned tables joined by an equality key (SHV2's
    /// `o.objectId = s.objectId`): chunk-granularity join, second binding
    /// reads chunk ∪ overlap.
    ChunkEqui,
    /// Spatial near-neighbour join (SHV1's `qserv_angSep(...) < r`):
    /// executed over on-the-fly subchunk tables with overlap (§4.4, §5.2).
    SubchunkNear,
}

/// The analyzer's findings for one statement.
#[derive(Clone, Debug)]
pub struct Analysis {
    /// The statement, with the `qserv_areaspec_box` pseudo-function
    /// removed from the WHERE clause (it is a directive to the frontend,
    /// not a row predicate — the rewriter re-materializes it as a worker
    /// UDF call).
    pub stmt: SelectStatement,
    /// The spatial restriction, when one was given.
    pub spatial: Option<SpatialSpec>,
    /// objectId values from an index-usable predicate
    /// (`objectId = k` / `objectId IN (...)`).
    pub index_ids: Option<Vec<i64>>,
    /// Indices into `stmt.from` of partitioned tables.
    pub partitioned: Vec<usize>,
    /// Join classification.
    pub join: JoinClass,
    /// True when any projection aggregates (or GROUP BY is present), so
    /// results need two-phase aggregation (§5.3's example).
    pub aggregated: bool,
}

/// Analyzes a statement against the catalog metadata.
pub fn analyze(stmt: &SelectStatement, meta: &CatalogMeta) -> Result<Analysis, QservError> {
    let mut stmt = stmt.clone();

    // --- Table references, aliases and distribution ---------------------
    let mut partitioned = Vec::new();
    for (i, tref) in stmt.from.iter().enumerate() {
        if let Some(db) = &tref.database {
            if db != meta.database() {
                return Err(QservError::Analysis(format!(
                    "unknown database {db} (only {} is served)",
                    meta.database()
                )));
            }
        }
        match meta.table(&tref.table) {
            Some(_) if meta.is_partitioned(&tref.table) => partitioned.push(i),
            Some(_) => {} // replicated: present on every worker as-is
            None => {
                return Err(QservError::Analysis(format!(
                    "unknown table {}",
                    tref.table
                )))
            }
        }
    }
    if partitioned.len() > 2 {
        return Err(QservError::Analysis(
            "queries may join at most two partitioned tables".to_string(),
        ));
    }

    // --- Spatial restriction ---------------------------------------------
    // qserv_areaspec_box must appear as a top-level AND conjunct: under an
    // OR it would not be a restriction at all.
    let mut spatial: Option<SpatialSpec> = None;
    if let Some(w) = stmt.where_clause.take() {
        let (residual, boxes) = extract_areaspec(w)?;
        match boxes.len() {
            0 => {}
            1 => spatial = Some(boxes[0]),
            _ => {
                return Err(QservError::Analysis(
                    "multiple qserv_areaspec_* restrictions are not supported".to_string(),
                ))
            }
        }
        stmt.where_clause = residual;
    }
    // areaspec anywhere else (e.g. under OR / in projections) is an error.
    let mut misplaced = false;
    let mut check = |e: &Expr| {
        e.visit(&mut |n| {
            if let Expr::Function { name, .. } = n {
                if is_areaspec(name) {
                    misplaced = true;
                }
            }
        });
    };
    for p in &stmt.projections {
        check(&p.expr);
    }
    if let Some(w) = &stmt.where_clause {
        check(w);
    }
    if misplaced {
        return Err(QservError::Analysis(
            "qserv_areaspec_* must be a top-level AND term of the WHERE clause".to_string(),
        ));
    }

    // --- Index opportunity -------------------------------------------------
    let index_ids = find_index_ids(&stmt, meta, &partitioned);

    // --- Aggregation ---------------------------------------------------------
    let aggregated = !stmt.group_by.is_empty()
        || stmt.projections.iter().any(|p| {
            let mut agg = false;
            p.expr.visit(&mut |e| {
                if let Expr::Function { name, .. } = e {
                    if is_aggregate(name) {
                        agg = true;
                    }
                }
            });
            agg
        });

    // --- Join classification --------------------------------------------------
    let join = classify_join(&stmt, &partitioned)?;

    Ok(Analysis {
        stmt,
        spatial,
        index_ids,
        partitioned,
        join,
        aggregated,
    })
}

/// True when `name` is a frontend spatial pseudo-function.
fn is_areaspec(name: &str) -> bool {
    name.eq_ignore_ascii_case("qserv_areaspec_box")
        || name.eq_ignore_ascii_case("qserv_areaspec_circle")
}

/// Removes top-level `qserv_areaspec_*` conjuncts from a WHERE
/// expression, returning the residual predicate and the extracted specs.
fn extract_areaspec(where_clause: Expr) -> Result<(Option<Expr>, Vec<SpatialSpec>), QservError> {
    fn numeric_args(name: &str, args: &[Expr], n: usize) -> Result<Vec<f64>, QservError> {
        if args.len() != n {
            return Err(QservError::Analysis(format!(
                "{name} takes {n} arguments, got {}",
                args.len()
            )));
        }
        args.iter()
            .map(|a| match a {
                Expr::Literal(Literal::Int(v)) => Ok(*v as f64),
                Expr::Literal(Literal::Float(v)) => Ok(*v),
                other => Err(QservError::Analysis(format!(
                    "{name} arguments must be numeric literals, got {}",
                    other.to_sql()
                ))),
            })
            .collect()
    }
    fn walk(e: Expr, specs: &mut Vec<SpatialSpec>) -> Result<Option<Expr>, QservError> {
        match e {
            Expr::Binary {
                op: BinaryOp::And,
                lhs,
                rhs,
            } => {
                let l = walk(*lhs, specs)?;
                let r = walk(*rhs, specs)?;
                Ok(match (l, r) {
                    (Some(l), Some(r)) => Some(Expr::and(l, r)),
                    (Some(x), None) | (None, Some(x)) => Some(x),
                    (None, None) => None,
                })
            }
            Expr::Function { ref name, ref args }
                if name.eq_ignore_ascii_case("qserv_areaspec_box") =>
            {
                let v = numeric_args("qserv_areaspec_box", args, 4)?;
                specs.push(SpatialSpec::Box(SphericalBox::from_degrees(
                    v[0], v[1], v[2], v[3],
                )));
                Ok(None)
            }
            Expr::Function { ref name, ref args }
                if name.eq_ignore_ascii_case("qserv_areaspec_circle") =>
            {
                let v = numeric_args("qserv_areaspec_circle", args, 3)?;
                if !(0.0..=180.0).contains(&v[2]) {
                    return Err(QservError::Analysis(format!(
                        "qserv_areaspec_circle radius must be in [0°, 180°], got {}",
                        v[2]
                    )));
                }
                specs.push(SpatialSpec::Circle {
                    ra: v[0],
                    decl: v[1],
                    radius: v[2],
                });
                Ok(None)
            }
            other => Ok(Some(other)),
        }
    }
    let mut specs = Vec::new();
    let residual = walk(where_clause, &mut specs)?;
    Ok((residual, specs))
}

/// Finds `idxcol = k` / `idxcol IN (k...)` predicates over a secondary
/// indexed column of a partitioned FROM table.
fn find_index_ids(
    stmt: &SelectStatement,
    meta: &CatalogMeta,
    partitioned: &[usize],
) -> Option<Vec<i64>> {
    let w = stmt.where_clause.as_ref()?;
    // Collect the indexed column names visible in this query.
    let indexed: Vec<&str> = partitioned
        .iter()
        .filter_map(|&i| meta.table(&stmt.from[i].table))
        .filter_map(|tm| tm.index_col.as_deref())
        .collect();
    if indexed.is_empty() {
        return None;
    }
    let is_indexed_col = |e: &Expr| -> bool {
        matches!(e, Expr::Column { name, .. } if indexed.contains(&name.as_str()))
    };
    let int_lit = |e: &Expr| -> Option<i64> {
        match e {
            Expr::Literal(Literal::Int(v)) => Some(*v),
            _ => None,
        }
    };
    // Only top-level AND conjuncts are usable restrictions.
    fn conjuncts<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
        if let Expr::Binary {
            op: BinaryOp::And,
            lhs,
            rhs,
        } = e
        {
            conjuncts(lhs, out);
            conjuncts(rhs, out);
        } else {
            out.push(e);
        }
    }
    let mut cs = Vec::new();
    conjuncts(w, &mut cs);
    for c in cs {
        match c {
            Expr::Binary {
                op: BinaryOp::Eq,
                lhs,
                rhs,
            } => {
                if is_indexed_col(lhs) {
                    if let Some(v) = int_lit(rhs) {
                        return Some(vec![v]);
                    }
                }
                if is_indexed_col(rhs) {
                    if let Some(v) = int_lit(lhs) {
                        return Some(vec![v]);
                    }
                }
            }
            Expr::InList {
                expr,
                negated: false,
                list,
            } if is_indexed_col(expr) => {
                let vals: Option<Vec<i64>> = list.iter().map(int_lit).collect();
                if let Some(vals) = vals {
                    return Some(vals);
                }
            }
            _ => {}
        }
    }
    None
}

/// Extracts the numeric interval restrictions usable for chunk-level
/// zone-map pruning: each returned `(column, lo, hi)` means every
/// qualifying row satisfies `column ∈ [lo, hi]` (infinities for open
/// sides). Only top-level AND conjuncts of shape `col ⋈ literal`
/// (either orientation), non-negated `col BETWEEN lit AND lit` and
/// non-negated `col IN (literals)` qualify — anything under OR/NOT is
/// not a restriction. Bounds are widened to non-strict intervals, which
/// is conservative for pruning (the prune test itself only trusts
/// strict inequality; see [`crate::meta::ColumnZone::excluded_by`]).
pub fn zone_restrictions(stmt: &SelectStatement) -> Vec<(String, f64, f64)> {
    fn num(e: &Expr) -> Option<f64> {
        match e {
            Expr::Literal(Literal::Int(v)) => Some(*v as f64),
            Expr::Literal(Literal::Float(v)) => Some(*v),
            _ => None,
        }
    }
    fn col_name(e: &Expr) -> Option<&str> {
        match e {
            Expr::Column { name, .. } => Some(name.as_str()),
            _ => None,
        }
    }
    fn conjuncts<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
        if let Expr::Binary {
            op: BinaryOp::And,
            lhs,
            rhs,
        } = e
        {
            conjuncts(lhs, out);
            conjuncts(rhs, out);
        } else {
            out.push(e);
        }
    }
    let Some(w) = &stmt.where_clause else {
        return Vec::new();
    };
    let mut cs = Vec::new();
    conjuncts(w, &mut cs);
    let mut out = Vec::new();
    for c in cs {
        match c {
            Expr::Binary { op, lhs, rhs } => {
                let (col, lit, op) = if let (Some(c), Some(l)) = (col_name(lhs), num(rhs)) {
                    (c, l, *op)
                } else if let (Some(c), Some(l)) = (col_name(rhs), num(lhs)) {
                    let flipped = match op {
                        BinaryOp::Eq => BinaryOp::Eq,
                        BinaryOp::Lt => BinaryOp::Gt,
                        BinaryOp::LtEq => BinaryOp::GtEq,
                        BinaryOp::Gt => BinaryOp::Lt,
                        BinaryOp::GtEq => BinaryOp::LtEq,
                        _ => continue,
                    };
                    (c, l, flipped)
                } else {
                    continue;
                };
                let (lo, hi) = match op {
                    BinaryOp::Eq => (lit, lit),
                    BinaryOp::Lt | BinaryOp::LtEq => (f64::NEG_INFINITY, lit),
                    BinaryOp::Gt | BinaryOp::GtEq => (lit, f64::INFINITY),
                    _ => continue,
                };
                if lit.is_nan() {
                    continue;
                }
                out.push((col.to_string(), lo, hi));
            }
            Expr::Between {
                expr,
                negated: false,
                low,
                high,
            } => {
                if let (Some(c), Some(lo), Some(hi)) = (col_name(expr), num(low), num(high)) {
                    if !lo.is_nan() && !hi.is_nan() {
                        out.push((c.to_string(), lo, hi));
                    }
                }
            }
            Expr::InList {
                expr,
                negated: false,
                list,
            } => {
                if let Some(c) = col_name(expr) {
                    let vals: Option<Vec<f64>> = list.iter().map(num).collect();
                    if let Some(vals) = vals {
                        if !vals.is_empty() && vals.iter().all(|v| !v.is_nan()) {
                            let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
                            let hi = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                            out.push((c.to_string(), lo, hi));
                        }
                    }
                }
            }
            _ => {}
        }
    }
    out
}

/// Classifies a join between partitioned tables.
fn classify_join(stmt: &SelectStatement, partitioned: &[usize]) -> Result<JoinClass, QservError> {
    if partitioned.len() < 2 {
        return Ok(JoinClass::None);
    }
    let names: Vec<&str> = partitioned
        .iter()
        .map(|&i| stmt.from[i].binding_name())
        .collect();
    let w = match &stmt.where_clause {
        Some(w) => w,
        None => {
            return Err(QservError::Analysis(
                "a join of two partitioned tables needs a join predicate".to_string(),
            ))
        }
    };
    fn conjuncts<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
        if let Expr::Binary {
            op: BinaryOp::And,
            lhs,
            rhs,
        } = e
        {
            conjuncts(lhs, out);
            conjuncts(rhs, out);
        } else {
            out.push(e);
        }
    }
    let mut cs = Vec::new();
    conjuncts(w, &mut cs);

    // Which bindings does an expression reference (by qualifier)?
    let refs = |e: &Expr| -> (bool, bool) {
        let mut a = false;
        let mut b = false;
        e.visit(&mut |n| {
            if let Expr::Column {
                qualifier: Some(q), ..
            } = n
            {
                if q == names[0] {
                    a = true;
                }
                if q == names[1] {
                    b = true;
                }
            }
        });
        (a, b)
    };

    // Equality join key spanning both bindings?
    for c in &cs {
        if let Expr::Binary {
            op: BinaryOp::Eq,
            lhs,
            rhs,
        } = c
        {
            let (la, lb) = refs(lhs);
            let (ra, rb) = refs(rhs);
            if (la && rb && !lb && !ra) || (lb && ra && !la && !rb) {
                return Ok(JoinClass::ChunkEqui);
            }
        }
    }
    // Any cross-binding predicate (the near-neighbour distance cut)?
    for c in &cs {
        let (a, b) = refs(c);
        if a && b {
            return Ok(JoinClass::SubchunkNear);
        }
    }
    Err(QservError::Analysis(
        "join of two partitioned tables requires an equality key or a spatial predicate \
         referencing both tables (unconstrained cross products are not distributable)"
            .to_string(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qserv_sqlparse::parse_select;

    fn analyze_sql(sql: &str) -> Result<Analysis, QservError> {
        analyze(&parse_select(sql).unwrap(), &CatalogMeta::lsst())
    }

    #[test]
    fn lv1_uses_secondary_index() {
        let a = analyze_sql("SELECT * FROM Object WHERE objectId = 42").unwrap();
        assert_eq!(a.index_ids, Some(vec![42]));
        assert!(a.spatial.is_none());
        assert_eq!(a.join, JoinClass::None);
        assert!(!a.aggregated);
        assert_eq!(a.partitioned, vec![0]);
    }

    #[test]
    fn in_list_index_opportunity() {
        let a = analyze_sql("SELECT * FROM Source WHERE objectId IN (1, 2, 3)").unwrap();
        assert_eq!(a.index_ids, Some(vec![1, 2, 3]));
    }

    #[test]
    fn reversed_equality_detected() {
        let a = analyze_sql("SELECT * FROM Object WHERE 42 = objectId").unwrap();
        assert_eq!(a.index_ids, Some(vec![42]));
    }

    #[test]
    fn non_literal_or_negated_predicates_do_not_use_index() {
        let a = analyze_sql("SELECT * FROM Object WHERE objectId = ra_PS").unwrap();
        assert_eq!(a.index_ids, None);
        let a = analyze_sql("SELECT * FROM Object WHERE objectId NOT IN (1)").unwrap();
        assert_eq!(a.index_ids, None);
        // Under OR the predicate is not a restriction.
        let a = analyze_sql("SELECT * FROM Object WHERE objectId = 1 OR ra_PS > 0").unwrap();
        assert_eq!(a.index_ids, None);
    }

    #[test]
    fn areaspec_extracted_and_removed() {
        let a = analyze_sql(
            "SELECT AVG(uFlux_SG) FROM Object \
             WHERE qserv_areaspec_box(0.0, 0.0, 10.0, 10.0) AND uRadius_PS > 0.04",
        )
        .unwrap();
        let b = a.spatial.unwrap().bounding_box();
        assert_eq!(b.lon_min_deg(), 0.0);
        assert_eq!(b.lat_max_deg(), 10.0);
        // Residual WHERE no longer mentions the pseudo-function.
        let residual = a.stmt.where_clause.unwrap().to_sql();
        assert_eq!(residual, "uRadius_PS > 0.04");
        assert!(a.aggregated);
    }

    #[test]
    fn areaspec_alone_leaves_no_where() {
        let a = analyze_sql("SELECT COUNT(*) FROM Object WHERE qserv_areaspec_box(-5, -5, 5, -5)")
            .unwrap();
        assert!(a.spatial.is_some());
        assert!(a.stmt.where_clause.is_none());
    }

    #[test]
    fn areaspec_with_negative_bounds_like_shv1() {
        let a = analyze_sql(
            "SELECT count(*) FROM Object o1, Object o2 \
             WHERE qserv_areaspec_box(-5, -5, 5, -5) \
             AND qserv_angSep(o1.ra_PS, o1.decl_PS, o2.ra_PS, o2.decl_PS) < 0.1",
        )
        .unwrap();
        assert!(a.spatial.is_some());
        assert_eq!(a.join, JoinClass::SubchunkNear);
        assert_eq!(a.partitioned, vec![0, 1]);
    }

    #[test]
    fn shv2_is_chunk_equi_join() {
        let a = analyze_sql(
            "SELECT o.objectId, s.sourceId FROM Object o, Source s \
             WHERE qserv_areaspec_box(224.1, -7.5, 237.1, 5.5) \
             AND o.objectId = s.objectId \
             AND qserv_angSep(s.ra, s.decl, o.ra_PS, o.decl_PS) > 0.0045",
        )
        .unwrap();
        assert_eq!(a.join, JoinClass::ChunkEqui);
    }

    #[test]
    fn misplaced_areaspec_rejected() {
        assert!(
            analyze_sql("SELECT * FROM Object WHERE qserv_areaspec_box(0,0,1,1) OR ra_PS > 0")
                .is_err()
        );
        assert!(analyze_sql("SELECT qserv_areaspec_box(0,0,1,1) FROM Object").is_err());
        assert!(analyze_sql("SELECT * FROM Object WHERE qserv_areaspec_box(1,2,3)").is_err());
        assert!(
            analyze_sql("SELECT * FROM Object WHERE qserv_areaspec_box(ra_PS, 0, 1, 1)").is_err()
        );
        assert!(analyze_sql(
            "SELECT * FROM Object WHERE qserv_areaspec_box(0,0,1,1) AND qserv_areaspec_box(2,2,3,3)"
        )
        .is_err());
    }

    #[test]
    fn unknown_table_and_database_rejected() {
        assert!(analyze_sql("SELECT * FROM Nonsense").is_err());
        assert!(analyze_sql("SELECT * FROM OtherDB.Object").is_err());
        assert!(analyze_sql("SELECT * FROM LSST.Object WHERE objectId = 1").is_ok());
    }

    #[test]
    fn replicated_table_allowed_not_partitioned() {
        let a = analyze_sql("SELECT * FROM Filter").unwrap();
        assert!(a.partitioned.is_empty());
        assert_eq!(a.join, JoinClass::None);
    }

    #[test]
    fn unconstrained_cross_product_rejected() {
        assert!(analyze_sql("SELECT count(*) FROM Object o1, Object o2").is_err());
        assert!(
            analyze_sql("SELECT count(*) FROM Object o1, Object o2 WHERE o1.ra_PS > 0").is_err()
        );
    }

    #[test]
    fn aggregation_detected() {
        assert!(
            analyze_sql("SELECT COUNT(*) FROM Object")
                .unwrap()
                .aggregated
        );
        assert!(
            analyze_sql("SELECT ra_PS FROM Object GROUP BY ra_PS")
                .unwrap()
                .aggregated
        );
        assert!(!analyze_sql("SELECT ra_PS FROM Object").unwrap().aggregated);
        // Aggregates nested in expressions count.
        assert!(
            analyze_sql("SELECT SUM(ra_PS) / COUNT(*) FROM Object")
                .unwrap()
                .aggregated
        );
    }

    #[test]
    fn zone_restrictions_extract_intervals() {
        let stmt = parse_select(
            "SELECT * FROM Object WHERE ra_PS BETWEEN 30 AND 60 AND decl_PS < 5 \
             AND 2.5 <= zFlux_PS AND objectId IN (10, 3, 7) AND chunkId = 4",
        )
        .unwrap();
        let r = zone_restrictions(&stmt);
        assert_eq!(
            r,
            vec![
                ("ra_PS".to_string(), 30.0, 60.0),
                ("decl_PS".to_string(), f64::NEG_INFINITY, 5.0),
                ("zFlux_PS".to_string(), 2.5, f64::INFINITY),
                ("objectId".to_string(), 3.0, 10.0),
                ("chunkId".to_string(), 4.0, 4.0),
            ]
        );
    }

    #[test]
    fn zone_restrictions_skip_or_not_and_non_literals() {
        let stmt = parse_select(
            "SELECT * FROM Object WHERE (ra_PS > 10 OR decl_PS > 0) \
             AND objectId NOT IN (1) AND ra_PS > decl_PS \
             AND fluxToAbMag(zFlux_PS) < 20",
        )
        .unwrap();
        assert!(zone_restrictions(&stmt).is_empty());
        let none = parse_select("SELECT * FROM Object").unwrap();
        assert!(zone_restrictions(&none).is_empty());
    }

    #[test]
    fn hv3_density_query_analysis() {
        let a = analyze_sql(
            "SELECT count(*) AS n, AVG(ra_PS), AVG(decl_PS), chunkId \
             FROM Object GROUP BY chunkId",
        )
        .unwrap();
        assert!(a.aggregated);
        assert_eq!(a.join, JoinClass::None);
        assert!(a.spatial.is_none());
        assert!(a.index_ids.is_none());
    }
}
