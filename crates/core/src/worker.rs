//! The Qserv worker: Xrootd data server + ofs plugin + SQL engine.
//!
//! "Xrootd data servers become Qserv workers by plugging custom code into
//! Xrootd as a custom file system ('ofs plugin') implementation" (paper
//! §5.1.2). A [`Worker`] owns the node's chunk tables in an embedded
//! [`Database`]; when the master writes a chunk query to `/query2/CC`, the
//! plugin fires:
//!
//! 1. parse the `-- SUBCHUNKS:` header and the SQL statements (§5.4);
//! 2. **generate the appropriate subchunk/union tables prior to executing
//!    the SQL statements** (§5.4) — from the chunk's owned rows and its
//!    overlap store;
//! 3. execute each statement on the engine, concatenating results;
//! 4. dump the result table as SQL text and deposit it at
//!    `/result/md5(query)` for the master's read transaction;
//! 5. drop the generated tables ("the current implementation does not
//!    cache them", §5.4 — caching is available behind a flag and measured
//!    by an ablation bench).

use crate::meta::CatalogMeta;
use crate::rewrite;
use parking_lot::RwLock;
use qserv_engine::db::Database;
use qserv_engine::dump::{dump_table, load_dump};
use qserv_engine::exec::{execute_detailed, ExecMode, ExecPath, ResultTable, ScanStats};
use qserv_engine::table::Table;
use qserv_partition::chunker::Chunker;
use qserv_sphgeom::region::Region;
use qserv_sphgeom::LonLat;
use qserv_sqlparse::parse_select;
use qserv_xrd::cluster::result_path;
use qserv_xrd::md5_hex;
use qserv_xrd::server::{DataServer, OfsPlugin};
use std::sync::atomic::{AtomicU64, Ordering};

/// Observable worker counters (used by tests and ablation benches).
#[derive(Debug, Default)]
pub struct WorkerStats {
    /// Chunk-query messages processed.
    pub chunk_queries: AtomicU64,
    /// Individual SQL statements executed.
    pub statements: AtomicU64,
    /// Statements served by the vectorized execution path.
    pub vectorized_statements: AtomicU64,
    /// On-demand tables (subchunk/full-overlap/union) generated.
    pub tables_built: AtomicU64,
    /// Messages that ended in an error deposit.
    pub errors: AtomicU64,
}

impl WorkerStats {
    /// Snapshot of `(chunk_queries, statements, tables_built, errors)`.
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.chunk_queries.load(Ordering::Relaxed),
            self.statements.load(Ordering::Relaxed),
            self.tables_built.load(Ordering::Relaxed),
            self.errors.load(Ordering::Relaxed),
        )
    }

    /// Statements that ran on the vectorized path.
    pub fn vectorized(&self) -> u64 {
        self.vectorized_statements.load(Ordering::Relaxed)
    }
}

/// One worker node.
pub struct Worker {
    node_id: usize,
    db: RwLock<Database>,
    chunker: Chunker,
    meta: CatalogMeta,
    /// Keep generated subchunk tables for reuse instead of dropping them
    /// (§5.4 notes caching as an option the original does not implement).
    pub cache_generated: bool,
    /// Execution counters.
    pub stats: WorkerStats,
}

impl Worker {
    /// Creates an empty worker.
    pub fn new(node_id: usize, chunker: Chunker, meta: CatalogMeta) -> Worker {
        Worker {
            node_id,
            db: RwLock::new(Database::new()),
            chunker,
            meta,
            cache_generated: false,
            stats: WorkerStats::default(),
        }
    }

    /// This worker's node id.
    pub fn node_id(&self) -> usize {
        self.node_id
    }

    /// Installs a chunk of a partitioned table: the owned rows as `T_CC`
    /// and the overlap-store rows as `TOverlap_CC`.
    pub fn install_chunk(&self, table: &str, chunk: i32, owned: Table, overlap: Table) {
        let mut db = self.db.write();
        db.create_table(&rewrite::chunk_table(table, chunk), owned);
        db.create_table(&rewrite::overlap_table(table, chunk), overlap);
    }

    /// Installs a replicated table under its plain name.
    pub fn install_replicated(&self, name: &str, table: Table) {
        self.db.write().create_table(name, table);
    }

    /// Installs a chunk of a partitioned table backed by an on-disk
    /// columnar chunk file (`T_CC` stays cold until scanned); the overlap
    /// rows stay in-memory as `TOverlap_CC`.
    pub fn install_chunk_file(
        &self,
        table: &str,
        chunk: i32,
        path: &std::path::Path,
        overlap: Table,
    ) -> Result<(), String> {
        let mut db = self.db.write();
        db.attach_stored(&rewrite::chunk_table(table, chunk), path)
            .map_err(|e| format!("attach {}: {e}", path.display()))?;
        db.create_table(&rewrite::overlap_table(table, chunk), overlap);
        Ok(())
    }

    /// Shares a residency pool with this worker's database (one LRU
    /// budget across every worker of a node, or across a whole test
    /// cluster).
    pub fn set_residency(&self, residency: std::sync::Arc<qserv_engine::Residency>) {
        self.db.write().set_residency(residency);
    }

    /// Names of tables currently stored (for tests).
    pub fn table_names(&self) -> Vec<String> {
        self.db
            .read()
            .table_names()
            .iter()
            .map(|s| s.to_string())
            .collect()
    }

    /// Total estimated bytes stored on this worker.
    pub fn footprint_bytes(&self) -> u64 {
        self.db.read().footprint_bytes()
    }

    /// True when any partitioned base table of `chunk` is installed here
    /// (in memory or as an attached chunk file).
    pub fn holds_chunk(&self, chunk: i32) -> bool {
        let db = self.db.read();
        self.meta
            .table_names()
            .iter()
            .filter(|t| self.meta.partition_info(t).is_some())
            .any(|t| db.has_table(&rewrite::chunk_table(t, chunk)))
    }

    /// Serializes every installed table of `chunk` for replication to
    /// another worker: one `(label, payload)` per table, where the label
    /// is the base name (`Object`) or overlap name (`ObjectOverlap`) and
    /// the payload is the raw `.qchunk` file bytes for disk-backed
    /// tables or a SQL dump for in-memory ones.
    /// [`Worker::import_chunk`] reverses the encoding by sniffing the
    /// `.qchunk` magic.
    pub fn export_chunk(&self, chunk: i32) -> Result<Vec<(String, Vec<u8>)>, String> {
        let db = self.db.read();
        let mut files = Vec::new();
        for base in self.meta.table_names() {
            if self.meta.partition_info(base).is_none() {
                continue;
            }
            let owned_name = rewrite::chunk_table(base, chunk);
            if let Some(path) = db.stored_path(&owned_name) {
                let bytes =
                    std::fs::read(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
                files.push((base.to_string(), bytes));
            } else if let Some(t) = db.table(&owned_name) {
                files.push((base.to_string(), dump_table(&owned_name, t).into_bytes()));
            } else {
                continue; // this base has no chunk here
            }
            let overlap_name = rewrite::overlap_table(base, chunk);
            if let Some(t) = db.table(&overlap_name) {
                files.push((
                    format!("{base}Overlap"),
                    dump_table(&overlap_name, t).into_bytes(),
                ));
            }
        }
        Ok(files)
    }

    /// Installs a replica of `chunk` from [`Worker::export_chunk`]
    /// payloads. `.qchunk` payloads (recognized by their magic) are
    /// written to `storage_dir` (the temp dir when `None`) under a
    /// node-unique name and attached cold; SQL dumps are loaded in
    /// memory, with the owned table's objectId index rebuilt when the
    /// column exists.
    pub fn import_chunk(
        &self,
        chunk: i32,
        files: &[(String, Vec<u8>)],
        storage_dir: Option<&std::path::Path>,
    ) -> Result<(), String> {
        static IMPORT_SEQ: AtomicU64 = AtomicU64::new(0);
        let mut db = self.db.write();
        for (label, bytes) in files {
            let table_name = rewrite::chunk_table(label, chunk);
            if bytes.starts_with(qserv_engine::storage::MAGIC) {
                let dir = storage_dir
                    .map(|p| p.to_path_buf())
                    .unwrap_or_else(std::env::temp_dir);
                let seq = IMPORT_SEQ.fetch_add(1, Ordering::Relaxed);
                let path = dir.join(format!(
                    "{label}_{chunk}.n{}.p{}.s{seq}.qchunk",
                    self.node_id,
                    std::process::id()
                ));
                std::fs::write(&path, bytes)
                    .map_err(|e| format!("write {}: {e}", path.display()))?;
                db.attach_stored(&table_name, &path)
                    .map_err(|e| format!("attach {}: {e}", path.display()))?;
            } else {
                let text = std::str::from_utf8(bytes)
                    .map_err(|_| format!("chunk payload {label} is not UTF-8"))?;
                let (_, mut table) = load_dump(text).map_err(|e| format!("load {label}: {e}"))?;
                // Owned tables carry a per-chunk objectId index when the
                // column exists (RefObject does not; ignore).
                if self.meta.partition_info(label).is_some() {
                    let _ = table.build_index("objectId");
                }
                db.create_table(&table_name, table);
            }
        }
        Ok(())
    }

    /// Drops every table of `chunk` — installed and on-demand generated —
    /// after its replica moved elsewhere. Returns how many were dropped;
    /// attached `.qchunk` files stay on disk for other replicas.
    pub fn detach_chunk(&self, chunk: i32) -> usize {
        let mut db = self.db.write();
        let mut doomed: Vec<String> = Vec::new();
        for base in self.meta.table_names() {
            if self.meta.partition_info(base).is_none() {
                continue;
            }
            doomed.push(rewrite::chunk_table(base, chunk));
            doomed.push(rewrite::overlap_table(base, chunk));
            doomed.push(rewrite::union_table(base, chunk));
            let sub_prefix = format!("{base}_{chunk}_");
            let full_prefix = format!("{base}FullOverlap_{chunk}_");
            for name in db.table_names() {
                if parse_suffixed(name, &sub_prefix).is_some()
                    || parse_suffixed(name, &full_prefix).is_some()
                {
                    doomed.push(name.to_string());
                }
            }
        }
        doomed.sort();
        doomed.dedup();
        doomed.iter().filter(|n| db.drop_table(n)).count()
    }

    /// Executes one chunk-query message (header + statements) against this
    /// worker's store, returning the concatenated result table.
    pub fn execute_message(&self, chunk: i32, message: &str) -> Result<Table, String> {
        self.execute_message_detailed(chunk, message)
            .map(|(t, _)| t)
    }

    /// Like [`Worker::execute_message`], but also reports the cold-scan
    /// page counters (zone-map-elided and decoded row groups) summed over
    /// the message's statements.
    pub fn execute_message_detailed(
        &self,
        chunk: i32,
        message: &str,
    ) -> Result<(Table, ScanStats), String> {
        self.stats.chunk_queries.fetch_add(1, Ordering::Relaxed);
        let (_subchunks, statements) = parse_message(message)?;

        let mut combined: Option<ResultTable> = None;
        let mut scan = ScanStats::default();
        let mut generated: Vec<String> = Vec::new();
        for stmt_text in &statements {
            // The span covers table generation + engine execution; when
            // the master runs traced, it nests under the fabric write
            // that delivered this chunk query (plugins run in-line).
            let span = qserv_obs::trace::span("worker.statement");
            if let Some(g) = &span {
                g.annotate("node", &self.node_id.to_string());
            }
            let stmt = parse_select(stmt_text)
                .map_err(|e| format!("worker parse error: {e} in {stmt_text:?}"))?;
            // Generate referenced on-demand tables, then snapshot the
            // database atomically so concurrent drops cannot hurt us.
            let snapshot = {
                let mut db = self.db.write();
                for tref in &stmt.from {
                    if let Some(name) = self.ensure_table(&mut db, &tref.table, chunk)? {
                        generated.push(name);
                    }
                }
                db.clone()
            };
            let (result, path, stmt_scan) = execute_detailed(&snapshot, &stmt, ExecMode::Auto)
                .map_err(|e| format!("worker exec error: {e}"))?;
            scan.pages_pruned += stmt_scan.pages_pruned;
            scan.pages_scanned += stmt_scan.pages_scanned;
            self.stats.statements.fetch_add(1, Ordering::Relaxed);
            if path == ExecPath::Vectorized {
                self.stats
                    .vectorized_statements
                    .fetch_add(1, Ordering::Relaxed);
            }
            if let Some(g) = &span {
                g.annotate(
                    "exec_path",
                    match path {
                        ExecPath::Vectorized => "vectorized",
                        ExecPath::Interpreted => "interpreted",
                    },
                );
                g.annotate("rows", &result.rows.len().to_string());
                if stmt_scan.pages_pruned + stmt_scan.pages_scanned > 0 {
                    g.annotate("pages_pruned", &stmt_scan.pages_pruned.to_string());
                    g.annotate("pages_scanned", &stmt_scan.pages_scanned.to_string());
                }
            }
            combined = Some(match combined {
                None => result,
                Some(mut acc) => {
                    if acc.columns != result.columns {
                        return Err(format!(
                            "statement results disagree on columns: {:?} vs {:?}",
                            acc.columns, result.columns
                        ));
                    }
                    acc.rows.extend(result.rows);
                    acc
                }
            });
        }
        if !self.cache_generated && !generated.is_empty() {
            let mut db = self.db.write();
            for name in generated {
                db.drop_table(&name);
            }
        }
        let combined = combined.ok_or_else(|| "empty chunk query".to_string())?;
        Ok((combined.into_table(), scan))
    }

    /// The owned rows of `base`'s chunk under `owned_name`, decoding an
    /// on-disk chunk file through the residency cache when necessary.
    fn owned_rows(
        &self,
        db: &Database,
        owned_name: &str,
        base: &str,
        chunk: i32,
    ) -> Result<std::sync::Arc<Table>, String> {
        db.materialize(owned_name)
            .map_err(|e| format!("decode {owned_name}: {e}"))?
            .ok_or_else(|| {
                format!(
                    "chunk {chunk} of {base} not stored on node {}",
                    self.node_id
                )
            })
    }

    /// Ensures `name` exists, generating on-demand tables as needed.
    /// Returns `Some(name)` when this call generated the table (so the
    /// caller can drop it afterwards), `None` when it already existed.
    fn ensure_table(
        &self,
        db: &mut Database,
        name: &str,
        chunk: i32,
    ) -> Result<Option<String>, String> {
        if db.has_table(name) {
            return Ok(None);
        }
        for base in self.meta.table_names() {
            let Some(pinfo) = self.meta.partition_info(base) else {
                continue;
            };
            let owned_name = rewrite::chunk_table(base, chunk);
            let overlap_name = rewrite::overlap_table(base, chunk);

            // TUnion_CC = owned ∪ overlap.
            if name == rewrite::union_table(base, chunk) {
                let owned = self.owned_rows(db, &owned_name, base, chunk)?;
                let mut union = owned.empty_like();
                for r in 0..owned.num_rows() {
                    union.push_row(owned.row(r)).expect("same schema");
                }
                if let Some(overlap) = db.table(&overlap_name) {
                    for r in 0..overlap.num_rows() {
                        union.push_row(overlap.row(r)).expect("same schema");
                    }
                }
                db.create_table(name, union);
                self.stats.tables_built.fetch_add(1, Ordering::Relaxed);
                return Ok(Some(name.to_string()));
            }

            // T_CC_SS: owned rows of one subchunk (by stored subChunkId).
            if let Some(ss) = parse_suffixed(name, &format!("{base}_{chunk}_")) {
                let owned = self.owned_rows(db, &owned_name, base, chunk)?;
                let sc_col = owned
                    .schema()
                    .index_of("subChunkId")
                    .ok_or_else(|| format!("{owned_name} lacks subChunkId"))?;
                let filtered = owned.filter_rows(|r| {
                    owned.get(r, sc_col) == qserv_engine::value::Value::Int(ss as i64)
                });
                db.create_table(name, filtered);
                self.stats.tables_built.fetch_add(1, Ordering::Relaxed);
                return Ok(Some(name.to_string()));
            }

            // TFullOverlap_CC_SS: all rows (owned + overlap store) within
            // the subchunk's bounds dilated by the partition overlap.
            if let Some(ss) = parse_suffixed(name, &format!("{base}FullOverlap_{chunk}_")) {
                let bounds = self
                    .chunker
                    .subchunk_bounds_with_overlap(chunk, ss)
                    .map_err(|e| e.to_string())?;
                let owned = self.owned_rows(db, &owned_name, base, chunk)?;
                let lon = owned
                    .schema()
                    .index_of(&pinfo.lon_col)
                    .ok_or_else(|| format!("{owned_name} lacks {}", pinfo.lon_col))?;
                let lat = owned
                    .schema()
                    .index_of(&pinfo.lat_col)
                    .ok_or_else(|| format!("{owned_name} lacks {}", pinfo.lat_col))?;
                let in_bounds = |t: &Table, r: usize| -> bool {
                    match (t.get(r, lon).as_f64(), t.get(r, lat).as_f64()) {
                        (Some(x), Some(y)) => bounds.contains(&LonLat::from_degrees(x, y)),
                        _ => false,
                    }
                };
                let mut full = owned.empty_like();
                for r in 0..owned.num_rows() {
                    if in_bounds(&owned, r) {
                        full.push_row(owned.row(r)).expect("same schema");
                    }
                }
                if let Some(overlap) = db.table(&overlap_name) {
                    let overlap = overlap.clone();
                    for r in 0..overlap.num_rows() {
                        if in_bounds(&overlap, r) {
                            full.push_row(overlap.row(r)).expect("same schema");
                        }
                    }
                }
                db.create_table(name, full);
                self.stats.tables_built.fetch_add(1, Ordering::Relaxed);
                return Ok(Some(name.to_string()));
            }
        }
        Err(format!(
            "node {} has no table {name} and cannot derive it for chunk {chunk}",
            self.node_id
        ))
    }
}

impl OfsPlugin for Worker {
    fn on_file_closed(&self, server: &DataServer, path: &str, data: &[u8]) {
        let Some(chunk) = path
            .strip_prefix("/query2/")
            .and_then(|s| s.parse::<i32>().ok())
        else {
            return; // not a chunk-query path
        };
        // A query routed here against a placement epoch older than a
        // rebalance may arrive after the chunk moved away. NACK with a
        // retryable marker so the master fails over to a live replica
        // instead of treating it as a worker SQL error.
        if !self.holds_chunk(chunk) {
            self.stats.errors.fetch_add(1, Ordering::Relaxed);
            server.put_file(
                &result_path(&md5_hex(data)),
                format!(
                    "ERROR: RETRYABLE: chunk {chunk} not resident on node {}",
                    self.node_id
                )
                .into_bytes(),
            );
            return;
        }
        let text = match std::str::from_utf8(data) {
            Ok(t) => t,
            Err(_) => {
                self.stats.errors.fetch_add(1, Ordering::Relaxed);
                server.put_file(
                    &result_path(&md5_hex(data)),
                    b"ERROR: chunk query is not UTF-8".to_vec(),
                );
                return;
            }
        };
        let deposit = match self.execute_message_detailed(chunk, text) {
            Ok((table, scan)) => {
                let mut out = String::new();
                // Piggyback the cold-scan counters on the dump text as a
                // leading comment line; the master strips and folds it
                // into the query stats. Omitted for pure in-memory scans
                // so warm-path dumps are byte-identical to before.
                if scan.pages_pruned + scan.pages_scanned > 0 {
                    out.push_str(&format!(
                        "-- QSERV_SCAN: pages_pruned={} pages_scanned={}\n",
                        scan.pages_pruned, scan.pages_scanned
                    ));
                }
                out.push_str(&dump_table("result", &table));
                out.into_bytes()
            }
            Err(e) => {
                self.stats.errors.fetch_add(1, Ordering::Relaxed);
                format!("ERROR: {e}").into_bytes()
            }
        };
        server.put_file(&result_path(&md5_hex(data)), deposit);
    }
}

/// Parses `prefix<int>` names, returning the integer suffix.
fn parse_suffixed(name: &str, prefix: &str) -> Option<i32> {
    name.strip_prefix(prefix)?.parse().ok()
}

/// Splits a chunk-query message into its subchunk list and statements.
///
/// The message may carry additional leading `--` comment lines (the
/// master tags each dispatch with a unique `-- QID:` line so that two
/// identical concurrent queries get distinct MD5 result paths); the
/// `-- SUBCHUNKS:` line is required among them.
pub fn parse_message(message: &str) -> Result<(Vec<i32>, Vec<String>), String> {
    let mut rest = message;
    let mut subchunks_line: Option<&str> = None;
    while rest.starts_with("--") {
        let (line, tail) = match rest.split_once('\n') {
            Some((l, t)) => (l, t),
            None => (rest, ""),
        };
        if let Some(list) = line.strip_prefix("-- SUBCHUNKS:") {
            if subchunks_line.is_some() {
                return Err("duplicate SUBCHUNKS header".to_string());
            }
            subchunks_line = Some(list);
        }
        rest = tail;
    }
    let Some(list) = subchunks_line else {
        return Err("missing SUBCHUNKS header".to_string());
    };
    let mut subchunks = Vec::new();
    for part in list.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        subchunks.push(
            part.parse::<i32>()
                .map_err(|_| format!("bad subchunk id {part:?}"))?,
        );
    }
    // Split statements on ';' outside single-quoted strings.
    let mut statements = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    for c in rest.chars() {
        match c {
            '\'' => {
                in_str = !in_str;
                cur.push(c);
            }
            ';' if !in_str => {
                let s = cur.trim().to_string();
                if !s.is_empty() {
                    statements.push(s);
                }
                cur.clear();
            }
            _ => cur.push(c),
        }
    }
    let tail = cur.trim().to_string();
    if !tail.is_empty() {
        statements.push(tail);
    }
    if statements.is_empty() {
        return Err("chunk query contains no statements".to_string());
    }
    Ok((subchunks, statements))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qserv_engine::schema::{ColumnDef, ColumnType, Schema};
    use qserv_engine::value::Value;

    fn object_schema() -> Schema {
        Schema::new(vec![
            ColumnDef::new("objectId", ColumnType::Int),
            ColumnDef::new("ra_PS", ColumnType::Float),
            ColumnDef::new("decl_PS", ColumnType::Float),
            ColumnDef::new("chunkId", ColumnType::Int),
            ColumnDef::new("subChunkId", ColumnType::Int),
        ])
    }

    /// Builds a worker holding one Object chunk with a few rows placed by
    /// the real chunker.
    fn worker_with_chunk() -> (Worker, i32) {
        let chunker = Chunker::test_small();
        let meta = CatalogMeta::lsst();
        let worker = Worker::new(0, chunker.clone(), meta);

        // Pick the chunk containing (15, 5).
        let probe = LonLat::from_degrees(15.0, 5.0);
        let chunk = chunker.locate(&probe).chunk_id;
        let bounds = chunker.chunk_bounds(chunk).unwrap();
        let mut owned = Table::new(object_schema());
        // A handful of objects inside the chunk.
        for (i, (dlon, dlat)) in [(0.1, 0.1), (0.2, 0.2), (0.5, 0.5), (0.21, 0.2)]
            .iter()
            .enumerate()
        {
            let ra = bounds.lon_min_deg() + dlon;
            let decl = bounds.lat_min_deg() + dlat;
            let loc = chunker.locate(&LonLat::from_degrees(ra, decl));
            assert_eq!(loc.chunk_id, chunk);
            owned
                .push_row(vec![
                    Value::Int(i as i64 + 1),
                    Value::Float(ra),
                    Value::Float(decl),
                    Value::Int(chunk as i64),
                    Value::Int(loc.subchunk_id as i64),
                ])
                .unwrap();
        }
        owned.build_index("objectId").unwrap();
        // One overlap row: just outside the chunk's west edge.
        let mut overlap = Table::new(object_schema());
        overlap
            .push_row(vec![
                Value::Int(100),
                Value::Float(bounds.lon_min_deg() - 0.05),
                Value::Float(bounds.lat_min_deg() + 0.1),
                Value::Int(0),
                Value::Int(0),
            ])
            .unwrap();
        worker.install_chunk("Object", chunk, owned, overlap);
        (worker, chunk)
    }

    #[test]
    fn message_parsing() {
        let (subs, stmts) =
            parse_message("-- SUBCHUNKS: 1, 2, 3\nSELECT 1;\nSELECT 'a;b';").unwrap();
        assert_eq!(subs, vec![1, 2, 3]);
        assert_eq!(stmts.len(), 2);
        assert_eq!(stmts[1], "SELECT 'a;b'");
        let (subs, stmts) = parse_message("-- SUBCHUNKS:\nSELECT 1;").unwrap();
        assert!(subs.is_empty());
        assert_eq!(stmts.len(), 1);
        assert!(parse_message("SELECT 1;").is_err());
        assert!(parse_message("-- SUBCHUNKS: x\nSELECT 1;").is_err());
        assert!(parse_message("-- SUBCHUNKS: 1\n").is_err());
    }

    #[test]
    fn execute_simple_chunk_query() {
        let (worker, chunk) = worker_with_chunk();
        let msg = format!(
            "-- SUBCHUNKS:\nSELECT COUNT(*) AS `COUNT(*)` FROM LSST.Object_{chunk} AS Object;"
        );
        let t = worker.execute_message(chunk, &msg).unwrap();
        assert_eq!(t.num_rows(), 1);
        assert_eq!(t.get_by_name(0, "COUNT(*)"), Some(Value::Int(4)));
    }

    #[test]
    fn union_table_generated_and_dropped() {
        let (worker, chunk) = worker_with_chunk();
        let msg =
            format!("-- SUBCHUNKS:\nSELECT COUNT(*) AS c FROM LSST.ObjectUnion_{chunk} AS Object;");
        let t = worker.execute_message(chunk, &msg).unwrap();
        // 4 owned + 1 overlap row.
        assert_eq!(t.get_by_name(0, "c"), Some(Value::Int(5)));
        let (_q, _s, built, _e) = worker.stats.snapshot();
        assert_eq!(built, 1);
        // Dropped afterwards (no caching by default, §5.4).
        assert!(!worker
            .table_names()
            .contains(&format!("ObjectUnion_{chunk}")));
    }

    #[test]
    fn cached_generated_tables_stay() {
        let (mut worker, chunk) = {
            let (w, c) = worker_with_chunk();
            (w, c)
        };
        worker.cache_generated = true;
        let msg =
            format!("-- SUBCHUNKS:\nSELECT COUNT(*) AS c FROM LSST.ObjectUnion_{chunk} AS o;");
        worker.execute_message(chunk, &msg).unwrap();
        assert!(worker
            .table_names()
            .contains(&format!("ObjectUnion_{chunk}")));
        // Second run reuses it: no new build.
        worker.execute_message(chunk, &msg).unwrap();
        let (_q, _s, built, _e) = worker.stats.snapshot();
        assert_eq!(built, 1);
    }

    #[test]
    fn subchunk_tables_partition_owned_rows() {
        let (worker, chunk) = worker_with_chunk();
        // Count rows across every subchunk: must equal the owned total.
        let subchunks = worker.chunker.subchunks_of(chunk).unwrap();
        let mut msg = String::from("-- SUBCHUNKS:");
        msg.push_str(
            &subchunks
                .iter()
                .map(|s| format!(" {s}"))
                .collect::<Vec<_>>()
                .join(","),
        );
        msg.push('\n');
        for ss in &subchunks {
            msg.push_str(&format!(
                "SELECT COUNT(*) AS c FROM LSST.Object_{chunk}_{ss} AS o1;\n"
            ));
        }
        let t = worker.execute_message(chunk, &msg).unwrap();
        let total: i64 = (0..t.num_rows())
            .map(|r| t.get_by_name(r, "c").unwrap().as_i64().unwrap())
            .sum();
        assert_eq!(total, 4, "subchunks must exactly partition the chunk");
    }

    #[test]
    fn full_overlap_subchunk_includes_overlap_rows() {
        let (worker, chunk) = worker_with_chunk();
        // The overlap row sits just west of the chunk: the first subchunk
        // column's dilated bounds must include it.
        let bounds = worker.chunker.chunk_bounds(chunk).unwrap();
        let probe = LonLat::from_degrees(bounds.lon_min_deg() + 0.01, bounds.lat_min_deg() + 0.1);
        let ss = worker.chunker.locate(&probe).subchunk_id;
        let msg = format!(
            "-- SUBCHUNKS: {ss}\nSELECT COUNT(*) AS c FROM LSST.ObjectFullOverlap_{chunk}_{ss} AS o2;"
        );
        let t = worker.execute_message(chunk, &msg).unwrap();
        let c = t.get_by_name(0, "c").unwrap().as_i64().unwrap();
        assert!(
            c >= 1,
            "dilated subchunk must see the overlap row (got {c} rows)"
        );
    }

    #[test]
    fn simple_scans_run_vectorized() {
        let (worker, chunk) = worker_with_chunk();
        let msg = format!(
            "-- SUBCHUNKS:\nSELECT o.objectId FROM LSST.Object_{chunk} AS o WHERE o.objectId > 1;"
        );
        let t = worker.execute_message(chunk, &msg).unwrap();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(worker.stats.vectorized(), 1);
    }

    #[test]
    fn missing_chunk_is_an_error() {
        let (worker, chunk) = worker_with_chunk();
        let other = chunk + 1;
        let msg = format!("-- SUBCHUNKS:\nSELECT COUNT(*) AS c FROM LSST.Object_{other} AS o;");
        let err = worker.execute_message(other, &msg).unwrap_err();
        assert!(err.contains("no table"), "{err}");
    }

    #[test]
    fn plugin_deposits_result_at_md5_path() {
        let (worker, chunk) = worker_with_chunk();
        let server = DataServer::new(0);
        let msg = format!(
            "-- SUBCHUNKS:\nSELECT COUNT(*) AS `COUNT(*)` FROM LSST.Object_{chunk} AS Object;"
        );
        worker.on_file_closed(&server, &format!("/query2/{chunk}"), msg.as_bytes());
        let deposited = server
            .get_file(&result_path(&md5_hex(msg.as_bytes())))
            .expect("result deposited");
        let text = String::from_utf8(deposited.to_vec()).unwrap();
        assert!(text.contains("CREATE TABLE"), "{text}");
        let (_, table) = qserv_engine::dump::load_dump(&text).unwrap();
        assert_eq!(table.get_by_name(0, "COUNT(*)"), Some(Value::Int(4)));
    }

    #[test]
    fn plugin_deposits_error_text_on_failure() {
        let (worker, chunk) = worker_with_chunk();
        let server = DataServer::new(0);
        let msg = "-- SUBCHUNKS:\nSELECT broken syntax here;";
        worker.on_file_closed(&server, &format!("/query2/{chunk}"), msg.as_bytes());
        let deposited = server
            .get_file(&result_path(&md5_hex(msg.as_bytes())))
            .expect("error deposited");
        assert!(deposited.starts_with(b"ERROR:"));
        let (_q, _s, _b, errors) = worker.stats.snapshot();
        assert_eq!(errors, 1);
    }

    #[test]
    fn export_import_round_trips_a_chunk() {
        let (src, chunk) = worker_with_chunk();
        let files = src.export_chunk(chunk).unwrap();
        // Object owned + ObjectOverlap, as SQL dumps (no chunk file).
        assert_eq!(
            files.iter().map(|(l, _)| l.as_str()).collect::<Vec<_>>(),
            vec!["Object", "ObjectOverlap"]
        );
        let dst = Worker::new(1, src.chunker.clone(), CatalogMeta::lsst());
        assert!(!dst.holds_chunk(chunk));
        dst.import_chunk(chunk, &files, None).unwrap();
        assert!(dst.holds_chunk(chunk));
        // The replica answers the same chunk query identically, union
        // table included (owned + overlap survived the trip).
        let msg =
            format!("-- SUBCHUNKS:\nSELECT COUNT(*) AS c FROM LSST.ObjectUnion_{chunk} AS o;");
        let a = src.execute_message(chunk, &msg).unwrap();
        let b = dst.execute_message(chunk, &msg).unwrap();
        assert_eq!(a.get_by_name(0, "c"), b.get_by_name(0, "c"));
        assert_eq!(b.get_by_name(0, "c"), Some(Value::Int(5)));
    }

    #[test]
    fn detach_chunk_drops_installed_and_generated_tables() {
        let (mut worker, chunk) = worker_with_chunk();
        worker.cache_generated = true; // leave a generated table behind
        let msg =
            format!("-- SUBCHUNKS:\nSELECT COUNT(*) AS c FROM LSST.ObjectUnion_{chunk} AS o;");
        worker.execute_message(chunk, &msg).unwrap();
        assert!(worker.holds_chunk(chunk));
        let dropped = worker.detach_chunk(chunk);
        assert_eq!(dropped, 3, "owned + overlap + cached union");
        assert!(!worker.holds_chunk(chunk));
        assert!(worker.table_names().is_empty());
        assert_eq!(worker.detach_chunk(chunk), 0, "idempotent");
    }

    #[test]
    fn plugin_nacks_unheld_chunk_with_retryable_marker() {
        let (worker, chunk) = worker_with_chunk();
        let server = DataServer::new(0);
        let other = chunk + 1;
        let msg = format!("-- SUBCHUNKS:\nSELECT COUNT(*) AS c FROM LSST.Object_{other} AS o;");
        worker.on_file_closed(&server, &format!("/query2/{other}"), msg.as_bytes());
        let deposited = server
            .get_file(&result_path(&md5_hex(msg.as_bytes())))
            .expect("NACK deposited");
        let text = String::from_utf8(deposited.to_vec()).unwrap();
        assert!(text.starts_with("ERROR: RETRYABLE:"), "{text}");
        assert!(text.contains(&format!("chunk {other}")), "{text}");
    }

    #[test]
    fn non_query_paths_ignored() {
        let (worker, _chunk) = worker_with_chunk();
        let server = DataServer::new(0);
        worker.on_file_closed(&server, "/meta/whatever", b"data");
        assert_eq!(server.num_files(), 0);
    }
}
