//! Catalog metadata: the frontend's knowledge about tables.
//!
//! The frontend must know, per table: is it spatially partitioned (and on
//! which position columns), is it small and replicated to every worker
//! instead, and does it carry the secondary-indexed column (paper §5.3
//! "Detect database and table references — Not all tables are
//! partitioned"; §5.5 objectId indexing).

use std::collections::BTreeMap;

/// Partitioning info for one spatially-sharded table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartitionInfo {
    /// Longitude (right ascension) column used for sharding.
    pub lon_col: String,
    /// Latitude (declination) column used for sharding.
    pub lat_col: String,
}

/// How a table is stored across the cluster.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TableDistribution {
    /// Sharded into chunk tables `T_CC` with an overlap store.
    Partitioned(PartitionInfo),
    /// Fully replicated on every worker under its own name.
    Replicated,
}

/// Per-table metadata.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TableMeta {
    /// Distribution scheme.
    pub distribution: TableDistribution,
    /// Column covered by the frontend's secondary index, when any
    /// (always `objectId` in the paper).
    pub index_col: Option<String>,
}

/// The frontend's table catalog.
#[derive(Clone, Debug, Default)]
pub struct CatalogMeta {
    database: String,
    tables: BTreeMap<String, TableMeta>,
}

impl CatalogMeta {
    /// An empty catalog for database `database` (the paper's is `LSST`).
    pub fn new(database: &str) -> CatalogMeta {
        CatalogMeta {
            database: database.to_string(),
            tables: BTreeMap::new(),
        }
    }

    /// The LSST catalog layout used throughout the paper: `Object`
    /// partitioned on (`ra_PS`, `decl_PS`) with the objectId index,
    /// `Source` partitioned on (`ra`, `decl`) with objectId indexed, a
    /// small replicated `Filter` table, and a second partitioned
    /// `RefObject` catalog (an external reference survey) for
    /// cross-catalog XMatch. `RefObject` carries no secondary index — its
    /// `refObjectId` values are not in the frontend's objectId index, so
    /// routing must stay purely spatial.
    pub fn lsst() -> CatalogMeta {
        let mut m = CatalogMeta::new("LSST");
        m.add_partitioned("Object", "ra_PS", "decl_PS", Some("objectId"));
        m.add_partitioned("Source", "ra", "decl", Some("objectId"));
        m.add_partitioned("RefObject", "ra", "decl", None);
        m.add_replicated("Filter");
        m
    }

    /// The default database name queries run against.
    pub fn database(&self) -> &str {
        &self.database
    }

    /// Registers a partitioned table.
    pub fn add_partitioned(
        &mut self,
        table: &str,
        lon_col: &str,
        lat_col: &str,
        index_col: Option<&str>,
    ) {
        self.tables.insert(
            table.to_string(),
            TableMeta {
                distribution: TableDistribution::Partitioned(PartitionInfo {
                    lon_col: lon_col.to_string(),
                    lat_col: lat_col.to_string(),
                }),
                index_col: index_col.map(str::to_string),
            },
        );
    }

    /// Registers a replicated table.
    pub fn add_replicated(&mut self, table: &str) {
        self.tables.insert(
            table.to_string(),
            TableMeta {
                distribution: TableDistribution::Replicated,
                index_col: None,
            },
        );
    }

    /// Metadata for `table`, when known.
    pub fn table(&self, table: &str) -> Option<&TableMeta> {
        self.tables.get(table)
    }

    /// True when `table` is known and partitioned.
    pub fn is_partitioned(&self, table: &str) -> bool {
        matches!(
            self.table(table),
            Some(TableMeta {
                distribution: TableDistribution::Partitioned(_),
                ..
            })
        )
    }

    /// Partitioning info for `table`, when partitioned.
    pub fn partition_info(&self, table: &str) -> Option<&PartitionInfo> {
        match self.table(table) {
            Some(TableMeta {
                distribution: TableDistribution::Partitioned(p),
                ..
            }) => Some(p),
            _ => None,
        }
    }

    /// All known table names.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(|s| s.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lsst_layout() {
        let m = CatalogMeta::lsst();
        assert_eq!(m.database(), "LSST");
        assert!(m.is_partitioned("Object"));
        assert!(m.is_partitioned("Source"));
        assert!(!m.is_partitioned("Filter"));
        assert!(!m.is_partitioned("Unknown"));
        let p = m.partition_info("Object").unwrap();
        assert_eq!(p.lon_col, "ra_PS");
        assert_eq!(p.lat_col, "decl_PS");
        let s = m.partition_info("Source").unwrap();
        assert_eq!(s.lon_col, "ra");
        assert_eq!(
            m.table("Object").unwrap().index_col.as_deref(),
            Some("objectId")
        );
        assert_eq!(m.table("Filter").unwrap().index_col, None);
        assert!(m.is_partitioned("RefObject"));
        let r = m.partition_info("RefObject").unwrap();
        assert_eq!((r.lon_col.as_str(), r.lat_col.as_str()), ("ra", "decl"));
        assert_eq!(m.table("RefObject").unwrap().index_col, None);
    }

    #[test]
    fn partition_info_none_for_replicated() {
        let m = CatalogMeta::lsst();
        assert!(m.partition_info("Filter").is_none());
        assert!(m.partition_info("Nope").is_none());
    }

    #[test]
    fn table_names_sorted() {
        let m = CatalogMeta::lsst();
        assert_eq!(
            m.table_names(),
            vec!["Filter", "Object", "RefObject", "Source"]
        );
    }
}
