//! Catalog metadata: the frontend's knowledge about tables.
//!
//! The frontend must know, per table: is it spatially partitioned (and on
//! which position columns), is it small and replicated to every worker
//! instead, and does it carry the secondary-indexed column (paper §5.3
//! "Detect database and table references — Not all tables are
//! partitioned"; §5.5 objectId indexing).

use std::collections::BTreeMap;

/// Partitioning info for one spatially-sharded table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartitionInfo {
    /// Longitude (right ascension) column used for sharding.
    pub lon_col: String,
    /// Latitude (declination) column used for sharding.
    pub lat_col: String,
}

/// How a table is stored across the cluster.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TableDistribution {
    /// Sharded into chunk tables `T_CC` with an overlap store.
    Partitioned(PartitionInfo),
    /// Fully replicated on every worker under its own name.
    Replicated,
}

/// Per-table metadata.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TableMeta {
    /// Distribution scheme.
    pub distribution: TableDistribution,
    /// Column covered by the frontend's secondary index, when any
    /// (always `objectId` in the paper).
    pub index_col: Option<String>,
}

/// The frontend's table catalog.
#[derive(Clone, Debug, Default)]
pub struct CatalogMeta {
    database: String,
    tables: BTreeMap<String, TableMeta>,
}

impl CatalogMeta {
    /// An empty catalog for database `database` (the paper's is `LSST`).
    pub fn new(database: &str) -> CatalogMeta {
        CatalogMeta {
            database: database.to_string(),
            tables: BTreeMap::new(),
        }
    }

    /// The LSST catalog layout used throughout the paper: `Object`
    /// partitioned on (`ra_PS`, `decl_PS`) with the objectId index,
    /// `Source` partitioned on (`ra`, `decl`) with objectId indexed, a
    /// small replicated `Filter` table, and a second partitioned
    /// `RefObject` catalog (an external reference survey) for
    /// cross-catalog XMatch. `RefObject` carries no secondary index — its
    /// `refObjectId` values are not in the frontend's objectId index, so
    /// routing must stay purely spatial.
    pub fn lsst() -> CatalogMeta {
        let mut m = CatalogMeta::new("LSST");
        m.add_partitioned("Object", "ra_PS", "decl_PS", Some("objectId"));
        m.add_partitioned("Source", "ra", "decl", Some("objectId"));
        m.add_partitioned("RefObject", "ra", "decl", None);
        m.add_replicated("Filter");
        m
    }

    /// The default database name queries run against.
    pub fn database(&self) -> &str {
        &self.database
    }

    /// Registers a partitioned table.
    pub fn add_partitioned(
        &mut self,
        table: &str,
        lon_col: &str,
        lat_col: &str,
        index_col: Option<&str>,
    ) {
        self.tables.insert(
            table.to_string(),
            TableMeta {
                distribution: TableDistribution::Partitioned(PartitionInfo {
                    lon_col: lon_col.to_string(),
                    lat_col: lat_col.to_string(),
                }),
                index_col: index_col.map(str::to_string),
            },
        );
    }

    /// Registers a replicated table.
    pub fn add_replicated(&mut self, table: &str) {
        self.tables.insert(
            table.to_string(),
            TableMeta {
                distribution: TableDistribution::Replicated,
                index_col: None,
            },
        );
    }

    /// Metadata for `table`, when known.
    pub fn table(&self, table: &str) -> Option<&TableMeta> {
        self.tables.get(table)
    }

    /// True when `table` is known and partitioned.
    pub fn is_partitioned(&self, table: &str) -> bool {
        matches!(
            self.table(table),
            Some(TableMeta {
                distribution: TableDistribution::Partitioned(_),
                ..
            })
        )
    }

    /// Partitioning info for `table`, when partitioned.
    pub fn partition_info(&self, table: &str) -> Option<&PartitionInfo> {
        match self.table(table) {
            Some(TableMeta {
                distribution: TableDistribution::Partitioned(p),
                ..
            }) => Some(p),
            _ => None,
        }
    }

    /// All known table names.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(|s| s.as_str()).collect()
    }
}

/// Zone summary for one numeric column of one chunk: min/max over the
/// valid (non-NULL, non-NaN) values, as `f64`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ColumnZone {
    /// Count of valid values in the chunk.
    pub valid: u64,
    /// Minimum valid value (`+∞` when `valid == 0`).
    pub min: f64,
    /// Maximum valid value (`−∞` when `valid == 0`).
    pub max: f64,
}

impl ColumnZone {
    /// True when every row of the chunk fails a `[lo, hi]` restriction on
    /// this column. Conservative: boundary equality keeps the chunk (the
    /// registered bounds went through an `as f64` conversion for integer
    /// columns, which is monotone but lossy at the extremes, so only
    /// strict inequality is trusted). A chunk with no valid value fails
    /// any restriction — NULL and NaN rows never satisfy a comparison.
    pub fn excluded_by(&self, lo: f64, hi: f64) -> bool {
        self.valid == 0 || self.max < lo || self.min > hi
    }
}

/// Per-chunk zone maps registered at load time: `(table, chunk) →
/// column → zone`. The master consults these to elide whole chunks
/// before dispatch — the chunk-level analogue of the worker's per-page
/// zone maps.
#[derive(Clone, Debug, Default)]
pub struct ChunkZones {
    zones: BTreeMap<(String, i64), BTreeMap<String, ColumnZone>>,
}

impl ChunkZones {
    /// An empty registry.
    pub fn new() -> ChunkZones {
        ChunkZones::default()
    }

    /// Registers (or merges, widening) the zone of one column of one
    /// chunk. Merging lets replicated loads and overlap rows fold in
    /// safely — bounds only ever widen.
    pub fn register(&mut self, table: &str, chunk: i64, column: &str, zone: ColumnZone) {
        let cols = self.zones.entry((table.to_string(), chunk)).or_default();
        match cols.get_mut(column) {
            Some(z) => {
                z.valid += zone.valid;
                z.min = z.min.min(zone.min);
                z.max = z.max.max(zone.max);
            }
            None => {
                cols.insert(column.to_string(), zone);
            }
        }
    }

    /// The zone of `column` in `table`'s chunk `chunk`, when registered.
    pub fn zone(&self, table: &str, chunk: i64, column: &str) -> Option<&ColumnZone> {
        self.zones.get(&(table.to_string(), chunk))?.get(column)
    }

    /// True when any registered zone proves chunk `chunk` of `table` has
    /// no row satisfying *all* of `restrictions` (each a `column ∈ [lo,
    /// hi]` interval ANDed with the others). Unregistered chunks or
    /// columns are never excluded.
    pub fn chunk_excluded(
        &self,
        table: &str,
        chunk: i64,
        restrictions: &[(String, f64, f64)],
    ) -> bool {
        let Some(cols) = self.zones.get(&(table.to_string(), chunk)) else {
            return false;
        };
        restrictions
            .iter()
            .any(|(col, lo, hi)| cols.get(col).is_some_and(|z| z.excluded_by(*lo, *hi)))
    }

    /// Number of (table, chunk) entries registered.
    pub fn len(&self) -> usize {
        self.zones.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.zones.is_empty()
    }
}

/// Planner statistics for one numeric column of one table, aggregated
/// over every loaded chunk.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ColumnStat {
    /// Non-NULL, non-NaN values across all chunks.
    pub valid: u64,
    /// Distinct-value count across all chunks. Exact when
    /// `exact_distinct` (the loader merged per-chunk value sets);
    /// otherwise a sum of per-chunk distinct counts, an upper bound
    /// that double-counts values repeated across chunks.
    pub distinct: u64,
    /// Whether `distinct` is an exact global count.
    pub exact_distinct: bool,
}

/// Table/column statistics registered at load time and consumed by
/// [`crate::planner`]: per-chunk row counts (the unit of the cost
/// model), per-table totals, and per-column distinct-value estimates
/// for selectivity. Like [`ChunkZones`], this is a plain registry the
/// loader fills and the master holds behind an `Arc`.
#[derive(Clone, Debug, Default)]
pub struct TableStats {
    chunk_rows: BTreeMap<(String, i64), u64>,
    table_rows: BTreeMap<String, u64>,
    columns: BTreeMap<(String, String), ColumnStat>,
}

impl TableStats {
    /// An empty registry.
    pub fn new() -> TableStats {
        TableStats::default()
    }

    /// Records the row count of one chunk of `table` (accumulating, so
    /// split loads fold in).
    pub fn record_chunk_rows(&mut self, table: &str, chunk: i64, rows: u64) {
        *self
            .chunk_rows
            .entry((table.to_string(), chunk))
            .or_insert(0) += rows;
        *self.table_rows.entry(table.to_string()).or_insert(0) += rows;
    }

    /// Sets the column statistic for `(table, column)`, replacing any
    /// previous value — the loader computes the global figure once,
    /// after all chunks are in.
    pub fn set_column(&mut self, table: &str, column: &str, stat: ColumnStat) {
        self.columns
            .insert((table.to_string(), column.to_string()), stat);
    }

    /// Rows loaded into chunk `chunk` of `table`, when known.
    pub fn chunk_rows(&self, table: &str, chunk: i64) -> Option<u64> {
        self.chunk_rows.get(&(table.to_string(), chunk)).copied()
    }

    /// Total rows loaded across all chunks of `table`.
    pub fn table_rows(&self, table: &str) -> u64 {
        self.table_rows.get(table).copied().unwrap_or(0)
    }

    /// The statistic for `column` of `table`, when registered.
    pub fn column(&self, table: &str, column: &str) -> Option<ColumnStat> {
        self.columns
            .get(&(table.to_string(), column.to_string()))
            .copied()
    }

    /// True when statistics *prove* `column` of `table` is a unique,
    /// NULL-free key over the loaded data: exact distinct count equal to
    /// both the valid count and the table's total rows. The planner only
    /// pushes ORDER BY + LIMIT below the merge on such a column — ties
    /// are impossible, so every plan yields the identical prefix.
    pub fn is_unique_key(&self, table: &str, column: &str) -> bool {
        let rows = self.table_rows(table);
        rows > 0
            && self
                .column(table, column)
                .is_some_and(|c| c.exact_distinct && c.distinct == c.valid && c.valid == rows)
    }

    /// Number of (table, chunk) row-count entries registered.
    pub fn len(&self) -> usize {
        self.chunk_rows.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.chunk_rows.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lsst_layout() {
        let m = CatalogMeta::lsst();
        assert_eq!(m.database(), "LSST");
        assert!(m.is_partitioned("Object"));
        assert!(m.is_partitioned("Source"));
        assert!(!m.is_partitioned("Filter"));
        assert!(!m.is_partitioned("Unknown"));
        let p = m.partition_info("Object").unwrap();
        assert_eq!(p.lon_col, "ra_PS");
        assert_eq!(p.lat_col, "decl_PS");
        let s = m.partition_info("Source").unwrap();
        assert_eq!(s.lon_col, "ra");
        assert_eq!(
            m.table("Object").unwrap().index_col.as_deref(),
            Some("objectId")
        );
        assert_eq!(m.table("Filter").unwrap().index_col, None);
        assert!(m.is_partitioned("RefObject"));
        let r = m.partition_info("RefObject").unwrap();
        assert_eq!((r.lon_col.as_str(), r.lat_col.as_str()), ("ra", "decl"));
        assert_eq!(m.table("RefObject").unwrap().index_col, None);
    }

    #[test]
    fn partition_info_none_for_replicated() {
        let m = CatalogMeta::lsst();
        assert!(m.partition_info("Filter").is_none());
        assert!(m.partition_info("Nope").is_none());
    }

    #[test]
    fn chunk_zones_register_merge_and_exclude() {
        let mut z = ChunkZones::new();
        assert!(z.is_empty());
        z.register(
            "Object",
            7,
            "ra_PS",
            ColumnZone {
                valid: 10,
                min: 30.0,
                max: 40.0,
            },
        );
        // A second registration for the same column widens.
        z.register(
            "Object",
            7,
            "ra_PS",
            ColumnZone {
                valid: 5,
                min: 25.0,
                max: 35.0,
            },
        );
        assert_eq!(z.len(), 1);
        let zone = z.zone("Object", 7, "ra_PS").unwrap();
        assert_eq!((zone.valid, zone.min, zone.max), (15, 25.0, 40.0));

        let hit = vec![("ra_PS".to_string(), 20.0, 26.0)];
        let miss = vec![("ra_PS".to_string(), 50.0, 60.0)];
        assert!(!z.chunk_excluded("Object", 7, &hit));
        assert!(z.chunk_excluded("Object", 7, &miss));
        // Boundary equality keeps the chunk (conservative).
        let edge = vec![("ra_PS".to_string(), 40.0, 60.0)];
        assert!(!z.chunk_excluded("Object", 7, &edge));
        // Unknown chunk or column never excludes.
        assert!(!z.chunk_excluded("Object", 8, &miss));
        let other = vec![("decl_PS".to_string(), 50.0, 60.0)];
        assert!(!z.chunk_excluded("Object", 7, &other));
    }

    #[test]
    fn all_invalid_zone_excludes_any_restriction() {
        let mut z = ChunkZones::new();
        z.register(
            "Object",
            1,
            "zFlux_PS",
            ColumnZone {
                valid: 0,
                min: f64::INFINITY,
                max: f64::NEG_INFINITY,
            },
        );
        let any = vec![("zFlux_PS".to_string(), f64::NEG_INFINITY, f64::INFINITY)];
        assert!(z.chunk_excluded("Object", 1, &any));
    }

    #[test]
    fn table_stats_accumulate_and_prove_uniqueness() {
        let mut s = TableStats::new();
        assert!(s.is_empty());
        s.record_chunk_rows("Object", 7, 10);
        s.record_chunk_rows("Object", 8, 5);
        s.record_chunk_rows("Object", 7, 2); // split load folds in
        assert_eq!(s.chunk_rows("Object", 7), Some(12));
        assert_eq!(s.chunk_rows("Object", 9), None);
        assert_eq!(s.table_rows("Object"), 17);
        assert_eq!(s.table_rows("Source"), 0);
        assert_eq!(s.len(), 2);

        s.set_column(
            "Object",
            "objectId",
            ColumnStat {
                valid: 17,
                distinct: 17,
                exact_distinct: true,
            },
        );
        assert!(s.is_unique_key("Object", "objectId"));
        // Inexact distinct never proves uniqueness, even if counts line up.
        s.set_column(
            "Object",
            "ra_PS",
            ColumnStat {
                valid: 17,
                distinct: 17,
                exact_distinct: false,
            },
        );
        assert!(!s.is_unique_key("Object", "ra_PS"));
        // NULLs (valid < rows) break uniqueness.
        s.set_column(
            "Object",
            "zFlux_PS",
            ColumnStat {
                valid: 16,
                distinct: 16,
                exact_distinct: true,
            },
        );
        assert!(!s.is_unique_key("Object", "zFlux_PS"));
        assert!(!s.is_unique_key("Object", "nope"));
        assert!(!s.is_unique_key("Empty", "x"));
    }

    #[test]
    fn table_names_sorted() {
        let m = CatalogMeta::lsst();
        assert_eq!(
            m.table_names(),
            vec!["Filter", "Object", "RefObject", "Source"]
        );
    }
}
