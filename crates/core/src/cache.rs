//! Normalized-query result cache.
//!
//! "Experience deploying an analysis facility for LSST"-style traffic
//! is dominated by many small *repeated* lookups — the same cone
//! search, the same objectId fetch, re-issued by notebooks and dashboards
//! with cosmetic differences in whitespace and casing. This module
//! caches final result tables keyed by the **normalized** query text
//! (parse → [`to_sql`](qserv_sqlparse::ast::SelectStatement::to_sql)
//! fixed point, so `select  x from Object` and `SELECT x FROM Object`
//! share an entry) together with a catalog **data version**: loading
//! or attaching data bumps a version, instantly orphaning affected
//! entries rather than serving stale rows. Invalidation is scoped to
//! the tables actually touched: the service keys each entry on
//! [`crate::Qserv::version_for_tables`] over the query's FROM-clause
//! tables, so [`crate::Qserv::bump_table_version`]`("Source")` orphans
//! the Source lookups while cone searches over Object keep hitting.
//! The global [`crate::Qserv::bump_data_version`] remains the hammer
//! that orphans everything.
//!
//! Only differences the renderer erases (whitespace, keyword casing)
//! fold together. Spellings that survive rendering — function-name
//! case, say — stay distinct keys, which keeps replayed column
//! *headers* exact: two queries share an entry only when their
//! canonical text (headers included) is the same.
//!
//! The cache is a byte-budget LRU: entries charge their materialized
//! result size, oversized results are never admitted, and inserts evict
//! least-recently-used entries until the budget holds. It is a plain
//! data structure — [`crate::QueryService`] drives it under its own
//! lock and owns the `proxy.cache.{hit,miss,evict}` counters.

use crate::error::QservError;
use crate::service::QueryClass;
use crate::stats::QueryStats;
use qserv_engine::exec::ResultTable;
use qserv_engine::schema::ColumnType;
use qserv_engine::value::Value;
use qserv_sqlparse::parse_select;
use std::collections::HashMap;
use std::sync::Arc;

/// Normalizes a statement to its canonical text: parse, render, and
/// re-render until the text is stable (the `to_sql` fixed point — in
/// practice one round, but bounded iteration guards against a renderer
/// that oscillates). Two statements normalize equal iff the parser sees
/// the same query, which is exactly the equivalence a result cache may
/// key on. Parse errors surface to the caller — a broken query must
/// fail loudly, not miss quietly.
pub fn normalize_sql(sql: &str) -> Result<String, QservError> {
    normalize_sql_tables(sql).map(|(text, _)| text)
}

/// [`normalize_sql`] plus the sorted, deduplicated FROM-clause table
/// names — the tables whose data versions the cache key must cover.
/// Because the normalized text pins the exact table set, a version sum
/// over *these* tables is a sound cache key: an entry can only be
/// replayed for a query over the same tables, so bumping any one of
/// them perturbs the sum and orphans exactly the entries that read it.
pub fn normalize_sql_tables(sql: &str) -> Result<(String, Vec<String>), QservError> {
    let stmt = parse_select(sql)?;
    let mut tables: Vec<String> = stmt.from.iter().map(|t| t.table.clone()).collect();
    tables.sort_unstable();
    tables.dedup();
    let mut text = stmt.to_sql();
    for _ in 0..3 {
        let Ok(stmt) = parse_select(&text) else {
            // The rendering no longer parses (renderer bug): the first
            // rendering is still deterministic, so it remains a usable —
            // if less canonical — key.
            return Ok((text, tables));
        };
        let again = stmt.to_sql();
        if again == text {
            return Ok((text, tables));
        }
        text = again;
    }
    Ok((text, tables))
}

fn row_bytes(r: &[Value]) -> u64 {
    24 + r
        .iter()
        .map(|v| {
            16 + match v {
                Value::Str(s) => s.len() as u64,
                _ => 0,
            }
        })
        .sum::<u64>()
}

/// Approximate heap footprint of a result table, the currency of the
/// cache's byte budget.
pub fn result_bytes(t: &ResultTable) -> u64 {
    let cols: u64 = t.columns.iter().map(|c| 24 + c.len() as u64).sum();
    cols + t.rows.iter().map(|r| row_bytes(r)).sum::<u64>()
}

/// Running-total footprint of one stream batch (same accounting as
/// [`result_bytes`]), so a streaming query can stop collecting itself
/// for the cache the moment it clearly exceeds the per-entry cap.
pub fn stream_batch_bytes(b: &crate::merge::StreamBatch) -> u64 {
    b.rows.iter().map(|r| row_bytes(r)).sum()
}

/// One cached result: everything needed to replay a completed query
/// without touching the scheduler or the master.
#[derive(Debug)]
pub struct CachedResult {
    /// The final result table, byte-identical to what execution returned.
    pub table: ResultTable,
    /// Per-column types of `table` (what the proxy's TYPES frame carries).
    pub types: Vec<Option<ColumnType>>,
    /// The stats of the execution that populated the entry.
    pub stats: QueryStats,
    /// The class that execution was admitted under.
    pub class: QueryClass,
}

struct Entry {
    value: Arc<CachedResult>,
    version: u64,
    bytes: u64,
    last_used: u64,
}

/// Byte-budget LRU over normalized-query keys. Not thread-safe by
/// itself — the service wraps it in a mutex.
pub struct ResultCache {
    capacity_bytes: u64,
    max_entry_bytes: u64,
    entries: HashMap<String, Entry>,
    used_bytes: u64,
    tick: u64,
}

impl ResultCache {
    /// A cache holding at most `capacity_bytes` of results, refusing
    /// any single entry above `max_entry_bytes`.
    pub fn new(capacity_bytes: u64, max_entry_bytes: u64) -> ResultCache {
        ResultCache {
            capacity_bytes,
            max_entry_bytes: max_entry_bytes.min(capacity_bytes),
            entries: HashMap::new(),
            used_bytes: 0,
            tick: 0,
        }
    }

    /// Looks up `normalized` under the current data `version`. An entry
    /// stored under an older version is treated as absent (and dropped,
    /// so invalidated entries do not squat on the budget).
    pub fn get(&mut self, version: u64, normalized: &str) -> Option<Arc<CachedResult>> {
        match self.entries.get(normalized) {
            Some(e) if e.version == version => {
                self.tick += 1;
                let tick = self.tick;
                let e = self.entries.get_mut(normalized).expect("present above");
                e.last_used = tick;
                Some(Arc::clone(&e.value))
            }
            Some(_) => {
                let e = self.entries.remove(normalized).expect("present above");
                self.used_bytes -= e.bytes;
                None
            }
            None => None,
        }
    }

    /// Stores a result; returns how many entries were evicted to make
    /// room (the caller's `proxy.cache.evict` delta). Oversized results
    /// are refused (returning 0) — one sky-sized scan must not wipe the
    /// lookup working set.
    pub fn insert(&mut self, version: u64, normalized: String, value: Arc<CachedResult>) -> u64 {
        let bytes = result_bytes(&value.table).max(1);
        if bytes > self.max_entry_bytes || self.capacity_bytes == 0 {
            return 0;
        }
        self.tick += 1;
        if let Some(old) = self.entries.remove(&normalized) {
            self.used_bytes -= old.bytes;
        }
        self.used_bytes += bytes;
        self.entries.insert(
            normalized,
            Entry {
                value,
                version,
                bytes,
                last_used: self.tick,
            },
        );
        let mut evicted = 0;
        while self.used_bytes > self.capacity_bytes {
            // Prefer evicting stale-version entries, then the LRU. A
            // linear scan is fine at the entry counts a byte budget
            // admits; swap in an ordered index if profiles disagree.
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, e)| (e.version == version, e.last_used))
                .map(|(k, _)| k.clone())
                .expect("used_bytes > 0 implies entries");
            let e = self.entries.remove(&victim).expect("victim present");
            self.used_bytes -= e.bytes;
            evicted += 1;
        }
        evicted
    }

    /// Drops every entry (explicit invalidation; version bumps usually
    /// make this unnecessary).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.used_bytes = 0;
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Bytes currently charged against the budget.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(rows: usize, s: &str) -> Arc<CachedResult> {
        let table = ResultTable {
            columns: vec!["x".into()],
            rows: (0..rows).map(|_| vec![Value::Str(s.to_string())]).collect(),
        };
        let types = vec![Some(ColumnType::Str)];
        Arc::new(CachedResult {
            table,
            types,
            stats: QueryStats::default(),
            class: QueryClass::Interactive,
        })
    }

    #[test]
    fn normalization_is_a_fixed_point_and_folds_cosmetics() {
        let a = normalize_sql("select   objectId from Object where objectId = 5").unwrap();
        let b = normalize_sql("SELECT objectId FROM Object WHERE objectId=5").unwrap();
        assert_eq!(a, b);
        assert_eq!(normalize_sql(&a).unwrap(), a, "normalizing is idempotent");
        assert!(normalize_sql("SELEC nonsense").is_err());
    }

    #[test]
    fn normalize_sql_tables_reports_sorted_distinct_from_tables() {
        let (text, tables) =
            normalize_sql_tables("select s.psfFlux from Source AS s, Object AS o").unwrap();
        assert_eq!(tables, vec!["Object".to_string(), "Source".to_string()]);
        assert_eq!(
            text,
            normalize_sql("SELECT s.psfFlux FROM Source s, Object o").unwrap()
        );
        let (_, one) = normalize_sql_tables("SELECT ra_PS FROM Object").unwrap();
        assert_eq!(one, vec!["Object".to_string()]);
    }

    #[test]
    fn hit_miss_and_version_invalidation() {
        let mut c = ResultCache::new(10_000, 10_000);
        assert!(c.get(1, "q").is_none());
        c.insert(1, "q".into(), result(3, "v"));
        assert_eq!(c.get(1, "q").unwrap().table.num_rows(), 3);
        // A version bump orphans the entry and frees its bytes.
        assert!(c.get(2, "q").is_none());
        assert_eq!(c.used_bytes(), 0);
        assert!(c.is_empty());
    }

    #[test]
    fn byte_budget_evicts_lru() {
        let one = result_bytes(&result(1, "0123456789").table);
        let mut c = ResultCache::new(3 * one, one);
        c.insert(1, "a".into(), result(1, "0123456789"));
        c.insert(1, "b".into(), result(1, "0123456789"));
        c.insert(1, "c".into(), result(1, "0123456789"));
        // Touch a so b is the LRU.
        assert!(c.get(1, "a").is_some());
        let evicted = c.insert(1, "d".into(), result(1, "0123456789"));
        assert_eq!(evicted, 1);
        assert!(c.get(1, "b").is_none(), "LRU entry evicted");
        assert!(c.get(1, "a").is_some());
        assert!(c.get(1, "d").is_some());
    }

    #[test]
    fn oversized_entries_are_refused() {
        let mut c = ResultCache::new(10_000, 100);
        assert_eq!(c.insert(1, "big".into(), result(100, "0123456789")), 0);
        assert!(c.get(1, "big").is_none());
        assert_eq!(c.used_bytes(), 0);
    }
}
