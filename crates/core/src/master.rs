//! The Qserv master (frontend): end-to-end distributed query execution.
//!
//! `query(sql)` runs the full paper pipeline: parse → analyze (§5.3) →
//! select the chunk set (spatial restriction and/or secondary index) →
//! generate per-chunk physical queries → dispatch each as two file
//! transactions on the fabric (§5.4) from a pool of dispatcher threads →
//! read back mysqldump-style results → merge into a local `result` table →
//! run the merge/aggregation query → return rows to the caller.

use crate::analysis::{analyze, Analysis, JoinClass};
use crate::error::QservError;
use crate::meta::CatalogMeta;
use crate::rewrite::{build_plan, render_chunk_message, PhysicalPlan};
use crate::worker::Worker;
use parking_lot::Mutex;
use qserv_engine::db::Database;
use qserv_engine::dump::load_dump;
use qserv_engine::exec::{execute, ResultTable};
use qserv_engine::schema::{ColumnDef, ColumnType, Schema};
use qserv_engine::table::Table;
use qserv_engine::value::Value;
use qserv_partition::chunker::Chunker;
use qserv_partition::index::SecondaryIndex;
use qserv_partition::placement::Placement;
use qserv_sqlparse::parse_select;
use qserv_xrd::cluster::{query_path, result_path, XrdCluster, XrdError};
use qserv_xrd::fault::FabricOp;
use qserv_xrd::md5_hex;
use qserv_xrd::server::ServerId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-query execution statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Chunk queries dispatched.
    pub chunks_dispatched: usize,
    /// Rows accumulated into the master's merge table.
    pub rows_merged: usize,
    /// Bytes of result text transferred from workers.
    pub result_bytes: u64,
    /// True when the secondary index restricted the chunk set (§5.5).
    pub used_secondary_index: bool,
    /// True when the spatial restriction narrowed the chunk set (§5.3).
    pub used_spatial_restriction: bool,
    /// Chunks that needed more than one dispatch attempt.
    pub chunks_retried: usize,
    /// Retry attempts that landed on a different replica than the
    /// attempt before them.
    pub replica_failovers: usize,
    /// Injected fabric faults ([`XrdError::Injected`]) this query ran
    /// into (and retried past, when it succeeded).
    pub injected_faults_observed: u64,
}

/// How the master retries chunk dispatch over an unreliable fabric.
///
/// Transient errors (injected faults, offline servers, unresolvable
/// paths, corrupt payloads) are retried with exponential backoff, each
/// retry steering away from the replicas that already failed (the
/// redirector excludes them); permanent errors (worker SQL failures,
/// unknown chunks) abort immediately. An optional per-query wall-clock
/// deadline turns a stuck query into [`QservError::Timeout`] instead of
/// an unbounded wait.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Dispatch attempts per chunk (≥ 1; the first attempt counts).
    pub max_attempts: usize,
    /// Backoff before retry `k` is `backoff_base * 2^(k-1)`.
    pub backoff_base: Duration,
    /// Wall-clock budget for the whole query's dispatch phase.
    pub deadline: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 6,
            backoff_base: Duration::from_millis(1),
            deadline: None,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries and never times out (the pre-chaos
    /// dispatch behavior).
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            backoff_base: Duration::ZERO,
            deadline: None,
        }
    }
}

/// Per-chunk retry bookkeeping, folded into [`QueryStats`].
#[derive(Clone, Copy, Debug, Default)]
struct ChunkMeta {
    attempts: usize,
    failovers: usize,
    injected_seen: u64,
    prev_server: Option<ServerId>,
}

/// Outcome of a single dispatch attempt.
enum Attempt {
    Ok(Table, u64),
    /// Transient failure: worth retrying, optionally excluding `server`
    /// and (when `reset_exclusions`) forgetting earlier exclusions
    /// because no replica resolved at all.
    Retry {
        server: Option<ServerId>,
        injected: bool,
        reset_exclusions: bool,
        error: QservError,
    },
    Fatal(QservError),
}

/// Sorts an [`XrdError`] into retry-worthy vs. permanent.
fn classify_xrd(e: XrdError) -> Attempt {
    let injected = matches!(e, XrdError::Injected { .. });
    let server = match &e {
        XrdError::Injected { server, .. } => Some(*server),
        XrdError::ServerOffline(s) => Some(*s),
        _ => None,
    };
    // An unresolvable path is transient too: every replica may be
    // excluded or momentarily offline (flapping servers come back).
    let reset_exclusions = matches!(e, XrdError::NoServerForPath(_));
    if e.is_transient() || reset_exclusions {
        Attempt::Retry {
            server,
            injected,
            reset_exclusions,
            error: QservError::from(e),
        }
    } else {
        Attempt::Fatal(QservError::from(e))
    }
}

/// What `explain` reports without executing.
#[derive(Clone, Debug)]
pub struct Explain {
    /// The chunks that would be dispatched.
    pub chunks: Vec<i32>,
    /// Join classification.
    pub join: JoinClass,
    /// Whether results need two-phase aggregation.
    pub aggregated: bool,
    /// Whether the objectId secondary index restricts the chunk set.
    pub uses_secondary_index: bool,
    /// One rendered chunk-query message (for the first chunk), for
    /// inspection.
    pub sample_message: Option<String>,
}

/// The running system: fabric + workers + frontend state.
pub struct Qserv {
    cluster: XrdCluster,
    chunker: Chunker,
    meta: CatalogMeta,
    placement: Placement,
    secondary: SecondaryIndex,
    workers: Vec<Arc<Worker>>,
    /// Dispatcher thread-pool width.
    pub dispatch_width: usize,
    /// Chunk-dispatch retry behavior.
    pub retry: RetryPolicy,
    /// Dispatch counter shared by every frontend over this cluster: tags
    /// each chunk-query message with a unique `-- QID:` line so identical
    /// concurrent queries hash to distinct result paths (the paper's raw
    /// MD5-of-query addressing collides there). Scoped to the cluster —
    /// not the process — so a freshly built cluster replays the same
    /// result paths, keeping seeded fault schedules reproducible.
    qid: Arc<AtomicU64>,
}

/// A prepared (analyzed + planned) query, reusable by the shared-scan
/// scheduler.
pub(crate) struct Prepared {
    pub analysis: Analysis,
    pub plan: PhysicalPlan,
    pub chunks: Vec<i32>,
}

impl Qserv {
    /// Assembles a frontend over already-loaded workers (used by
    /// [`crate::loader::ClusterBuilder`]).
    pub(crate) fn assemble(
        cluster: XrdCluster,
        chunker: Chunker,
        meta: CatalogMeta,
        placement: Placement,
        secondary: SecondaryIndex,
        workers: Vec<Arc<Worker>>,
    ) -> Qserv {
        Qserv {
            cluster,
            chunker,
            meta,
            placement,
            secondary,
            workers,
            dispatch_width: 8,
            retry: RetryPolicy::default(),
            qid: Arc::new(AtomicU64::new(1)),
        }
    }

    /// Prefixes a rendered chunk message with a unique query-instance id.
    pub(crate) fn tag_message(&self, message: String) -> String {
        let qid = self.qid.fetch_add(1, Ordering::Relaxed);
        format!("-- QID: {qid}\n{message}")
    }

    /// Clones this frontend into an independent master over the same
    /// worker fleet — the building block of §7.6 multi-master deployment
    /// (see [`crate::multimaster::MasterPool`]). Frontend state (chunker,
    /// metadata, placement, secondary index) is copied; workers and the
    /// fabric are shared.
    pub fn clone_frontend(&self) -> Qserv {
        Qserv {
            cluster: self.cluster.clone(),
            chunker: self.chunker.clone(),
            meta: self.meta.clone(),
            placement: self.placement.clone(),
            secondary: self.secondary.clone(),
            workers: self.workers.clone(),
            dispatch_width: self.dispatch_width,
            retry: self.retry.clone(),
            qid: Arc::clone(&self.qid),
        }
    }

    /// The partitioning in effect.
    pub fn chunker(&self) -> &Chunker {
        &self.chunker
    }

    /// The catalog metadata.
    pub fn meta(&self) -> &CatalogMeta {
        &self.meta
    }

    /// The workers (for stats inspection and fault injection in tests).
    pub fn workers(&self) -> &[Arc<Worker>] {
        &self.workers
    }

    /// The underlying fabric (for fault injection in tests).
    pub fn cluster(&self) -> &XrdCluster {
        &self.cluster
    }

    /// The chunk placement.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Executes a query, returning just the rows.
    pub fn query(&self, sql: &str) -> Result<ResultTable, QservError> {
        self.query_with_stats(sql).map(|(r, _)| r)
    }

    /// Executes a query, returning rows plus execution statistics.
    pub fn query_with_stats(&self, sql: &str) -> Result<(ResultTable, QueryStats), QservError> {
        let stmt = parse_select(sql)?;
        // FROM-less statements run locally on the frontend.
        if stmt.from.is_empty() {
            let local = execute(&Database::new(), &stmt)?;
            return Ok((local, QueryStats::default()));
        }
        let prepared = self.prepare_stmt(&stmt)?;
        let mut stats = QueryStats {
            chunks_dispatched: prepared.chunks.len(),
            used_secondary_index: prepared.analysis.index_ids.is_some(),
            used_spatial_restriction: prepared.analysis.spatial.is_some(),
            ..QueryStats::default()
        };
        let parts = self.dispatch_all(&prepared, &mut stats)?;
        let result = self.merge(&prepared.plan, parts, &mut stats)?;
        Ok((result, stats))
    }

    /// Plans a query without executing it.
    pub fn explain(&self, sql: &str) -> Result<Explain, QservError> {
        let stmt = parse_select(sql)?;
        let prepared = self.prepare_stmt(&stmt)?;
        let sample_message = prepared.chunks.first().map(|&c| {
            let subs = self.subchunks_for(&prepared, c);
            render_chunk_message(&prepared.plan, &self.meta, c, &subs)
        });
        Ok(Explain {
            chunks: prepared.chunks.clone(),
            join: prepared.plan.join,
            aggregated: prepared.analysis.aggregated,
            uses_secondary_index: prepared.analysis.index_ids.is_some(),
            sample_message,
        })
    }

    pub(crate) fn prepare_stmt(
        &self,
        stmt: &qserv_sqlparse::ast::SelectStatement,
    ) -> Result<Prepared, QservError> {
        let analysis = analyze(stmt, &self.meta)?;
        let plan = build_plan(&analysis, &self.meta)?;
        let mut chunks = self.chunk_set(&analysis);
        // A fully-restricted-away chunk set still dispatches one chunk:
        // its (empty) result gives the merge query real input columns, so
        // aggregates keep SQL semantics — COUNT over nothing is 0, not the
        // NULL that SUM-of-no-partials would produce.
        if chunks.is_empty() {
            chunks = self.placement.chunks().into_iter().take(1).collect();
        }
        if chunks.is_empty() {
            return Err(QservError::Analysis(
                "the cluster stores no chunks; load data before querying".to_string(),
            ));
        }
        Ok(Prepared {
            analysis,
            plan,
            chunks,
        })
    }

    /// Computes the chunk set: all stored chunks, narrowed by the spatial
    /// restriction and/or the secondary index.
    fn chunk_set(&self, analysis: &Analysis) -> Vec<i32> {
        let mut chunks = self.placement.chunks();
        if let Some(spec) = &analysis.spatial {
            let selected = self.chunker.chunks_intersecting(&spec.bounding_box());
            chunks.retain(|c| selected.binary_search(c).is_ok());
        }
        if let Some(ids) = &analysis.index_ids {
            let selected = self.secondary.chunks_for(ids);
            chunks.retain(|c| selected.binary_search(c).is_ok());
        }
        chunks
    }

    /// The subchunk list for one chunk of a near-neighbour query: the
    /// subchunks intersecting the spatial restriction, or all of them.
    pub(crate) fn subchunks_for(&self, prepared: &Prepared, chunk: i32) -> Vec<i32> {
        if prepared.plan.join != JoinClass::SubchunkNear {
            return Vec::new();
        }
        match &prepared.plan.spatial {
            Some(spec) => self
                .chunker
                .subchunks_intersecting(chunk, &spec.bounding_box())
                .unwrap_or_default(),
            None => self.chunker.subchunks_of(chunk).unwrap_or_default(),
        }
    }

    /// Dispatches every chunk query from a pool of threads; returns the
    /// per-chunk result tables in ascending chunk order (deterministic).
    fn dispatch_all(
        &self,
        prepared: &Prepared,
        stats: &mut QueryStats,
    ) -> Result<Vec<Table>, QservError> {
        let jobs: Vec<(i32, String)> = prepared
            .chunks
            .iter()
            .map(|&c| {
                let subs = self.subchunks_for(prepared, c);
                (
                    c,
                    self.tag_message(render_chunk_message(&prepared.plan, &self.meta, c, &subs)),
                )
            })
            .collect();

        /// Per-chunk dispatch outcome: the loaded result table, the
        /// transferred byte count, and retry bookkeeping.
        type ChunkOutcome = Result<(Table, u64, ChunkMeta), QservError>;
        let queue = Mutex::new(jobs.into_iter());
        let results: Mutex<Vec<(i32, ChunkOutcome)>> =
            Mutex::new(Vec::with_capacity(prepared.chunks.len()));
        let width = self.dispatch_width.max(1).min(prepared.chunks.len().max(1));
        let started = Instant::now();

        crossbeam::thread::scope(|scope| {
            for _ in 0..width {
                scope.spawn(|_| loop {
                    let job = queue.lock().next();
                    let Some((chunk, message)) = job else { break };
                    let outcome = self.dispatch_one(chunk, &message, started);
                    results.lock().push((chunk, outcome));
                });
            }
        })
        .map_err(|_| QservError::Fabric("dispatcher thread panicked".to_string()))?;

        let mut collected = results.into_inner();
        collected.sort_by_key(|(c, _)| *c);
        let mut tables = Vec::with_capacity(collected.len());
        for (_, outcome) in collected {
            let (table, bytes, meta) = outcome?;
            stats.result_bytes += bytes;
            if meta.attempts > 1 {
                stats.chunks_retried += 1;
            }
            stats.replica_failovers += meta.failovers;
            stats.injected_faults_observed += meta.injected_seen;
            tables.push(table);
        }
        Ok(tables)
    }

    /// Dispatches one chunk with bounded retry: transient fabric errors
    /// back off exponentially and steer the next attempt away from the
    /// replicas that failed; the query-wide deadline turns a stuck chunk
    /// into [`QservError::Timeout`].
    fn dispatch_one(
        &self,
        chunk: i32,
        message: &str,
        started: Instant,
    ) -> Result<(Table, u64, ChunkMeta), QservError> {
        let policy = &self.retry;
        let max_attempts = policy.max_attempts.max(1);
        let mut meta = ChunkMeta::default();
        let mut excluded: Vec<ServerId> = Vec::new();
        let mut last_err = QservError::Fabric(format!("chunk {chunk}: dispatch never attempted"));
        let mut attempt = 0;
        while attempt < max_attempts {
            if attempt > 0 {
                let mut backoff = policy
                    .backoff_base
                    .saturating_mul(1u32 << (attempt - 1).min(16) as u32);
                if let Some(deadline) = policy.deadline {
                    backoff = backoff.min(deadline.saturating_sub(started.elapsed()));
                }
                if !backoff.is_zero() {
                    std::thread::sleep(backoff);
                }
            }
            if let Some(deadline) = policy.deadline {
                let elapsed = started.elapsed();
                if elapsed >= deadline {
                    return Err(QservError::Timeout {
                        chunk,
                        elapsed_ms: elapsed.as_millis() as u64,
                    });
                }
            }
            match self.dispatch_once(chunk, message, &excluded, &mut meta) {
                Attempt::Ok(table, bytes) => {
                    meta.attempts = attempt + 1;
                    return Ok((table, bytes, meta));
                }
                Attempt::Retry {
                    server,
                    injected,
                    reset_exclusions,
                    error,
                } => {
                    if injected {
                        meta.injected_seen += 1;
                    }
                    if reset_exclusions && !excluded.is_empty() {
                        // Every replica is on the exclusion list: the
                        // probe touched no server, so re-admit them all
                        // without charging the attempt budget. (A reset
                        // can't repeat back-to-back — the next pass runs
                        // with an empty list — so the loop stays bounded
                        // by 2×max_attempts iterations.)
                        excluded.clear();
                    } else {
                        if let Some(s) = server {
                            if !excluded.contains(&s) {
                                excluded.push(s);
                            }
                            meta.prev_server = Some(s);
                        }
                        attempt += 1;
                    }
                    last_err = error;
                }
                Attempt::Fatal(e) => return Err(e),
            }
        }
        Err(last_err)
    }

    /// One attempt at the two file transactions of §5.4 for one chunk,
    /// plus result parsing. Result files are consumed (unlinked) on every
    /// exit path that could leave one behind.
    fn dispatch_once(
        &self,
        chunk: i32,
        message: &str,
        excluded: &[ServerId],
        meta: &mut ChunkMeta,
    ) -> Attempt {
        let rp = result_path(&md5_hex(message.as_bytes()));
        let worker = match self.cluster.write_file_excluding(
            &query_path(chunk),
            message.as_bytes().to_vec(),
            excluded,
        ) {
            Ok(w) => w,
            Err(e) => {
                // A close fault lands after the worker accepted the query
                // and deposited its result: scrub the orphan.
                if let XrdError::Injected {
                    server,
                    op: FabricOp::Close,
                    ..
                } = &e
                {
                    let _ = self.cluster.unlink(*server, &rp);
                }
                return classify_xrd(e);
            }
        };
        if let Some(prev) = meta.prev_server {
            if prev != worker {
                meta.failovers += 1;
            }
        }
        meta.prev_server = Some(worker);
        let payload = match self.cluster.read_file(worker, &rp) {
            Ok(p) => p,
            Err(e) => {
                // The result file exists on the worker even though we
                // could not fetch it; consume it before retrying.
                let _ = self.cluster.unlink(worker, &rp);
                return classify_xrd(e);
            }
        };
        // Consume the result before parsing, so no exit path below can
        // leak it. A faulted unlink gets one immediate retry, then is
        // abandoned (a later dispatch of this chunk query overwrites it).
        if self.cluster.unlink(worker, &rp).is_err() {
            let _ = self.cluster.unlink(worker, &rp);
        }
        let bytes = payload.len() as u64;
        let Ok(text) = std::str::from_utf8(&payload) else {
            // Payload corruption is a fabric problem: retry re-executes
            // the chunk and re-fetches a clean copy.
            return Attempt::Retry {
                server: Some(worker),
                injected: false,
                reset_exclusions: false,
                error: QservError::Fabric(format!("chunk {chunk}: result is not UTF-8")),
            };
        };
        if let Some(err) = text.strip_prefix("ERROR:") {
            return Attempt::Fatal(QservError::Worker {
                chunk,
                message: err.trim().to_string(),
            });
        }
        match load_dump(text) {
            Ok((_, table)) => Attempt::Ok(table, bytes),
            // An unparseable dump from a healthy worker means the payload
            // was mangled in flight — transient, like the UTF-8 case.
            Err(e) => Attempt::Retry {
                server: Some(worker),
                injected: false,
                reset_exclusions: false,
                error: QservError::Merge(format!("chunk {chunk}: {e}")),
            },
        }
    }

    /// Accumulates per-chunk tables into `result` and runs the merge
    /// query.
    pub(crate) fn merge(
        &self,
        plan: &PhysicalPlan,
        parts: Vec<Table>,
        stats: &mut QueryStats,
    ) -> Result<ResultTable, QservError> {
        let merged = merge_tables(parts)?;
        stats.rows_merged = merged.num_rows();
        let mut db = Database::new();
        db.create_table("result", merged);
        execute(&db, &plan.merge_stmt).map_err(QservError::from)
    }
}

/// Concatenates per-chunk result tables, unifying schemas by widening
/// (Int + Float ⇒ Float; an empty chunk's all-NULL "Float" columns adopt
/// the populated chunks' types).
pub(crate) fn merge_tables(parts: Vec<Table>) -> Result<Table, QservError> {
    let Some(first) = parts.first() else {
        return Ok(Table::new(Schema::new(vec![])));
    };
    let names: Vec<String> = first
        .schema()
        .columns()
        .iter()
        .map(|c| c.name.clone())
        .collect();
    // Widen column types across parts. Empty parts carry no evidence
    // (their dump schemas default all-NULL columns to Float), so only
    // populated parts vote; columns never populated stay Float.
    let mut types: Vec<Option<ColumnType>> = vec![None; names.len()];
    for part in &parts {
        let cols = part.schema().columns();
        if cols.len() != names.len() || cols.iter().zip(&names).any(|(c, n)| &c.name != n) {
            return Err(QservError::Merge(format!(
                "chunk results disagree on columns: {:?} vs {:?}",
                names,
                cols.iter().map(|c| &c.name).collect::<Vec<_>>()
            )));
        }
        if part.num_rows() == 0 {
            continue;
        }
        for (i, c) in cols.iter().enumerate() {
            types[i] = Some(match (types[i], c.ty) {
                (None, t) => t,
                (Some(a), b) if a == b => a,
                (Some(ColumnType::Int), ColumnType::Float)
                | (Some(ColumnType::Float), ColumnType::Int) => ColumnType::Float,
                (Some(a), b) => {
                    return Err(QservError::Merge(format!(
                        "column {} has incompatible types across chunks: {a} vs {b}",
                        names[i]
                    )))
                }
            });
        }
    }
    let types: Vec<ColumnType> = types
        .into_iter()
        .map(|t| t.unwrap_or(ColumnType::Float))
        .collect();
    let schema = Schema::new(
        names
            .iter()
            .zip(&types)
            .map(|(n, t)| ColumnDef::new(n, *t))
            .collect(),
    );
    let mut out = Table::new(schema);
    for part in &parts {
        for r in 0..part.num_rows() {
            let row: Vec<Value> = part
                .row(r)
                .into_iter()
                .zip(&types)
                .map(|(v, t)| match (t, v) {
                    (ColumnType::Float, Value::Int(x)) => Value::Float(x as f64),
                    (_, v) => v,
                })
                .collect();
            out.push_row(row)
                .map_err(|e| QservError::Merge(e.to_string()))?;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_of(cols: &[(&str, ColumnType)], rows: Vec<Vec<Value>>) -> Table {
        let schema = Schema::new(cols.iter().map(|(n, t)| ColumnDef::new(n, *t)).collect());
        let mut t = Table::new(schema);
        for r in rows {
            t.push_row(r).unwrap();
        }
        t
    }

    #[test]
    fn merge_tables_widens_int_to_float() {
        let a = table_of(&[("x", ColumnType::Int)], vec![vec![Value::Int(1)]]);
        let b = table_of(&[("x", ColumnType::Float)], vec![vec![Value::Float(2.5)]]);
        let m = merge_tables(vec![a, b]).unwrap();
        assert_eq!(m.num_rows(), 2);
        assert_eq!(m.get(0, 0), Value::Float(1.0));
        assert_eq!(m.get(1, 0), Value::Float(2.5));
    }

    #[test]
    fn merge_tables_empty_part_adopts_other_schema() {
        let empty = table_of(&[("x", ColumnType::Float)], vec![]);
        let full = table_of(&[("x", ColumnType::Int)], vec![vec![Value::Int(3)]]);
        let m = merge_tables(vec![empty, full]).unwrap();
        assert_eq!(m.schema().columns()[0].ty, ColumnType::Int);
        assert_eq!(m.num_rows(), 1);
    }

    #[test]
    fn merge_tables_rejects_mismatched_columns() {
        let a = table_of(&[("x", ColumnType::Int)], vec![]);
        let b = table_of(&[("y", ColumnType::Int)], vec![]);
        assert!(merge_tables(vec![a, b]).is_err());
    }

    #[test]
    fn merge_tables_no_parts_is_empty() {
        let m = merge_tables(vec![]).unwrap();
        assert_eq!(m.num_rows(), 0);
    }
}
