//! The Qserv master (frontend): end-to-end distributed query execution.
//!
//! `query(sql)` runs the full paper pipeline: parse → analyze (§5.3) →
//! select the chunk set (spatial restriction and/or secondary index) →
//! generate per-chunk physical queries → dispatch each as two file
//! transactions on the fabric (§5.4) from a pool of dispatcher threads →
//! read back mysqldump-style results → merge into a local `result` table →
//! run the merge/aggregation query → return rows to the caller.

use crate::analysis::{analyze, Analysis, JoinClass};
use crate::error::QservError;
use crate::merge::{infer_value_types, merge_oracle, Merger, StreamBatch};
use crate::meta::{CatalogMeta, ChunkZones, TableStats};
use crate::placement::{PlacementManager, PlacementMap};
use crate::planner::{self, PlanChoice, PlanOverride};
use crate::rewrite::{build_plan, render_chunk_message, MergeShape, PhysicalPlan};
use crate::stats::QueryMetrics;
pub use crate::stats::QueryStats;
use crate::worker::Worker;
use parking_lot::Mutex;
use qserv_engine::db::Database;
use qserv_engine::dump::load_dump;
use qserv_engine::exec::{execute, ResultTable};
use qserv_engine::table::Table;
use qserv_obs::clock::{wall_clock, SharedClock};
use qserv_obs::trace;
use qserv_obs::{MetricsSnapshot, Trace};
use qserv_partition::chunker::Chunker;
use qserv_partition::index::SecondaryIndex;
use qserv_partition::placement::Placement;
use qserv_sqlparse::parse_select;
use qserv_xrd::cluster::{query_path, result_path, XrdCluster, XrdError};
use qserv_xrd::fault::FabricOp;
use qserv_xrd::md5_hex;
use qserv_xrd::server::ServerId;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// Clamps the configured dispatcher-pool width to something sane for a
/// given job count: at least one thread, never more threads than jobs.
/// (Hoisted so the master and the shared-scan scheduler cannot drift.)
pub(crate) fn effective_width(configured: usize, jobs: usize) -> usize {
    configured.max(1).min(jobs.max(1))
}

/// Pushes a completed result through a streaming sink as the (always
/// sent, possibly empty) final batch, typed by `types` when the caller
/// knows the merge votes and by value inference otherwise. Returns the
/// result's shell — columns, no rows — which is what the streaming
/// entry points hand back, the rows having left through the sink.
fn emit_final(
    result: ResultTable,
    types: Option<Vec<Option<qserv_engine::schema::ColumnType>>>,
    sink: &mut dyn FnMut(StreamBatch) -> bool,
) -> ResultTable {
    let types = types.unwrap_or_else(|| infer_value_types(&result));
    let ResultTable { columns, rows } = result;
    let _ = sink(StreamBatch {
        columns: columns.clone(),
        types,
        rows,
    });
    ResultTable {
        columns,
        rows: Vec::new(),
    }
}

/// How the master retries chunk dispatch over an unreliable fabric.
///
/// Transient errors (injected faults, offline servers, unresolvable
/// paths, corrupt payloads) are retried with exponential backoff, each
/// retry steering away from the replicas that already failed (the
/// redirector excludes them); permanent errors (worker SQL failures,
/// unknown chunks) abort immediately. An optional per-query deadline
/// (measured on the master's injected [`Clock`](qserv_obs::Clock), so
/// virtual under test) turns a stuck query into [`QservError::Timeout`]
/// instead of an unbounded wait.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Dispatch attempts per chunk (≥ 1; the first attempt counts).
    pub max_attempts: usize,
    /// Backoff before retry `k` is `backoff_base * 2^(k-1)`.
    pub backoff_base: Duration,
    /// Wall-clock budget for the whole query's dispatch phase.
    pub deadline: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 6,
            backoff_base: Duration::from_millis(1),
            deadline: None,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries and never times out (the pre-chaos
    /// dispatch behavior).
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            backoff_base: Duration::ZERO,
            deadline: None,
        }
    }
}

/// Cooperative cancellation for one in-flight query.
///
/// Cloneable and thread-safe: the service hands one side to the session
/// that may `KILL` the query while the executor threads poll the other.
/// Cancellation is *cooperative* — the master checks the token at chunk
/// dispatch boundaries (before a chunk leaves the queue, before each
/// retry attempt) and at merge-fold boundaries, never in the middle of a
/// §5.4 file transaction. The write → read → unlink sequence is atomic
/// with respect to cancellation, so a kill can never strand a result
/// file on the fabric: every written result is consumed before the
/// token is looked at again.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; takes effect at the next
    /// dispatch or fold boundary.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// Per-chunk retry bookkeeping, folded into [`QueryStats`].
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct ChunkMeta {
    pub(crate) attempts: usize,
    pub(crate) failovers: usize,
    pub(crate) injected_seen: u64,
    /// Clock time the whole chunk dispatch took, retries included.
    pub(crate) latency: Duration,
    /// Worker-reported cold-scan counters (the `-- QSERV_SCAN:` header on
    /// the result dump); zero for warm in-memory chunks.
    pub(crate) pages_pruned: u64,
    pub(crate) pages_scanned: u64,
    prev_server: Option<ServerId>,
}

/// Folds one completed chunk's outcome into the query's instruments.
pub(crate) fn record_chunk(qm: &QueryMetrics, bytes: u64, meta: &ChunkMeta) {
    qm.result_bytes.add(bytes);
    if meta.attempts > 1 {
        qm.chunks_retried.inc();
    }
    qm.replica_failovers.add(meta.failovers as u64);
    qm.injected_faults_observed.add(meta.injected_seen);
    qm.pages_pruned.add(meta.pages_pruned);
    qm.pages_scanned.add(meta.pages_scanned);
    qm.chunk_attempts.record(meta.attempts as u64);
    qm.chunk_latency_ns.record(meta.latency.as_nanos() as u64);
}

/// Splits a worker dump's optional `-- QSERV_SCAN:` header off, returning
/// the `(pages_pruned, pages_scanned)` counters and the remaining dump
/// text.
fn split_scan_header(text: &str) -> (u64, u64, &str) {
    let Some(rest) = text.strip_prefix("-- QSERV_SCAN:") else {
        return (0, 0, text);
    };
    let (line, tail) = rest.split_once('\n').unwrap_or((rest, ""));
    let mut pruned = 0u64;
    let mut scanned = 0u64;
    for part in line.split_whitespace() {
        if let Some(v) = part.strip_prefix("pages_pruned=") {
            pruned = v.parse().unwrap_or(0);
        } else if let Some(v) = part.strip_prefix("pages_scanned=") {
            scanned = v.parse().unwrap_or(0);
        }
    }
    (pruned, scanned, tail)
}

/// Outcome of a single dispatch attempt.
enum Attempt {
    Ok(Table, u64),
    /// Transient failure: worth retrying, optionally excluding `server`
    /// and (when `reset_exclusions`) forgetting earlier exclusions
    /// because no replica resolved at all.
    Retry {
        server: Option<ServerId>,
        injected: bool,
        reset_exclusions: bool,
        error: QservError,
    },
    Fatal(QservError),
}

/// Sorts an [`XrdError`] into retry-worthy vs. permanent.
fn classify_xrd(e: XrdError) -> Attempt {
    let injected = matches!(e, XrdError::Injected { .. });
    let server = match &e {
        XrdError::Injected { server, .. } => Some(*server),
        XrdError::ServerOffline(s) => Some(*s),
        _ => None,
    };
    // An unresolvable path is transient too: every replica may be
    // excluded or momentarily offline (flapping servers come back).
    let reset_exclusions = matches!(e, XrdError::NoServerForPath(_));
    if e.is_transient() || reset_exclusions {
        Attempt::Retry {
            server,
            injected,
            reset_exclusions,
            error: QservError::from(e),
        }
    } else {
        Attempt::Fatal(QservError::from(e))
    }
}

/// Specification of a cross-catalog XMatch: match every row of catalog
/// `left` against candidates in catalog `right` within `radius_deg`,
/// keeping only the nearest candidate per left row.
#[derive(Clone, Debug)]
pub struct XMatchSpec {
    /// Catalog A (the driver): each of its rows gets at most one match.
    pub left: String,
    /// Catalog A's id column, carried through to the result.
    pub left_id: String,
    /// Catalog B (the reference survey being matched against).
    pub right: String,
    /// Catalog B's id column, carried through to the result.
    pub right_id: String,
    /// Match radius in degrees. Must not exceed the partitioning overlap
    /// — candidates further than the overlap would be invisible to the
    /// chunk that owns the left row.
    pub radius_deg: f64,
}

impl XMatchSpec {
    /// The paper-layout default: Object matched against RefObject.
    pub fn object_to_ref(radius_deg: f64) -> XMatchSpec {
        XMatchSpec {
            left: "Object".to_string(),
            left_id: "objectId".to_string(),
            right: "RefObject".to_string(),
            right_id: "refObjectId".to_string(),
            radius_deg,
        }
    }
}

/// What `explain` reports without executing.
#[derive(Clone, Debug)]
pub struct Explain {
    /// The chunks that would be dispatched.
    pub chunks: Vec<i32>,
    /// Join classification.
    pub join: JoinClass,
    /// Whether results need two-phase aggregation.
    pub aggregated: bool,
    /// Whether the objectId secondary index restricts the chunk set.
    pub uses_secondary_index: bool,
    /// One rendered chunk-query message (for the first chunk), for
    /// inspection.
    pub sample_message: Option<String>,
    /// The cost-based planner's full decision record.
    pub choice: PlanChoice,
    /// The placement epoch the plan was pinned to.
    pub placement_epoch: u64,
}

/// Everything [`Qserv::query_traced`] hands back: rows, the classic
/// stats view, the full metrics snapshot behind it, and the span tree.
#[derive(Debug)]
pub struct TracedQuery {
    /// The merged result rows.
    pub rows: ResultTable,
    /// The classic per-query stats view.
    pub stats: QueryStats,
    /// The full per-query metrics snapshot (includes histograms the
    /// stats view does not surface, e.g. per-chunk dispatch latency).
    pub metrics: MetricsSnapshot,
    /// The span tree; export with [`Trace::to_json`].
    pub trace: Trace,
}

/// The running system: fabric + workers + frontend state.
pub struct Qserv {
    cluster: XrdCluster,
    chunker: Chunker,
    meta: CatalogMeta,
    /// Epoch-stamped chunk→replica placement, shared by every frontend
    /// over this cluster. Queries pin one snapshot at prepare time;
    /// membership operations ([`Qserv::fail_node`], [`Qserv::join_node`],
    /// …) commit new epochs.
    placement: Arc<PlacementManager>,
    secondary: SecondaryIndex,
    workers: Vec<Arc<Worker>>,
    /// The clock dispatch deadlines, retry backoff, and traces read.
    /// Wall by default; [`Qserv::set_clock`] swaps in a virtual one.
    clock: SharedClock,
    /// Dispatcher thread-pool width.
    pub dispatch_width: usize,
    /// Chunk-dispatch retry behavior.
    pub retry: RetryPolicy,
    /// Fold chunk results into merge state as they arrive (the default).
    /// When false, the master collects every part and merges at a
    /// barrier — the pre-streaming behavior, kept for the oracle and for
    /// the `master_bench` comparison.
    pub streaming_merge: bool,
    /// Dispatch counter shared by every frontend over this cluster: tags
    /// each chunk-query message with a unique `-- QID:` line so identical
    /// concurrent queries hash to distinct result paths (the paper's raw
    /// MD5-of-query addressing collides there). Scoped to the cluster —
    /// not the process — so a freshly built cluster replays the same
    /// result paths, keeping seeded fault schedules reproducible.
    qid: Arc<AtomicU64>,
    /// Per-chunk zone maps registered at load time (ra/decl/flux/objectId
    /// min-max per chunk). Lets `prepare_stmt` elide whole chunks before
    /// dispatch — the master-side analogue of the worker's per-page zone
    /// maps. Empty when the loader registered none.
    zones: Arc<ChunkZones>,
    /// Load-time table statistics (per-chunk row counts, per-column
    /// distinct-value counts) feeding the cost-based planner. Empty when
    /// the loader registered none — the planner then degrades to the
    /// rule-based defaults.
    stats: Arc<TableStats>,
    /// Forces individual planner decisions; `None` (the default) lets
    /// the cost model choose. The plan-equivalence test battery and the
    /// bench baselines set this to pin a plan.
    pub plan_override: Option<PlanOverride>,
    /// Monotonic catalog data version, shared by every frontend over
    /// this cluster. Bumped whenever data is loaded or attached after
    /// build; the result cache keys on it, so a bump invalidates every
    /// cached result at once instead of serving stale rows.
    data_version: Arc<AtomicU64>,
    /// Per-table data versions layered on top of [`Qserv::data_version`]:
    /// loading into one table bumps only that table, so cached results
    /// over *other* tables survive (the result cache keys on
    /// [`Qserv::version_for_tables`], which sums the versions of the
    /// tables a query actually reads).
    table_versions: Arc<Mutex<BTreeMap<String, u64>>>,
    /// Where `.qchunk` files live (the loader's storage dir); replica
    /// copies imported during repair/rebalance are written here too.
    pub(crate) storage_dir: Option<PathBuf>,
}

/// A prepared (analyzed + planned) query, reusable by the shared-scan
/// scheduler.
pub(crate) struct Prepared {
    pub analysis: Analysis,
    pub plan: PhysicalPlan,
    pub chunks: Vec<i32>,
    /// Chunks elided before dispatch by the per-chunk zone maps.
    pub chunks_pruned: usize,
    /// The placement epoch this query was planned against. The chunk set
    /// above came from this snapshot; a rebalance committing a newer
    /// epoch mid-flight does not change it (the query completes against
    /// the old epoch, failing over per-chunk if a replica moved away).
    pub placement: Arc<PlacementMap>,
    /// What the cost-based planner decided (access path, predicate
    /// order, estimates) — EXPLAIN renders this, metrics record it.
    pub choice: PlanChoice,
}

impl Qserv {
    /// Assembles a frontend over already-loaded workers (used by
    /// [`crate::loader::ClusterBuilder`]).
    pub(crate) fn assemble(
        cluster: XrdCluster,
        chunker: Chunker,
        meta: CatalogMeta,
        placement: Placement,
        secondary: SecondaryIndex,
        workers: Vec<Arc<Worker>>,
    ) -> Qserv {
        Qserv {
            cluster,
            chunker,
            meta,
            placement: Arc::new(PlacementManager::from_static(&placement)),
            secondary,
            workers,
            clock: wall_clock(),
            dispatch_width: 8,
            retry: RetryPolicy::default(),
            streaming_merge: true,
            qid: Arc::new(AtomicU64::new(1)),
            zones: Arc::new(ChunkZones::new()),
            stats: Arc::new(TableStats::new()),
            plan_override: None,
            data_version: Arc::new(AtomicU64::new(1)),
            table_versions: Arc::new(Mutex::new(BTreeMap::new())),
            storage_dir: None,
        }
    }

    /// The catalog data version the result cache keys on.
    pub fn data_version(&self) -> u64 {
        self.data_version.load(Ordering::SeqCst)
    }

    /// Advances the catalog data version (call after loading or
    /// attaching data into a live cluster), returning the new version.
    /// Every cached result keyed under an older version becomes
    /// unreachable immediately.
    pub fn bump_data_version(&self) -> u64 {
        self.data_version.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Advances the data version of one table only (call after loading
    /// or attaching data into `table` on a live cluster), returning its
    /// new per-table version. Cached results over queries that read
    /// `table` become unreachable; results over other tables survive —
    /// the scoped alternative to the [`Qserv::bump_data_version`]
    /// hammer.
    pub fn bump_table_version(&self, table: &str) -> u64 {
        let mut tv = self.table_versions.lock();
        let v = tv.entry(table.to_string()).or_insert(0);
        *v += 1;
        *v
    }

    /// The current per-table version of `table` (0 until first bumped).
    pub fn table_version(&self, table: &str) -> u64 {
        self.table_versions.lock().get(table).copied().unwrap_or(0)
    }

    /// The cache version for a query reading exactly `tables`: the
    /// global data version plus the sum of the tables' versions. Any
    /// global bump or any bump of a referenced table strictly increases
    /// it; bumps of unreferenced tables leave it unchanged. (Sound as a
    /// cache key because the normalized SQL — which fixes the table set
    /// — is part of the key alongside this version.)
    pub fn version_for_tables(&self, tables: &[String]) -> u64 {
        let tv = self.table_versions.lock();
        self.data_version()
            + tables
                .iter()
                .map(|t| tv.get(t).copied().unwrap_or(0))
                .sum::<u64>()
    }

    /// Installs the per-chunk zone maps (called by the loader after every
    /// chunk's column summaries are registered).
    pub(crate) fn set_zones(&mut self, zones: Arc<ChunkZones>) {
        self.zones = zones;
    }

    /// The per-chunk zone maps in effect (empty when none registered).
    pub fn zones(&self) -> &ChunkZones {
        &self.zones
    }

    /// Installs the load-time table statistics the planner reads (called
    /// by the loader after every chunk is in).
    pub(crate) fn set_stats(&mut self, stats: Arc<TableStats>) {
        self.stats = stats;
    }

    /// The planner's table statistics (empty when none registered).
    pub fn table_stats(&self) -> &TableStats {
        &self.stats
    }

    /// Prefixes a rendered chunk message with a unique query-instance id.
    pub(crate) fn tag_message(&self, message: String) -> String {
        let qid = self.qid.fetch_add(1, Ordering::Relaxed);
        format!("-- QID: {qid}\n{message}")
    }

    /// Clones this frontend into an independent master over the same
    /// worker fleet — the building block of §7.6 multi-master deployment
    /// (see [`crate::multimaster::MasterPool`]). Frontend state (chunker,
    /// metadata, secondary index) is copied; workers, the fabric, and the
    /// placement manager are shared — every master sees the same
    /// placement epoch and commits membership changes through one truth.
    pub fn clone_frontend(&self) -> Qserv {
        Qserv {
            cluster: self.cluster.clone(),
            chunker: self.chunker.clone(),
            meta: self.meta.clone(),
            placement: Arc::clone(&self.placement),
            secondary: self.secondary.clone(),
            workers: self.workers.clone(),
            clock: self.clock.clone(),
            dispatch_width: self.dispatch_width,
            retry: self.retry.clone(),
            streaming_merge: self.streaming_merge,
            qid: Arc::clone(&self.qid),
            zones: Arc::clone(&self.zones),
            stats: Arc::clone(&self.stats),
            plan_override: self.plan_override,
            data_version: Arc::clone(&self.data_version),
            table_versions: Arc::clone(&self.table_versions),
            storage_dir: self.storage_dir.clone(),
        }
    }

    /// The partitioning in effect.
    pub fn chunker(&self) -> &Chunker {
        &self.chunker
    }

    /// The catalog metadata.
    pub fn meta(&self) -> &CatalogMeta {
        &self.meta
    }

    /// The workers (for stats inspection and fault injection in tests).
    pub fn workers(&self) -> &[Arc<Worker>] {
        &self.workers
    }

    /// The underlying fabric (for fault injection in tests).
    pub fn cluster(&self) -> &XrdCluster {
        &self.cluster
    }

    /// The current chunk-placement snapshot (immutable, epoch-stamped).
    /// Callers hold a consistent view even while membership changes
    /// commit newer epochs concurrently.
    pub fn placement(&self) -> Arc<PlacementMap> {
        self.placement.snapshot()
    }

    /// The placement manager: epochs, membership, repair, rebalancing
    /// and latency-aware replica routing.
    pub fn placement_manager(&self) -> &Arc<PlacementManager> {
        &self.placement
    }

    /// The directory new `.qchunk` files land in when replicas are
    /// copied between workers (`None` falls back to the temp dir).
    pub fn storage_dir(&self) -> Option<&std::path::Path> {
        self.storage_dir.as_deref()
    }

    /// The clock dispatch waits on and traces are stamped with.
    pub fn clock(&self) -> &SharedClock {
        &self.clock
    }

    /// Swaps the master's clock — and the fabric fault plan's, so
    /// injected delay faults wait through the same (possibly virtual)
    /// time source as dispatch deadlines and backoff.
    pub fn set_clock(&mut self, clock: SharedClock) {
        self.cluster.faults().set_clock(clock.clone());
        self.clock = clock;
    }

    /// Executes a query, returning just the rows.
    pub fn query(&self, sql: &str) -> Result<ResultTable, QservError> {
        self.query_with_stats(sql).map(|(r, _)| r)
    }

    /// Executes a query, returning rows plus execution statistics.
    pub fn query_with_stats(&self, sql: &str) -> Result<(ResultTable, QueryStats), QservError> {
        self.query_cancellable(sql, &CancelToken::new())
    }

    /// Executes a query under an externally held [`CancelToken`]: a
    /// `cancel()` from another thread aborts the query with
    /// [`QservError::Cancelled`] at the next chunk-dispatch or
    /// merge-fold boundary, leaving no result files on the fabric.
    pub fn query_cancellable(
        &self,
        sql: &str,
        token: &CancelToken,
    ) -> Result<(ResultTable, QueryStats), QservError> {
        let (rows, qm) = self.query_inner(sql, token)?;
        Ok((rows, qm.stats()))
    }

    /// Runs a cross-catalog XMatch (paper §6.2's "near neighbor"
    /// machinery pointed at two catalogs): every `spec.left` row is
    /// matched against `spec.right` candidates within `spec.radius_deg`,
    /// keeping the nearest candidate only. Dispatched chunk-aligned as a
    /// subchunk near-join — the right side reads the overlap-dilated
    /// subchunk tables, so matches straddling chunk borders are found —
    /// and merged with the keep-nearest fold ([`MergeShape::Nearest`]).
    /// Result columns: `left_id`, `right_id`, `dist` (degrees), one row
    /// per matched left row, ascending by `left_id`.
    pub fn xmatch(&self, spec: &XMatchSpec) -> Result<(ResultTable, QueryStats), QservError> {
        self.xmatch_cancellable(spec, &CancelToken::new())
    }

    /// [`Qserv::xmatch`] under an externally held [`CancelToken`].
    pub fn xmatch_cancellable(
        &self,
        spec: &XMatchSpec,
        token: &CancelToken,
    ) -> Result<(ResultTable, QueryStats), QservError> {
        let qm = QueryMetrics::new();
        let _q = trace::span("master.xmatch");
        let sql = self.xmatch_sql(spec)?;
        let stmt = parse_select(&sql)?;
        let mut prepared = self.prepare_stmt(&stmt)?;
        debug_assert_eq!(prepared.plan.join, JoinClass::SubchunkNear);
        // The SQL subset cannot express per-key argmin, so the plan's
        // classified shape (a plain append) is overridden with the
        // keep-nearest fold; the merge statement stays the pass-through.
        prepared.plan.shape = MergeShape::Nearest {
            key: spec.left_id.clone(),
            dist: "dist".to_string(),
        };
        let rows = self.run_prepared(&prepared, &qm, token)?;
        Ok((rows, qm.stats()))
    }

    /// The worker-side SQL an XMatch dispatches (exposed for inspection
    /// and tests): a two-catalog near-join projecting both ids and the
    /// angular distance. Validates the spec against catalog metadata and
    /// the partitioning overlap.
    pub fn xmatch_sql(&self, spec: &XMatchSpec) -> Result<String, QservError> {
        let left = self.meta.partition_info(&spec.left).ok_or_else(|| {
            QservError::Analysis(format!(
                "XMatch left table {} is not partitioned",
                spec.left
            ))
        })?;
        let right = self.meta.partition_info(&spec.right).ok_or_else(|| {
            QservError::Analysis(format!(
                "XMatch right table {} is not partitioned",
                spec.right
            ))
        })?;
        // `<= 0.0 || NaN` rather than `!(> 0.0)`: same rejection set,
        // with the NaN case explicit.
        if spec.radius_deg <= 0.0 || spec.radius_deg.is_nan() {
            return Err(QservError::Analysis(format!(
                "XMatch radius must be positive, got {}",
                spec.radius_deg
            )));
        }
        let overlap = self.chunker.overlap().degrees();
        if spec.radius_deg > overlap {
            return Err(QservError::Analysis(format!(
                "XMatch radius {}° exceeds the partitioning overlap {overlap}°: \
                 candidates beyond the overlap would be missed",
                spec.radius_deg
            )));
        }
        let sep = format!(
            "qserv_angSep(a.{}, a.{}, b.{}, b.{})",
            left.lon_col, left.lat_col, right.lon_col, right.lat_col
        );
        Ok(format!(
            "SELECT a.{lid} AS {lid}, b.{rid} AS {rid}, {sep} AS dist \
             FROM {lt} a, {rt} b WHERE {sep} <= {r:?}",
            lid = spec.left_id,
            rid = spec.right_id,
            lt = spec.left,
            rt = spec.right,
            r = spec.radius_deg,
        ))
    }

    /// Executes a query under a fresh [`Trace`]: every layer it crosses —
    /// analysis, per-chunk dispatch attempts, fabric ops, worker
    /// statement execution, merge folds — records spans into the
    /// returned tree, stamped by the master's clock.
    pub fn query_traced(&self, sql: &str) -> Result<TracedQuery, QservError> {
        let trace = Trace::new(self.clock.clone());
        let outcome = {
            let root = trace::with_root(&trace, "query");
            root.annotate("sql", sql);
            self.query_inner(sql, &CancelToken::new())
        };
        let (rows, qm) = outcome?;
        Ok(TracedQuery {
            rows,
            stats: qm.stats(),
            metrics: qm.snapshot(),
            trace,
        })
    }

    /// The shared pipeline behind [`Qserv::query_with_stats`],
    /// [`Qserv::query_traced`] and the query service: runs the query,
    /// updating per-query instruments (and trace spans, when a trace is
    /// active). `pub(crate)` so [`crate::service::QueryService`] can run
    /// it under its own trace root.
    pub(crate) fn query_inner(
        &self,
        sql: &str,
        token: &CancelToken,
    ) -> Result<(ResultTable, QueryMetrics), QservError> {
        self.query_impl(sql, token, None)
    }

    /// Streaming execution: merged row batches are pushed into `sink` as
    /// chunk results fold, so the first rows leave the master while later
    /// chunks are still scanning. For shapes that cannot stream (folds,
    /// top-n, barriers — anything whose output depends on every chunk)
    /// the single final batch is pushed at completion instead. The final
    /// batch is *always* pushed, even when empty, so consumers learn the
    /// result columns of empty results. Returning `false` from the sink
    /// cancels the remaining chunk work and fails the query with
    /// [`QservError::Cancelled`] — the LIMIT-cutoff path for a client
    /// that has seen enough, and the disconnect path for one that left.
    ///
    /// Exactness: the concatenation of all batches, with earlier rows
    /// re-coerced whenever a later batch widens a column (the only
    /// widening step is Int→Float, so re-coercion is exact), is
    /// byte-identical to the table [`Qserv::query`] returns.
    pub fn query_streaming(
        &self,
        sql: &str,
        token: &CancelToken,
        sink: &mut dyn FnMut(StreamBatch) -> bool,
    ) -> Result<QueryStats, QservError> {
        self.query_impl(sql, token, Some(sink))
            .map(|(_, qm)| qm.stats())
    }

    /// Shared body of [`Qserv::query_inner`] and
    /// [`Qserv::query_streaming`]: with a sink, row batches leave
    /// through it and the returned table is empty (columns only).
    fn query_impl(
        &self,
        sql: &str,
        token: &CancelToken,
        sink: Option<&mut dyn FnMut(StreamBatch) -> bool>,
    ) -> Result<(ResultTable, QueryMetrics), QservError> {
        let qm = QueryMetrics::new();
        let _q = trace::span("master.query");
        if token.is_cancelled() {
            return Err(QservError::Cancelled);
        }
        let stmt = parse_select(sql)?;
        // FROM-less statements run locally on the frontend.
        if stmt.from.is_empty() {
            let local = execute(&Database::new(), &stmt)?;
            if let Some(s) = sink {
                return Ok((emit_final(local, None, s), qm));
            }
            return Ok((local, qm));
        }
        let prepared = {
            let g = trace::span("master.analyze");
            let prepared = self.prepare_stmt(&stmt)?;
            if let Some(g) = &g {
                g.annotate("chunks", &prepared.chunks.len().to_string());
                g.annotate("join", &format!("{:?}", prepared.plan.join));
                if prepared.chunks_pruned > 0 {
                    g.annotate("chunks_pruned", &prepared.chunks_pruned.to_string());
                }
                g.annotate("planner.access", &format!("{:?}", prepared.choice.access));
                g.annotate(
                    "planner.est_rows",
                    &format!("{:.1}", prepared.choice.est_rows),
                );
            }
            prepared
        };
        let streaming = sink.is_some();
        let result = self.run_prepared_sink(&prepared, &qm, token, sink)?;
        // Record the estimate-vs-actual error on the query span and the
        // planner gauges. Under a streaming sink the final table is
        // empty by design; the rows-merged gauge stands in for the
        // actual.
        let actual = if streaming {
            qm.snapshot().gauge(crate::stats::names::ROWS_MERGED)
        } else {
            result.num_rows() as u64
        };
        let qerror = prepared.choice.q_error(actual);
        qm.planner_qerror_pct.set((qerror * 100.0).round() as u64);
        if let Some(q) = &_q {
            q.annotate(
                "planner.est_rows",
                &format!("{:.1}", prepared.choice.est_rows),
            );
            q.annotate("planner.actual_rows", &actual.to_string());
            q.annotate("planner.qerror", &format!("{qerror:.2}"));
        }
        Ok((result, qm))
    }

    /// Dispatch + merge for an already-prepared plan (shared by the SQL
    /// path and the XMatch operator, whose plan carries a shape override
    /// no SQL statement produces).
    fn run_prepared(
        &self,
        prepared: &Prepared,
        qm: &QueryMetrics,
        token: &CancelToken,
    ) -> Result<ResultTable, QservError> {
        self.run_prepared_sink(prepared, qm, token, None)
    }

    /// [`Qserv::run_prepared`] with an optional streaming sink. The
    /// barrier path (streaming_merge off) still works under a sink — the
    /// whole result leaves as one final batch — so a streaming consumer
    /// composes with the bench's buffered baseline.
    fn run_prepared_sink(
        &self,
        prepared: &Prepared,
        qm: &QueryMetrics,
        token: &CancelToken,
        sink: Option<&mut dyn FnMut(StreamBatch) -> bool>,
    ) -> Result<ResultTable, QservError> {
        qm.used_secondary_index
            .set(prepared.analysis.index_ids.is_some() as u64);
        qm.used_spatial_restriction
            .set(prepared.analysis.spatial.is_some() as u64);
        qm.chunks_pruned.add(prepared.chunks_pruned as u64);
        qm.planner_est_rows
            .set(prepared.choice.est_rows.round() as u64);
        qm.planner_index_lookup.set(matches!(
            prepared.choice.access,
            crate::planner::AccessPath::IndexLookup { .. }
        ) as u64);
        qm.planner_topn_pushdown
            .set(prepared.choice.topn_pushdown.is_some() as u64);
        qm.planner_reordered.set(prepared.choice.reordered as u64);
        let _d = trace::span("master.dispatch");
        if let Some(g) = &_d {
            // The epoch this query is pinned to: rebalances committing
            // newer epochs mid-flight do not change its chunk set.
            g.annotate("placement_epoch", &prepared.placement.epoch().to_string());
        }
        if self.streaming_merge {
            self.dispatch_streaming(prepared, qm, token, sink)
        } else {
            qm.chunks_dispatched.add(prepared.chunks.len() as u64);
            let parts = self.dispatch_all(prepared, qm, token)?;
            let merged = self.merge(&prepared.plan, parts, qm)?;
            match sink {
                Some(s) => Ok(emit_final(merged, None, s)),
                None => Ok(merged),
            }
        }
    }

    /// Plans a query without executing it.
    pub fn explain(&self, sql: &str) -> Result<Explain, QservError> {
        let stmt = parse_select(sql)?;
        let prepared = self.prepare_stmt(&stmt)?;
        let sample_message = prepared.chunks.first().map(|&c| {
            let subs = self.subchunks_for(&prepared, c);
            render_chunk_message(&prepared.plan, &self.meta, c, &subs)
        });
        Ok(Explain {
            chunks: prepared.chunks.clone(),
            join: prepared.plan.join,
            aggregated: prepared.analysis.aggregated,
            uses_secondary_index: prepared.analysis.index_ids.is_some(),
            sample_message,
            choice: prepared.choice.clone(),
            placement_epoch: prepared.placement.epoch(),
        })
    }

    /// Renders the planner's chosen plan for `sql` as a deterministic
    /// two-column `(item, value)` result table — the body of the
    /// service/proxy `EXPLAIN <sql>` verb. Plans without executing.
    pub fn explain_table(&self, sql: &str) -> Result<ResultTable, QservError> {
        let stmt = parse_select(sql)?;
        let columns = vec!["item".to_string(), "value".to_string()];
        let mut items: Vec<(String, String)> = Vec::new();
        if stmt.from.is_empty() {
            // FROM-less statements run locally on the frontend; there is
            // no distributed plan to show.
            items.push(("access_path".to_string(), "frontend_local".to_string()));
            items.push(("chunks".to_string(), "0".to_string()));
        } else {
            let prepared = self.prepare_stmt(&stmt)?;
            items.push(("class".to_string(), {
                if prepared.chunks.len() <= planner::DEFAULT_INTERACTIVE_CHUNKS {
                    "interactive".to_string()
                } else {
                    "scan".to_string()
                }
            }));
            items.push(("chunks".to_string(), prepared.chunks.len().to_string()));
            items.push((
                "chunks_pruned".to_string(),
                prepared.chunks_pruned.to_string(),
            ));
            items.extend(prepared.choice.render_rows());
            items.push((
                "merge_shape".to_string(),
                format!("{:?}", prepared.plan.shape),
            ));
            items.push(("join".to_string(), format!("{:?}", prepared.plan.join)));
            items.push((
                "placement_epoch".to_string(),
                prepared.placement.epoch().to_string(),
            ));
        }
        Ok(ResultTable {
            columns,
            rows: items
                .into_iter()
                .map(|(k, v)| {
                    vec![
                        qserv_engine::value::Value::Str(k),
                        qserv_engine::value::Value::Str(v),
                    ]
                })
                .collect(),
        })
    }

    /// How many chunks `sql` would dispatch — the admission cost the
    /// query service classifies on. FROM-less statements (which run
    /// locally on the frontend) cost zero. Parse/analysis errors surface
    /// here, *before* admission, so a broken query never occupies a
    /// queue slot.
    pub(crate) fn chunk_count(&self, sql: &str) -> Result<usize, QservError> {
        let stmt = parse_select(sql)?;
        if stmt.from.is_empty() {
            return Ok(0);
        }
        Ok(self.prepare_stmt(&stmt)?.chunks.len())
    }

    pub(crate) fn prepare_stmt(
        &self,
        stmt: &qserv_sqlparse::ast::SelectStatement,
    ) -> Result<Prepared, QservError> {
        let analysis = analyze(stmt, &self.meta)?;
        let mut plan = build_plan(&analysis, &self.meta)?;
        let placement = self.placement.snapshot();
        // Candidate chunk sets: the spatially-restricted full scan and,
        // when an objectId point/IN predicate exists, the secondary
        // index's narrowing of it. The cost-based planner picks between
        // them, applies zone-map chunk elision to both, reorders the
        // chunk query's WHERE conjuncts by estimated selectivity, and
        // pushes ORDER BY + LIMIT down when statistics prove the sort
        // key unique (see [`crate::planner`]).
        let scan_chunks = self.chunk_set_spatial(&analysis, &placement);
        let index_chunks = analysis.index_ids.as_ref().map(|ids| {
            let selected = self.secondary.chunks_for(ids);
            let mut narrowed = scan_chunks.clone();
            narrowed.retain(|c| selected.binary_search(c).is_ok());
            narrowed
        });
        let planned = planner::choose(
            planner::PlannerContext {
                analysis: &analysis,
                zones: &self.zones,
                stats: &self.stats,
                scan_chunks,
                index_chunks,
            },
            self.plan_override.as_ref(),
            &mut plan,
        );
        let (choice, mut chunks, chunks_pruned) =
            (planned.choice, planned.chunks, planned.chunks_pruned);
        // A fully-restricted-away chunk set still dispatches one chunk:
        // its (empty) result gives the merge query real input columns, so
        // aggregates keep SQL semantics — COUNT over nothing is 0, not the
        // NULL that SUM-of-no-partials would produce.
        if chunks.is_empty() {
            chunks = placement.chunks().into_iter().take(1).collect();
        }
        if chunks.is_empty() {
            return Err(QservError::Analysis(
                "the cluster stores no chunks; load data before querying".to_string(),
            ));
        }
        Ok(Prepared {
            analysis,
            plan,
            chunks,
            chunks_pruned,
            placement,
            choice,
        })
    }

    /// Computes the full-scan candidate chunk set: all stored chunks,
    /// narrowed by the spatial restriction.
    fn chunk_set_spatial(&self, analysis: &Analysis, placement: &PlacementMap) -> Vec<i32> {
        let mut chunks = placement.chunks();
        if let Some(spec) = &analysis.spatial {
            let selected = self.chunker.chunks_intersecting(&spec.bounding_box());
            chunks.retain(|c| selected.binary_search(c).is_ok());
        }
        chunks
    }

    /// The subchunk list for one chunk of a near-neighbour query: the
    /// subchunks intersecting the spatial restriction, or all of them.
    pub(crate) fn subchunks_for(&self, prepared: &Prepared, chunk: i32) -> Vec<i32> {
        if prepared.plan.join != JoinClass::SubchunkNear {
            return Vec::new();
        }
        match &prepared.plan.spatial {
            Some(spec) => self
                .chunker
                .subchunks_intersecting(chunk, &spec.bounding_box())
                .unwrap_or_default(),
            None => self.chunker.subchunks_of(chunk).unwrap_or_default(),
        }
    }

    /// Dispatches every chunk query from a pool of threads; returns the
    /// per-chunk result tables in ascending chunk order (deterministic).
    fn dispatch_all(
        &self,
        prepared: &Prepared,
        qm: &QueryMetrics,
        token: &CancelToken,
    ) -> Result<Vec<Table>, QservError> {
        let jobs: Vec<(i32, String)> = prepared
            .chunks
            .iter()
            .map(|&c| {
                let subs = self.subchunks_for(prepared, c);
                (
                    c,
                    self.tag_message(render_chunk_message(&prepared.plan, &self.meta, c, &subs)),
                )
            })
            .collect();

        /// Per-chunk dispatch outcome: the loaded result table, the
        /// transferred byte count, and retry bookkeeping.
        type ChunkOutcome = Result<(Table, u64, ChunkMeta), QservError>;
        let queue = Mutex::new(jobs.into_iter());
        let results: Mutex<Vec<(i32, ChunkOutcome)>> =
            Mutex::new(Vec::with_capacity(prepared.chunks.len()));
        let width = effective_width(self.dispatch_width, prepared.chunks.len());
        let started = self.clock.now();
        // Dispatcher threads parent their chunk spans under the span
        // current here (master.dispatch) — explicit cross-thread handoff.
        let ctx = trace::current();

        crossbeam::thread::scope(|scope| {
            for _ in 0..width {
                scope.spawn(|_| {
                    let _tg = ctx.as_ref().map(|c| c.enter());
                    loop {
                        if token.is_cancelled() {
                            break;
                        }
                        let job = queue.lock().next();
                        let Some((chunk, message)) = job else { break };
                        let outcome = self.dispatch_one(chunk, &message, started, token);
                        results.lock().push((chunk, outcome));
                    }
                });
            }
        })
        .map_err(|_| QservError::Fabric("dispatcher thread panicked".to_string()))?;

        // The barrier merge only ever sees complete chunk sets: a
        // cancellation mid-dispatch leaves `collected` a subset, and
        // merging a subset would silently return wrong rows.
        if token.is_cancelled() {
            return Err(QservError::Cancelled);
        }
        let mut collected = results.into_inner();
        collected.sort_by_key(|(c, _)| *c);
        let mut tables = Vec::with_capacity(collected.len());
        for (_, outcome) in collected {
            let (table, bytes, meta) = outcome?;
            record_chunk(qm, bytes, &meta);
            tables.push(table);
        }
        Ok(tables)
    }

    /// Streaming dispatch (the default): dispatcher threads hand
    /// finished chunk results over a channel to an incremental
    /// [`Merger`] running on the calling thread, so merging overlaps
    /// dispatch and the master holds only the merge state plus a small
    /// reorder buffer — not every chunk result at once. When the merger
    /// reports itself satisfied (a pushed-down LIMIT is met), the
    /// remaining chunk queue is cancelled: undispatched chunks are never
    /// sent, and are counted in [`QueryStats::chunks_skipped_by_limit`].
    fn dispatch_streaming(
        &self,
        prepared: &Prepared,
        qm: &QueryMetrics,
        token: &CancelToken,
        mut sink: Option<&mut dyn FnMut(StreamBatch) -> bool>,
    ) -> Result<ResultTable, QservError> {
        let jobs: Vec<(usize, i32, String)> = prepared
            .chunks
            .iter()
            .enumerate()
            .map(|(seq, &c)| {
                let subs = self.subchunks_for(prepared, c);
                (
                    seq,
                    c,
                    self.tag_message(render_chunk_message(&prepared.plan, &self.meta, c, &subs)),
                )
            })
            .collect();
        let total = jobs.len();
        let width = effective_width(self.dispatch_width, total);
        let started = self.clock.now();
        let mut merger = Merger::new(&prepared.plan);
        let mut dispatched = 0usize;
        // Error selection must not depend on thread scheduling: keep the
        // *lowest-sequence* dispatch error (queue order is deterministic,
        // and the dispatched set is always a queue prefix, so the minimum
        // failing sequence is the same in every run). A merge error is
        // reported in preference to any dispatch error — folds drain in
        // sequence order, so a fold failure always concerns an earlier
        // chunk than the first dispatch failure.
        let mut dispatch_err: Option<(usize, QservError)> = None;
        let mut fold_err: Option<QservError> = None;
        let mut first_fold: Option<Duration> = None;
        let mut last_arrival: Option<Duration> = None;
        // Set when the sink declines a batch (client gone / has enough):
        // remaining work is cancelled and the query reports Cancelled.
        let mut sink_closed = false;

        type ChunkOutcome = Result<(Table, u64, ChunkMeta), QservError>;

        if width == 1 {
            // Fully serial streaming: dispatch and fold interleave on
            // this thread, with chunk n+1 never leaving the master until
            // chunk n's result has folded. Semantically the same as one
            // dispatcher thread, but with no scheduling nondeterminism —
            // under a virtual clock and a fixed fault seed the entire
            // trace is a pure function of the query (bit-reproducible).
            let mut stop = false;
            for (seq, chunk, message) in jobs {
                if token.is_cancelled() {
                    break;
                }
                dispatched += 1;
                let outcome = self.dispatch_one(chunk, &message, started, token);
                last_arrival = Some(self.clock.now());
                match outcome {
                    Ok((table, bytes, meta)) => {
                        record_chunk(qm, bytes, &meta);
                        if fold_err.is_none() && !merger.satisfied() {
                            if first_fold.is_none() {
                                first_fold = Some(self.clock.now());
                            }
                            let g = trace::span("merge.fold");
                            if let Some(g) = &g {
                                g.annotate("seq", &seq.to_string());
                            }
                            match merger.fold(seq, table) {
                                Ok(()) => {
                                    stop = merger.satisfied();
                                    if let Some(s) = sink.as_mut() {
                                        if let Some(batch) = merger.drain_ready() {
                                            if !s(batch) {
                                                sink_closed = true;
                                                stop = true;
                                            }
                                        }
                                    }
                                }
                                Err(e) => {
                                    fold_err = Some(e);
                                    stop = true;
                                }
                            }
                        }
                    }
                    Err(e) => {
                        dispatch_err = Some((seq, e));
                        stop = true;
                    }
                }
                if stop {
                    break;
                }
            }
            return self.finish_streaming(
                qm,
                merger,
                total,
                dispatched,
                dispatch_err,
                fold_err,
                first_fold,
                last_arrival,
                token,
                sink,
                sink_closed,
            );
        }

        let queue = Mutex::new(jobs.into_iter());
        let cancelled = AtomicBool::new(false);
        let ctx = trace::current();
        // Rendezvous handoff: a worker's send completes only when the
        // merge loop takes the part, so at most `width` results are ever
        // in flight (bounded master memory) and a LIMIT-cutoff
        // cancellation is observed before the *next* handoff — workers
        // can't race ahead of the merge and drain the queue.
        let (tx, rx) = mpsc::sync_channel::<(usize, ChunkOutcome)>(0);
        crossbeam::thread::scope(|scope| {
            let queue = &queue;
            let cancelled = &cancelled;
            let ctx = &ctx;
            for _ in 0..width {
                let tx = tx.clone();
                scope.spawn(move |_| {
                    let _tg = ctx.as_ref().map(|c| c.enter());
                    loop {
                        // Cancellation — by LIMIT cutoff or by an
                        // external KILL — is checked between jobs: an
                        // in-flight chunk finishes (and is drained below)
                        // but nothing new leaves the queue.
                        if cancelled.load(Ordering::Relaxed) || token.is_cancelled() {
                            break;
                        }
                        let job = queue.lock().next();
                        let Some((seq, chunk, message)) = job else {
                            break;
                        };
                        let outcome = self.dispatch_one(chunk, &message, started, token);
                        if tx.send((seq, outcome)).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(tx);
            // Folding on this thread — not in the workers — keeps the
            // merge single-threaded; the merger's reorder buffer makes
            // it deterministic regardless of arrival order.
            while let Ok((seq, outcome)) = rx.recv() {
                dispatched += 1;
                last_arrival = Some(self.clock.now());
                // A KILL mid-stream: stop folding (the partial merge
                // state will be discarded) but keep draining the channel
                // so in-flight workers can finish their send and exit.
                if token.is_cancelled() {
                    cancelled.store(true, Ordering::Relaxed);
                }
                match outcome {
                    Ok((table, bytes, meta)) => {
                        record_chunk(qm, bytes, &meta);
                        if fold_err.is_none() && !merger.satisfied() && !token.is_cancelled() {
                            if first_fold.is_none() {
                                first_fold = Some(self.clock.now());
                            }
                            let g = trace::span("merge.fold");
                            if let Some(g) = &g {
                                g.annotate("seq", &seq.to_string());
                            }
                            match merger.fold(seq, table) {
                                Ok(()) => {
                                    if merger.satisfied() {
                                        cancelled.store(true, Ordering::Relaxed);
                                    }
                                    if let Some(s) = sink.as_mut() {
                                        if let Some(batch) = merger.drain_ready() {
                                            if !s(batch) {
                                                sink_closed = true;
                                                cancelled.store(true, Ordering::Relaxed);
                                            }
                                        }
                                    }
                                }
                                Err(e) => {
                                    fold_err = Some(e);
                                    cancelled.store(true, Ordering::Relaxed);
                                }
                            }
                        }
                    }
                    Err(e) => {
                        if dispatch_err.as_ref().is_none_or(|(s, _)| seq < *s) {
                            dispatch_err = Some((seq, e));
                        }
                        cancelled.store(true, Ordering::Relaxed);
                    }
                }
            }
        })
        .map_err(|_| QservError::Fabric("dispatcher thread panicked".to_string()))?;

        self.finish_streaming(
            qm,
            merger,
            total,
            dispatched,
            dispatch_err,
            fold_err,
            first_fold,
            last_arrival,
            token,
            sink,
            sink_closed,
        )
    }

    /// Epilogue shared by the serial and threaded streaming paths:
    /// surface errors in deterministic preference order, settle the
    /// pipeline metrics, and finish the merge under its own span.
    #[allow(clippy::too_many_arguments)]
    fn finish_streaming(
        &self,
        qm: &QueryMetrics,
        merger: Merger,
        total: usize,
        dispatched: usize,
        dispatch_err: Option<(usize, QservError)>,
        fold_err: Option<QservError>,
        first_fold: Option<Duration>,
        last_arrival: Option<Duration>,
        token: &CancelToken,
        sink: Option<&mut dyn FnMut(StreamBatch) -> bool>,
        sink_closed: bool,
    ) -> Result<ResultTable, QservError> {
        qm.chunks_dispatched.add(dispatched as u64);
        if let Some(e) = fold_err {
            return Err(e);
        }
        // A KILL wins over any dispatch error it raced with: the caller
        // asked for cancellation and gets a deterministic `Cancelled`
        // (the dispatch error may itself be a token-induced `Cancelled`
        // from inside the retry loop).
        if token.is_cancelled() {
            return Err(QservError::Cancelled);
        }
        // A sink that declined a batch is the consumer's cancellation.
        if sink_closed {
            return Err(QservError::Cancelled);
        }
        if let Some((_, e)) = dispatch_err {
            return Err(e);
        }
        qm.chunks_skipped_by_limit.add((total - dispatched) as u64);
        qm.peak_buffered_parts
            .set_max(merger.peak_buffered_parts() as u64);
        qm.rows_merged.set(merger.rows_folded() as u64);
        if let (Some(f), Some(l)) = (first_fold, last_arrival) {
            qm.merge_overlap_ms
                .set(l.saturating_sub(f).as_millis() as u64);
        }
        // The streamable path's final batch must carry the *final* votes,
        // not value-inferred types: a column whose rows all drained as
        // Int before a later all-NULL Float part widened the vote would
        // otherwise never tell the consumer to re-coerce.
        let final_votes = match &sink {
            Some(_) if merger.streamable() => Some(merger.vote_types().to_vec()),
            _ => None,
        };
        let g = trace::span("merge.finish");
        let result = merger.finish();
        if let (Some(g), Ok(r)) = (&g, &result) {
            g.annotate("rows", &r.rows.len().to_string());
        }
        match (sink, result) {
            (Some(s), Ok(r)) => Ok(emit_final(r, final_votes, s)),
            (_, result) => result,
        }
    }

    /// Dispatches one chunk with bounded retry: transient fabric errors
    /// back off exponentially and steer the next attempt away from the
    /// replicas that failed; the query-wide deadline turns a stuck chunk
    /// into [`QservError::Timeout`]. Backoff and the deadline both run on
    /// the master's clock (virtual under test: no real sleeping). Shared
    /// with the shared-scan scheduler so convoy dispatch gets the same
    /// retry semantics. `started` is the clock time the dispatch phase
    /// began.
    pub(crate) fn dispatch_one(
        &self,
        chunk: i32,
        message: &str,
        started: Duration,
        token: &CancelToken,
    ) -> Result<(Table, u64, ChunkMeta), QservError> {
        let span = trace::span("chunk");
        if let Some(g) = &span {
            g.annotate("chunk", &chunk.to_string());
        }
        let t0 = self.clock.now();
        let result = self.dispatch_one_retrying(chunk, message, started, token);
        match (&span, &result) {
            (Some(g), Ok((_, bytes, meta))) => {
                g.annotate("attempts", &meta.attempts.to_string());
                g.annotate("bytes", &bytes.to_string());
            }
            (Some(g), Err(e)) => g.annotate("error", &e.to_string()),
            _ => {}
        }
        result.map(|(table, bytes, mut meta)| {
            meta.latency = self.clock.now().saturating_sub(t0);
            // Feed the per-chunk latency back to the placement manager's
            // node-heat EWMAs — this closes the loop from observed
            // dispatch latency into latency-aware replica routing.
            if let Some(s) = meta.prev_server {
                self.placement.observe(s, meta.latency);
            }
            (table, bytes, meta)
        })
    }

    /// The retry loop behind [`Qserv::dispatch_one`].
    fn dispatch_one_retrying(
        &self,
        chunk: i32,
        message: &str,
        started: Duration,
        token: &CancelToken,
    ) -> Result<(Table, u64, ChunkMeta), QservError> {
        let policy = &self.retry;
        let max_attempts = policy.max_attempts.max(1);
        let mut meta = ChunkMeta::default();
        let mut excluded: Vec<ServerId> = Vec::new();
        let mut last_err = QservError::Fabric(format!("chunk {chunk}: dispatch never attempted"));
        let mut attempt = 0;
        while attempt < max_attempts {
            // Cancellation is observed *between* attempts, never inside
            // dispatch_once's write → read → unlink sequence, so there is
            // no window in which a result file was written but will not
            // be consumed. Checked before the backoff: a killed chunk
            // must not sit out its exponential wait first.
            if token.is_cancelled() {
                return Err(QservError::Cancelled);
            }
            if attempt > 0 {
                let mut backoff = policy
                    .backoff_base
                    .saturating_mul(1u32 << (attempt - 1).min(16) as u32);
                if let Some(deadline) = policy.deadline {
                    let elapsed = self.clock.now().saturating_sub(started);
                    backoff = backoff.min(deadline.saturating_sub(elapsed));
                }
                if !backoff.is_zero() {
                    self.clock.sleep(backoff);
                }
            }
            if let Some(deadline) = policy.deadline {
                let elapsed = self.clock.now().saturating_sub(started);
                if elapsed >= deadline {
                    return Err(QservError::Timeout {
                        chunk,
                        elapsed_ms: elapsed.as_millis() as u64,
                    });
                }
            }
            let attempt_span = trace::span("attempt");
            if let Some(g) = &attempt_span {
                g.annotate("n", &(attempt + 1).to_string());
                if !excluded.is_empty() {
                    g.annotate("excluded", &format!("{excluded:?}"));
                }
            }
            match self.dispatch_once(chunk, message, &excluded, &mut meta) {
                Attempt::Ok(table, bytes) => {
                    meta.attempts = attempt + 1;
                    if let Some(g) = &attempt_span {
                        g.annotate("outcome", "ok");
                    }
                    return Ok((table, bytes, meta));
                }
                Attempt::Retry {
                    server,
                    injected,
                    reset_exclusions,
                    error,
                } => {
                    if let Some(g) = &attempt_span {
                        g.annotate("outcome", "retry");
                        g.annotate("error", &error.to_string());
                    }
                    if injected {
                        meta.injected_seen += 1;
                    }
                    if reset_exclusions && !excluded.is_empty() {
                        // Every replica is on the exclusion list: the
                        // probe touched no server, so re-admit them all
                        // without charging the attempt budget. (A reset
                        // can't repeat back-to-back — the next pass runs
                        // with an empty list — so the loop stays bounded
                        // by 2×max_attempts iterations.)
                        excluded.clear();
                    } else {
                        if let Some(s) = server {
                            if !excluded.contains(&s) {
                                excluded.push(s);
                            }
                            meta.prev_server = Some(s);
                        }
                        attempt += 1;
                    }
                    last_err = error;
                }
                Attempt::Fatal(e) => {
                    if let Some(g) = &attempt_span {
                        g.annotate("outcome", "fatal");
                    }
                    return Err(e);
                }
            }
        }
        Err(last_err)
    }

    /// One attempt at the two file transactions of §5.4 for one chunk,
    /// plus result parsing. Result files are consumed (unlinked) on every
    /// exit path that could leave one behind.
    fn dispatch_once(
        &self,
        chunk: i32,
        message: &str,
        excluded: &[ServerId],
        meta: &mut ChunkMeta,
    ) -> Attempt {
        let rp = result_path(&md5_hex(message.as_bytes()));
        // Under latency-aware routing the placement manager orders this
        // chunk's replicas coldest-first; an empty preference (the static
        // default) keeps the redirector's own deterministic choice.
        let preferred = self.placement.route(chunk);
        let write = if preferred.is_empty() {
            self.cluster.write_file_excluding(
                &query_path(chunk),
                message.as_bytes().to_vec(),
                excluded,
            )
        } else {
            self.cluster.write_file_routed(
                &query_path(chunk),
                message.as_bytes().to_vec(),
                &preferred,
                excluded,
            )
        };
        let worker = match write {
            Ok(w) => w,
            Err(e) => {
                // A close fault lands after the worker accepted the query
                // and deposited its result: scrub the orphan.
                if let XrdError::Injected {
                    server,
                    op: FabricOp::Close,
                    ..
                } = &e
                {
                    let _ = self.cluster.unlink(*server, &rp);
                }
                return classify_xrd(e);
            }
        };
        if let Some(prev) = meta.prev_server {
            if prev != worker {
                meta.failovers += 1;
            }
        }
        meta.prev_server = Some(worker);
        let payload = match self.cluster.read_file(worker, &rp) {
            Ok(p) => p,
            Err(e) => {
                // The result file exists on the worker even though we
                // could not fetch it; consume it before retrying.
                let _ = self.cluster.unlink(worker, &rp);
                return classify_xrd(e);
            }
        };
        // Consume the result before parsing, so no exit path below can
        // leak it. A faulted unlink gets one immediate retry, then is
        // abandoned (a later dispatch of this chunk query overwrites it).
        if self.cluster.unlink(worker, &rp).is_err() {
            let _ = self.cluster.unlink(worker, &rp);
        }
        let bytes = payload.len() as u64;
        let Ok(text) = std::str::from_utf8(&payload) else {
            // Payload corruption is a fabric problem: retry re-executes
            // the chunk and re-fetches a clean copy.
            return Attempt::Retry {
                server: Some(worker),
                injected: false,
                reset_exclusions: false,
                error: QservError::Fabric(format!("chunk {chunk}: result is not UTF-8")),
            };
        };
        if let Some(err) = text.strip_prefix("ERROR:") {
            // A worker that no longer holds the chunk (rebalanced away
            // between redirector routing and plugin execution) NACKs with
            // a RETRYABLE marker: fail over to another replica instead of
            // surfacing a fatal worker error.
            if let Some(moved) = err.trim().strip_prefix("RETRYABLE:") {
                return Attempt::Retry {
                    server: Some(worker),
                    injected: false,
                    reset_exclusions: false,
                    error: QservError::Fabric(format!("chunk {chunk}: {}", moved.trim())),
                };
            }
            return Attempt::Fatal(QservError::Worker {
                chunk,
                message: err.trim().to_string(),
            });
        }
        let (pages_pruned, pages_scanned, text) = split_scan_header(text);
        meta.pages_pruned = pages_pruned;
        meta.pages_scanned = pages_scanned;
        match load_dump(text) {
            Ok((_, table)) => Attempt::Ok(table, bytes),
            // An unparseable dump from a healthy worker means the payload
            // was mangled in flight — transient, like the UTF-8 case.
            Err(e) => Attempt::Retry {
                server: Some(worker),
                injected: false,
                reset_exclusions: false,
                error: QservError::Merge(format!("chunk {chunk}: {e}")),
            },
        }
    }

    /// The barrier merge: accumulates per-chunk tables into `result` and
    /// runs the merge query (delegates to the [`crate::merge`] oracle).
    pub(crate) fn merge(
        &self,
        plan: &PhysicalPlan,
        parts: Vec<Table>,
        qm: &QueryMetrics,
    ) -> Result<ResultTable, QservError> {
        let g = trace::span("merge.finish");
        qm.peak_buffered_parts.set_max(parts.len() as u64);
        let (result, rows) = merge_oracle(&plan.merge_stmt, parts)?;
        qm.rows_merged.set(rows as u64);
        if let Some(g) = &g {
            g.annotate("rows", &result.rows.len().to_string());
        }
        Ok(result)
    }
}
