//! The Qserv master (frontend): end-to-end distributed query execution.
//!
//! `query(sql)` runs the full paper pipeline: parse → analyze (§5.3) →
//! select the chunk set (spatial restriction and/or secondary index) →
//! generate per-chunk physical queries → dispatch each as two file
//! transactions on the fabric (§5.4) from a pool of dispatcher threads →
//! read back mysqldump-style results → merge into a local `result` table →
//! run the merge/aggregation query → return rows to the caller.

use crate::analysis::{analyze, Analysis, JoinClass};
use crate::error::QservError;
use crate::meta::CatalogMeta;
use crate::rewrite::{build_plan, render_chunk_message, PhysicalPlan};
use crate::worker::Worker;
use parking_lot::Mutex;
use qserv_engine::db::Database;
use qserv_engine::dump::load_dump;
use qserv_engine::exec::{execute, ResultTable};
use qserv_engine::schema::{ColumnDef, ColumnType, Schema};
use qserv_engine::table::Table;
use qserv_engine::value::Value;
use qserv_partition::chunker::Chunker;
use qserv_partition::index::SecondaryIndex;
use qserv_partition::placement::Placement;
use qserv_sqlparse::parse_select;
use qserv_xrd::cluster::{query_path, result_path, XrdCluster};
use qserv_xrd::md5_hex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Process-wide dispatch counter: tags every chunk-query message with a
/// unique `-- QID:` line so identical concurrent queries hash to distinct
/// result paths (the paper's raw MD5-of-query addressing collides there).
static NEXT_QID: AtomicU64 = AtomicU64::new(1);

/// Prefixes a rendered chunk message with a unique query-instance id.
pub(crate) fn tag_message(message: String) -> String {
    let qid = NEXT_QID.fetch_add(1, Ordering::Relaxed);
    format!("-- QID: {qid}\n{message}")
}

/// Per-query execution statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Chunk queries dispatched.
    pub chunks_dispatched: usize,
    /// Rows accumulated into the master's merge table.
    pub rows_merged: usize,
    /// Bytes of result text transferred from workers.
    pub result_bytes: u64,
    /// True when the secondary index restricted the chunk set (§5.5).
    pub used_secondary_index: bool,
    /// True when the spatial restriction narrowed the chunk set (§5.3).
    pub used_spatial_restriction: bool,
}

/// What `explain` reports without executing.
#[derive(Clone, Debug)]
pub struct Explain {
    /// The chunks that would be dispatched.
    pub chunks: Vec<i32>,
    /// Join classification.
    pub join: JoinClass,
    /// Whether results need two-phase aggregation.
    pub aggregated: bool,
    /// Whether the objectId secondary index restricts the chunk set.
    pub uses_secondary_index: bool,
    /// One rendered chunk-query message (for the first chunk), for
    /// inspection.
    pub sample_message: Option<String>,
}

/// The running system: fabric + workers + frontend state.
pub struct Qserv {
    cluster: XrdCluster,
    chunker: Chunker,
    meta: CatalogMeta,
    placement: Placement,
    secondary: SecondaryIndex,
    workers: Vec<Arc<Worker>>,
    /// Dispatcher thread-pool width.
    pub dispatch_width: usize,
}

/// A prepared (analyzed + planned) query, reusable by the shared-scan
/// scheduler.
pub(crate) struct Prepared {
    pub analysis: Analysis,
    pub plan: PhysicalPlan,
    pub chunks: Vec<i32>,
}

impl Qserv {
    /// Assembles a frontend over already-loaded workers (used by
    /// [`crate::loader::ClusterBuilder`]).
    pub(crate) fn assemble(
        cluster: XrdCluster,
        chunker: Chunker,
        meta: CatalogMeta,
        placement: Placement,
        secondary: SecondaryIndex,
        workers: Vec<Arc<Worker>>,
    ) -> Qserv {
        Qserv {
            cluster,
            chunker,
            meta,
            placement,
            secondary,
            workers,
            dispatch_width: 8,
        }
    }

    /// Clones this frontend into an independent master over the same
    /// worker fleet — the building block of §7.6 multi-master deployment
    /// (see [`crate::multimaster::MasterPool`]). Frontend state (chunker,
    /// metadata, placement, secondary index) is copied; workers and the
    /// fabric are shared.
    pub fn clone_frontend(&self) -> Qserv {
        Qserv {
            cluster: self.cluster.clone(),
            chunker: self.chunker.clone(),
            meta: self.meta.clone(),
            placement: self.placement.clone(),
            secondary: self.secondary.clone(),
            workers: self.workers.clone(),
            dispatch_width: self.dispatch_width,
        }
    }

    /// The partitioning in effect.
    pub fn chunker(&self) -> &Chunker {
        &self.chunker
    }

    /// The catalog metadata.
    pub fn meta(&self) -> &CatalogMeta {
        &self.meta
    }

    /// The workers (for stats inspection and fault injection in tests).
    pub fn workers(&self) -> &[Arc<Worker>] {
        &self.workers
    }

    /// The underlying fabric (for fault injection in tests).
    pub fn cluster(&self) -> &XrdCluster {
        &self.cluster
    }

    /// The chunk placement.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Executes a query, returning just the rows.
    pub fn query(&self, sql: &str) -> Result<ResultTable, QservError> {
        self.query_with_stats(sql).map(|(r, _)| r)
    }

    /// Executes a query, returning rows plus execution statistics.
    pub fn query_with_stats(&self, sql: &str) -> Result<(ResultTable, QueryStats), QservError> {
        let stmt = parse_select(sql)?;
        // FROM-less statements run locally on the frontend.
        if stmt.from.is_empty() {
            let local = execute(&Database::new(), &stmt)?;
            return Ok((local, QueryStats::default()));
        }
        let prepared = self.prepare_stmt(&stmt)?;
        let mut stats = QueryStats {
            chunks_dispatched: prepared.chunks.len(),
            used_secondary_index: prepared.analysis.index_ids.is_some(),
            used_spatial_restriction: prepared.analysis.spatial.is_some(),
            ..QueryStats::default()
        };
        let parts = self.dispatch_all(&prepared, &mut stats)?;
        let result = self.merge(&prepared.plan, parts, &mut stats)?;
        Ok((result, stats))
    }

    /// Plans a query without executing it.
    pub fn explain(&self, sql: &str) -> Result<Explain, QservError> {
        let stmt = parse_select(sql)?;
        let prepared = self.prepare_stmt(&stmt)?;
        let sample_message = prepared.chunks.first().map(|&c| {
            let subs = self.subchunks_for(&prepared, c);
            render_chunk_message(&prepared.plan, &self.meta, c, &subs)
        });
        Ok(Explain {
            chunks: prepared.chunks.clone(),
            join: prepared.plan.join,
            aggregated: prepared.analysis.aggregated,
            uses_secondary_index: prepared.analysis.index_ids.is_some(),
            sample_message,
        })
    }

    pub(crate) fn prepare_stmt(
        &self,
        stmt: &qserv_sqlparse::ast::SelectStatement,
    ) -> Result<Prepared, QservError> {
        let analysis = analyze(stmt, &self.meta)?;
        let plan = build_plan(&analysis, &self.meta)?;
        let mut chunks = self.chunk_set(&analysis);
        // A fully-restricted-away chunk set still dispatches one chunk:
        // its (empty) result gives the merge query real input columns, so
        // aggregates keep SQL semantics — COUNT over nothing is 0, not the
        // NULL that SUM-of-no-partials would produce.
        if chunks.is_empty() {
            chunks = self.placement.chunks().into_iter().take(1).collect();
        }
        if chunks.is_empty() {
            return Err(QservError::Analysis(
                "the cluster stores no chunks; load data before querying".to_string(),
            ));
        }
        Ok(Prepared {
            analysis,
            plan,
            chunks,
        })
    }

    /// Computes the chunk set: all stored chunks, narrowed by the spatial
    /// restriction and/or the secondary index.
    fn chunk_set(&self, analysis: &Analysis) -> Vec<i32> {
        let mut chunks = self.placement.chunks();
        if let Some(spec) = &analysis.spatial {
            let selected = self.chunker.chunks_intersecting(&spec.bounding_box());
            chunks.retain(|c| selected.binary_search(c).is_ok());
        }
        if let Some(ids) = &analysis.index_ids {
            let selected = self.secondary.chunks_for(ids);
            chunks.retain(|c| selected.binary_search(c).is_ok());
        }
        chunks
    }

    /// The subchunk list for one chunk of a near-neighbour query: the
    /// subchunks intersecting the spatial restriction, or all of them.
    pub(crate) fn subchunks_for(&self, prepared: &Prepared, chunk: i32) -> Vec<i32> {
        if prepared.plan.join != JoinClass::SubchunkNear {
            return Vec::new();
        }
        match &prepared.plan.spatial {
            Some(spec) => self
                .chunker
                .subchunks_intersecting(chunk, &spec.bounding_box())
                .unwrap_or_default(),
            None => self.chunker.subchunks_of(chunk).unwrap_or_default(),
        }
    }

    /// Dispatches every chunk query from a pool of threads; returns the
    /// per-chunk result tables in ascending chunk order (deterministic).
    fn dispatch_all(
        &self,
        prepared: &Prepared,
        stats: &mut QueryStats,
    ) -> Result<Vec<Table>, QservError> {
        let jobs: Vec<(i32, String)> = prepared
            .chunks
            .iter()
            .map(|&c| {
                let subs = self.subchunks_for(prepared, c);
                (
                    c,
                    tag_message(render_chunk_message(&prepared.plan, &self.meta, c, &subs)),
                )
            })
            .collect();

        /// Per-chunk dispatch outcome: the loaded result table plus the
        /// transferred byte count.
        type ChunkOutcome = Result<(Table, u64), QservError>;
        let queue = Mutex::new(jobs.into_iter());
        let results: Mutex<Vec<(i32, ChunkOutcome)>> =
            Mutex::new(Vec::with_capacity(prepared.chunks.len()));
        let width = self.dispatch_width.max(1).min(prepared.chunks.len().max(1));

        crossbeam::thread::scope(|scope| {
            for _ in 0..width {
                scope.spawn(|_| loop {
                    let job = queue.lock().next();
                    let Some((chunk, message)) = job else { break };
                    let outcome = self.dispatch_one(chunk, &message);
                    results.lock().push((chunk, outcome));
                });
            }
        })
        .map_err(|_| QservError::Fabric("dispatcher thread panicked".to_string()))?;

        let mut collected = results.into_inner();
        collected.sort_by_key(|(c, _)| *c);
        let mut tables = Vec::with_capacity(collected.len());
        for (_, outcome) in collected {
            let (table, bytes) = outcome?;
            stats.result_bytes += bytes;
            tables.push(table);
        }
        Ok(tables)
    }

    /// The two file transactions of §5.4 for one chunk, plus result
    /// parsing.
    fn dispatch_one(&self, chunk: i32, message: &str) -> Result<(Table, u64), QservError> {
        let worker = self
            .cluster
            .write_file(&query_path(chunk), message.as_bytes().to_vec())?;
        let rp = result_path(&md5_hex(message.as_bytes()));
        let payload = self.cluster.read_file(worker, &rp)?;
        self.cluster.unlink(worker, &rp)?;
        let bytes = payload.len() as u64;
        let text = std::str::from_utf8(&payload)
            .map_err(|_| QservError::Fabric(format!("chunk {chunk}: result is not UTF-8")))?;
        if let Some(err) = text.strip_prefix("ERROR:") {
            return Err(QservError::Worker {
                chunk,
                message: err.trim().to_string(),
            });
        }
        let (_, table) = load_dump(text).map_err(|e| QservError::Merge(e.to_string()))?;
        Ok((table, bytes))
    }

    /// Accumulates per-chunk tables into `result` and runs the merge
    /// query.
    pub(crate) fn merge(
        &self,
        plan: &PhysicalPlan,
        parts: Vec<Table>,
        stats: &mut QueryStats,
    ) -> Result<ResultTable, QservError> {
        let merged = merge_tables(parts)?;
        stats.rows_merged = merged.num_rows();
        let mut db = Database::new();
        db.create_table("result", merged);
        execute(&db, &plan.merge_stmt).map_err(QservError::from)
    }
}

/// Concatenates per-chunk result tables, unifying schemas by widening
/// (Int + Float ⇒ Float; an empty chunk's all-NULL "Float" columns adopt
/// the populated chunks' types).
pub(crate) fn merge_tables(parts: Vec<Table>) -> Result<Table, QservError> {
    let Some(first) = parts.first() else {
        return Ok(Table::new(Schema::new(vec![])));
    };
    let names: Vec<String> = first
        .schema()
        .columns()
        .iter()
        .map(|c| c.name.clone())
        .collect();
    // Widen column types across parts. Empty parts carry no evidence
    // (their dump schemas default all-NULL columns to Float), so only
    // populated parts vote; columns never populated stay Float.
    let mut types: Vec<Option<ColumnType>> = vec![None; names.len()];
    for part in &parts {
        let cols = part.schema().columns();
        if cols.len() != names.len() || cols.iter().zip(&names).any(|(c, n)| &c.name != n) {
            return Err(QservError::Merge(format!(
                "chunk results disagree on columns: {:?} vs {:?}",
                names,
                cols.iter().map(|c| &c.name).collect::<Vec<_>>()
            )));
        }
        if part.num_rows() == 0 {
            continue;
        }
        for (i, c) in cols.iter().enumerate() {
            types[i] = Some(match (types[i], c.ty) {
                (None, t) => t,
                (Some(a), b) if a == b => a,
                (Some(ColumnType::Int), ColumnType::Float)
                | (Some(ColumnType::Float), ColumnType::Int) => ColumnType::Float,
                (Some(a), b) => {
                    return Err(QservError::Merge(format!(
                        "column {} has incompatible types across chunks: {a} vs {b}",
                        names[i]
                    )))
                }
            });
        }
    }
    let types: Vec<ColumnType> = types
        .into_iter()
        .map(|t| t.unwrap_or(ColumnType::Float))
        .collect();
    let schema = Schema::new(
        names
            .iter()
            .zip(&types)
            .map(|(n, t)| ColumnDef::new(n, *t))
            .collect(),
    );
    let mut out = Table::new(schema);
    for part in &parts {
        for r in 0..part.num_rows() {
            let row: Vec<Value> = part
                .row(r)
                .into_iter()
                .zip(&types)
                .map(|(v, t)| match (t, v) {
                    (ColumnType::Float, Value::Int(x)) => Value::Float(x as f64),
                    (_, v) => v,
                })
                .collect();
            out.push_row(row)
                .map_err(|e| QservError::Merge(e.to_string()))?;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_of(cols: &[(&str, ColumnType)], rows: Vec<Vec<Value>>) -> Table {
        let schema = Schema::new(cols.iter().map(|(n, t)| ColumnDef::new(n, *t)).collect());
        let mut t = Table::new(schema);
        for r in rows {
            t.push_row(r).unwrap();
        }
        t
    }

    #[test]
    fn merge_tables_widens_int_to_float() {
        let a = table_of(&[("x", ColumnType::Int)], vec![vec![Value::Int(1)]]);
        let b = table_of(&[("x", ColumnType::Float)], vec![vec![Value::Float(2.5)]]);
        let m = merge_tables(vec![a, b]).unwrap();
        assert_eq!(m.num_rows(), 2);
        assert_eq!(m.get(0, 0), Value::Float(1.0));
        assert_eq!(m.get(1, 0), Value::Float(2.5));
    }

    #[test]
    fn merge_tables_empty_part_adopts_other_schema() {
        let empty = table_of(&[("x", ColumnType::Float)], vec![]);
        let full = table_of(&[("x", ColumnType::Int)], vec![vec![Value::Int(3)]]);
        let m = merge_tables(vec![empty, full]).unwrap();
        assert_eq!(m.schema().columns()[0].ty, ColumnType::Int);
        assert_eq!(m.num_rows(), 1);
    }

    #[test]
    fn merge_tables_rejects_mismatched_columns() {
        let a = table_of(&[("x", ColumnType::Int)], vec![]);
        let b = table_of(&[("y", ColumnType::Int)], vec![]);
        assert!(merge_tables(vec![a, b]).is_err());
    }

    #[test]
    fn merge_tables_no_parts_is_empty() {
        let m = merge_tables(vec![]).unwrap();
        assert_eq!(m.num_rows(), 0);
    }
}
