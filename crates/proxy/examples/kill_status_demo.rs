//! Cross-session KILL / STATUS over the proxy — the README quickstart,
//! runnable.
//!
//! Session A submits a full scan that fabric read delays keep in flight;
//! session B watches it appear in `STATUS;`, kills it by qid, and shows
//! that A's session survives with a clean `cancelled` error and the
//! fabric holds no stranded `/result/*` files.
//!
//! ```sh
//! cargo run --release -p qserv-proxy --example kill_status_demo
//! ```

use qserv::service::{QueryService, ServiceConfig};
use qserv::{ClusterBuilder, FabricOp, FaultPlan, Qserv, Value};
use qserv_datagen::generate::{CatalogConfig, Patch};
use qserv_proxy::{ProxyClient, ProxyServer};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let patch = Patch::generate(&CatalogConfig::small(700, 44));
    let mut q = ClusterBuilder::new(4)
        .fault_plan(FaultPlan::new(11))
        .build(&patch.objects, &patch.sources);
    // One dispatcher thread + a per-read delay: the scan stays in
    // flight long enough for another session to catch it in STATUS.
    q.dispatch_width = 1;
    let qserv = Arc::new(q);
    qserv
        .cluster()
        .faults()
        .delay(None, Some(FabricOp::Read), Duration::from_millis(25));

    // Few chunks on this small demo cluster: classify every
    // dispatching query as a scan so it shows under that class.
    let service = Arc::new(QueryService::start(
        Arc::clone(&qserv),
        ServiceConfig {
            interactive_chunk_threshold: 0,
            ..ServiceConfig::default()
        },
    ));
    let server = ProxyServer::start_with_service(service, "127.0.0.1:0").expect("proxy binds");
    let addr = server.addr();
    println!("proxy listening on {addr}\n");

    // Session A: a slow full scan.
    let scanner = std::thread::spawn(move || {
        let mut a = ProxyClient::connect(addr).expect("session A connects");
        println!("[A] SELECT COUNT(*) FROM Object;");
        match a.query("SELECT COUNT(*) FROM Object") {
            Err(e) => println!("[A] scan ended: {e}"),
            Ok((t, _)) => println!("[A] scan finished before the kill landed: {:?}", t.rows),
        }
        let (table, _) = a
            .query("SELECT objectId FROM Object WHERE objectId = 1")
            .expect("session A survives its killed query");
        println!(
            "[A] follow-up lookup on the same session: {} row(s)",
            table.num_rows()
        );
    });

    // Session B: watch, then kill.
    let mut b = ProxyClient::connect(addr).expect("session B connects");
    let mut qid = None;
    for _ in 0..500 {
        let status = b.status().expect("STATUS");
        let running = status.rows.iter().find(|row| {
            matches!(&row[2], Value::Str(s) if s == "running")
                && matches!(&row[1], Value::Str(c) if c == "scan")
        });
        if let Some(row) = running {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            println!("[B] STATUS;  {}", status.columns.join(" | "));
            println!("[B]          {}", cells.join(" | "));
            qid = Some(match row[0] {
                Value::Int(i) => i as u64,
                _ => unreachable!("qid column is int"),
            });
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let qid = qid.expect("session B never saw the scan running");
    println!("[B] KILL {qid};  ->  {}", b.kill(qid).expect("KILL"));
    println!(
        "[B] KILL 999999;  ->  {}",
        b.kill(999_999).expect("KILL unknown")
    );

    scanner.join().expect("session A thread");
    assert_no_result_leaks(&qserv);
    println!("\nno /result/* files left behind on any server");
}

fn assert_no_result_leaks(q: &Qserv) {
    for (id, server) in q.cluster().servers().iter().enumerate() {
        let leaked = server.file_names("/result/");
        assert!(
            leaked.is_empty(),
            "server {id} leaked result files: {leaked:?}"
        );
    }
}
