//! Socket-level round trips: a real TCP server over a real cluster,
//! queried by real clients — the paper's "any MySQL-compatible client"
//! capability, end to end.

use qserv::ClusterBuilder;
use qserv_datagen::generate::{CatalogConfig, Patch};
use qserv_proxy::{ProxyClient, ProxyServer};
use std::sync::Arc;

fn start_server(objects: usize, seed: u64) -> (ProxyServer, Patch) {
    let patch = Patch::generate(&CatalogConfig::small(objects, seed));
    let qserv = Arc::new(ClusterBuilder::new(3).build(&patch.objects, &patch.sources));
    let server = ProxyServer::start(qserv, "127.0.0.1:0").expect("bind");
    (server, patch)
}

#[test]
fn query_round_trip_over_tcp() {
    let (server, patch) = start_server(300, 11);
    let mut client = ProxyClient::connect(server.addr()).expect("connect");

    let (count, stats) = client.query("SELECT COUNT(*) FROM Object").expect("count");
    assert_eq!(count.scalar().and_then(|v| v.as_i64()), Some(300));
    assert!(stats.chunks_dispatched >= 1);
    assert_eq!(stats.rows, 1);

    let (rows, _) = client
        .query("SELECT objectId, ra_PS, decl_PS FROM Object WHERE objectId = 42")
        .expect("point");
    assert_eq!(rows.num_rows(), 1);
    assert_eq!(rows.columns, vec!["objectId", "ra_PS", "decl_PS"]);
    let o = &patch.objects[41];
    assert_eq!(rows.rows[0][1].as_f64(), Some(o.ra_ps));
    server.shutdown();
}

#[test]
fn multiple_statements_one_session() {
    let (server, _patch) = start_server(100, 12);
    let mut client = ProxyClient::connect(server.addr()).expect("connect");
    for _ in 0..5 {
        let (r, _) = client.query("SELECT COUNT(*) FROM Source").expect("query");
        assert_eq!(r.num_rows(), 1);
    }
    // Aggregation with floats and group keys survives the wire.
    let (r, _) = client
        .query("SELECT count(*) AS n, AVG(ra_PS), chunkId FROM Object GROUP BY chunkId")
        .expect("group");
    assert!(r.num_rows() >= 1);
    assert_eq!(r.columns, vec!["n", "AVG(ra_PS)", "chunkId"]);
    let total: i64 = r.rows.iter().map(|row| row[0].as_i64().expect("n")).sum();
    assert_eq!(total, 100);
    server.shutdown();
}

#[test]
fn explain_round_trip_over_tcp() {
    let (server, _patch) = start_server(200, 19);
    let mut client = ProxyClient::connect(server.addr()).expect("connect");

    let plan = client
        .explain("SELECT * FROM Object WHERE objectId = 42")
        .expect("explain");
    assert_eq!(plan.columns, vec!["item", "value"]);
    let items: Vec<String> = plan
        .rows
        .iter()
        .map(|r| r[0].to_string() + "=" + &r[1].to_string())
        .collect();
    let joined = items.join("\n");
    assert!(joined.contains("access_path"), "{joined}");
    assert!(joined.contains("est_cost"), "{joined}");
    assert!(joined.contains("index_lookup"), "{joined}");
    // EXPLAIN plans without executing: the query itself still runs.
    let (rows, _) = client
        .query("SELECT objectId FROM Object WHERE objectId = 42")
        .expect("point");
    assert_eq!(rows.rows[0][0].as_i64(), Some(42));

    // A malformed inner statement errors without killing the session.
    let err = client.explain("SELECTT 1").unwrap_err();
    assert!(err.to_string().contains("EXPLAIN failed"), "{err}");
    let plan = client.explain("SELECT 1").expect("frontend-local");
    assert!(plan
        .rows
        .iter()
        .any(|r| r[1].to_string().contains("frontend_local")));
    server.shutdown();
}

#[test]
fn errors_cross_the_wire() {
    let (server, _patch) = start_server(50, 13);
    let mut client = ProxyClient::connect(server.addr()).expect("connect");
    let err = client.query("SELECT * FROM Nonsense").unwrap_err();
    let text = err.to_string();
    assert!(text.contains("Nonsense"), "{text}");
    // The session survives an error.
    let (r, _) = client
        .query("SELECT COUNT(*) FROM Object")
        .expect("recovers");
    assert_eq!(r.scalar().and_then(|v| v.as_i64()), Some(50));
    server.shutdown();
}

#[test]
fn concurrent_clients() {
    let (server, _patch) = start_server(400, 14);
    let addr = server.addr();
    crossbeam::thread::scope(|scope| {
        for t in 0..6 {
            scope.spawn(move |_| {
                let mut client = ProxyClient::connect(addr).expect("connect");
                for i in 0..4 {
                    let oid = 1 + (t * 61 + i * 17) % 400;
                    let (r, _) = client
                        .query(&format!(
                            "SELECT objectId FROM Object WHERE objectId = {oid}"
                        ))
                        .expect("point query");
                    assert_eq!(r.rows[0][0].as_i64(), Some(oid as i64));
                }
                let (r, _) = client.query("SELECT COUNT(*) FROM Object").expect("count");
                assert_eq!(r.scalar().and_then(|v| v.as_i64()), Some(400));
            });
        }
    })
    .expect("no client panics");
    server.shutdown();
}

#[test]
fn null_and_float_fidelity() {
    let (server, patch) = start_server(200, 15);
    let mut client = ProxyClient::connect(server.addr()).expect("connect");
    // SUM over an empty selection is NULL (SQL), which must survive TSV.
    let (r, _) = client
        .query("SELECT SUM(ra_PS) FROM Object WHERE objectId = 99999")
        .expect("null sum");
    assert!(r.rows[0][0].is_null());
    // Floats round-trip exactly (shortest-form encoding).
    let (r, _) = client
        .query("SELECT ra_PS FROM Object WHERE objectId = 7")
        .expect("float fetch");
    assert_eq!(r.rows[0][0].as_f64(), Some(patch.objects[6].ra_ps));
    server.shutdown();
}

#[test]
fn shutdown_stops_new_connections() {
    let (server, _patch) = start_server(20, 16);
    let addr = server.addr();
    server.shutdown();
    // A fresh connection must now fail or be dropped without a response.
    match ProxyClient::connect(addr) {
        Err(_) => {}
        Ok(mut c) => {
            assert!(c.query("SELECT COUNT(*) FROM Object").is_err());
        }
    }
}
