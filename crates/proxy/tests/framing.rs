//! Protocol framing edge cases, driven over raw sockets: statements
//! split across arbitrary write boundaries, responses read back under
//! a deliberately slow consumer (exercising the reactor's write
//! backpressure), oversized-statement rejection, interleaved frames
//! from multiplexed (`#<sid>`-tagged) statements, and race-free
//! server shutdown.

use qserv::service::{QueryService, ServiceConfig};
use qserv::{ClusterBuilder, FabricOp, FaultPlan};
use qserv_datagen::generate::{CatalogConfig, Patch};
use qserv_proxy::protocol::MAX_STATEMENT_BYTES;
use qserv_proxy::{ProxyClient, ProxyServer};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn start_server(objects: usize, seed: u64) -> ProxyServer {
    let patch = Patch::generate(&CatalogConfig::small(objects, seed));
    let qserv = Arc::new(ClusterBuilder::new(3).build(&patch.objects, &patch.sources));
    ProxyServer::start(qserv, "127.0.0.1:0").expect("bind")
}

/// Reads one `\n`-terminated line.
fn read_line(reader: &mut BufReader<TcpStream>) -> Option<String> {
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => None,
        Ok(_) => Some(line.trim_end_matches(['\n', '\r']).to_string()),
        Err(_) => None,
    }
}

#[test]
fn statements_split_across_arbitrary_write_boundaries() {
    let server = start_server(120, 21);
    let stream = TcpStream::connect(server.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;

    // Dribble the statement in one-byte writes, no trailing newline —
    // the server's splitter must reassemble on the ';' alone.
    for b in b"SELECT COUNT(*) FROM Object;" {
        writer.write_all(&[*b]).expect("write byte");
        writer.flush().expect("flush");
    }
    let mut frames = Vec::new();
    loop {
        let line = read_line(&mut reader).expect("frame");
        let done = line.starts_with("END ");
        frames.push(line);
        if done {
            break;
        }
    }
    assert_eq!(frames[0], "COLS COUNT(*)");
    assert_eq!(frames[1], "TYPES int");
    assert_eq!(frames[2], "ROWS 1");
    assert_eq!(frames[3], "120");
    assert!(frames[4].starts_with("END 1 "), "{:?}", frames[4]);

    // Two statements in a single write: both answered, in order.
    writer
        .write_all(b"SELECT COUNT(*) FROM Source; SELECT COUNT(*) FROM Object;")
        .expect("pipelined write");
    let mut ends = 0;
    while ends < 2 {
        let line = read_line(&mut reader).expect("frame");
        if line.starts_with("END ") {
            ends += 1;
        }
    }
    server.shutdown();
}

#[test]
fn slow_readers_throttle_without_corruption() {
    // A result comfortably past the reactor's high-water mark, read
    // back a little at a time: the server must pause the query's merge
    // rather than buffer the whole table, and every frame must still
    // come out intact.
    let server = start_server(20_000, 22);
    let mut client = ProxyClient::connect(server.addr()).expect("connect");
    let (expected, _) = client
        .query("SELECT COUNT(*) FROM Object")
        .expect("sanity count");
    assert_eq!(expected.scalar().and_then(|v| v.as_i64()), Some(20_000));

    let stream = TcpStream::connect(server.addr()).expect("connect");
    let mut reader = stream.try_clone().expect("clone");
    let mut writer = stream;
    writer
        .write_all(b"SELECT objectId, ra_PS, decl_PS FROM Object;")
        .expect("submit");

    // Slow consumer: small reads with a pause every chunk.
    let mut raw = Vec::new();
    let mut buf = [0u8; 8192];
    loop {
        let n = reader.read(&mut buf).expect("read");
        assert!(n > 0, "server closed before END");
        raw.extend_from_slice(&buf[..n]);
        if raw.ends_with(b"\n") {
            let tail = raw[raw.len().saturating_sub(128)..].to_vec();
            if String::from_utf8_lossy(&tail)
                .lines()
                .last()
                .is_some_and(|l| l.starts_with("END "))
            {
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    let text = String::from_utf8(raw).expect("utf8 frames");
    let mut lines = text.lines();
    assert!(lines.next().expect("COLS").starts_with("COLS "));
    assert!(lines.next().expect("TYPES").starts_with("TYPES "));
    let mut rows = 0usize;
    let mut end = None;
    while let Some(line) = lines.next() {
        if let Some(n) = line.strip_prefix("ROWS ") {
            let n: usize = n.parse().expect("ROWS count");
            for _ in 0..n {
                let row = lines.next().expect("row line");
                assert_eq!(row.split('\t').count(), 3, "row arity: {row:?}");
            }
            rows += n;
        } else if line.starts_with("END ") {
            end = Some(line.to_string());
        } else if line.starts_with("TYPES ") {
            // A mid-stream widening resend is legal.
        } else {
            panic!("unexpected frame {line:?}");
        }
    }
    assert_eq!(rows, 20_000);
    let end = end.expect("END frame");
    assert!(end.starts_with("END 20000 "), "{end:?}");
    server.shutdown();
}

#[test]
fn oversized_statements_are_rejected() {
    let server = start_server(30, 23);
    let stream = TcpStream::connect(server.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;

    // Just past the limit, never completing a statement. Written in
    // chunks so the server consumes as it goes.
    let blob = vec![b'x'; MAX_STATEMENT_BYTES + 16 * 1024];
    for chunk in blob.chunks(64 * 1024) {
        if writer.write_all(chunk).is_err() {
            break; // server may already have hung up on us
        }
    }
    let line = read_line(&mut reader).expect("ERR frame before close");
    assert!(
        line.starts_with("ERR ") && line.contains("exceeds"),
        "{line:?}"
    );
    // And the connection is closed — there is no resynchronizing.
    let mut rest = String::new();
    let _ = reader.read_line(&mut rest);
    assert!(rest.is_empty(), "connection must close after the ERR");
    server.shutdown();
}

#[test]
fn tagged_statements_interleave_on_one_connection() {
    // A slow scan (#1) and a fast point lookup (#2) multiplexed on one
    // connection: #2 completes while #1 is still streaming, frames
    // demultiplex by tag, and both answers are right.
    let patch = Patch::generate(&CatalogConfig::small(600, 24));
    let mut q = ClusterBuilder::new(3)
        .fault_plan(FaultPlan::new(77))
        .build(&patch.objects, &patch.sources);
    q.dispatch_width = 1;
    let qserv = Arc::new(q);
    qserv
        .cluster()
        .faults()
        .delay(None, Some(FabricOp::Read), Duration::from_millis(10));
    let service = Arc::new(QueryService::start(
        Arc::clone(&qserv),
        ServiceConfig::default(),
    ));
    let server = ProxyServer::start_with_service(service, "127.0.0.1:0").expect("bind");

    let stream = TcpStream::connect(server.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    writer
        .write_all(
            b"#1 SELECT objectId FROM Object;#2 SELECT objectId FROM Object WHERE objectId = 5;",
        )
        .expect("submit both");

    let mut rows: HashMap<u64, usize> = HashMap::new();
    let mut end_order = Vec::new();
    while end_order.len() < 2 {
        let line = read_line(&mut reader).expect("frame");
        let (sid, frame) = {
            let tail = line.strip_prefix('#').expect("tagged frame");
            let (sid, rest) = tail.split_once(' ').expect("tag separator");
            (sid.parse::<u64>().expect("numeric sid"), rest)
        };
        if let Some(n) = frame.strip_prefix("ROWS ") {
            let n: usize = n.parse().expect("ROWS count");
            for _ in 0..n {
                read_line(&mut reader).expect("row line");
            }
            *rows.entry(sid).or_default() += n;
        } else if frame.starts_with("END ") {
            end_order.push(sid);
        } else if frame.starts_with("ERR ") || frame.starts_with("BUSY ") {
            panic!("unexpected failure frame on #{sid}: {frame:?}");
        }
    }
    assert_eq!(
        end_order,
        vec![2, 1],
        "the point lookup must finish while the scan still streams"
    );
    assert_eq!(rows[&2], 1);
    assert_eq!(rows[&1], 600);
    server.shutdown();
}

#[test]
fn shutdown_is_race_free() {
    // The old accept loop woke itself with a sentinel no-op connection,
    // which raced real accepts. The reactor stop path (flag + waker)
    // must survive immediate and repeated shutdown without hanging or
    // leaking a live listener.
    let patch = Patch::generate(&CatalogConfig::small(20, 25));
    let qserv = Arc::new(ClusterBuilder::new(2).build(&patch.objects, &patch.sources));
    for _ in 0..25 {
        let service = Arc::new(QueryService::start(
            Arc::clone(&qserv),
            ServiceConfig::default(),
        ));
        let server = ProxyServer::start_with_service(service, "127.0.0.1:0").expect("bind");
        let addr = server.addr();
        server.shutdown();
        match ProxyClient::connect(addr) {
            Err(_) => {}
            Ok(mut c) => assert!(c.query("SELECT COUNT(*) FROM Object").is_err()),
        }
    }
    // Shutdown with a session mid-stream: the client sees the session
    // die (an error), never a hang.
    let server = start_server(200, 26);
    let mut client = ProxyClient::connect(server.addr()).expect("connect");
    let (t, _) = client.query("SELECT COUNT(*) FROM Object").expect("warmup");
    assert_eq!(t.scalar().and_then(|v| v.as_i64()), Some(200));
    server.shutdown();
    assert!(client.query("SELECT COUNT(*) FROM Object").is_err());
}
