//! Fault injection through the front door: the same seeded chaos the
//! core suite runs against `Qserv` directly, but driven over a real TCP
//! proxy session. Masked faults must stay invisible to the client
//! (identical rows, OK frame); fatal faults must surface as `ERR`
//! frames that leave the session usable; and `TRACE` requests must
//! return a span tree that records the retries the fabric forced.

use qserv::{ClusterBuilder, FabricOp, FaultPlan, Qserv, Value};
use qserv_datagen::generate::{CatalogConfig, Patch};
use qserv_proxy::{ProxyClient, ProxyServer};
use std::sync::Arc;

/// A proxied cluster with an armed (but initially empty) fault plan.
/// The returned handle shares the frontend with the server so tests can
/// inject faults and read fault counters mid-session.
fn chaos_server(replication: usize, seed: u64) -> (ProxyServer, Arc<Qserv>) {
    let patch = Patch::generate(&CatalogConfig::small(400, 91));
    let qserv = Arc::new(
        ClusterBuilder::new(4)
            .replication(replication)
            .fault_plan(FaultPlan::new(seed))
            .build(&patch.objects, &patch.sources),
    );
    let server = ProxyServer::start(Arc::clone(&qserv), "127.0.0.1:0").expect("bind");
    (server, qserv)
}

#[test]
fn masked_write_faults_are_invisible_to_the_client() {
    let (server, qserv) = chaos_server(2, 21);
    // The first 5 fabric writes fail; replica-aware retry must mask
    // every one of them before the response crosses the wire.
    qserv
        .cluster()
        .faults()
        .fail_next(None, Some(FabricOp::Write), 5);
    let mut client = ProxyClient::connect(server.addr()).expect("connect");
    let (r, stats) = client.query("SELECT COUNT(*) FROM Object").expect("count");
    assert_eq!(r.scalar(), Some(&Value::Int(400)));
    assert_eq!(stats.rows, 1);
    assert_eq!(
        qserv
            .cluster()
            .faults()
            .stats()
            .failures_for(FabricOp::Write),
        5,
        "all injected write faults fired during the proxied query"
    );
    server.shutdown();
}

#[test]
fn fatal_faults_cross_the_wire_as_err_frames() {
    // No replicas to fail over to, and every write fails: the query
    // must come back as an ERR frame, not a hang or a dropped socket.
    let (server, qserv) = chaos_server(1, 22);
    qserv
        .cluster()
        .faults()
        .fail_with_probability(None, Some(FabricOp::Write), 1.0);
    let mut client = ProxyClient::connect(server.addr()).expect("connect");
    let err = client.query("SELECT COUNT(*) FROM Object").unwrap_err();
    assert!(
        err.to_string().contains("server error"),
        "fatal fault should surface as a server-side error: {err}"
    );
    // The session survives the failure: clear the plan and requery.
    qserv.cluster().faults().clear();
    let (r, _) = client
        .query("SELECT COUNT(*) FROM Object")
        .expect("session recovers after ERR");
    assert_eq!(r.scalar(), Some(&Value::Int(400)));
    server.shutdown();
}

#[test]
fn traced_query_records_retries_forced_by_chaos() {
    let (server, qserv) = chaos_server(2, 23);
    qserv
        .cluster()
        .faults()
        .fail_next(None, Some(FabricOp::Write), 3);
    let mut client = ProxyClient::connect(server.addr()).expect("connect");
    let (r, stats, trace) = client
        .query_traced("SELECT COUNT(*) FROM Object")
        .expect("traced count");
    assert_eq!(r.scalar(), Some(&Value::Int(400)));
    assert!(stats.chunks_dispatched >= 1);
    // The span tree covers every layer the query crossed…
    for name in [
        "proxy.request",
        "master.query",
        "master.analyze",
        "master.dispatch",
        "\"name\":\"chunk\"",
        "\"name\":\"attempt\"",
        "fabric.write",
        "worker.statement",
    ] {
        assert!(trace.contains(name), "trace missing {name}: {trace}");
    }
    // …and the injected faults show up as retry-marked attempt spans.
    assert!(
        trace.contains("\"outcome\":\"retry\""),
        "retries forced by the fault plan must be visible in the trace: {trace}"
    );
    server.shutdown();
}

#[test]
fn plain_and_traced_requests_interleave_on_one_session() {
    let (server, _qserv) = chaos_server(2, 24);
    let mut client = ProxyClient::connect(server.addr()).expect("connect");
    let (plain, _) = client.query("SELECT COUNT(*) FROM Object").expect("plain");
    let (traced, _, json) = client
        .query_traced("SELECT COUNT(*) FROM Object")
        .expect("traced");
    assert_eq!(plain, traced);
    assert!(json.starts_with('['), "trace frame is a JSON tree: {json}");
    let (after, _) = client
        .query("SELECT COUNT(*) FROM Object")
        .expect("plain after traced");
    assert_eq!(plain, after);
    server.shutdown();
}
