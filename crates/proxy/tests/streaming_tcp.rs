//! Streaming, caching, retry, and the thread-per-connection baseline,
//! proven over real TCP.

use qserv::service::{names, QueryService, ServiceConfig};
use qserv::{CacheOutcome, ClusterBuilder, FabricOp, FaultPlan};
use qserv_datagen::generate::{CatalogConfig, Patch};
use qserv_proxy::{ProxyClient, ProxyServer, RetryPolicy, ServerMode};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn query_stream_yields_rows_before_the_scan_finishes() {
    let patch = Patch::generate(&CatalogConfig::small(600, 31));
    let mut q = ClusterBuilder::new(3)
        .fault_plan(FaultPlan::new(41))
        .build(&patch.objects, &patch.sources);
    q.dispatch_width = 1;
    let qserv = Arc::new(q);
    qserv
        .cluster()
        .faults()
        .delay(None, Some(FabricOp::Read), Duration::from_millis(5));
    let service = Arc::new(QueryService::start(qserv, ServiceConfig::default()));
    let server = ProxyServer::start_with_service(service, "127.0.0.1:0").expect("bind");

    let mut client = ProxyClient::connect(server.addr()).expect("connect");
    let (batches, rows) = {
        let mut stream = client
            .query_stream("SELECT objectId FROM Object")
            .expect("submit");
        let mut batches = 0usize;
        let mut rows = 0usize;
        while let Some(batch) = stream.next_batch().expect("stream stays healthy") {
            assert_eq!(batch.columns, vec!["objectId"]);
            if !batch.rows.is_empty() {
                batches += 1;
            }
            rows += batch.rows.len();
        }
        let stats = stream.stats().expect("END stats after drain");
        assert_eq!(stats.rows, 600);
        assert_eq!(stats.cache, CacheOutcome::Off);
        (batches, rows)
    };
    assert_eq!(rows, 600);
    assert!(
        batches >= 2,
        "a serialized multi-chunk scan must stream incrementally, got {batches} batch(es)"
    );

    // The session is reusable for a plain buffered query afterwards.
    let (t, _) = client.query("SELECT COUNT(*) FROM Object").expect("reuse");
    assert_eq!(t.scalar().and_then(|v| v.as_i64()), Some(600));
    server.shutdown();
}

#[test]
fn abandoned_stream_leaves_the_session_usable() {
    let patch = Patch::generate(&CatalogConfig::small(500, 32));
    let qserv = Arc::new(ClusterBuilder::new(3).build(&patch.objects, &patch.sources));
    let service = Arc::new(QueryService::start(qserv, ServiceConfig::default()));
    let server = ProxyServer::start_with_service(service, "127.0.0.1:0").expect("bind");
    let mut client = ProxyClient::connect(server.addr()).expect("connect");
    {
        let mut stream = client
            .query_stream("SELECT objectId, ra_PS FROM Object")
            .expect("submit");
        let _ = stream.next_batch();
        // Dropped mid-stream: Drop drains to END on our behalf.
    }
    let (t, _) = client.query("SELECT COUNT(*) FROM Object").expect("reuse");
    assert_eq!(t.scalar().and_then(|v| v.as_i64()), Some(500));
    server.shutdown();
}

#[test]
fn cache_outcomes_cross_the_wire() {
    let patch = Patch::generate(&CatalogConfig::small(400, 33));
    let qserv = Arc::new(ClusterBuilder::new(3).build(&patch.objects, &patch.sources));
    let service = Arc::new(QueryService::start(
        qserv,
        ServiceConfig {
            cache_capacity_bytes: 1 << 20,
            ..ServiceConfig::default()
        },
    ));
    let server =
        ProxyServer::start_with_service(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    let mut client = ProxyClient::connect(server.addr()).expect("connect");

    let sql = "SELECT chunkId, COUNT(*) FROM Object GROUP BY chunkId";
    let (cold, cold_stats) = client.query(sql).expect("cold");
    assert_eq!(cold_stats.cache, CacheOutcome::Miss);
    let (hot, hot_stats) = client.query(sql).expect("hot");
    assert_eq!(hot_stats.cache, CacheOutcome::Hit);
    assert_eq!(hot, cold, "cache replay must be byte-identical");
    assert_eq!(hot_stats.rows, cold_stats.rows);

    // A second session shares the entry — the cache is service-wide.
    let mut other = ProxyClient::connect(server.addr()).expect("connect 2");
    let (shared, shared_stats) = other.query(sql).expect("other session");
    assert_eq!(shared_stats.cache, CacheOutcome::Hit);
    assert_eq!(shared, cold);

    let snap = service.metrics_snapshot();
    assert_eq!(snap.counter(names::CACHE_HIT), 2);
    assert_eq!(snap.counter(names::CACHE_MISS), 1);
    server.shutdown();
}

#[test]
fn busy_retry_policy_rides_out_admission_backpressure() {
    let patch = Patch::generate(&CatalogConfig::small(400, 34));
    let mut q = ClusterBuilder::new(3)
        .fault_plan(FaultPlan::new(42))
        .build(&patch.objects, &patch.sources);
    q.dispatch_width = 1;
    let qserv = Arc::new(q);
    qserv
        .cluster()
        .faults()
        .delay(None, Some(FabricOp::Read), Duration::from_millis(5));
    // One slot, one queue seat: the third concurrent scan gets BUSY.
    let service = Arc::new(QueryService::start(
        Arc::clone(&qserv),
        ServiceConfig {
            max_concurrent: 1,
            max_scan_concurrent: 1,
            queue_capacity: 1,
            interactive_chunk_threshold: 0,
            retry_after: Duration::from_millis(5),
            ..ServiceConfig::default()
        },
    ));
    let server = ProxyServer::start_with_service(service, "127.0.0.1:0").expect("bind");
    let addr = server.addr();

    let mut saw_busy = false;
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..3)
            .map(|i| {
                scope.spawn(move |_| {
                    let mut client = ProxyClient::connect(addr).expect("connect");
                    let policy = RetryPolicy::seeded(1000 + i);
                    let mut retried = false;
                    let (t, _) = policy
                        .run(|| match client.query("SELECT COUNT(*) FROM Object") {
                            Err(e @ qserv_proxy::client::ClientError::Busy { .. }) => {
                                retried = true;
                                Err(e)
                            }
                            other => other,
                        })
                        .expect("retry policy eventually lands the query");
                    assert_eq!(t.scalar().and_then(|v| v.as_i64()), Some(400));
                    retried
                })
            })
            .collect();
        for h in handles {
            saw_busy |= h.join().expect("client thread");
        }
    })
    .expect("no client panics");
    assert!(
        saw_busy,
        "with one slot and one queue seat, somebody must have been told BUSY"
    );
    server.shutdown();
}

#[test]
fn thread_per_conn_mode_speaks_the_same_protocol() {
    let patch = Patch::generate(&CatalogConfig::small(300, 35));
    let qserv = Arc::new(ClusterBuilder::new(3).build(&patch.objects, &patch.sources));
    let service = Arc::new(QueryService::start(
        qserv,
        ServiceConfig {
            cache_capacity_bytes: 1 << 20,
            ..ServiceConfig::default()
        },
    ));
    let server = ProxyServer::start_with_mode(service, "127.0.0.1:0", ServerMode::ThreadPerConn)
        .expect("bind");
    let mut client = ProxyClient::connect(server.addr()).expect("connect");

    let (t, stats) = client.query("SELECT COUNT(*) FROM Object").expect("count");
    assert_eq!(t.scalar().and_then(|v| v.as_i64()), Some(300));
    assert_eq!(stats.cache, CacheOutcome::Miss);
    let (_, stats) = client.query("SELECT COUNT(*) FROM Object").expect("hot");
    assert_eq!(stats.cache, CacheOutcome::Hit);

    let (_, _, trace) = client
        .query_traced("SELECT objectId FROM Object WHERE objectId = 3")
        .expect("traced");
    assert!(trace.contains("proxy.request"), "{trace}");

    assert_eq!(client.kill(999_999).expect("kill unknown"), "unknown");

    let mut stream = client
        .query_stream("SELECT objectId FROM Object")
        .expect("stream");
    let mut rows = 0;
    while let Some(b) = stream.next_batch().expect("stream") {
        rows += b.rows.len();
    }
    assert_eq!(rows, 300);
    drop(stream);
    server.shutdown();
}
