//! Client-side `BUSY` retry: jittered exponential backoff honoring the
//! server's `retry_after_ms` hint.
//!
//! Admission backpressure is a normal operating mode — the paper's
//! shared-scan frontend sheds load by queue limits, and this proxy
//! surfaces that as a `BUSY` frame rather than an error. A polite
//! client resubmits after the hinted delay; a *fleet* of polite clients
//! must not resubmit in lockstep, so each sleep is scaled by a
//! deterministic per-policy jitter drawn below the exponential
//! ceiling (never above it, so the server's hint and the cap both stay
//! honest upper bounds).

use crate::client::ClientError;
use std::time::Duration;

/// Backoff policy for [`RetryPolicy::run`].
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Retries after the first attempt (so `max_retries + 1` attempts
    /// in total) before the final `Busy` is returned to the caller.
    pub max_retries: u32,
    /// Lower bound on any sleep, covering a server hint of `0`.
    pub floor: Duration,
    /// Upper bound on any sleep, covering a hint that grew too large
    /// under the exponential scale.
    pub cap: Duration,
    /// Growth factor applied to the hint per successive `Busy`.
    pub multiplier: f64,
    /// Fraction of each sleep randomized away (0 = deterministic,
    /// 1 = full jitter down to zero).
    pub jitter: f64,
    /// Seed for the jitter sequence — vary per client so a fleet
    /// spreads out.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 10,
            floor: Duration::from_millis(1),
            cap: Duration::from_secs(2),
            multiplier: 2.0,
            jitter: 0.5,
            seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

impl RetryPolicy {
    /// A default policy with its jitter sequence seeded by `seed`.
    pub fn seeded(seed: u64) -> RetryPolicy {
        RetryPolicy {
            seed,
            ..RetryPolicy::default()
        }
    }

    /// Runs `op`, sleeping and retrying on [`ClientError::Busy`] until
    /// it succeeds, fails differently, or the retry budget is spent
    /// (the last `Busy` is then returned). Each sleep starts from the
    /// server's `retry_after_ms` hint, scales exponentially with the
    /// attempt, and is jittered downward.
    pub fn run<T>(&self, mut op: impl FnMut() -> Result<T, ClientError>) -> Result<T, ClientError> {
        let mut rng = self.seed | 1;
        let mut scale = 1.0f64;
        let mut attempt = 0u32;
        loop {
            match op() {
                Err(ClientError::Busy { retry_after_ms }) if attempt < self.max_retries => {
                    attempt += 1;
                    let hint = Duration::from_millis(retry_after_ms).max(self.floor);
                    let ceiling = hint.mul_f64(scale).min(self.cap);
                    // xorshift64*: deterministic unit draw in [0, 1).
                    rng ^= rng << 13;
                    rng ^= rng >> 7;
                    rng ^= rng << 17;
                    let unit = (rng.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64
                        / (1u64 << 53) as f64;
                    let sleep = ceiling.mul_f64(1.0 - self.jitter.clamp(0.0, 1.0) * unit);
                    std::thread::sleep(sleep);
                    scale *= self.multiplier.max(1.0);
                }
                other => return other,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_successes_and_other_errors_through() {
        let p = RetryPolicy::default();
        assert_eq!(p.run(|| Ok::<_, ClientError>(7)).unwrap(), 7);
        let err = p
            .run(|| Err::<u32, _>(ClientError::Server("boom".into())))
            .unwrap_err();
        assert!(matches!(err, ClientError::Server(m) if m == "boom"));
    }

    #[test]
    fn retries_busy_until_success() {
        let p = RetryPolicy {
            floor: Duration::from_micros(10),
            cap: Duration::from_micros(100),
            ..RetryPolicy::default()
        };
        let mut calls = 0;
        let out = p.run(|| {
            calls += 1;
            if calls < 4 {
                Err(ClientError::Busy { retry_after_ms: 0 })
            } else {
                Ok(calls)
            }
        });
        assert_eq!(out.unwrap(), 4);
    }

    #[test]
    fn exhausted_budget_returns_the_busy() {
        let p = RetryPolicy {
            max_retries: 3,
            floor: Duration::from_micros(1),
            cap: Duration::from_micros(10),
            ..RetryPolicy::default()
        };
        let mut calls = 0;
        let err = p
            .run(|| {
                calls += 1;
                Err::<u32, _>(ClientError::Busy { retry_after_ms: 0 })
            })
            .unwrap_err();
        assert_eq!(calls, 4, "initial attempt + 3 retries");
        assert!(matches!(err, ClientError::Busy { .. }));
    }

    #[test]
    fn jitter_stays_below_the_ceiling() {
        // The jittered sleep never exceeds the deterministic ceiling:
        // with a zero hint and a tight cap, total sleep is bounded.
        let p = RetryPolicy {
            max_retries: 5,
            floor: Duration::from_micros(50),
            cap: Duration::from_micros(200),
            jitter: 1.0,
            ..RetryPolicy::default()
        };
        let start = std::time::Instant::now();
        let _ = p.run(|| Err::<u32, _>(ClientError::Busy { retry_after_ms: 0 }));
        assert!(start.elapsed() < Duration::from_millis(100));
    }
}
