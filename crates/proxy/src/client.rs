//! The proxy client: submits SQL, parses frames back into rows.

use crate::protocol::{decode_value, ProtocolError};
use qserv_engine::exec::ResultTable;
use std::fmt;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server answered `ERR <message>`.
    Server(String),
    /// The server answered `BUSY <retry_after_ms>`: the admission queue
    /// is full — back off and resubmit, the session stays usable.
    Busy {
        /// The server's suggested backoff before retrying.
        retry_after_ms: u64,
    },
    /// The server sent a malformed frame.
    Protocol(ProtocolError),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
            ClientError::Busy { retry_after_ms } => {
                write!(f, "server busy, retry after {retry_after_ms} ms")
            }
            ClientError::Protocol(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> ClientError {
        ClientError::Protocol(e)
    }
}

/// Per-query statistics echoed by the server's `OK` frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RemoteStats {
    /// Rows in the result.
    pub rows: usize,
    /// Chunk queries the master dispatched.
    pub chunks_dispatched: usize,
    /// Worker result bytes transferred inside the cluster.
    pub result_bytes: u64,
}

/// A connected proxy session. One outstanding query at a time (the
/// protocol is strictly request/response), matching how the paper's
/// `mysql` CLI sessions drive the system.
pub struct ProxyClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl ProxyClient {
    /// Connects to a proxy.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<ProxyClient> {
        let stream = TcpStream::connect(addr)?;
        Ok(ProxyClient {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    /// Submits one query and reads the full response.
    pub fn query(&mut self, sql: &str) -> Result<(ResultTable, RemoteStats), ClientError> {
        let (table, stats, _trace) = self.exchange(sql.trim_end_matches(';'))?;
        Ok((table, stats))
    }

    /// Submits one query under the server-side trace (`TRACE <sql>;`),
    /// additionally returning the trace tree as compact JSON.
    pub fn query_traced(
        &mut self,
        sql: &str,
    ) -> Result<(ResultTable, RemoteStats, String), ClientError> {
        let request = format!("TRACE {}", sql.trim_end_matches(';'));
        let (table, stats, trace) = self.exchange(&request)?;
        let trace = trace.ok_or_else(|| {
            ClientError::Protocol(ProtocolError {
                message: "server sent no TRACE frame for a traced query".to_string(),
            })
        })?;
        Ok((table, stats, trace))
    }

    /// Cancels a server-side query by id (`KILL <qid>;`), returning the
    /// outcome string: `cancelled` (was still queued), `cancelling`
    /// (running; it stops at the next chunk boundary), `finished`, or
    /// `unknown`.
    pub fn kill(&mut self, qid: u64) -> Result<String, ClientError> {
        let (table, _, _) = self.exchange(&format!("KILL {qid}"))?;
        match table.rows.first().and_then(|r| r.get(1)) {
            Some(qserv_engine::value::Value::Str(outcome)) => Ok(outcome.clone()),
            _ => Err(ClientError::Protocol(ProtocolError {
                message: "KILL reply has no outcome column".to_string(),
            })),
        }
    }

    /// The server's query registry (`STATUS;`) as a result table with
    /// columns `qid, class, state, wait_ms, run_ms, sql`.
    pub fn status(&mut self) -> Result<ResultTable, ClientError> {
        let (table, _, _) = self.exchange("STATUS")?;
        Ok(table)
    }

    /// One request/response round trip; the optional third element is the
    /// body of a `TRACE` frame when the server sent one.
    fn exchange(
        &mut self,
        request: &str,
    ) -> Result<(ResultTable, RemoteStats, Option<String>), ClientError> {
        writeln!(self.writer, "{request};")?;
        self.writer.flush()?;

        let mut line = String::new();
        let mut read_frame = |reader: &mut BufReader<TcpStream>| -> Result<String, ClientError> {
            line.clear();
            if reader.read_line(&mut line)? == 0 {
                return Err(ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed mid-response",
                )));
            }
            Ok(line.trim_end_matches(['\n', '\r']).to_string())
        };

        let first = read_frame(&mut self.reader)?;
        if let Some(msg) = first.strip_prefix("ERR ") {
            return Err(ClientError::Server(msg.to_string()));
        }
        if let Some(ms) = first.strip_prefix("BUSY ") {
            let retry_after_ms = ms.trim().parse().map_err(|_| {
                ClientError::Protocol(ProtocolError {
                    message: format!("malformed BUSY frame {first:?}"),
                })
            })?;
            return Err(ClientError::Busy { retry_after_ms });
        }
        let cols_line = first.strip_prefix("COLS").ok_or_else(|| {
            ClientError::Protocol(ProtocolError {
                message: format!("expected COLS, got {first:?}"),
            })
        })?;
        let columns: Vec<String> = split_frame(cols_line);

        let types_frame = read_frame(&mut self.reader)?;
        let types_line = types_frame.strip_prefix("TYPES").ok_or_else(|| {
            ClientError::Protocol(ProtocolError {
                message: format!("expected TYPES, got {types_frame:?}"),
            })
        })?;
        let types: Vec<String> = split_frame(types_line);
        if types.len() != columns.len() {
            return Err(ClientError::Protocol(ProtocolError {
                message: format!("{} columns but {} types", columns.len(), types.len()),
            }));
        }

        let mut rows = Vec::new();
        let mut trace: Option<String> = None;
        loop {
            let frame = read_frame(&mut self.reader)?;
            if let Some(rest) = frame.strip_prefix("ROW") {
                let cells = split_frame(rest);
                if cells.len() != columns.len() {
                    return Err(ClientError::Protocol(ProtocolError {
                        message: format!(
                            "row has {} cells, expected {}",
                            cells.len(),
                            columns.len()
                        ),
                    }));
                }
                let mut row = Vec::with_capacity(cells.len());
                for (cell, ty) in cells.iter().zip(&types) {
                    row.push(decode_value(cell, ty)?);
                }
                rows.push(row);
            } else if let Some(json) = frame.strip_prefix("TRACE ") {
                trace = Some(json.to_string());
            } else if let Some(rest) = frame.strip_prefix("OK ") {
                let parts: Vec<&str> = rest.split_whitespace().collect();
                let stats = match parts.as_slice() {
                    [r, c, b] => RemoteStats {
                        rows: r.parse().map_err(|_| bad_ok(rest))?,
                        chunks_dispatched: c.parse().map_err(|_| bad_ok(rest))?,
                        result_bytes: b.parse().map_err(|_| bad_ok(rest))?,
                    },
                    _ => return Err(bad_ok(rest)),
                };
                if stats.rows != rows.len() {
                    return Err(ClientError::Protocol(ProtocolError {
                        message: format!("OK says {} rows, received {}", stats.rows, rows.len()),
                    }));
                }
                return Ok((ResultTable { columns, rows }, stats, trace));
            } else {
                return Err(ClientError::Protocol(ProtocolError {
                    message: format!("unexpected frame {frame:?}"),
                }));
            }
        }
    }
}

fn bad_ok(rest: &str) -> ClientError {
    ClientError::Protocol(ProtocolError {
        message: format!("malformed OK frame {rest:?}"),
    })
}

/// Splits a frame body on tabs, tolerating the leading space after the
/// frame tag. An empty body means zero fields.
fn split_frame(body: &str) -> Vec<String> {
    let body = body.strip_prefix(' ').unwrap_or(body);
    if body.is_empty() {
        return Vec::new();
    }
    body.split('\t').map(str::to_string).collect()
}
