//! The proxy client: submits SQL, parses streamed frames back into
//! rows — either buffered ([`ProxyClient::query`]) or incrementally
//! ([`ProxyClient::query_stream`], which yields each `ROWS` block as
//! it arrives, so first rows are usable while the scan still runs).

use crate::protocol::{decode_value, ProtocolError};
use crate::retry::RetryPolicy;
use qserv::CacheOutcome;
use qserv_engine::exec::ResultTable;
use qserv_engine::value::Value;
use std::fmt;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server answered `ERR <message>`. Any rows delivered before
    /// the error have been discarded — the result is the error.
    Server(String),
    /// The server answered `BUSY <retry_after_ms>`: the admission queue
    /// is full — back off and resubmit, the session stays usable (see
    /// [`crate::retry`]).
    Busy {
        /// The server's suggested backoff before retrying.
        retry_after_ms: u64,
    },
    /// The server sent a malformed frame.
    Protocol(ProtocolError),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
            ClientError::Busy { retry_after_ms } => {
                write!(f, "server busy, retry after {retry_after_ms} ms")
            }
            ClientError::Protocol(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> ClientError {
        ClientError::Protocol(e)
    }
}

fn protocol_err(message: impl Into<String>) -> ClientError {
    ClientError::Protocol(ProtocolError {
        message: message.into(),
    })
}

/// Per-query statistics echoed by the server's `END` frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RemoteStats {
    /// Rows in the result.
    pub rows: usize,
    /// Chunk queries the master dispatched.
    pub chunks_dispatched: usize,
    /// Worker result bytes transferred inside the cluster.
    pub result_bytes: u64,
    /// How the server's result cache participated.
    pub cache: CacheOutcome,
}

/// One `ROWS` block as it came off the wire, with the header state it
/// was decoded under.
#[derive(Clone, Debug)]
pub struct WireBatch {
    /// Output column names.
    pub columns: Vec<String>,
    /// Wire type tags (`int`/`float`/`str`/`null`) in effect for this
    /// batch. A later batch may carry widened tags (Int → Float); a
    /// consumer holding earlier rows re-coerces them, which is exact.
    pub types: Vec<String>,
    /// Decoded rows.
    pub rows: Vec<Vec<Value>>,
}

/// A connected proxy session. One outstanding query at a time — the
/// untagged protocol is strictly request/response, matching how the
/// paper's `mysql` CLI sessions drive the system. (Multiplexing over a
/// single connection uses `#<sid>` tags on the raw protocol.)
pub struct ProxyClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    retry: RetryPolicy,
}

/// Configures a [`ProxyClient`] before connecting — today that is the
/// `BUSY` [`RetryPolicy`] (attempt budget, backoff floor/cap, growth
/// factor, jitter fraction and seed; see [`crate::retry`] for the
/// defaults and [the protocol doc](crate#busy-and-client-backoff) for
/// how they interact with the server's `retry_after_ms` hint).
#[derive(Clone, Debug, Default)]
pub struct ClientBuilder {
    retry: RetryPolicy,
}

impl ClientBuilder {
    /// Replaces the default `BUSY` retry policy. Fleets should at least
    /// vary the jitter seed per client ([`RetryPolicy::seeded`]) so
    /// backoffs spread out instead of resubmitting in lockstep.
    pub fn retry_policy(mut self, retry: RetryPolicy) -> ClientBuilder {
        self.retry = retry;
        self
    }

    /// Connects to a proxy with this configuration.
    pub fn connect(self, addr: impl ToSocketAddrs) -> std::io::Result<ProxyClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(ProxyClient {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
            retry: self.retry,
        })
    }
}

impl ProxyClient {
    /// Connects to a proxy with the default configuration
    /// (equivalent to `ProxyClient::builder().connect(addr)`).
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<ProxyClient> {
        ProxyClient::builder().connect(addr)
    }

    /// Starts configuring a client (retry policy, …).
    pub fn builder() -> ClientBuilder {
        ClientBuilder::default()
    }

    /// The `BUSY` retry policy [`ProxyClient::query_with_retry`] runs
    /// under.
    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.retry
    }

    /// Submits one query and buffers the full response.
    pub fn query(&mut self, sql: &str) -> Result<(ResultTable, RemoteStats), ClientError> {
        let (table, stats, _trace) = self.exchange(sql.trim_end_matches(';'))?;
        Ok((table, stats))
    }

    /// [`ProxyClient::query`] under the configured [`RetryPolicy`]:
    /// `BUSY` responses back off and resubmit until the retry budget is
    /// spent; every other outcome passes through unchanged.
    pub fn query_with_retry(
        &mut self,
        sql: &str,
    ) -> Result<(ResultTable, RemoteStats), ClientError> {
        let policy = self.retry.clone();
        policy.run(|| {
            let (table, stats, _trace) = self.exchange(sql.trim_end_matches(';'))?;
            Ok((table, stats))
        })
    }

    /// Submits one query under the server-side trace (`TRACE <sql>;`),
    /// additionally returning the trace tree as compact JSON.
    pub fn query_traced(
        &mut self,
        sql: &str,
    ) -> Result<(ResultTable, RemoteStats, String), ClientError> {
        let request = format!("TRACE {}", sql.trim_end_matches(';'));
        let (table, stats, trace) = self.exchange(&request)?;
        let trace =
            trace.ok_or_else(|| protocol_err("server sent no TRACE frame for a traced query"))?;
        Ok((table, stats, trace))
    }

    /// Submits one query and returns an incremental reader over its
    /// `ROWS` blocks: call [`QueryStream::next_batch`] until it yields
    /// `None`, then [`QueryStream::stats`] for the `END` counters.
    /// Dropping the stream early drains the rest of the response so
    /// the session stays usable.
    pub fn query_stream(&mut self, sql: &str) -> Result<QueryStream<'_>, ClientError> {
        writeln!(self.writer, "{};", sql.trim_end_matches(';'))?;
        self.writer.flush()?;
        Ok(QueryStream {
            client: self,
            columns: Vec::new(),
            types: Vec::new(),
            rows_seen: 0,
            trace: None,
            stats: None,
            finished: false,
        })
    }

    /// Cancels a server-side query by id (`KILL <qid>;`), returning the
    /// outcome string: `cancelled` (was still queued), `cancelling`
    /// (running; it stops at the next chunk boundary), `finished`, or
    /// `unknown`.
    pub fn kill(&mut self, qid: u64) -> Result<String, ClientError> {
        let (table, _, _) = self.exchange(&format!("KILL {qid}"))?;
        match table.rows.first().and_then(|r| r.get(1)) {
            Some(Value::Str(outcome)) => Ok(outcome.clone()),
            _ => Err(protocol_err("KILL reply has no outcome column")),
        }
    }

    /// The server's query registry (`STATUS;`) as a result table with
    /// columns `qid, class, state, wait_ms, run_ms, sql`.
    pub fn status(&mut self) -> Result<ResultTable, ClientError> {
        let (table, _, _) = self.exchange("STATUS")?;
        Ok(table)
    }

    /// Plans `sql` server-side without executing it (`EXPLAIN <sql>;`)
    /// and returns the chosen plan as an `item, value` result table:
    /// access path, predicate order with selectivity/cost estimates,
    /// top-n pushdown, estimated rows/cost, merge shape, and placement
    /// epoch.
    pub fn explain(&mut self, sql: &str) -> Result<ResultTable, ClientError> {
        let request = format!("EXPLAIN {}", sql.trim_end_matches(';'));
        let (table, _, _) = self.exchange(&request)?;
        Ok(table)
    }

    /// One request/response round trip, buffering every batch; the
    /// optional third element is the body of a `TRACE` frame.
    fn exchange(
        &mut self,
        request: &str,
    ) -> Result<(ResultTable, RemoteStats, Option<String>), ClientError> {
        writeln!(self.writer, "{request};")?;
        self.writer.flush()?;

        let mut columns: Option<Vec<String>> = None;
        let mut types: Vec<String> = Vec::new();
        let mut rows: Vec<Vec<Value>> = Vec::new();
        let mut trace: Option<String> = None;
        loop {
            match read_event(&mut self.reader, columns.as_deref(), &types)? {
                FrameEvent::Cols(c) => columns = Some(c),
                FrameEvent::Types(new) => {
                    recoerce(&mut rows, &types, &new)?;
                    types = new;
                }
                FrameEvent::Rows(mut batch) => rows.append(&mut batch),
                FrameEvent::Trace(json) => trace = Some(json),
                FrameEvent::End(stats) => {
                    if stats.rows != rows.len() {
                        return Err(protocol_err(format!(
                            "END says {} rows, received {}",
                            stats.rows,
                            rows.len()
                        )));
                    }
                    let table = ResultTable {
                        columns: columns.unwrap_or_default(),
                        rows,
                    };
                    return Ok((table, stats, trace));
                }
            }
        }
    }
}

/// An in-flight streamed response (see [`ProxyClient::query_stream`]).
pub struct QueryStream<'a> {
    client: &'a mut ProxyClient,
    columns: Vec<String>,
    types: Vec<String>,
    rows_seen: usize,
    trace: Option<String>,
    stats: Option<RemoteStats>,
    finished: bool,
}

impl QueryStream<'_> {
    /// The next `ROWS` block, or `None` once the query finished
    /// (`END`). Errors surface exactly as in buffered mode; rows
    /// already yielded before a mid-stream `ERR` must be discarded.
    pub fn next_batch(&mut self) -> Result<Option<WireBatch>, ClientError> {
        if self.finished {
            return Ok(None);
        }
        loop {
            let ev = read_event(
                &mut self.client.reader,
                if self.columns.is_empty() {
                    None
                } else {
                    Some(self.columns.as_slice())
                },
                &self.types,
            );
            let ev = match ev {
                Ok(ev) => ev,
                Err(e) => {
                    self.finished = true;
                    return Err(e);
                }
            };
            match ev {
                FrameEvent::Cols(c) => self.columns = c,
                FrameEvent::Types(new) => self.types = new,
                FrameEvent::Rows(rows) => {
                    self.rows_seen += rows.len();
                    return Ok(Some(WireBatch {
                        columns: self.columns.clone(),
                        types: self.types.clone(),
                        rows,
                    }));
                }
                FrameEvent::Trace(json) => self.trace = Some(json),
                FrameEvent::End(stats) => {
                    self.finished = true;
                    if stats.rows != self.rows_seen {
                        return Err(protocol_err(format!(
                            "END says {} rows, streamed {}",
                            stats.rows, self.rows_seen
                        )));
                    }
                    self.stats = Some(stats);
                    return Ok(None);
                }
            }
        }
    }

    /// Column names (known after the first batch).
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// The `END` statistics, available once `next_batch` returned
    /// `None`.
    pub fn stats(&self) -> Option<RemoteStats> {
        self.stats
    }

    /// The `TRACE` frame body, if the request was traced.
    pub fn trace_json(&self) -> Option<&str> {
        self.trace.as_deref()
    }
}

impl Drop for QueryStream<'_> {
    fn drop(&mut self) {
        // Abandoned mid-stream: drain to the terminal frame so the next
        // request on this session doesn't read stale frames.
        while !self.finished {
            if self.next_batch().is_err() {
                break;
            }
        }
    }
}

/// One decoded protocol event (a `ROWS` block arrives whole).
enum FrameEvent {
    Cols(Vec<String>),
    Types(Vec<String>),
    Rows(Vec<Vec<Value>>),
    Trace(String),
    End(RemoteStats),
}

/// Reads one frame (plus a `ROWS` block's payload lines), validating
/// against the header state seen so far. `ERR`/`BUSY` map to errors.
fn read_event(
    reader: &mut BufReader<TcpStream>,
    columns: Option<&[String]>,
    types: &[String],
) -> Result<FrameEvent, ClientError> {
    let frame = read_line(reader)?;
    if let Some(msg) = frame.strip_prefix("ERR ") {
        return Err(ClientError::Server(msg.to_string()));
    }
    if let Some(ms) = frame.strip_prefix("BUSY ") {
        let retry_after_ms = ms
            .trim()
            .parse()
            .map_err(|_| protocol_err(format!("malformed BUSY frame {frame:?}")))?;
        return Err(ClientError::Busy { retry_after_ms });
    }
    if let Some(rest) = frame.strip_prefix("COLS") {
        return Ok(FrameEvent::Cols(split_frame(rest)));
    }
    if let Some(rest) = frame.strip_prefix("TYPES") {
        let new = split_frame(rest);
        if let Some(cols) = columns {
            if new.len() != cols.len() {
                return Err(protocol_err(format!(
                    "{} columns but {} types",
                    cols.len(),
                    new.len()
                )));
            }
        }
        return Ok(FrameEvent::Types(new));
    }
    if let Some(rest) = frame.strip_prefix("ROWS ") {
        let n: usize = rest
            .trim()
            .parse()
            .map_err(|_| protocol_err(format!("malformed ROWS frame {frame:?}")))?;
        let width = columns.map(|c| c.len()).unwrap_or(0);
        if types.len() != width || width == 0 {
            return Err(protocol_err("ROWS before COLS/TYPES headers"));
        }
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            let line = read_line(reader)?;
            let cells: Vec<&str> = line.split('\t').collect();
            if cells.len() != width {
                return Err(protocol_err(format!(
                    "row has {} cells, expected {width}",
                    cells.len()
                )));
            }
            let mut row = Vec::with_capacity(width);
            for (cell, ty) in cells.iter().zip(types) {
                row.push(decode_value(cell, ty)?);
            }
            rows.push(row);
        }
        return Ok(FrameEvent::Rows(rows));
    }
    if let Some(json) = frame.strip_prefix("TRACE ") {
        return Ok(FrameEvent::Trace(json.to_string()));
    }
    if let Some(rest) = frame.strip_prefix("END ") {
        return Ok(FrameEvent::End(parse_end(rest)?));
    }
    Err(protocol_err(format!("unexpected frame {frame:?}")))
}

fn read_line(reader: &mut BufReader<TcpStream>) -> Result<String, ClientError> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(ClientError::Io(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "server closed mid-response",
        )));
    }
    Ok(line.trim_end_matches(['\n', '\r']).to_string())
}

fn parse_end(rest: &str) -> Result<RemoteStats, ClientError> {
    let bad = || protocol_err(format!("malformed END frame {rest:?}"));
    let parts: Vec<&str> = rest.split_whitespace().collect();
    let [r, c, b, cache] = parts.as_slice() else {
        return Err(bad());
    };
    let cache = match *cache {
        "hit" => CacheOutcome::Hit,
        "miss" => CacheOutcome::Miss,
        "off" => CacheOutcome::Off,
        _ => return Err(bad()),
    };
    Ok(RemoteStats {
        rows: r.parse().map_err(|_| bad())?,
        chunks_dispatched: c.parse().map_err(|_| bad())?,
        result_bytes: b.parse().map_err(|_| bad())?,
        cache,
    })
}

/// Applies a mid-stream `TYPES` resend to already-buffered rows. The
/// merger's votes only ever widen Int → Float (or fill in an all-NULL
/// column), so that is the only conversion — anything else is a
/// protocol violation.
fn recoerce(rows: &mut [Vec<Value>], old: &[String], new: &[String]) -> Result<(), ClientError> {
    if old.is_empty() || old == new {
        return Ok(());
    }
    if old.len() != new.len() {
        return Err(protocol_err(format!(
            "TYPES resend changed arity: {} -> {}",
            old.len(),
            new.len()
        )));
    }
    for (i, (o, n)) in old.iter().zip(new).enumerate() {
        if o == n || o == "null" {
            continue;
        }
        if o == "int" && n == "float" {
            for row in rows.iter_mut() {
                if let Value::Int(v) = row[i] {
                    row[i] = Value::Float(v as f64);
                }
            }
        } else {
            return Err(protocol_err(format!(
                "illegal TYPES transition {o} -> {n} in column {i}"
            )));
        }
    }
    Ok(())
}

/// Splits a frame body on tabs, tolerating the leading space after the
/// frame tag. An empty body means zero fields.
fn split_frame(body: &str) -> Vec<String> {
    let body = body.strip_prefix(' ').unwrap_or(body);
    if body.is_empty() {
        return Vec::new();
    }
    body.split('\t').map(str::to_string).collect()
}
