//! Wire encoding: TSV escaping, value round-tripping, frame limits,
//! and the `#<sid>` multiplexing tag.

use qserv_engine::schema::ColumnType;
use qserv_engine::value::Value;
use std::fmt;

/// Largest statement (bytes between `;` terminators) the server
/// accepts on one connection. A client that exceeds it without ever
/// completing a statement gets an `ERR` frame and the connection is
/// closed — there is no way to resynchronize inside an unbounded blob.
pub const MAX_STATEMENT_BYTES: usize = 1 << 20;

/// A malformed frame or value on the wire.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProtocolError {
    /// Description of the malformed input.
    pub message: String,
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "protocol error: {}", self.message)
    }
}

impl std::error::Error for ProtocolError {}

fn err<T>(message: impl Into<String>) -> Result<T, ProtocolError> {
    Err(ProtocolError {
        message: message.into(),
    })
}

/// Escapes a string cell: `\` → `\\`, TAB → `\t`, LF → `\n`, CR → `\r`.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

/// Reverses [`escape`].
pub fn unescape(s: &str) -> Result<String, ProtocolError> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('N') => return err("\\N is only valid as a whole cell"),
            other => return err(format!("bad escape \\{other:?}")),
        }
    }
    Ok(out)
}

/// The wire type tag of a value/column.
pub fn type_tag(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Int(_) => "int",
        Value::Float(_) => "float",
        Value::Str(_) => "str",
    }
}

/// The wire tag of a merge-time column vote (`None` = all-NULL so far).
pub fn column_tag(ty: Option<ColumnType>) -> &'static str {
    match ty {
        None => "null",
        Some(ColumnType::Int) => "int",
        Some(ColumnType::Float) => "float",
        Some(ColumnType::Str) => "str",
    }
}

/// Column tags widened over a materialized table's values (`null` for a
/// column that never carries one) — used for inline tables like the
/// `KILL`/`STATUS` replies, which have no merge votes.
pub fn value_tags(columns: usize, rows: &[Vec<Value>]) -> Vec<&'static str> {
    let mut tags = vec!["null"; columns];
    for row in rows {
        for (i, v) in row.iter().enumerate() {
            let t = type_tag(v);
            tags[i] = match (tags[i], t) {
                (cur, "null") => cur,
                ("null", t) => t,
                ("int", "float") | ("float", "int") => "float",
                (cur, t) if cur == t => cur,
                _ => "str",
            };
        }
    }
    tags
}

/// Splits the optional session tag off a statement or frame:
/// `#<sid> <body>` → `(Some(sid), body)`, anything else → `(None, s)`.
/// The tag must be all-digit and followed by whitespace — a leading `#`
/// that is not a well-formed tag (say a comment) passes through intact.
pub fn split_sid(s: &str) -> (Option<u64>, &str) {
    let Some(tail) = s.strip_prefix('#') else {
        return (None, s);
    };
    let digits = tail.len() - tail.trim_start_matches(|c: char| c.is_ascii_digit()).len();
    if digits == 0 {
        return (None, s);
    }
    let rest = &tail[digits..];
    if !rest.starts_with(char::is_whitespace) {
        return (None, s);
    }
    match tail[..digits].parse::<u64>() {
        Ok(sid) => (Some(sid), rest.trim_start_matches(char::is_whitespace)),
        Err(_) => (None, s), // overflow: not a usable tag
    }
}

/// Renders the frame prefix for a tagged response (empty when the
/// request carried no tag).
pub fn sid_prefix(sid: Option<u64>) -> String {
    match sid {
        Some(sid) => format!("#{sid} "),
        None => String::new(),
    }
}

/// Encodes one value as a TSV cell.
pub fn encode_value(v: &Value) -> String {
    match v {
        Value::Null => "\\N".to_string(),
        Value::Int(i) => i.to_string(),
        // `{}` on f64 prints the shortest round-tripping form.
        Value::Float(f) => format!("{f}"),
        Value::Str(s) => escape(s),
    }
}

/// Decodes one TSV cell under a column type tag (`int`/`float`/`str`).
pub fn decode_value(cell: &str, ty: &str) -> Result<Value, ProtocolError> {
    if cell == "\\N" {
        return Ok(Value::Null);
    }
    match ty {
        "int" => cell
            .parse::<i64>()
            .map(Value::Int)
            .or_else(|_| err(format!("bad int cell {cell:?}"))),
        "float" => cell
            .parse::<f64>()
            .map(Value::Float)
            .or_else(|_| err(format!("bad float cell {cell:?}"))),
        "str" => Ok(Value::Str(unescape(cell)?)),
        // An all-NULL column has no better tag; any non-\N cell is bad.
        "null" => err(format!("non-null cell {cell:?} in null-typed column")),
        other => err(format!("unknown type tag {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trip() {
        for s in [
            "",
            "plain",
            "tab\there",
            "line\nbreak",
            "back\\slash",
            "\r\n\t\\",
        ] {
            assert_eq!(unescape(&escape(s)).unwrap(), s, "{s:?}");
        }
    }

    #[test]
    fn escaped_cells_are_single_line_single_column() {
        let e = escape("a\tb\nc");
        assert!(!e.contains('\t'));
        assert!(!e.contains('\n'));
    }

    #[test]
    fn value_round_trip() {
        for v in [
            Value::Null,
            Value::Int(-42),
            Value::Float(std::f64::consts::PI),
            Value::Float(1e-300),
            Value::Str("it's\ta\nstring\\".into()),
        ] {
            let ty = if v.is_null() { "str" } else { type_tag(&v) };
            let cell = encode_value(&v);
            assert_eq!(decode_value(&cell, ty).unwrap(), v, "{v:?}");
        }
    }

    #[test]
    fn null_cell_decodes_under_any_type() {
        for ty in ["int", "float", "str", "null"] {
            assert_eq!(decode_value("\\N", ty).unwrap(), Value::Null);
        }
    }

    #[test]
    fn bad_cells_rejected() {
        assert!(decode_value("abc", "int").is_err());
        assert!(decode_value("abc", "float").is_err());
        assert!(decode_value("x", "null").is_err());
        assert!(decode_value("x", "bogus").is_err());
        assert!(unescape("trailing\\").is_err());
        assert!(unescape("bad\\q").is_err());
    }

    #[test]
    fn sid_tags_parse_and_pass_through() {
        assert_eq!(split_sid("#7 SELECT 1"), (Some(7), "SELECT 1"));
        assert_eq!(split_sid("#12  KILL 3"), (Some(12), "KILL 3"));
        assert_eq!(split_sid("SELECT 1"), (None, "SELECT 1"));
        // Malformed tags are not tags.
        assert_eq!(split_sid("#x SELECT 1"), (None, "#x SELECT 1"));
        assert_eq!(split_sid("#7SELECT 1"), (None, "#7SELECT 1"));
        assert_eq!(split_sid("#"), (None, "#"));
        assert_eq!(sid_prefix(Some(3)), "#3 ");
        assert_eq!(sid_prefix(None), "");
    }

    #[test]
    fn value_tags_widen() {
        let rows = vec![
            vec![Value::Null, Value::Int(1), Value::Int(2)],
            vec![Value::Str("x".into()), Value::Float(0.5), Value::Null],
        ];
        assert_eq!(value_tags(3, &rows), vec!["str", "float", "int"]);
        assert_eq!(value_tags(2, &[]), vec!["null", "null"]);
    }

    #[test]
    fn literal_backslash_n_string_survives() {
        // A *string* "\N" must not collide with the NULL marker.
        let v = Value::Str("\\N".into());
        let cell = encode_value(&v);
        assert_eq!(cell, "\\\\N");
        assert_eq!(decode_value(&cell, "str").unwrap(), v);
    }
}
