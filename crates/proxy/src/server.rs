//! The proxy server: one thread per connection over a shared frontend.

use crate::protocol::{encode_value, type_tag};
use qserv::Qserv;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running proxy listening on a TCP socket.
pub struct ProxyServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ProxyServer {
    /// Starts a proxy over `qserv`, listening on `bind` (use port 0 for
    /// an ephemeral port; [`ProxyServer::addr`] reports the actual one).
    pub fn start(qserv: Arc<Qserv>, bind: &str) -> std::io::Result<ProxyServer> {
        let listener = TcpListener::bind(bind)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if flag.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let qserv = Arc::clone(&qserv);
                std::thread::spawn(move || {
                    // A dropped/failed connection only ends that session.
                    let _ = serve_connection(&qserv, stream);
                });
            }
        });
        Ok(ProxyServer {
            addr,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address the proxy is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections and joins the accept thread. Existing
    /// sessions run to completion on their own threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a no-op connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ProxyServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Reads `;`-terminated queries off one connection until EOF.
fn serve_connection(qserv: &Qserv, stream: TcpStream) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut pending = String::new();
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(()); // client hung up
        }
        pending.push_str(&line);
        // Serve every complete (';'-terminated) statement accumulated.
        while let Some(pos) = pending.find(';') {
            let sql: String = pending.drain(..=pos).collect();
            let sql = sql.trim_end_matches(';').trim();
            if sql.is_empty() {
                continue;
            }
            // `TRACE <sql>` runs the statement under a fresh trace rooted
            // at the proxy (so the span tree covers proxy → master →
            // fabric → worker → merge) and streams the tree back as a
            // `TRACE <json>` frame between the rows and the OK.
            let outcome = match strip_trace_verb(sql) {
                Some(inner) => {
                    let trace = qserv::Trace::new(qserv.clock().clone());
                    let result = {
                        let root = qserv::trace::with_root(&trace, "proxy.request");
                        root.annotate("sql", inner);
                        qserv.query_with_stats(inner)
                    };
                    result.map(|(rows, stats)| (rows, stats, Some(trace.to_json())))
                }
                None => qserv
                    .query_with_stats(sql)
                    .map(|(rows, stats)| (rows, stats, None)),
            };
            match outcome {
                Ok((result, stats, trace_json)) => {
                    // Column types: widened over all rows, `null` when a
                    // column never carries a value.
                    let mut types = vec!["null"; result.columns.len()];
                    for row in &result.rows {
                        for (i, v) in row.iter().enumerate() {
                            let t = type_tag(v);
                            types[i] = match (types[i], t) {
                                (cur, "null") => cur,
                                ("null", t) => t,
                                ("int", "float") | ("float", "int") => "float",
                                (cur, t) if cur == t => cur,
                                _ => "str",
                            };
                        }
                    }
                    writeln!(writer, "COLS {}", result.columns.join("\t"))?;
                    writeln!(writer, "TYPES {}", types.join("\t"))?;
                    for row in &result.rows {
                        let cells: Vec<String> = row.iter().map(encode_value).collect();
                        writeln!(writer, "ROW {}", cells.join("\t"))?;
                    }
                    if let Some(json) = trace_json {
                        // Compact JSON is single-line by construction
                        // (string values escape their newlines).
                        writeln!(writer, "TRACE {json}")?;
                    }
                    writeln!(
                        writer,
                        "OK {} {} {}",
                        result.num_rows(),
                        stats.chunks_dispatched,
                        stats.result_bytes
                    )?;
                }
                Err(e) => {
                    // Errors are single-line by protocol.
                    let msg = e.to_string().replace('\n', " ");
                    writeln!(writer, "ERR {msg}")?;
                }
            }
            writer.flush()?;
        }
    }
}

/// Splits the `TRACE` verb off a statement, returning the inner SQL.
/// The verb is case-insensitive and must be followed by whitespace, so
/// ordinary SQL (which never starts with TRACE) passes through.
fn strip_trace_verb(sql: &str) -> Option<&str> {
    sql.get(..5)
        .filter(|verb| verb.eq_ignore_ascii_case("TRACE"))?;
    let tail = &sql[5..];
    if tail.starts_with(char::is_whitespace) {
        Some(tail.trim_start())
    } else {
        None
    }
}
