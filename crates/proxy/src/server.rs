//! The proxy server: one thread per connection over a shared frontend.
//!
//! Every session submits through one shared [`QueryService`], so
//! concurrent TCP clients are scheduled together: admission control and
//! fair dequeue apply across sessions, a full queue surfaces as a
//! `BUSY` frame, and any session may `KILL` or `STATUS` the queries of
//! every other.

use crate::protocol::{encode_value, type_tag};
use qserv::service::{QueryService, ServiceConfig};
use qserv::{Qserv, QservError, Value};
use qserv_engine::exec::ResultTable;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running proxy listening on a TCP socket.
pub struct ProxyServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    service: Arc<QueryService>,
}

impl ProxyServer {
    /// Starts a proxy over `qserv` with default service settings,
    /// listening on `bind` (use port 0 for an ephemeral port;
    /// [`ProxyServer::addr`] reports the actual one).
    pub fn start(qserv: Arc<Qserv>, bind: &str) -> std::io::Result<ProxyServer> {
        let service = Arc::new(QueryService::start(qserv, ServiceConfig::default()));
        ProxyServer::start_with_service(service, bind)
    }

    /// Starts a proxy over an existing [`QueryService`] — the caller
    /// picks the admission/scheduling configuration and may keep its
    /// own handle for `kill`/`status`/metrics.
    pub fn start_with_service(
        service: Arc<QueryService>,
        bind: &str,
    ) -> std::io::Result<ProxyServer> {
        let listener = TcpListener::bind(bind)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let svc = Arc::clone(&service);
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if flag.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let service = Arc::clone(&svc);
                std::thread::spawn(move || {
                    // A dropped/failed connection only ends that session.
                    let _ = serve_connection(&service, stream);
                });
            }
        });
        Ok(ProxyServer {
            addr,
            shutdown,
            accept_thread: Some(accept_thread),
            service,
        })
    }

    /// The address the proxy is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The query service behind every session.
    pub fn service(&self) -> &Arc<QueryService> {
        &self.service
    }

    /// Stops accepting connections and joins the accept thread. Existing
    /// sessions run to completion on their own threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a no-op connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ProxyServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Reads `;`-terminated queries off one connection until EOF.
fn serve_connection(service: &QueryService, stream: TcpStream) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut pending = String::new();
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(()); // client hung up
        }
        pending.push_str(&line);
        // Serve every complete (';'-terminated) statement accumulated.
        while let Some(pos) = pending.find(';') {
            let sql: String = pending.drain(..=pos).collect();
            let sql = sql.trim_end_matches(';').trim();
            if sql.is_empty() {
                continue;
            }
            serve_statement(service, sql, &mut writer)?;
            writer.flush()?;
        }
    }
}

/// Routes one statement: the session verbs (`KILL <qid>`, `STATUS`,
/// `TRACE <sql>`) or plain SQL through the service.
fn serve_statement(
    service: &QueryService,
    sql: &str,
    writer: &mut impl Write,
) -> std::io::Result<()> {
    // `KILL <qid>` and `STATUS` answer as ordinary result tables, so
    // any client that can read a query response can drive them.
    match parse_kill_verb(sql) {
        Some(Ok(qid)) => {
            let outcome = service.kill(qid);
            let table = ResultTable {
                columns: vec!["qid".to_string(), "outcome".to_string()],
                rows: vec![vec![
                    Value::Int(qid as i64),
                    Value::Str(outcome.as_str().to_string()),
                ]],
            };
            return write_result(writer, &table, 0, 0, None);
        }
        Some(Err(bad)) => {
            writeln!(writer, "ERR KILL needs a numeric query id, got {bad:?}")?;
            return Ok(());
        }
        None => {}
    }
    if sql.eq_ignore_ascii_case("STATUS") {
        let rows = service
            .status()
            .into_iter()
            .map(|s| {
                vec![
                    Value::Int(s.qid as i64),
                    Value::Str(s.class.as_str().to_string()),
                    Value::Str(s.state.as_str().to_string()),
                    Value::Int(s.wait.as_millis() as i64),
                    Value::Int(s.run.as_millis() as i64),
                    Value::Str(s.sql),
                ]
            })
            .collect();
        let table = ResultTable {
            columns: ["qid", "class", "state", "wait_ms", "run_ms", "sql"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            rows,
        };
        return write_result(writer, &table, 0, 0, None);
    }

    // `TRACE <sql>` runs the statement under a fresh trace rooted at
    // the proxy (so the span tree covers proxy → service admission →
    // master → fabric → worker → merge) and streams the tree back as a
    // `TRACE <json>` frame between the rows and the OK.
    let submitted = match strip_trace_verb(sql) {
        Some(inner) => service.submit_traced(inner, "proxy.request"),
        None => service.submit(sql),
    };
    let handle = match submitted {
        Ok(h) => h,
        // Admission backpressure is its own frame so clients can tell
        // "resubmit later" apart from a failed query.
        Err(QservError::Busy { retry_after_ms }) => {
            writeln!(writer, "BUSY {retry_after_ms}")?;
            return Ok(());
        }
        Err(e) => {
            let msg = e.to_string().replace('\n', " ");
            writeln!(writer, "ERR {msg}")?;
            return Ok(());
        }
    };
    let reply = handle.wait();
    match reply.result {
        Ok((result, stats)) => {
            let trace_json = reply.trace.as_ref().map(|t| t.to_json());
            write_result(
                writer,
                &result,
                stats.chunks_dispatched,
                stats.result_bytes,
                trace_json.as_deref(),
            )
        }
        Err(e) => {
            // Errors are single-line by protocol.
            let msg = e.to_string().replace('\n', " ");
            writeln!(writer, "ERR {msg}")?;
            Ok(())
        }
    }
}

/// Streams one result table as COLS/TYPES/ROW(/TRACE)/OK frames.
fn write_result(
    writer: &mut impl Write,
    result: &ResultTable,
    chunks_dispatched: usize,
    result_bytes: u64,
    trace_json: Option<&str>,
) -> std::io::Result<()> {
    // Column types: widened over all rows, `null` when a column never
    // carries a value.
    let mut types = vec!["null"; result.columns.len()];
    for row in &result.rows {
        for (i, v) in row.iter().enumerate() {
            let t = type_tag(v);
            types[i] = match (types[i], t) {
                (cur, "null") => cur,
                ("null", t) => t,
                ("int", "float") | ("float", "int") => "float",
                (cur, t) if cur == t => cur,
                _ => "str",
            };
        }
    }
    writeln!(writer, "COLS {}", result.columns.join("\t"))?;
    writeln!(writer, "TYPES {}", types.join("\t"))?;
    for row in &result.rows {
        let cells: Vec<String> = row.iter().map(encode_value).collect();
        writeln!(writer, "ROW {}", cells.join("\t"))?;
    }
    if let Some(json) = trace_json {
        // Compact JSON is single-line by construction (string values
        // escape their newlines).
        writeln!(writer, "TRACE {json}")?;
    }
    writeln!(
        writer,
        "OK {} {} {}",
        result.num_rows(),
        chunks_dispatched,
        result_bytes
    )
}

/// Splits the `TRACE` verb off a statement, returning the inner SQL.
/// The verb is case-insensitive and must be followed by whitespace, so
/// ordinary SQL (which never starts with TRACE) passes through.
fn strip_trace_verb(sql: &str) -> Option<&str> {
    sql.get(..5)
        .filter(|verb| verb.eq_ignore_ascii_case("TRACE"))?;
    let tail = &sql[5..];
    if tail.starts_with(char::is_whitespace) {
        Some(tail.trim_start())
    } else {
        None
    }
}

/// Recognizes `KILL <qid>`: `Some(Ok(qid))` for a well-formed kill,
/// `Some(Err(arg))` when the verb is present but the id is not a
/// number, `None` for anything else (ordinary SQL never starts with
/// KILL).
fn parse_kill_verb(sql: &str) -> Option<Result<u64, String>> {
    sql.get(..4)
        .filter(|verb| verb.eq_ignore_ascii_case("KILL"))?;
    let tail = &sql[4..];
    if !tail.starts_with(char::is_whitespace) {
        return None;
    }
    let arg = tail.trim();
    Some(arg.parse::<u64>().map_err(|_| arg.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kill_verb_parses() {
        assert_eq!(parse_kill_verb("KILL 42"), Some(Ok(42)));
        assert_eq!(parse_kill_verb("kill  7"), Some(Ok(7)));
        assert_eq!(parse_kill_verb("KILL abc"), Some(Err("abc".to_string())));
        assert_eq!(parse_kill_verb("KILLER 1"), None);
        assert_eq!(parse_kill_verb("SELECT 1"), None);
    }

    #[test]
    fn trace_verb_strips() {
        assert_eq!(strip_trace_verb("TRACE SELECT 1"), Some("SELECT 1"));
        assert_eq!(strip_trace_verb("trace  SELECT 1"), Some("SELECT 1"));
        assert_eq!(strip_trace_verb("TRACER x"), None);
        assert_eq!(strip_trace_verb("SELECT 1"), None);
    }
}
