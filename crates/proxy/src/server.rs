//! The proxy server: one event loop multiplexing every connection.
//!
//! [`ServerMode::Reactor`] (the default) runs a single poll(2)-driven
//! event loop over nonblocking sockets: the listener, a cross-thread
//! [`Waker`], and every client connection are all readiness sources of
//! one `mio::Poll`. Sessions submit through the shared
//! [`QueryService`] as *streaming* queries; merged row batches are
//! framed (`ROWS <n>` + raw TSV lines) into per-connection write
//! buffers and flushed as sockets accept them, so the first rows of a
//! scan reach the client while later chunks are still executing.
//!
//! Backpressure is end-to-end: a connection whose write buffer climbs
//! past [`HIGH_WATER_BYTES`] stops draining its stream channels; the
//! executor's bounded channel then blocks the merge, which stalls
//! chunk dispatch — a slow client throttles its own query instead of
//! buffering the whole result in proxy memory.
//!
//! Statements may carry a `#<sid>` tag; tagged statements run
//! concurrently on one connection with their response frames
//! tag-prefixed for demultiplexing. Untagged statements keep the
//! classic strict request/response contract: they execute one at a
//! time per connection, in arrival order.
//!
//! Shutdown is reactor-driven and race-free: [`ProxyServer::stop`]
//! sets a flag and wakes the poll loop through the `Waker` — no
//! sentinel connections, no window where a fresh accept slips past the
//! flag check.
//!
//! [`ServerMode::ThreadPerConn`] keeps the accept path on the same
//! poll/waker pair (so stopping stays race-free) but serves each
//! connection on its own blocking thread — the baseline the proxy
//! bench compares the reactor against.

use crate::protocol::{
    column_tag, encode_value, sid_prefix, split_sid, value_tags, MAX_STATEMENT_BYTES,
};
use mio::{Events, Interest, Poll, Token, Waker};
use qserv::service::{QueryService, ServiceConfig};
use qserv::{
    Notifier, Qserv, QservError, StreamBatch, StreamDone, StreamEvent, StreamHandle, Value,
};
use qserv_engine::exec::ResultTable;
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

const LISTENER: Token = Token(0);
const WAKER: Token = Token(1);
const FIRST_CONN: usize = 2;

/// Above this many buffered-but-unsent bytes, a connection stops
/// draining its stream channels: the executor's bounded channel fills
/// and the query stalls until the socket drains.
pub const HIGH_WATER_BYTES: usize = 256 * 1024;

/// How the server maps connections to execution contexts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServerMode {
    /// One event loop multiplexes every connection (the default).
    Reactor,
    /// One blocking thread per connection — the pre-reactor design,
    /// kept as the bench baseline. The accept path still runs on the
    /// poll/waker pair so `stop` is race-free in both modes.
    ThreadPerConn,
}

/// A running proxy listening on a TCP socket.
pub struct ProxyServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    waker: Arc<Waker>,
    thread: Option<JoinHandle<()>>,
    service: Arc<QueryService>,
}

impl ProxyServer {
    /// Starts a proxy over `qserv` with default service settings,
    /// listening on `bind` (use port 0 for an ephemeral port;
    /// [`ProxyServer::addr`] reports the actual one).
    pub fn start(qserv: Arc<Qserv>, bind: &str) -> std::io::Result<ProxyServer> {
        let service = Arc::new(QueryService::start(qserv, ServiceConfig::default()));
        ProxyServer::start_with_service(service, bind)
    }

    /// Starts a proxy over an existing [`QueryService`] — the caller
    /// picks the admission/scheduling/caching configuration and may
    /// keep its own handle for `kill`/`status`/metrics.
    pub fn start_with_service(
        service: Arc<QueryService>,
        bind: &str,
    ) -> std::io::Result<ProxyServer> {
        ProxyServer::start_with_mode(service, bind, ServerMode::Reactor)
    }

    /// Starts a proxy in an explicit [`ServerMode`].
    pub fn start_with_mode(
        service: Arc<QueryService>,
        bind: &str,
        mode: ServerMode,
    ) -> std::io::Result<ProxyServer> {
        let listener = mio::net::TcpListener::bind(bind)?;
        let addr = listener.local_addr()?;
        let poll = Poll::new()?;
        poll.registry()
            .register(&listener, LISTENER, Interest::READABLE)?;
        let waker = Arc::new(Waker::new(poll.registry(), WAKER)?);
        let shutdown = Arc::new(AtomicBool::new(false));

        let thread = {
            let service = Arc::clone(&service);
            let shutdown = Arc::clone(&shutdown);
            let waker = Arc::clone(&waker);
            std::thread::spawn(move || match mode {
                ServerMode::Reactor => Reactor::new(poll, listener, service, shutdown, waker).run(),
                ServerMode::ThreadPerConn => run_thread_per_conn(poll, listener, service, shutdown),
            })
        };
        Ok(ProxyServer {
            addr,
            shutdown,
            waker,
            thread: Some(thread),
            service,
        })
    }

    /// The address the proxy is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The query service behind every session.
    pub fn service(&self) -> &Arc<QueryService> {
        &self.service
    }

    /// Stops the server and joins its thread. In reactor mode open
    /// sessions are closed (their in-flight queries cancel); in
    /// thread-per-connection mode existing session threads run to
    /// completion on their own.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        let _ = self.waker.wake();
        if let Some(h) = self.thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ProxyServer {
    fn drop(&mut self) {
        self.stop();
    }
}

// ---------------------------------------------------------------------
// Statement assembly and routing (shared by both server modes).
// ---------------------------------------------------------------------

/// Accumulates raw socket bytes and yields `;`-terminated statements.
#[derive(Default)]
struct StatementSplitter {
    buf: Vec<u8>,
}

impl StatementSplitter {
    fn push(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// The next complete non-empty statement, if any.
    fn next_statement(&mut self) -> Option<String> {
        while let Some(pos) = self.buf.iter().position(|&b| b == b';') {
            let stmt: Vec<u8> = self.buf.drain(..=pos).collect();
            let stmt = String::from_utf8_lossy(&stmt[..stmt.len() - 1])
                .trim()
                .to_string();
            if !stmt.is_empty() {
                return Some(stmt);
            }
        }
        None
    }

    /// True once the unterminated tail exceeds the frame limit.
    fn overflowed(&self) -> bool {
        self.buf.len() > MAX_STATEMENT_BYTES
    }
}

/// What one statement asks of the server.
enum Action {
    /// An immediately-answerable verb (`KILL`, `STATUS`).
    Table(ResultTable),
    /// A malformed verb.
    BadVerb(String),
    /// SQL to submit (with `TRACE` already stripped off).
    Submit { sql: String, traced: bool },
}

/// Routes one (tag-stripped) statement.
fn route(service: &QueryService, stmt: &str) -> Action {
    // `KILL <qid>` and `STATUS` answer as ordinary result tables, so
    // any client that can read a query response can drive them.
    match parse_kill_verb(stmt) {
        Some(Ok(qid)) => {
            let outcome = service.kill(qid);
            return Action::Table(ResultTable {
                columns: vec!["qid".to_string(), "outcome".to_string()],
                rows: vec![vec![
                    Value::Int(qid as i64),
                    Value::Str(outcome.as_str().to_string()),
                ]],
            });
        }
        Some(Err(bad)) => {
            return Action::BadVerb(format!("KILL needs a numeric query id, got {bad:?}"))
        }
        None => {}
    }
    if stmt.eq_ignore_ascii_case("STATUS") {
        let rows = service
            .status()
            .into_iter()
            .map(|s| {
                vec![
                    Value::Int(s.qid as i64),
                    Value::Str(s.class.as_str().to_string()),
                    Value::Str(s.state.as_str().to_string()),
                    Value::Int(s.wait.as_millis() as i64),
                    Value::Int(s.run.as_millis() as i64),
                    Value::Str(s.sql),
                ]
            })
            .collect();
        return Action::Table(ResultTable {
            columns: ["qid", "class", "state", "wait_ms", "run_ms", "sql"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            rows,
        });
    }
    // `EXPLAIN <sql>` plans without executing and answers inline with
    // the planner's choice rendered as a result table.
    if let Some(inner) = qserv::strip_explain(stmt) {
        return match service.explain(inner) {
            Ok(table) => Action::Table(table),
            Err(e) => Action::BadVerb(format!("EXPLAIN failed: {e}")),
        };
    }
    match strip_trace_verb(stmt) {
        Some(inner) => Action::Submit {
            sql: inner.to_string(),
            traced: true,
        },
        None => Action::Submit {
            sql: stmt.to_string(),
            traced: false,
        },
    }
}

// ---------------------------------------------------------------------
// Frame encoding (shared by both server modes).
// ---------------------------------------------------------------------

/// Per-request frame-encoding state: which headers went out, under
/// which types, and how many rows so far.
struct ResponseState {
    sid: Option<u64>,
    sent_cols: bool,
    tags: Vec<&'static str>,
    rows: u64,
}

impl ResponseState {
    fn new(sid: Option<u64>) -> ResponseState {
        ResponseState {
            sid,
            sent_cols: false,
            tags: Vec::new(),
            rows: 0,
        }
    }
}

/// Encodes one merged batch: `COLS`/`TYPES` headers the first time,
/// a `TYPES` resend when a later chunk widened a column, then the
/// `ROWS <n>` block. The block (header + `n` raw TSV lines) is written
/// in one append, so multiplexed responses never interleave inside it.
fn write_batch(out: &mut Vec<u8>, st: &mut ResponseState, batch: &StreamBatch) {
    let p = sid_prefix(st.sid);
    let tags: Vec<&'static str> = batch.types.iter().map(|t| column_tag(*t)).collect();
    if !st.sent_cols {
        let _ = writeln!(out, "{p}COLS {}", batch.columns.join("\t"));
        let _ = writeln!(out, "{p}TYPES {}", tags.join("\t"));
        st.tags = tags;
        st.sent_cols = true;
    } else if tags != st.tags {
        let _ = writeln!(out, "{p}TYPES {}", tags.join("\t"));
        st.tags = tags;
    }
    if batch.rows.is_empty() {
        return;
    }
    let _ = writeln!(out, "{p}ROWS {}", batch.rows.len());
    for row in &batch.rows {
        let cells: Vec<String> = row.iter().map(encode_value).collect();
        let _ = writeln!(out, "{}", cells.join("\t"));
    }
    st.rows += batch.rows.len() as u64;
}

/// Encodes the terminal frame: `TRACE` + `END` on success, `ERR` (or
/// `BUSY`) on failure. An `ERR` after delivered batches tells the
/// client to discard those rows — the result is the error.
fn write_done(out: &mut Vec<u8>, st: &ResponseState, done: &StreamDone) {
    let p = sid_prefix(st.sid);
    match &done.result {
        Ok(stats) => {
            if let Some(trace) = &done.trace {
                let _ = writeln!(out, "{p}TRACE {}", trace.to_json());
            }
            let _ = writeln!(
                out,
                "{p}END {} {} {} {}",
                st.rows,
                stats.chunks_dispatched,
                stats.result_bytes,
                done.cache.as_str()
            );
        }
        Err(e) => write_error(out, st.sid, e),
    }
}

/// Encodes a failure as its frame: admission backpressure is `BUSY`
/// (resubmit later, the session stays usable), anything else `ERR`.
fn write_error(out: &mut Vec<u8>, sid: Option<u64>, e: &QservError) {
    let p = sid_prefix(sid);
    match e {
        QservError::Busy { retry_after_ms } => {
            let _ = writeln!(out, "{p}BUSY {retry_after_ms}");
        }
        e => {
            let msg = e.to_string().replace('\n', " ");
            let _ = writeln!(out, "{p}ERR {msg}");
        }
    }
}

/// Encodes an inline table (the `KILL`/`STATUS` replies): one complete
/// response with `cache:off` and no cluster work.
fn write_table(out: &mut Vec<u8>, sid: Option<u64>, table: &ResultTable) {
    let p = sid_prefix(sid);
    let tags = value_tags(table.columns.len(), &table.rows);
    let _ = writeln!(out, "{p}COLS {}", table.columns.join("\t"));
    let _ = writeln!(out, "{p}TYPES {}", tags.join("\t"));
    if !table.rows.is_empty() {
        let _ = writeln!(out, "{p}ROWS {}", table.rows.len());
        for row in &table.rows {
            let cells: Vec<String> = row.iter().map(encode_value).collect();
            let _ = writeln!(out, "{}", cells.join("\t"));
        }
    }
    let _ = writeln!(out, "{p}END {} 0 0 off", table.num_rows());
}

// ---------------------------------------------------------------------
// Reactor mode.
// ---------------------------------------------------------------------

/// One in-flight streamed query on a connection.
struct Request {
    state: ResponseState,
    handle: StreamHandle,
    /// Untagged requests hold the connection's serial slot.
    untagged: bool,
}

/// One multiplexed connection.
struct Conn {
    token: usize,
    stream: mio::net::TcpStream,
    splitter: StatementSplitter,
    out: Vec<u8>,
    outpos: usize,
    requests: Vec<Request>,
    /// Untagged statements waiting for the serial slot.
    untagged_queue: VecDeque<String>,
    untagged_busy: bool,
    /// Still expecting bytes from the peer (false after EOF — the
    /// half-closed session keeps draining its in-flight responses).
    reading: bool,
    /// Flush what is buffered, then drop the connection.
    closing: bool,
    /// Hard socket error: drop immediately.
    failed: bool,
    registered: Option<Interest>,
}

impl Conn {
    fn pending_out(&self) -> usize {
        self.out.len() - self.outpos
    }

    fn finished(&self) -> bool {
        self.failed
            || (self.closing && self.pending_out() == 0)
            || (!self.reading
                && self.requests.is_empty()
                && self.untagged_queue.is_empty()
                && self.pending_out() == 0)
    }
}

struct Reactor {
    poll: Poll,
    listener: mio::net::TcpListener,
    service: Arc<QueryService>,
    shutdown: Arc<AtomicBool>,
    notifier: Notifier,
    conns: HashMap<usize, Conn>,
    next_token: usize,
}

impl Reactor {
    fn new(
        poll: Poll,
        listener: mio::net::TcpListener,
        service: Arc<QueryService>,
        shutdown: Arc<AtomicBool>,
        waker: Arc<Waker>,
    ) -> Reactor {
        // Every streaming submission carries this notifier: the
        // executor pokes the waker after queuing an event, so a poll
        // blocked on idle sockets learns of fresh frames immediately.
        let notifier: Notifier = Arc::new(move || {
            let _ = waker.wake();
        });
        Reactor {
            poll,
            listener,
            service,
            shutdown,
            notifier,
            conns: HashMap::new(),
            next_token: FIRST_CONN,
        }
    }

    fn run(mut self) {
        let mut events = Events::with_capacity(256);
        loop {
            if self.poll.poll(&mut events, None).is_err() {
                continue;
            }
            if self.shutdown.load(Ordering::SeqCst) {
                // Dropping the reactor drops every connection; their
                // stream handles cancel any in-flight queries.
                return;
            }
            let ready: Vec<(usize, bool, bool)> = events
                .iter()
                .map(|e| (e.token().0, e.is_readable(), e.is_writable()))
                .collect();
            for (token, readable, writable) in ready {
                match token {
                    t if t == LISTENER.0 => self.accept_ready(),
                    t if t == WAKER.0 => {} // woken; the pump below runs anyway
                    t => {
                        if let Some(conn) = self.conns.get_mut(&t) {
                            if readable {
                                read_ready(&self.service, &self.notifier, conn);
                            }
                            if writable {
                                flush(conn);
                            }
                        }
                    }
                }
            }
            self.pump();
            self.sweep();
        }
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nodelay(true);
                    let token = self.next_token;
                    self.next_token += 1;
                    let mut conn = Conn {
                        token,
                        stream,
                        splitter: StatementSplitter::default(),
                        out: Vec::new(),
                        outpos: 0,
                        requests: Vec::new(),
                        untagged_queue: VecDeque::new(),
                        untagged_busy: false,
                        reading: true,
                        closing: false,
                        failed: false,
                        registered: None,
                    };
                    update_interest(&self.poll, &mut conn);
                    self.conns.insert(token, conn);
                }
                Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(_) => return,
            }
        }
    }

    /// Moves every connection forward: drain ready stream events into
    /// write buffers (respecting the high-water mark), flush sockets,
    /// start queued untagged statements, refresh interest. The
    /// drain/flush pair loops so a socket that swallowed its backlog
    /// immediately frees the query it was throttling — otherwise
    /// events left behind a high-water stop could strand a blocked
    /// executor with no readiness edge left to wake us.
    fn pump(&mut self) {
        for conn in self.conns.values_mut() {
            loop {
                let progressed = drain_requests(&self.service, &self.notifier, conn);
                flush(conn);
                if !progressed || conn.pending_out() > HIGH_WATER_BYTES {
                    break;
                }
            }
            update_interest(&self.poll, conn);
        }
    }

    fn sweep(&mut self) {
        let finished: Vec<usize> = self
            .conns
            .iter()
            .filter(|(_, c)| c.finished())
            .map(|(&t, _)| t)
            .collect();
        for t in finished {
            if let Some(conn) = self.conns.remove(&t) {
                if conn.registered.is_some() {
                    let _ = self.poll.registry().deregister(&conn.stream);
                }
                // Dropping `conn.requests` drops the stream handles,
                // cancelling whatever was still running for this peer.
            }
        }
    }
}

/// Reads until `WouldBlock`/EOF, then starts every complete statement.
fn read_ready(service: &QueryService, notifier: &Notifier, conn: &mut Conn) {
    let mut buf = [0u8; 8192];
    loop {
        match conn.stream.read(&mut buf) {
            Ok(0) => {
                conn.reading = false;
                break;
            }
            Ok(n) => {
                conn.splitter.push(&buf[..n]);
                if conn.splitter.overflowed() {
                    // No way to resynchronize inside an unbounded blob:
                    // reject and hang up once the error is flushed.
                    let _ = writeln!(
                        conn.out,
                        "ERR statement exceeds {MAX_STATEMENT_BYTES} bytes"
                    );
                    conn.reading = false;
                    conn.closing = true;
                    return;
                }
            }
            Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.failed = true;
                return;
            }
        }
    }
    while let Some(stmt) = conn.splitter.next_statement() {
        handle_statement(service, notifier, conn, stmt);
    }
}

/// Starts (or queues) one statement. Tagged statements run
/// concurrently; untagged ones serialize through the connection's
/// single slot, preserving the strict request/response contract for
/// clients that never tag.
fn handle_statement(service: &QueryService, notifier: &Notifier, conn: &mut Conn, raw: String) {
    let (sid, stmt) = split_sid(&raw);
    if sid.is_none() && (conn.untagged_busy || !conn.untagged_queue.is_empty()) {
        conn.untagged_queue.push_back(stmt.to_string());
        return;
    }
    start_statement(service, notifier, conn, sid, stmt);
}

fn start_statement(
    service: &QueryService,
    notifier: &Notifier,
    conn: &mut Conn,
    sid: Option<u64>,
    stmt: &str,
) {
    match route(service, stmt) {
        Action::Table(table) => write_table(&mut conn.out, sid, &table),
        Action::BadVerb(msg) => {
            let _ = writeln!(conn.out, "{}ERR {msg}", sid_prefix(sid));
        }
        Action::Submit { sql, traced } => {
            let root = traced.then_some("proxy.request");
            match service.submit_streaming_with_notify(&sql, root, Arc::clone(notifier)) {
                Ok(handle) => {
                    conn.requests.push(Request {
                        state: ResponseState::new(sid),
                        handle,
                        untagged: sid.is_none(),
                    });
                    if sid.is_none() {
                        conn.untagged_busy = true;
                    }
                }
                Err(e) => write_error(&mut conn.out, sid, &e),
            }
        }
    }
}

/// Drains ready stream events into the connection's write buffer, up
/// to the high-water mark, and feeds the untagged serial queue as its
/// slot frees up. Returns whether anything moved (the caller loops
/// with a flush in between until nothing does).
fn drain_requests(service: &QueryService, notifier: &Notifier, conn: &mut Conn) -> bool {
    let mut progressed = false;
    let mut i = 0;
    // Split the borrows: the request list and the write buffer are
    // touched together inside the loop.
    let (out, outpos, requests) = (&mut conn.out, conn.outpos, &mut conn.requests);
    let over_water = |out: &Vec<u8>| out.len() - outpos > HIGH_WATER_BYTES;
    while i < requests.len() {
        if over_water(out) {
            // Stop producing: the executor's bounded channel fills
            // next, stalling the merge until this socket drains.
            return progressed;
        }
        let req = &mut requests[i];
        let mut finished = false;
        while let Some(ev) = req.handle.try_recv() {
            progressed = true;
            match ev {
                StreamEvent::Batch(batch) => write_batch(out, &mut req.state, &batch),
                StreamEvent::Done(done) => {
                    write_done(out, &req.state, &done);
                    finished = true;
                    break;
                }
            }
            if over_water(out) {
                break;
            }
        }
        if finished {
            let req = requests.remove(i);
            if req.untagged {
                conn.untagged_busy = false;
            }
        } else {
            i += 1;
        }
    }
    // The serial slot freed up: start queued untagged statements
    // (verbs answer inline and free the slot again immediately).
    while !conn.untagged_busy && !conn.closing {
        let Some(stmt) = conn.untagged_queue.pop_front() else {
            break;
        };
        progressed = true;
        start_statement(service, notifier, conn, None, &stmt);
    }
    progressed
}

/// Writes buffered output until the socket would block.
fn flush(conn: &mut Conn) {
    while conn.pending_out() > 0 {
        match conn.stream.write(&conn.out[conn.outpos..]) {
            Ok(0) => {
                conn.failed = true;
                return;
            }
            Ok(n) => conn.outpos += n,
            Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.failed = true;
                return;
            }
        }
    }
    if conn.outpos == conn.out.len() {
        conn.out.clear();
        conn.outpos = 0;
    } else if conn.outpos > 32 * 1024 {
        conn.out.drain(..conn.outpos);
        conn.outpos = 0;
    }
}

/// Registers exactly the readiness this connection can act on. The
/// poller is level-triggered, so `WRITABLE` is armed only while output
/// is pending and `READABLE` only while the peer may still send —
/// otherwise an idle socket would spin the loop.
fn update_interest(poll: &Poll, conn: &mut Conn) {
    let want_r = conn.reading && !conn.closing && !conn.failed;
    let want_w = conn.pending_out() > 0 && !conn.failed;
    let want = match (want_r, want_w) {
        (true, true) => Some(Interest::READABLE | Interest::WRITABLE),
        (true, false) => Some(Interest::READABLE),
        (false, true) => Some(Interest::WRITABLE),
        (false, false) => None,
    };
    if want == conn.registered {
        return;
    }
    let registry = poll.registry();
    let ok = match (conn.registered, want) {
        (None, Some(i)) => registry
            .register(&conn.stream, Token(conn.token), i)
            .is_ok(),
        (Some(_), Some(i)) => registry
            .reregister(&conn.stream, Token(conn.token), i)
            .is_ok(),
        (Some(_), None) => registry.deregister(&conn.stream).is_ok(),
        (None, None) => true,
    };
    if ok {
        conn.registered = want;
    } else {
        conn.failed = true;
    }
}

// ---------------------------------------------------------------------
// Thread-per-connection mode (bench baseline).
// ---------------------------------------------------------------------

fn run_thread_per_conn(
    mut poll: Poll,
    listener: mio::net::TcpListener,
    service: Arc<QueryService>,
    shutdown: Arc<AtomicBool>,
) {
    let mut events = Events::with_capacity(16);
    loop {
        if poll.poll(&mut events, None).is_err() {
            continue;
        }
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nodelay(true);
                    let Ok(std_stream) = stream.into_std() else {
                        continue;
                    };
                    let service = Arc::clone(&service);
                    std::thread::spawn(move || {
                        // A dropped/failed connection only ends that
                        // session.
                        let _ = serve_blocking(&service, std_stream);
                    });
                }
                Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
    }
}

/// Serves one connection on a blocking thread. Same frames as the
/// reactor; statements (tagged or not) execute strictly one at a time.
fn serve_blocking(service: &QueryService, stream: std::net::TcpStream) -> std::io::Result<()> {
    let mut reader = stream.try_clone()?;
    let mut writer = stream;
    let mut splitter = StatementSplitter::default();
    let mut buf = [0u8; 8192];
    let mut out = Vec::new();
    loop {
        while let Some(stmt) = splitter.next_statement() {
            let (sid, stmt) = split_sid(&stmt);
            match route(service, stmt) {
                Action::Table(table) => write_table(&mut out, sid, &table),
                Action::BadVerb(msg) => {
                    let _ = writeln!(out, "{}ERR {msg}", sid_prefix(sid));
                }
                Action::Submit { sql, traced } => {
                    let submitted = match traced {
                        true => service.submit_streaming_traced(&sql, "proxy.request"),
                        false => service.submit_streaming(&sql),
                    };
                    match submitted {
                        Ok(handle) => {
                            let mut st = ResponseState::new(sid);
                            stream_response(handle, &mut st, &mut out, &mut writer)?;
                        }
                        Err(e) => write_error(&mut out, sid, &e),
                    }
                }
            }
            writer.write_all(&out)?;
            out.clear();
        }
        if splitter.overflowed() {
            writeln!(writer, "ERR statement exceeds {MAX_STATEMENT_BYTES} bytes")?;
            return Ok(());
        }
        let n = reader.read(&mut buf)?;
        if n == 0 {
            return Ok(());
        }
        splitter.push(&buf[..n]);
    }
}

/// Blocking drain of one streamed response, flushing each batch as it
/// arrives so first rows still beat the scan's completion.
fn stream_response(
    handle: StreamHandle,
    st: &mut ResponseState,
    out: &mut Vec<u8>,
    writer: &mut std::net::TcpStream,
) -> std::io::Result<()> {
    loop {
        match handle.recv() {
            Some(StreamEvent::Batch(batch)) => {
                write_batch(out, st, &batch);
                writer.write_all(out)?;
                out.clear();
            }
            Some(StreamEvent::Done(done)) => {
                write_done(out, st, &done);
                return Ok(());
            }
            None => {
                // Channel died without a Done: surface as cancellation.
                write_error(out, st.sid, &QservError::Cancelled);
                return Ok(());
            }
        }
    }
}

// ---------------------------------------------------------------------
// Verb parsing.
// ---------------------------------------------------------------------

/// Splits the `TRACE` verb off a statement, returning the inner SQL.
/// The verb is case-insensitive and must be followed by whitespace, so
/// ordinary SQL (which never starts with TRACE) passes through.
fn strip_trace_verb(sql: &str) -> Option<&str> {
    sql.get(..5)
        .filter(|verb| verb.eq_ignore_ascii_case("TRACE"))?;
    let tail = &sql[5..];
    if tail.starts_with(char::is_whitespace) {
        Some(tail.trim_start())
    } else {
        None
    }
}

/// Recognizes `KILL <qid>`: `Some(Ok(qid))` for a well-formed kill,
/// `Some(Err(arg))` when the verb is present but the id is not a
/// number, `None` for anything else (ordinary SQL never starts with
/// KILL).
fn parse_kill_verb(sql: &str) -> Option<Result<u64, String>> {
    sql.get(..4)
        .filter(|verb| verb.eq_ignore_ascii_case("KILL"))?;
    let tail = &sql[4..];
    if !tail.starts_with(char::is_whitespace) {
        return None;
    }
    let arg = tail.trim();
    Some(arg.parse::<u64>().map_err(|_| arg.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kill_verb_parses() {
        assert_eq!(parse_kill_verb("KILL 42"), Some(Ok(42)));
        assert_eq!(parse_kill_verb("kill  7"), Some(Ok(7)));
        assert_eq!(parse_kill_verb("KILL abc"), Some(Err("abc".to_string())));
        assert_eq!(parse_kill_verb("KILLER 1"), None);
        assert_eq!(parse_kill_verb("SELECT 1"), None);
    }

    #[test]
    fn trace_verb_strips() {
        assert_eq!(strip_trace_verb("TRACE SELECT 1"), Some("SELECT 1"));
        assert_eq!(strip_trace_verb("trace  SELECT 1"), Some("SELECT 1"));
        assert_eq!(strip_trace_verb("TRACER x"), None);
        assert_eq!(strip_trace_verb("SELECT 1"), None);
    }

    #[test]
    fn splitter_yields_statements_across_pushes() {
        let mut s = StatementSplitter::default();
        s.push(b"SELECT 1");
        assert!(s.next_statement().is_none());
        s.push(b" + 1; SELECT");
        assert_eq!(s.next_statement().as_deref(), Some("SELECT 1 + 1"));
        assert!(s.next_statement().is_none());
        s.push(b" 2;;  ;");
        assert_eq!(s.next_statement().as_deref(), Some("SELECT 2"));
        assert!(s.next_statement().is_none(), "empty statements skipped");
        assert!(!s.overflowed());
    }
}
