//! TCP front door — the MySQL Proxy stand-in.
//!
//! Paper §5.4: "A MySQL Proxy wraps the qserv frontend so that queries
//! can be submitted using any MySQL-compatible client or library."
//! Speaking the real MySQL wire protocol would reproduce an artifact of
//! the prototyping shortcut rather than the design; this crate provides
//! the equivalent *capability* — submit SQL over a socket from any
//! process — through a small self-describing line protocol built for
//! **streaming**: results come back as incremental row blocks while
//! later chunks are still scanning.
//!
//! ```text
//! client:  <sql terminated by ';'>
//! server:  COLS  <name>\t<name>…
//!          TYPES <int|float|str|null>\t…   (may be re-sent mid-stream
//!                                           when a later chunk widens a
//!                                           column — re-coerce held
//!                                           rows Int → Float, exact)
//!          ROWS <n>                        (then n raw TSV row lines;
//!          <value>\t<value>…                the block is atomic and
//!          …                                repeats as batches fold)
//!          TRACE <json>           (only for `TRACE <sql>;` requests)
//!          END <rows> <chunks dispatched> <result bytes> <hit|miss|off>
//!    or:   ERR <message>          (may arrive mid-stream — discard any
//!                                  rows already received; the session
//!                                  itself stays usable)
//!    or:   BUSY <retry_after_ms>  (admission queue full — back off and
//!                                  resubmit; see [`retry::RetryPolicy`])
//! ```
//!
//! # BUSY and client backoff
//!
//! `BUSY <retry_after_ms>` is a normal operating mode, not an error:
//! the admission queue shed the statement and the session stays usable.
//! A polite client resubmits after the hinted delay under a jittered
//! exponential backoff — [`retry::RetryPolicy`], configurable per
//! client via [`client::ClientBuilder::retry_policy`] and applied by
//! [`client::ProxyClient::query_with_retry`]. The defaults:
//!
//! | knob         | default | meaning                                   |
//! |--------------|---------|-------------------------------------------|
//! | `max_retries`| 10      | retries after the first attempt           |
//! | `floor`      | 1 ms    | lower bound on any sleep (covers hint 0)  |
//! | `cap`        | 2 s     | upper bound on any sleep                  |
//! | `multiplier` | 2.0     | per-`BUSY` growth of the hint's scale     |
//! | `jitter`     | 0.5     | fraction of each sleep randomized *away*  |
//! | `seed`       | fixed   | jitter sequence; vary per client in fleets|
//!
//! Each sleep starts from the server's `retry_after_ms` hint (clamped
//! to `floor`), scales by `multiplier` per successive `BUSY`, caps at
//! `cap`, and is jittered strictly *downward* — so the hint and the cap
//! both remain honest upper bounds, and a fleet of clients with
//! distinct seeds ([`retry::RetryPolicy::seeded`]) spreads out instead
//! of resubmitting in lockstep.
//!
//! The trailing `END` word reports how the server's normalized-query
//! result cache participated: `hit` (replayed without executing),
//! `miss` (executed, possibly populating), or `off` (caching disabled
//! or the statement not cacheable).
//!
//! **Multiplexing.** A statement may carry a `#<sid>` tag
//! (`#3 SELECT …;`). Tagged statements run *concurrently* on one
//! connection and every response frame line comes back prefixed with
//! the same tag (`#3 ROWS 2` — the `<n>` raw row lines that follow a
//! tagged `ROWS` header are untagged; the block is atomic). Untagged
//! statements keep the classic strict request/response contract: one at
//! a time per connection, in order, with untagged frames — so a client
//! that never tags never sees a tag. `BUSY` under multiplexing rejects
//! only the tagged statement it answers; other in-flight statements on
//! the connection are untouched.
//!
//! Prefixing a statement with `TRACE ` runs it under a fresh query
//! trace (see `qserv::Qserv::query_traced`); the span tree comes back
//! as one line of compact JSON in the `TRACE` frame.
//!
//! Two session verbs answer as ordinary result tables, so any client
//! that can read a query response can drive them:
//!
//! * `KILL <qid>;` — cancel a query by service-wide id: columns
//!   `qid, outcome` where outcome is `cancelled` (was still queued),
//!   `cancelling` (running; stops at the next chunk boundary),
//!   `finished`, or `unknown`.
//! * `STATUS;` — the service's query registry: columns
//!   `qid, class, state, wait_ms, run_ms, sql`.
//!
//! Values are TSV-escaped (`\t`, `\n`, `\\`); SQL NULL is `\N`, MySQL's
//! batch-output convention. Statements are capped at
//! [`protocol::MAX_STATEMENT_BYTES`]; exceeding it without completing a
//! statement closes the connection after an `ERR`.
//!
//! [`server::ProxyServer`] multiplexes every connection on **one
//! event loop** (see [`server::ServerMode`]) with per-connection write
//! backpressure: a slow reader stalls its own query's merge instead of
//! buffering the result in proxy memory. Every session submits through
//! one shared `qserv::service::QueryService`: admission control, fair
//! scheduling, and the result cache apply *across* sessions, and any
//! session may `KILL` or `STATUS` the queries of every other.
//! [`client::ProxyClient`] turns the stream back into a typed
//! [`ResultTable`] — or yields it incrementally via
//! [`client::ProxyClient::query_stream`].

pub mod client;
pub mod protocol;
pub mod retry;
pub mod server;

pub use client::{ClientBuilder, ProxyClient, QueryStream, RemoteStats, WireBatch};
pub use qserv_engine::exec::ResultTable;
pub use retry::RetryPolicy;
pub use server::{ProxyServer, ServerMode};
