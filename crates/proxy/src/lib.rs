//! TCP front door — the MySQL Proxy stand-in.
//!
//! Paper §5.4: "A MySQL Proxy wraps the qserv frontend so that queries
//! can be submitted using any MySQL-compatible client or library."
//! Speaking the real MySQL wire protocol would reproduce an artifact of
//! the prototyping shortcut rather than the design; this crate provides
//! the equivalent *capability* — submit SQL over a socket from any
//! process — through a small self-describing line protocol:
//!
//! ```text
//! client:  <sql terminated by ';' and newline>
//! server:  COLS  <name>\t<name>…
//!          TYPES <int|float|str>\t…
//!          ROW   <value>\t<value>…          (one line per row)
//!          TRACE <json>           (only for `TRACE <sql>;` requests)
//!          OK <row count> <chunks dispatched> <result bytes>
//!    or:   ERR <message>
//!    or:   BUSY <retry_after_ms>  (admission queue full — back off,
//!                                  resubmit; the session stays usable)
//! ```
//!
//! Prefixing a statement with `TRACE ` runs it under a fresh query trace
//! (see `qserv::Qserv::query_traced`); the resulting span tree comes back
//! as one line of compact JSON in the `TRACE` frame.
//!
//! Two session verbs answer as ordinary result tables, so any client
//! that can read a query response can drive them:
//!
//! * `KILL <qid>;` — cancel a query by service-wide id: columns
//!   `qid, outcome` where outcome is `cancelled` (was still queued),
//!   `cancelling` (running; stops at the next chunk boundary),
//!   `finished`, or `unknown`.
//! * `STATUS;` — the service's query registry: columns
//!   `qid, class, state, wait_ms, run_ms, sql`.
//!
//! Values are TSV-escaped (`\t`, `\n`, `\\`); SQL NULL is `\N`, MySQL's
//! batch-output convention. [`server::ProxyServer`] runs one thread per
//! connection, and every session submits through one shared
//! `qserv::service::QueryService`: admission control and fair
//! scheduling apply *across* sessions, and any session may `KILL` or
//! `STATUS` the queries of every other. [`client::ProxyClient`] turns
//! the stream back into a typed [`ResultTable`].

pub mod client;
pub mod protocol;
pub mod server;

pub use client::ProxyClient;
pub use qserv_engine::exec::ResultTable;
pub use server::ProxyServer;
