//! Property tests for the on-disk columnar chunk format: encode → decode
//! must be **bit-identical** for every table, including NULL masks, NaN
//! payload bits, signed zeros and infinities, across every page size and
//! encoding (plain / RLE / dictionary). A committed golden fixture pins
//! the format itself: if the reader ever stops decoding files written by
//! today's writer, `golden_chunk_file_decodes` fails.

use proptest::collection;
use proptest::option;
use proptest::prelude::*;
use qserv_engine::schema::{ColumnDef, ColumnType, Schema};
use qserv_engine::table::Table;
use qserv_engine::value::Value;
use qserv_engine::{tables_bit_identical, write_table, ChunkFile, StreamWriter};
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "qserv-storage-rt-{}-{name}.qchunk",
        std::process::id()
    ));
    p
}

fn mixed_schema() -> Schema {
    Schema::new(vec![
        ColumnDef::new("id", ColumnType::Int),
        ColumnDef::new("flux", ColumnType::Float),
        ColumnDef::new("tag", ColumnType::Str),
    ])
}

/// Builds a table from per-row cells; `None` becomes SQL NULL and float
/// cells carry raw IEEE-754 bit patterns so NaN payloads survive intact.
fn build_mixed(rows: &[(Option<i64>, Option<u64>, Option<String>)]) -> Table {
    let mut t = Table::new(mixed_schema());
    for (i, f, s) in rows {
        t.push_row(vec![
            i.map_or(Value::Null, Value::Int),
            f.map_or(Value::Null, |bits| Value::Float(f64::from_bits(bits))),
            s.clone().map_or(Value::Null, Value::Str),
        ])
        .unwrap();
    }
    t
}

fn roundtrip(name: &str, table: &Table, page_rows: usize) -> Table {
    let path = tmp(name);
    write_table(&path, table, page_rows).unwrap();
    let decoded = ChunkFile::open(&path).unwrap().read_all().unwrap();
    let _ = std::fs::remove_file(&path);
    decoded
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary cell contents — raw float bit patterns reach every NaN
    /// payload, both zeros, both infinities and all subnormals.
    #[test]
    fn roundtrip_arbitrary_cells(
        rows in collection::vec(
            (option::of(any::<i64>()), option::of(any::<u64>()), option::of("[a-z]{0,8}")),
            0..160,
        ),
        page_rows in 1usize..48,
    ) {
        let table = build_mixed(&rows);
        let decoded = roundtrip("arb", &table, page_rows);
        prop_assert!(tables_bit_identical(&decoded, &table));
    }

    /// Low-cardinality columns force the RLE and dictionary encodings.
    #[test]
    fn roundtrip_low_cardinality(
        ints in collection::vec(option::of(0i64..4), 0..300),
        tags in collection::vec(option::of(0usize..3), 0..300),
        page_rows in 1usize..40,
    ) {
        let names = ["u", "g", "r"];
        let mut t = Table::new(Schema::new(vec![
            ColumnDef::new("k", ColumnType::Int),
            ColumnDef::new("band", ColumnType::Str),
        ]));
        let n = ints.len().max(tags.len());
        for row in 0..n {
            t.push_row(vec![
                ints.get(row).copied().flatten().map_or(Value::Null, Value::Int),
                tags.get(row).copied().flatten()
                    .map_or(Value::Null, |i| Value::Str(names[i].to_string())),
            ]).unwrap();
        }
        let decoded = roundtrip("lowcard", &t, page_rows);
        prop_assert!(tables_bit_identical(&decoded, &t));
    }

    /// The streaming writer and the bulk writer produce files that decode
    /// to the same table — one page stripe in memory is not a different
    /// format, just a different producer.
    #[test]
    fn stream_writer_matches_bulk_writer(
        rows in collection::vec(
            (option::of(any::<i64>()), option::of(any::<u64>()), option::of("[a-z]{0,6}")),
            0..120,
        ),
        page_rows in 1usize..32,
    ) {
        let table = build_mixed(&rows);
        let path = tmp("streamed");
        let mut w = StreamWriter::create(&path, mixed_schema(), page_rows).unwrap();
        for row in 0..table.num_rows() {
            w.push_row((0..3).map(|c| table.get(row, c)).collect()).unwrap();
        }
        prop_assert_eq!(w.rows_written(), table.num_rows() as u64);
        w.finish().unwrap();
        let decoded = ChunkFile::open(&path).unwrap().read_all().unwrap();
        let _ = std::fs::remove_file(&path);
        prop_assert!(tables_bit_identical(&decoded, &table));
    }
}

/// Hand-picked IEEE-754 edge cases that a float-roundtrip through text or
/// `as`-casts would destroy: quiet/signaling NaN payloads, signed zeros,
/// infinities, subnormals, and the extreme finite magnitudes.
#[test]
fn roundtrip_float_edge_bits() {
    let bits = [
        0x7ff8_0000_0000_0000u64, // canonical quiet NaN
        0x7ff8_dead_beef_cafe,    // quiet NaN with payload
        0xfff0_0000_0000_0001,    // negative signaling NaN
        0x7ff0_0000_0000_0000,    // +inf
        0xfff0_0000_0000_0000,    // -inf
        0x8000_0000_0000_0000,    // -0.0
        0x0000_0000_0000_0000,    // +0.0
        0x0000_0000_0000_0001,    // smallest subnormal
        0x7fef_ffff_ffff_ffff,    // f64::MAX
        0x0010_0000_0000_0000,    // smallest normal
    ];
    let rows: Vec<_> = bits
        .iter()
        .enumerate()
        .map(|(i, &b)| (Some(i as i64), Some(b), None))
        .collect();
    let table = build_mixed(&rows);
    for page_rows in [1, 3, 16] {
        let decoded = roundtrip("edges", &table, page_rows);
        assert!(
            tables_bit_identical(&decoded, &table),
            "page_rows={page_rows}"
        );
    }
}

/// The deterministic table the golden fixture encodes: every column type,
/// every encoding trigger (runs for RLE, small sets for dictionaries,
/// high-entropy values for plain), NULLs in each column, and float edge
/// bits — spread over several row groups (page_rows = 7).
fn golden_table() -> Table {
    let mut t = Table::new(Schema::new(vec![
        ColumnDef::new("objectId", ColumnType::Int),
        ColumnDef::new("runLen", ColumnType::Int),
        ColumnDef::new("flux", ColumnType::Float),
        ColumnDef::new("filter", ColumnType::Str),
        ColumnDef::new("note", ColumnType::Str),
    ]));
    let filters = ["u", "g", "r", "i", "z", "y"];
    for i in 0..53i64 {
        let object_id = if i % 11 == 0 {
            Value::Null
        } else {
            Value::Int(i * 7_919 - 101)
        };
        let run = Value::Int(i / 13); // long runs -> RLE
        let flux = match i % 9 {
            0 => Value::Null,
            1 => Value::Float(f64::from_bits(0x7ff8_dead_beef_0000)),
            2 => Value::Float(f64::NEG_INFINITY),
            3 => Value::Float(-0.0),
            _ => Value::Float((i as f64) * -3.25 + 0.125),
        };
        let filter = Value::Str(filters[(i as usize) % filters.len()].to_string());
        let note = if i % 5 == 0 {
            Value::Null
        } else {
            Value::Str(format!("n{:04}", i * 31 % 977))
        };
        t.push_row(vec![object_id, run, flux, filter, note])
            .unwrap();
    }
    t
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("data")
        .join("golden.qchunk")
}

/// Format-stability check: the committed fixture (written by the writer
/// as of the format's introduction) must keep decoding to exactly
/// [`golden_table`]. Run `cargo test -p qserv-engine regenerate_golden --
/// --ignored` after an *intentional* format change.
#[test]
fn golden_chunk_file_decodes() {
    let file = ChunkFile::open(&golden_path()).expect("open committed golden fixture");
    assert_eq!(file.rows(), 53);
    let decoded = file.read_all().expect("decode golden fixture");
    assert!(
        tables_bit_identical(&decoded, &golden_table()),
        "golden fixture no longer decodes bit-identically — format drift"
    );
}

/// Rewrites the golden fixture with the current writer. Ignored by
/// default; run explicitly only when the format changes on purpose.
#[test]
#[ignore]
fn regenerate_golden() {
    let path = golden_path();
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    write_table(&path, &golden_table(), 7).unwrap();
}
