//! `mysqldump`-style result transfer.
//!
//! Paper §5.4: "Results from a chunk query are transferred as SQL
//! statements. The worker executes mysqldump on the result table and the
//! resulting byte stream is read byte-for-byte by the master, which
//! executes the SQL statements to load results into its local database."
//! This module is both ends of that pipe: [`dump_table`] renders a result
//! table as `CREATE TABLE` + batched `INSERT` statements, and [`load_dump`]
//! parses such a stream back into a [`Table`]. The paper calls out the
//! overhead of this text round-trip (§7.1) — the bench crate's
//! `ablation_transfer` measures it.

use crate::schema::{ColumnDef, ColumnType, Schema};
use crate::table::Table;
use crate::value::Value;
use qserv_sqlparse::lexer::{tokenize, Token, TokenKind};
use std::fmt;
use std::fmt::Write as _;

/// Rows per INSERT statement in a dump (mysqldump batches similarly via
/// `--extended-insert`).
const ROWS_PER_INSERT: usize = 256;

/// Errors from parsing a dump stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DumpError {
    /// Description of the malformed input.
    pub message: String,
}

impl fmt::Display for DumpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dump error: {}", self.message)
    }
}

impl std::error::Error for DumpError {}

fn sql_type(ty: ColumnType) -> &'static str {
    match ty {
        ColumnType::Int => "BIGINT",
        ColumnType::Float => "DOUBLE",
        ColumnType::Str => "TEXT",
    }
}

/// Serializes `table` as SQL text creating and populating `name`.
pub fn dump_table(name: &str, table: &Table) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "-- qserv result dump");
    let _ = write!(out, "CREATE TABLE `{name}` (");
    for (i, c) in table.schema().columns().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "`{}` {}", c.name, sql_type(c.ty));
    }
    out.push_str(");\n");

    let mut r = 0;
    while r < table.num_rows() {
        let _ = write!(out, "INSERT INTO `{name}` VALUES ");
        let end = (r + ROWS_PER_INSERT).min(table.num_rows());
        for (k, row) in (r..end).enumerate() {
            if k > 0 {
                out.push(',');
            }
            out.push('(');
            for (i, v) in table.row(row).iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{v}");
            }
            out.push(')');
        }
        out.push_str(";\n");
        r = end;
    }
    out
}

/// Parses a dump produced by [`dump_table`] back into a table and its
/// name. Tolerates arbitrary whitespace, comments and INSERT batching, so
/// any dump with this statement shape loads — not just our own output.
pub fn load_dump(sql: &str) -> Result<(String, Table), DumpError> {
    let tokens = tokenize(sql).map_err(|e| DumpError {
        message: format!("bad token: {e}"),
    })?;
    let mut p = DumpParser { tokens, pos: 0 };
    let (name, schema) = p.create_table()?;
    let mut table = Table::new(schema);
    while p.peek().is_some() {
        p.insert_into(&name, &mut table)?;
    }
    Ok((name, table))
}

struct DumpParser {
    tokens: Vec<Token>,
    pos: usize,
}

impl DumpParser {
    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn bump(&mut self) -> Option<TokenKind> {
        let t = self.tokens.get(self.pos).map(|t| t.kind.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, DumpError> {
        Err(DumpError {
            message: message.into(),
        })
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), DumpError> {
        match self.bump() {
            Some(k) if k.is_kw(kw) => Ok(()),
            other => self.err(format!("expected {kw}, got {other:?}")),
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<(), DumpError> {
        match self.bump() {
            Some(k) if k == kind => Ok(()),
            other => self.err(format!("expected {kind:?}, got {other:?}")),
        }
    }

    fn ident(&mut self) -> Result<String, DumpError> {
        match self.bump() {
            Some(TokenKind::Ident(s)) | Some(TokenKind::QuotedIdent(s)) => Ok(s),
            other => self.err(format!("expected identifier, got {other:?}")),
        }
    }

    fn create_table(&mut self) -> Result<(String, Schema), DumpError> {
        self.expect_kw("create")?;
        self.expect_kw("table")?;
        let name = self.ident()?;
        self.expect(TokenKind::LParen)?;
        let mut defs = Vec::new();
        loop {
            let col = self.ident()?;
            let ty_name = self.ident()?;
            let ty = match ty_name.to_ascii_uppercase().as_str() {
                "BIGINT" | "INT" | "INTEGER" => ColumnType::Int,
                "DOUBLE" | "FLOAT" | "REAL" => ColumnType::Float,
                "TEXT" | "VARCHAR" | "CHAR" => ColumnType::Str,
                other => return self.err(format!("unknown column type {other}")),
            };
            defs.push(ColumnDef::new(&col, ty));
            match self.bump() {
                Some(TokenKind::Comma) => continue,
                Some(TokenKind::RParen) => break,
                other => return self.err(format!("expected ',' or ')', got {other:?}")),
            }
        }
        self.expect(TokenKind::Semicolon)?;
        Ok((name, Schema::new(defs)))
    }

    fn insert_into(&mut self, name: &str, table: &mut Table) -> Result<(), DumpError> {
        self.expect_kw("insert")?;
        self.expect_kw("into")?;
        let target = self.ident()?;
        if target != name {
            return self.err(format!("INSERT into {target}, expected {name}"));
        }
        self.expect_kw("values")?;
        loop {
            self.expect(TokenKind::LParen)?;
            let mut row = Vec::with_capacity(table.schema().len());
            loop {
                row.push(self.value()?);
                match self.bump() {
                    Some(TokenKind::Comma) => continue,
                    Some(TokenKind::RParen) => break,
                    other => return self.err(format!("expected ',' or ')', got {other:?}")),
                }
            }
            table.push_row(row).map_err(|e| DumpError {
                message: e.to_string(),
            })?;
            match self.bump() {
                Some(TokenKind::Comma) => continue,
                Some(TokenKind::Semicolon) => break,
                other => return self.err(format!("expected ',' or ';', got {other:?}")),
            }
        }
        Ok(())
    }

    fn value(&mut self) -> Result<Value, DumpError> {
        let negative = if self.peek() == Some(&TokenKind::Minus) {
            self.pos += 1;
            true
        } else {
            false
        };
        match self.bump() {
            Some(TokenKind::Number(n)) => {
                // Parse sign and magnitude together: i64::MIN's magnitude
                // does not fit in i64, so negating after parsing would
                // reject it.
                let text = if negative { format!("-{n}") } else { n };
                if !text.contains('.') && !text.contains(['e', 'E']) {
                    let v: i64 = text.parse().map_err(|_| DumpError {
                        message: format!("bad integer {text}"),
                    })?;
                    Ok(Value::Int(v))
                } else {
                    let v: f64 = text.parse().map_err(|_| DumpError {
                        message: format!("bad float {text}"),
                    })?;
                    Ok(Value::Float(v))
                }
            }
            Some(TokenKind::Str(s)) if !negative => Ok(Value::Str(s)),
            Some(TokenKind::Ident(w)) if !negative && w.eq_ignore_ascii_case("null") => {
                Ok(Value::Null)
            }
            other => self.err(format!("expected value, got {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(Schema::new(vec![
            ColumnDef::new("objectId", ColumnType::Int),
            ColumnDef::new("ra_PS", ColumnType::Float),
            ColumnDef::new("note", ColumnType::Str),
        ]));
        t.push_row(vec![
            Value::Int(-7),
            Value::Float(10.25),
            Value::Str("it's".into()),
        ])
        .unwrap();
        t.push_row(vec![Value::Int(8), Value::Null, Value::Str(String::new())])
            .unwrap();
        t
    }

    #[test]
    fn round_trip_preserves_everything() {
        let t = sample();
        let text = dump_table("result_ab12", &t);
        let (name, loaded) = load_dump(&text).unwrap();
        assert_eq!(name, "result_ab12");
        assert_eq!(loaded.num_rows(), t.num_rows());
        for r in 0..t.num_rows() {
            assert_eq!(loaded.row(r), t.row(r));
        }
        assert_eq!(loaded.schema(), t.schema());
    }

    #[test]
    fn empty_table_round_trips() {
        let t = Table::new(Schema::new(vec![ColumnDef::new("x", ColumnType::Int)]));
        let text = dump_table("empty", &t);
        let (_, loaded) = load_dump(&text).unwrap();
        assert_eq!(loaded.num_rows(), 0);
        assert_eq!(loaded.schema().len(), 1);
    }

    #[test]
    fn batching_splits_inserts() {
        let mut t = Table::new(Schema::new(vec![ColumnDef::new("x", ColumnType::Int)]));
        for i in 0..600 {
            t.push_row(vec![Value::Int(i)]).unwrap();
        }
        let text = dump_table("big", &t);
        assert_eq!(text.matches("INSERT INTO").count(), 3); // 256+256+88
        let (_, loaded) = load_dump(&text).unwrap();
        assert_eq!(loaded.num_rows(), 600);
        assert_eq!(loaded.get(599, 0), Value::Int(599));
    }

    #[test]
    fn float_precision_survives() {
        let mut t = Table::new(Schema::new(vec![ColumnDef::new("v", ColumnType::Float)]));
        for v in [std::f64::consts::PI, 1e-300, -2.5e17, 0.1 + 0.2] {
            t.push_row(vec![Value::Float(v)]).unwrap();
        }
        let (_, loaded) = load_dump(&dump_table("f", &t)).unwrap();
        for r in 0..t.num_rows() {
            assert_eq!(
                loaded.get(r, 0),
                t.get(r, 0),
                "row {r} must round-trip exactly"
            );
        }
    }

    #[test]
    fn extreme_integers_round_trip() {
        let mut t = Table::new(Schema::new(vec![ColumnDef::new("v", ColumnType::Int)]));
        for v in [i64::MIN, i64::MIN + 1, -1, 0, i64::MAX] {
            t.push_row(vec![Value::Int(v)]).unwrap();
        }
        let (_, loaded) = load_dump(&dump_table("x", &t)).unwrap();
        for r in 0..t.num_rows() {
            assert_eq!(loaded.get(r, 0), t.get(r, 0));
        }
    }

    #[test]
    fn string_quotes_escaped() {
        let mut t = Table::new(Schema::new(vec![ColumnDef::new("s", ColumnType::Str)]));
        t.push_row(vec![Value::Str("a'b''c".into())]).unwrap();
        let (_, loaded) = load_dump(&dump_table("s", &t)).unwrap();
        assert_eq!(loaded.get(0, 0), Value::Str("a'b''c".into()));
    }

    #[test]
    fn malformed_dumps_rejected() {
        assert!(load_dump("").is_err());
        assert!(load_dump("CREATE TABLE t (x BIGINT)").is_err()); // missing ;
        assert!(load_dump("CREATE TABLE t (x WIDGET);").is_err());
        assert!(
            load_dump("CREATE TABLE t (x BIGINT);\nINSERT INTO u VALUES (1);").is_err(),
            "INSERT into a different table must be rejected"
        );
        assert!(load_dump("CREATE TABLE t (x BIGINT);\nINSERT INTO t VALUES (1, 2);").is_err());
    }

    #[test]
    fn foreign_but_wellformed_dump_loads() {
        // Hand-written dump with different spacing/case than ours.
        let text = "create table R ( a bigint , b double , c text );\n\
                    insert into R values ( 1 , 2.5 , 'x' ) , ( -2 , -0.5 , NULL );";
        let (name, t) = load_dump(text).unwrap();
        assert_eq!(name, "R");
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.get(1, 0), Value::Int(-2));
        assert_eq!(t.get(1, 2), Value::Null);
    }
}
