//! Embedded per-worker SQL execution engine — the MySQL substitute.
//!
//! The original Qserv delegates per-chunk query execution to a MySQL server
//! on each worker (paper §5.1.1), deliberately staying loosely coupled:
//! "Qserv's design and implementation do not depend on specifics of MySQL
//! beyond glue code facilitating results transmission." This crate is that
//! pluggable engine, built from scratch:
//!
//! * [`value`] — the dynamic [`value::Value`] type with SQL (three-valued)
//!   comparison and arithmetic semantics.
//! * [`schema`] — column types and table schemas.
//! * [`table`] — columnar table storage with an optional integer
//!   primary-key index (the per-chunk `objectId` index of paper §5.5).
//! * [`functions`] — scalar UDFs installed on every worker: `fluxToAbMag`,
//!   `abMagToFlux`, `qserv_angSep`, `qserv_ptInSphericalBox` (paper §5.3).
//! * [`eval`] — expression evaluation over row bindings.
//! * [`exec`] — the query executor: filtered scans, index lookups,
//!   hash-equi-joins and nested-loop spatial joins, grouping/aggregation,
//!   ordering, projection. Single-table scans run on a vectorized path
//!   ([`compile`] + [`vector`]) when compilable, with the interpreter as
//!   fallback and semantic oracle.
//! * [`compile`] — per-query compilation of predicates and projections
//!   into columnar kernels and flat programs.
//! * [`vector`] — columnar kernel execution over selection vectors.
//! * [`joinvec`] — the vectorized near-neighbor join: precomputed unit
//!   vectors, declination-window pruning and a tight chord-distance loop
//!   for `qserv_angSep(...) < r` two-table predicates (worker-side
//!   near-neighbor self-joins and XMatch statements).
//! * [`dump`] — `mysqldump`-style result serialization: result tables
//!   travel from worker to master as SQL text and are re-loaded by
//!   executing it (paper §5.4 "Query Results Transfer").
//! * [`db`] — a named collection of tables (one per worker in Qserv;
//!   chunk tables are named `Object_CC`, subchunk tables
//!   `Object_CC_SS`, exactly as in paper §5.2).
//! * [`storage`] — the persistent columnar chunk format: per-column
//!   pages with dictionary/RLE encodings and zone maps, lazy chunk
//!   residency with an LRU byte budget, and zone-map page elision
//!   feeding the vectorized scan path (paper §4.3, §5.2).

pub(crate) mod compile;
pub mod db;
pub mod dump;
pub mod eval;
pub mod exec;
pub mod functions;
pub(crate) mod joinvec;
pub mod schema;
pub mod storage;
pub mod table;
pub mod value;
pub(crate) mod vector;

pub use db::Database;
pub use exec::{
    execute, execute_detailed, execute_traced, execute_with_mode, ExecError, ExecMode, ExecPath,
    ResultTable, ScanStats,
};
pub use schema::{ColumnDef, ColumnType, Schema};
pub use storage::{
    tables_bit_identical, write_table, ChunkFile, ColumnSummary, Residency, StoredChunk,
    StreamWriter, DEFAULT_PAGE_ROWS, DEFAULT_RESIDENCY_BUDGET,
};
pub use table::Table;
pub use value::Value;
