//! Columnar execution of a compiled [`VecPlan`].
//!
//! Filtering builds a selection vector of passing row ids: the first
//! kernel (or the objectId index seed) produces it, each later kernel
//! narrows it, and output production — projection or aggregation — runs
//! only over the survivors. Kernels read the table's dense column
//! vectors directly; general predicates and projections run as flat
//! postfix programs with an explicit value stack, reused across rows.
//!
//! Programs compiled by [`crate::compile`] are infallible (every
//! interpreter error is excluded statically), so this module returns
//! plain values. Semantics — NULL handling, short-circuits, aggregate
//! accumulation — are bit-identical to the interpreter; the equivalence
//! property tests in `tests/vectorized.rs` enforce that.

use crate::compile::{GroupFused, Kernel, NumLit, Op, OutputPlan, Program, VecPlan};
use crate::eval::{truth, tv};
use crate::exec::{AggAcc, AggKind, RowSink};
use crate::functions;
use crate::table::{ColumnSlice, Table};
use crate::value::Value;
use qserv_sphgeom::{LonLat, Region};
use qserv_sqlparse::ast::BinaryOp;

/// Runs a compiled plan over `table`, feeding `sink`.
pub(crate) fn run(
    plan: &VecPlan,
    table: &Table,
    sink: &mut RowSink<'_>,
    quick_limit: Option<usize>,
) {
    let mut stack: Vec<Value> = Vec::new();

    // Selection vector.
    let (mut sel, rest): (Vec<u32>, &[Kernel]) = match (&plan.seed, plan.kernels.split_first()) {
        (Some(keys), _) => {
            let mut rows: Vec<u32> = keys
                .iter()
                .flat_map(|k| table.index_lookup(*k).iter().copied())
                .collect();
            rows.sort_unstable();
            rows.dedup();
            (rows, &plan.kernels)
        }
        (None, Some((first, more))) => (
            filter_rows(first, table, &mut stack, 0..table.num_rows() as u32),
            more,
        ),
        (None, None) => ((0..table.num_rows() as u32).collect(), &plan.kernels),
    };
    for k in rest {
        if sel.is_empty() {
            break;
        }
        sel = filter_rows(k, table, &mut stack, sel.iter().copied());
    }

    // Output.
    match &plan.output {
        OutputPlan::Plain { exprs } => {
            for &r in &sel {
                let row = exprs
                    .iter()
                    .map(|p| eval_program(p, table, r as usize, &mut stack))
                    .collect();
                sink.consume_plain_row(row);
                if sink.emitted_at_least(quick_limit) {
                    break;
                }
            }
        }
        OutputPlan::Agg {
            keys,
            args,
            rep,
            fused,
            fused_group,
        } => {
            if let Some(fargs) = fused {
                sink.install_global_group(fused_accumulate(fargs, table, &sel));
            } else if let Some(gf) = fused_group {
                run_grouped_fused(gf, rep, table, &sel, sink, &mut stack);
            } else {
                for &r in &sel {
                    let row = r as usize;
                    let key_vals: Vec<Value> = keys
                        .iter()
                        .map(|p| eval_program(p, table, row, &mut stack))
                        .collect();
                    let arg_vals: Vec<Option<Value>> = args
                        .iter()
                        .map(|a| a.as_ref().map(|p| eval_program(p, table, row, &mut stack)))
                        .collect();
                    let stack = &mut stack;
                    sink.consume_agg_row(key_vals, &arg_vals, move || {
                        rep.iter()
                            .map(|p| match p {
                                Some(prog) => eval_program(prog, table, row, stack),
                                None => Value::Null,
                            })
                            .collect()
                    });
                }
            }
        }
    }
}

/// Numeric column view: reads Int or Float storage as `f64`.
enum NumView<'a> {
    I(&'a [i64]),
    F(&'a [f64]),
}

impl NumView<'_> {
    fn new(table: &Table, col: usize) -> NumView<'_> {
        match table.column_slice(col) {
            ColumnSlice::Int(v) => NumView::I(v),
            ColumnSlice::Float(v) => NumView::F(v),
            ColumnSlice::Str(_) => unreachable!("compile guarantees a numeric column"),
        }
    }

    fn get(&self, i: usize) -> f64 {
        match self {
            NumView::I(v) => v[i] as f64,
            NumView::F(v) => v[i],
        }
    }
}

/// Lowers an optional bound to a concrete `f64` with strictness, using an
/// infinity sentinel for "absent" (non-strict compare against ±∞ admits
/// everything except NaN, and NaN fails every present bound anyway —
/// exactly the `partial_cmp → None → false` behavior of the slow path).
fn f64_bound(b: &Option<(NumLit, bool)>, absent: f64) -> (f64, bool) {
    match b {
        Some((NumLit::I(k), s)) => (*k as f64, *s),
        Some((NumLit::F(x), s)) => (*x, *s),
        None => (absent, false),
    }
}

/// Applies one kernel to a stream of row ids, returning the survivors.
fn filter_rows<I: Iterator<Item = u32>>(
    k: &Kernel,
    table: &Table,
    stack: &mut Vec<Value>,
    rows: I,
) -> Vec<u32> {
    match k {
        Kernel::Range { col, lo, hi } => {
            let nulls = table.null_mask(*col);
            match table.column_slice(*col) {
                ColumnSlice::Int(data) => {
                    let all_int = matches!(lo, None | Some((NumLit::I(_), _)))
                        && matches!(hi, None | Some((NumLit::I(_), _)));
                    if all_int {
                        // Pure-integer bounds compare exactly as i64
                        // (min/max sentinels for absent bounds are
                        // non-strict, so they admit everything).
                        let (lo_v, lo_s) = match lo {
                            Some((NumLit::I(k), s)) => (*k, *s),
                            _ => (i64::MIN, false),
                        };
                        let (hi_v, hi_s) = match hi {
                            Some((NumLit::I(k), s)) => (*k, *s),
                            _ => (i64::MAX, false),
                        };
                        rows.filter(|&r| {
                            let i = r as usize;
                            !nulls[i] && {
                                let v = data[i];
                                (if lo_s { v > lo_v } else { v >= lo_v })
                                    && (if hi_s { v < hi_v } else { v <= hi_v })
                            }
                        })
                        .collect()
                    } else {
                        // A float bound forces the f64 comparison sql_cmp
                        // uses for mixed Int/Float operands.
                        let (lo_v, lo_s) = f64_bound(lo, f64::NEG_INFINITY);
                        let (hi_v, hi_s) = f64_bound(hi, f64::INFINITY);
                        rows.filter(|&r| {
                            let i = r as usize;
                            !nulls[i] && {
                                let v = data[i] as f64;
                                (if lo_s { v > lo_v } else { v >= lo_v })
                                    && (if hi_s { v < hi_v } else { v <= hi_v })
                            }
                        })
                        .collect()
                    }
                }
                ColumnSlice::Float(data) => {
                    let (lo_v, lo_s) = f64_bound(lo, f64::NEG_INFINITY);
                    let (hi_v, hi_s) = f64_bound(hi, f64::INFINITY);
                    rows.filter(|&r| {
                        let i = r as usize;
                        !nulls[i] && {
                            let v = data[i];
                            (if lo_s { v > lo_v } else { v >= lo_v })
                                && (if hi_s { v < hi_v } else { v <= hi_v })
                        }
                    })
                    .collect()
                }
                ColumnSlice::Str(_) => unreachable!("range kernel over non-numeric column"),
            }
        }
        Kernel::IntIn { col, keys } => {
            let nulls = table.null_mask(*col);
            match table.column_slice(*col) {
                ColumnSlice::Int(data) => rows
                    .filter(|&r| {
                        !nulls[r as usize] && keys.binary_search(&data[r as usize]).is_ok()
                    })
                    .collect(),
                _ => unreachable!("IN kernel over non-integer column"),
            }
        }
        Kernel::Box2D { lon, lat, bx } => {
            let lon_nulls = table.null_mask(*lon);
            let lat_nulls = table.null_mask(*lat);
            let lon_v = NumView::new(table, *lon);
            let lat_v = NumView::new(table, *lat);
            rows.filter(|&r| {
                let i = r as usize;
                !lon_nulls[i]
                    && !lat_nulls[i]
                    && bx.contains(&LonLat::from_degrees(lon_v.get(i), lat_v.get(i)))
            })
            .collect()
        }
        Kernel::FnRange { fun, col, lo, hi } => {
            let nulls = table.null_mask(*col);
            let view = NumView::new(table, *col);
            let (lo_v, lo_s) = lo.unwrap_or((f64::NEG_INFINITY, false));
            let (hi_v, hi_s) = hi.unwrap_or((f64::INFINITY, false));
            rows.filter(|&r| {
                let i = r as usize;
                if nulls[i] {
                    return false; // NULL argument → NULL result → false.
                }
                match fun.apply(view.get(i)) {
                    // NaN results fail both comparisons, matching the
                    // interpreter's `sql_cmp → None → false`.
                    Some(m) => {
                        (if lo_s { m > lo_v } else { m >= lo_v })
                            && (if hi_s { m < hi_v } else { m <= hi_v })
                    }
                    None => false,
                }
            })
            .collect()
        }
        Kernel::Program(p) => rows
            .filter(|&r| truth(&eval_program(p, table, r as usize, stack)) == Some(true))
            .collect(),
    }
}

/// Evaluates a compiled program for one row. Infallible by construction
/// (see [`crate::compile`]).
pub(crate) fn eval_program(
    p: &Program,
    table: &Table,
    row: usize,
    stack: &mut Vec<Value>,
) -> Value {
    stack.clear();
    let ops = &p.ops;
    let mut pc = 0;
    while pc < ops.len() {
        match &ops[pc] {
            Op::PushCol(c) => stack.push(table.get(row, *c)),
            Op::PushLit(v) => stack.push(v.clone()),
            Op::Bin(op) => {
                let r = stack.pop().expect("program stack");
                let l = stack.pop().expect("program stack");
                stack.push(apply_bin(*op, &l, &r));
            }
            Op::AndJump(skip) => {
                let top = stack.last_mut().expect("program stack");
                if truth(top) == Some(false) {
                    *top = Value::Int(0);
                    pc += skip;
                }
            }
            Op::OrJump(skip) => {
                let top = stack.last_mut().expect("program stack");
                if truth(top) == Some(true) {
                    *top = Value::Int(1);
                    pc += skip;
                }
            }
            Op::AndFold => {
                let r = stack.pop().expect("program stack");
                let l = stack.pop().expect("program stack");
                stack.push(tv(match (truth(&l), truth(&r)) {
                    (_, Some(false)) => Some(false),
                    (Some(true), Some(true)) => Some(true),
                    _ => None,
                }));
            }
            Op::OrFold => {
                let r = stack.pop().expect("program stack");
                let l = stack.pop().expect("program stack");
                stack.push(tv(match (truth(&l), truth(&r)) {
                    (_, Some(true)) => Some(true),
                    (Some(false), Some(false)) => Some(false),
                    _ => None,
                }));
            }
            Op::Neg => {
                let v = stack.pop().expect("program stack");
                stack.push(v.neg());
            }
            Op::Not => {
                let v = stack.pop().expect("program stack");
                stack.push(tv(truth(&v).map(|b| !b)));
            }
            Op::Call { name, argc } => {
                let at = stack.len() - argc;
                let args = stack.split_off(at);
                let v = functions::call(name, &args).expect("compile-time validated call");
                stack.push(v);
            }
            Op::Between { negated } => {
                let hi = stack.pop().expect("program stack");
                let lo = stack.pop().expect("program stack");
                let v = stack.pop().expect("program stack");
                let inside = match (v.sql_cmp(&lo), v.sql_cmp(&hi)) {
                    (Some(a), Some(b)) => Some(a.is_ge() && b.is_le()),
                    _ => None,
                };
                stack.push(tv(if *negated { inside.map(|b| !b) } else { inside }));
            }
            Op::InList { negated, n } => {
                let at = stack.len() - n;
                let items = stack.split_off(at);
                let v = stack.pop().expect("program stack");
                let mut saw_null = false;
                let mut found = false;
                for it in &items {
                    match v.sql_eq(it) {
                        Some(true) => {
                            found = true;
                            break;
                        }
                        Some(false) => {}
                        None => saw_null = true,
                    }
                }
                let r = if found {
                    Some(true)
                } else if saw_null || v.is_null() {
                    None
                } else {
                    Some(false)
                };
                stack.push(tv(if *negated { r.map(|b| !b) } else { r }));
            }
            Op::IsNull { negated } => {
                let v = stack.pop().expect("program stack");
                stack.push(tv(Some(v.is_null() != *negated)));
            }
        }
        pc += 1;
    }
    stack.pop().expect("program leaves one value")
}

/// The interpreter's non-logical binary operator semantics.
fn apply_bin(op: BinaryOp, l: &Value, r: &Value) -> Value {
    match op {
        BinaryOp::Add => l.add(r),
        BinaryOp::Sub => l.sub(r),
        BinaryOp::Mul => l.mul(r),
        BinaryOp::Div => l.div(r),
        BinaryOp::Mod => l.rem(r),
        BinaryOp::Eq => tv(l.sql_eq(r)),
        BinaryOp::NotEq => tv(l.sql_eq(r).map(|b| !b)),
        BinaryOp::Lt => tv(l.sql_cmp(r).map(|o| o.is_lt())),
        BinaryOp::LtEq => tv(l.sql_cmp(r).map(|o| o.is_le())),
        BinaryOp::Gt => tv(l.sql_cmp(r).map(|o| o.is_gt())),
        BinaryOp::GtEq => tv(l.sql_cmp(r).map(|o| o.is_ge())),
        BinaryOp::And | BinaryOp::Or => unreachable!("compiled to jump + fold ops"),
    }
}

/// Fused grouped aggregation over a single integer key column.
///
/// A first pass over the selection assigns each row a dense group slot
/// (first-appearance order, matching the interpreter's `group_order`)
/// and captures each new group's key value and representative
/// projections; then every aggregate spec runs as one tight column loop.
/// Rows within a group are visited in selection order by both passes, so
/// every accumulator ends in the exact state sequential `update` calls
/// would have produced.
fn run_grouped_fused(
    gf: &GroupFused,
    rep: &[Option<Program>],
    table: &Table,
    sel: &[u32],
    sink: &mut RowSink<'_>,
    stack: &mut Vec<Value>,
) {
    let nulls = table.null_mask(gf.key_col);
    let ColumnSlice::Int(keys) = table.column_slice(gf.key_col) else {
        unreachable!("compile guarantees an integer key column");
    };

    let mut slot_of: std::collections::HashMap<i64, u32> = std::collections::HashMap::new();
    let mut null_slot: Option<u32> = None;
    let mut key_vals: Vec<Value> = Vec::new();
    let mut reps: Vec<Vec<Value>> = Vec::new();
    let mut gids: Vec<u32> = Vec::with_capacity(sel.len());
    for &r in sel {
        let i = r as usize;
        let mut new_slot = |key_val: Value, reps: &mut Vec<Vec<Value>>| -> u32 {
            let s = key_vals.len() as u32;
            key_vals.push(key_val);
            reps.push(
                rep.iter()
                    .map(|p| match p {
                        Some(prog) => eval_program(prog, table, i, stack),
                        None => Value::Null,
                    })
                    .collect(),
            );
            s
        };
        let slot = if nulls[i] {
            match null_slot {
                Some(s) => s,
                None => {
                    let s = new_slot(Value::Null, &mut reps);
                    null_slot = Some(s);
                    s
                }
            }
        } else {
            match slot_of.entry(keys[i]) {
                std::collections::hash_map::Entry::Occupied(e) => *e.get(),
                std::collections::hash_map::Entry::Vacant(e) => {
                    let s = new_slot(Value::Int(keys[i]), &mut reps);
                    e.insert(s);
                    s
                }
            }
        };
        gids.push(slot);
    }

    let nslots = key_vals.len();
    let mut per_group: Vec<Vec<AggAcc>> = (0..nslots)
        .map(|_| Vec::with_capacity(gf.args.len()))
        .collect();
    for (kind, col) in &gf.args {
        let accs = fused_group_one(*kind, *col, table, sel, &gids, nslots);
        for (g, a) in accs.into_iter().enumerate() {
            per_group[g].push(a);
        }
    }
    sink.install_groups(key_vals, per_group, reps);
}

/// One aggregate spec of a fused grouped aggregation: a tight loop over
/// the selection updating a per-slot accumulator array. Mirrors
/// [`fused_one`] exactly, indexed by group slot.
fn fused_group_one(
    kind: AggKind,
    col: Option<usize>,
    table: &Table,
    sel: &[u32],
    gids: &[u32],
    nslots: usize,
) -> Vec<AggAcc> {
    let fresh = || (0..nslots).map(|_| AggAcc::new(kind)).collect::<Vec<_>>();
    let Some(c) = col else {
        if kind == AggKind::CountStar {
            let mut counts = vec![0i64; nslots];
            for &g in gids {
                counts[g as usize] += 1;
            }
            return counts.into_iter().map(AggAcc::Count).collect();
        }
        return fresh();
    };
    let nulls = table.null_mask(c);
    match kind {
        AggKind::CountStar => {
            let mut counts = vec![0i64; nslots];
            for &g in gids {
                counts[g as usize] += 1;
            }
            counts.into_iter().map(AggAcc::Count).collect()
        }
        AggKind::Count => {
            let mut counts = vec![0i64; nslots];
            for (&r, &g) in sel.iter().zip(gids) {
                if !nulls[r as usize] {
                    counts[g as usize] += 1;
                }
            }
            counts.into_iter().map(AggAcc::Count).collect()
        }
        AggKind::Sum => match table.column_slice(c) {
            ColumnSlice::Int(data) => {
                let mut int = vec![0i64; nslots];
                let mut float = vec![0.0f64; nslots];
                let mut saw_any = vec![false; nslots];
                for (&r, &g) in sel.iter().zip(gids) {
                    let (i, g) = (r as usize, g as usize);
                    if !nulls[i] {
                        int[g] = int[g].saturating_add(data[i]);
                        float[g] += data[i] as f64;
                        saw_any[g] = true;
                    }
                }
                (0..nslots)
                    .map(|g| AggAcc::Sum {
                        int: int[g],
                        float: float[g],
                        saw_float: false,
                        saw_any: saw_any[g],
                    })
                    .collect()
            }
            ColumnSlice::Float(data) => {
                let mut float = vec![0.0f64; nslots];
                let mut saw_any = vec![false; nslots];
                for (&r, &g) in sel.iter().zip(gids) {
                    let (i, g) = (r as usize, g as usize);
                    if !nulls[i] {
                        float[g] += data[i];
                        saw_any[g] = true;
                    }
                }
                (0..nslots)
                    .map(|g| AggAcc::Sum {
                        int: 0,
                        float: float[g],
                        saw_float: saw_any[g],
                        saw_any: saw_any[g],
                    })
                    .collect()
            }
            // SUM of a string column never accumulates (as in `update`).
            ColumnSlice::Str(_) => fresh(),
        },
        AggKind::Avg => match table.column_slice(c) {
            ColumnSlice::Str(_) => fresh(),
            slice => {
                let v = match slice {
                    ColumnSlice::Int(data) => NumView::I(data),
                    ColumnSlice::Float(data) => NumView::F(data),
                    ColumnSlice::Str(_) => unreachable!("matched above"),
                };
                let mut sum = vec![0.0f64; nslots];
                let mut n = vec![0i64; nslots];
                for (&r, &g) in sel.iter().zip(gids) {
                    let (i, g) = (r as usize, g as usize);
                    if !nulls[i] {
                        sum[g] += v.get(i);
                        n[g] += 1;
                    }
                }
                (0..nslots)
                    .map(|g| AggAcc::Avg {
                        sum: sum[g],
                        n: n[g],
                    })
                    .collect()
            }
        },
        AggKind::Min | AggKind::Max => {
            let want_max = kind == AggKind::Max;
            match table.column_slice(c) {
                ColumnSlice::Int(data) => {
                    let mut best: Vec<Option<i64>> = vec![None; nslots];
                    for (&r, &g) in sel.iter().zip(gids) {
                        let (i, g) = (r as usize, g as usize);
                        if nulls[i] {
                            continue;
                        }
                        let better = match best[g] {
                            None => true,
                            Some(b) => {
                                if want_max {
                                    data[i] > b
                                } else {
                                    data[i] < b
                                }
                            }
                        };
                        if better {
                            best[g] = Some(data[i]);
                        }
                    }
                    best.into_iter()
                        .map(|b| AggAcc::MinMax {
                            best: b.map(Value::Int),
                            want_max,
                        })
                        .collect()
                }
                ColumnSlice::Float(data) => {
                    let mut best: Vec<Option<f64>> = vec![None; nslots];
                    for (&r, &g) in sel.iter().zip(gids) {
                        let (i, g) = (r as usize, g as usize);
                        if nulls[i] {
                            continue;
                        }
                        // partial_cmp None (NaN) is "not better", exactly
                        // like sql_cmp in `update`.
                        let better = match best[g] {
                            None => true,
                            Some(b) => data[i]
                                .partial_cmp(&b)
                                .map(|o| if want_max { o.is_gt() } else { o.is_lt() })
                                .unwrap_or(false),
                        };
                        if better {
                            best[g] = Some(data[i]);
                        }
                    }
                    best.into_iter()
                        .map(|b| AggAcc::MinMax {
                            best: b.map(Value::Float),
                            want_max,
                        })
                        .collect()
                }
                ColumnSlice::Str(data) => {
                    let mut best: Vec<Option<usize>> = vec![None; nslots];
                    for (&r, &g) in sel.iter().zip(gids) {
                        let (i, g) = (r as usize, g as usize);
                        if nulls[i] {
                            continue;
                        }
                        let better = match best[g] {
                            None => true,
                            Some(b) => {
                                let o = data[i].cmp(&data[b]);
                                if want_max {
                                    o.is_gt()
                                } else {
                                    o.is_lt()
                                }
                            }
                        };
                        if better {
                            best[g] = Some(i);
                        }
                    }
                    best.into_iter()
                        .map(|b| AggAcc::MinMax {
                            best: b.map(|i| Value::Str(data[i].clone())),
                            want_max,
                        })
                        .collect()
                }
            }
        }
    }
}

/// Fused ungrouped aggregation: per-aggregate tight loops straight off
/// the columns through the selection vector. Each accumulator finishes
/// in the exact state `AggAcc::update` would have left it in.
fn fused_accumulate(fargs: &[(AggKind, Option<usize>)], table: &Table, sel: &[u32]) -> Vec<AggAcc> {
    fargs
        .iter()
        .map(|(kind, col)| fused_one(*kind, *col, table, sel))
        .collect()
}

fn fused_one(kind: AggKind, col: Option<usize>, table: &Table, sel: &[u32]) -> AggAcc {
    let acc = AggAcc::new(kind);
    let Some(c) = col else {
        // COUNT(*) counts every selected row; any other argument-less
        // spec never updates (mirrors `update(None)`).
        if kind == AggKind::CountStar {
            return AggAcc::Count(sel.len() as i64);
        }
        return acc;
    };
    let nulls = table.null_mask(c);
    match kind {
        AggKind::CountStar => AggAcc::Count(sel.len() as i64),
        AggKind::Count => AggAcc::Count(sel.iter().filter(|&&r| !nulls[r as usize]).count() as i64),
        AggKind::Sum => match table.column_slice(c) {
            ColumnSlice::Int(data) => {
                let mut int = 0i64;
                let mut float = 0.0f64;
                let mut saw_any = false;
                for &r in sel {
                    let i = r as usize;
                    if !nulls[i] {
                        int = int.saturating_add(data[i]);
                        float += data[i] as f64;
                        saw_any = true;
                    }
                }
                AggAcc::Sum {
                    int,
                    float,
                    saw_float: false,
                    saw_any,
                }
            }
            ColumnSlice::Float(data) => {
                let mut float = 0.0f64;
                let mut saw_any = false;
                for &r in sel {
                    let i = r as usize;
                    if !nulls[i] {
                        float += data[i];
                        saw_any = true;
                    }
                }
                AggAcc::Sum {
                    int: 0,
                    float,
                    saw_float: saw_any,
                    saw_any,
                }
            }
            // SUM of a string column never accumulates (as in `update`).
            ColumnSlice::Str(_) => acc,
        },
        AggKind::Avg => match table.column_slice(c) {
            ColumnSlice::Str(_) => acc,
            slice => {
                let v = match slice {
                    ColumnSlice::Int(data) => NumView::I(data),
                    ColumnSlice::Float(data) => NumView::F(data),
                    ColumnSlice::Str(_) => unreachable!("matched above"),
                };
                let mut sum = 0.0f64;
                let mut n = 0i64;
                for &r in sel {
                    let i = r as usize;
                    if !nulls[i] {
                        sum += v.get(i);
                        n += 1;
                    }
                }
                AggAcc::Avg { sum, n }
            }
        },
        AggKind::Min | AggKind::Max => {
            let want_max = kind == AggKind::Max;
            let best = match table.column_slice(c) {
                ColumnSlice::Int(data) => {
                    let mut best: Option<i64> = None;
                    for &r in sel {
                        let i = r as usize;
                        if nulls[i] {
                            continue;
                        }
                        let better = match best {
                            None => true,
                            Some(b) => {
                                if want_max {
                                    data[i] > b
                                } else {
                                    data[i] < b
                                }
                            }
                        };
                        if better {
                            best = Some(data[i]);
                        }
                    }
                    best.map(Value::Int)
                }
                ColumnSlice::Float(data) => {
                    let mut best: Option<f64> = None;
                    for &r in sel {
                        let i = r as usize;
                        if nulls[i] {
                            continue;
                        }
                        // partial_cmp None (NaN) is "not better", exactly
                        // like sql_cmp in `update`.
                        let better = match best {
                            None => true,
                            Some(b) => data[i]
                                .partial_cmp(&b)
                                .map(|o| if want_max { o.is_gt() } else { o.is_lt() })
                                .unwrap_or(false),
                        };
                        if better {
                            best = Some(data[i]);
                        }
                    }
                    best.map(Value::Float)
                }
                ColumnSlice::Str(data) => {
                    let mut best: Option<usize> = None;
                    for &r in sel {
                        let i = r as usize;
                        if nulls[i] {
                            continue;
                        }
                        let better = match best {
                            None => true,
                            Some(b) => {
                                let o = data[i].cmp(&data[b]);
                                if want_max {
                                    o.is_gt()
                                } else {
                                    o.is_lt()
                                }
                            }
                        };
                        if better {
                            best = Some(i);
                        }
                    }
                    best.map(|i| Value::Str(data[i].clone()))
                }
            };
            AggAcc::MinMax { best, want_max }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, ColumnType, Schema};
    use qserv_sphgeom::SphericalBox;
    use std::cmp::Ordering;

    /// Five rows over an Int and a Float column, with a NULL in each and
    /// a NaN in the float — the values every kernel must agree with the
    /// interpreter on.
    fn fixture() -> Table {
        let mut t = Table::new(Schema::new(vec![
            ColumnDef::new("n", ColumnType::Int),
            ColumnDef::new("x", ColumnType::Float),
        ]));
        let rows = vec![
            vec![Value::Int(1), Value::Float(1.0)],
            vec![Value::Int(2), Value::Float(f64::NAN)],
            vec![Value::Int(3), Value::Null],
            vec![Value::Null, Value::Float(-2.5)],
            vec![Value::Int(5), Value::Float(7.25)],
        ];
        for r in rows {
            t.push_row(r).expect("fits");
        }
        t
    }

    fn apply(k: &Kernel, t: &Table) -> Vec<u32> {
        let mut stack = Vec::new();
        filter_rows(k, t, &mut stack, 0..t.num_rows() as u32)
    }

    #[test]
    fn range_kernel_int_bounds() {
        let t = fixture();
        let k = Kernel::Range {
            col: 0,
            lo: Some((NumLit::I(2), false)),
            hi: Some((NumLit::I(5), true)),
        };
        assert_eq!(apply(&k, &t), vec![1, 2]); // 2 <= n < 5, NULL dropped
        let k = Kernel::Range {
            col: 0,
            lo: Some((NumLit::I(2), false)),
            hi: Some((NumLit::I(5), false)),
        };
        assert_eq!(apply(&k, &t), vec![1, 2, 4]); // hi now inclusive
    }

    #[test]
    fn range_kernel_absent_bounds_admit_all_but_null() {
        let t = fixture();
        let k = Kernel::Range {
            col: 0,
            lo: None,
            hi: None,
        };
        assert_eq!(apply(&k, &t), vec![0, 1, 2, 4]);
    }

    #[test]
    fn range_kernel_float_bound_on_int_column() {
        let t = fixture();
        // A float bound forces the f64 comparison sql_cmp would use.
        let k = Kernel::Range {
            col: 0,
            lo: Some((NumLit::F(2.5), true)),
            hi: None,
        };
        assert_eq!(apply(&k, &t), vec![2, 4]); // n > 2.5
    }

    #[test]
    fn range_kernel_nan_fails_every_bound() {
        let t = fixture();
        // Even the unbounded range drops NaN (and NULL), exactly as
        // `partial_cmp -> None -> false` does in the interpreter.
        let k = Kernel::Range {
            col: 1,
            lo: None,
            hi: None,
        };
        assert_eq!(apply(&k, &t), vec![0, 3, 4]);
        let k = Kernel::Range {
            col: 1,
            lo: Some((NumLit::F(0.0), true)),
            hi: None,
        };
        assert_eq!(apply(&k, &t), vec![0, 4]); // x > 0
    }

    #[test]
    fn int_in_kernel_skips_nulls() {
        let t = fixture();
        let k = Kernel::IntIn {
            col: 0,
            keys: vec![2, 5],
        }; // sorted
        assert_eq!(apply(&k, &t), vec![1, 4]);
        let k = Kernel::IntIn {
            col: 0,
            keys: vec![7],
        };
        assert!(apply(&k, &t).is_empty());
    }

    #[test]
    fn box_kernel_tests_membership_and_nulls() {
        let mut t = Table::new(Schema::new(vec![
            ColumnDef::new("ra", ColumnType::Float),
            ColumnDef::new("decl", ColumnType::Float),
        ]));
        for r in [
            vec![Value::Float(45.0), Value::Float(0.0)],  // inside
            vec![Value::Float(90.0), Value::Float(0.0)],  // outside in lon
            vec![Value::Float(45.0), Value::Float(20.0)], // outside in lat
            vec![Value::Null, Value::Float(0.0)],         // NULL lon
        ] {
            t.push_row(r).expect("fits");
        }
        let k = Kernel::Box2D {
            lon: 0,
            lat: 1,
            bx: SphericalBox::from_degrees(30.0, -5.0, 60.0, 5.0),
        };
        assert_eq!(apply(&k, &t), vec![0]);
    }

    #[test]
    fn program_kernel_is_three_valued() {
        let t = fixture();
        // NOT (x > 0): UNKNOWN for NULL and NaN rows, which a WHERE
        // filter must drop along with the plain `false` rows.
        let p = Program {
            ops: vec![
                Op::PushCol(1),
                Op::PushLit(Value::Int(0)),
                Op::Bin(BinaryOp::Gt),
                Op::Not,
            ],
        };
        assert_eq!(apply(&Kernel::Program(p), &t), vec![3]); // only x = -2.5
    }

    #[test]
    fn fn_range_kernel_matches_interpreter_call() {
        use crate::compile::FnId;
        let t = fixture();
        // sqrt(x) <= 2.0: row 0 (sqrt(1)=1) passes; NaN propagates and
        // fails; NULL drops; sqrt(-2.5) is NULL and drops; sqrt(7.25)
        // ≈ 2.69 fails the bound.
        let k = Kernel::FnRange {
            fun: FnId::Sqrt,
            col: 1,
            lo: None,
            hi: Some((2.0, false)),
        };
        assert_eq!(apply(&k, &t), vec![0]);

        // Cross-check every fused function against functions::call row
        // by row, with bounds that exercise both sides.
        for (fun, name) in [
            (FnId::FluxToAbMag, "fluxToAbMag"),
            (FnId::AbMagToFlux, "abMagToFlux"),
            (FnId::Sqrt, "sqrt"),
            (FnId::Log10, "log10"),
            (FnId::Ln, "ln"),
        ] {
            let (lo_v, hi_v) = (-10.0, 10.0);
            let k = Kernel::FnRange {
                fun,
                col: 1,
                lo: Some((lo_v, false)),
                hi: Some((hi_v, true)),
            };
            let expect: Vec<u32> = (0..t.num_rows() as u32)
                .filter(|&r| {
                    let v = t.get(r as usize, 1);
                    let out = crate::functions::call(name, &[v]).expect("known fn");
                    use crate::value::Value as V;
                    out.sql_cmp(&V::Float(lo_v))
                        .map(|o| o != Ordering::Less)
                        .unwrap_or(false)
                        && out
                            .sql_cmp(&V::Float(hi_v))
                            .map(|o| o == Ordering::Less)
                            .unwrap_or(false)
                })
                .collect();
            assert_eq!(apply(&k, &t), expect, "fn {name}");
        }
    }

    /// Reference accumulation: the interpreter's per-row AggAcc updates.
    fn oracle(kind: AggKind, col: Option<usize>, t: &Table, sel: &[u32]) -> AggAcc {
        let mut acc = AggAcc::new(kind);
        for &r in sel {
            let arg = col.map(|c| t.get(r as usize, c));
            acc.update(arg.as_ref());
        }
        acc
    }

    fn assert_same_finish(a: AggAcc, b: AggAcc) {
        // total_cmp equality: NaN == NaN here, unlike PartialEq.
        assert_eq!(a.finish().total_cmp(&b.finish()), Ordering::Equal);
    }

    #[test]
    fn fused_aggregates_match_accumulator_semantics() {
        let t = fixture();
        let sel: Vec<u32> = (0..t.num_rows() as u32).collect();
        for kind in [
            AggKind::Count,
            AggKind::Sum,
            AggKind::Avg,
            AggKind::Min,
            AggKind::Max,
        ] {
            for col in [0usize, 1] {
                assert_same_finish(
                    fused_one(kind, Some(col), &t, &sel),
                    oracle(kind, Some(col), &t, &sel),
                );
            }
        }
        assert_same_finish(
            fused_one(AggKind::CountStar, None, &t, &sel),
            oracle(AggKind::CountStar, None, &t, &sel),
        );
    }

    #[test]
    fn fused_aggregates_over_empty_selection() {
        let t = fixture();
        for kind in [AggKind::Sum, AggKind::Avg, AggKind::Min, AggKind::Max] {
            let v = fused_one(kind, Some(1), &t, &[]).finish();
            assert_eq!(v, Value::Null, "{kind:?} of nothing must be NULL");
        }
        assert_eq!(
            fused_one(AggKind::CountStar, None, &t, &[]).finish(),
            Value::Int(0)
        );
    }

    #[test]
    fn grouped_fused_matches_per_group_accumulation() {
        let t = fixture();
        let sel: Vec<u32> = (0..t.num_rows() as u32).collect();
        let gids: Vec<u32> = vec![0, 1, 0, 1, 0];
        for kind in [
            AggKind::CountStar,
            AggKind::Count,
            AggKind::Sum,
            AggKind::Avg,
            AggKind::Min,
            AggKind::Max,
        ] {
            let col = if kind == AggKind::CountStar {
                None
            } else {
                Some(1)
            };
            let got = fused_group_one(kind, col, &t, &sel, &gids, 2);
            for slot in 0..2u32 {
                let member: Vec<u32> = sel
                    .iter()
                    .zip(&gids)
                    .filter(|&(_, &g)| g == slot)
                    .map(|(&r, _)| r)
                    .collect();
                assert_same_finish(got[slot as usize].clone(), oracle(kind, col, &t, &member));
            }
        }
    }
}
