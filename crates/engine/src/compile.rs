//! One-time query compilation for the vectorized execution path.
//!
//! A single-table scan is *compiled* once per query: every column
//! reference is resolved to a column index in the bound table, the WHERE
//! conjuncts are lowered to columnar [`Kernel`]s (with fused fast paths
//! for the shapes the frontend's rewriter actually emits — numeric range
//! AND-chains, `objectId` point/IN predicates and the
//! `qserv_ptInSphericalBox(...) = 1` spatial restriction), and the
//! projection / GROUP BY expressions are lowered to flat postfix
//! [`Program`]s. The per-row hot loop then runs with no string lookups,
//! no `Bindings` construction and no tree walks.
//!
//! Compilation is *conservative*: any shape whose runtime behaviour could
//! diverge from the interpreter — unknown or wrong-arity functions,
//! possibly-string function arguments, unresolvable columns, aggregates
//! in scalar position — refuses to compile (`None`), and the executor
//! falls back to the tree-walking interpreter, which remains the semantic
//! oracle. A compiled program is therefore *infallible* at runtime: every
//! error the interpreter could raise is detected statically here instead.

use crate::eval::is_aggregate;
use crate::exec::{index_keys, references_agg, AggKind, RowSink};
use crate::functions;
use crate::schema::ColumnType;
use crate::table::Table;
use crate::value::Value;
use qserv_sphgeom::SphericalBox;
use qserv_sqlparse::ast::{BinaryOp, Expr, Literal, SelectStatement, UnaryOp};

/// A numeric literal bound, kept in its source type so kernel comparisons
/// reproduce [`Value::sql_cmp`] exactly (Int↔Int compares as `i64`, any
/// mixed pair as `f64`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) enum NumLit {
    /// Integer literal.
    I(i64),
    /// Float literal.
    F(f64),
}

/// One columnar filter kernel; applied in conjunct order, each narrows
/// the selection vector.
#[derive(Clone, Debug)]
pub(crate) enum Kernel {
    /// Numeric range test on one column; bounds are `(literal, strict)`.
    /// Covers `<`, `<=`, `>`, `>=`, `=` and non-negated `BETWEEN`.
    Range {
        col: usize,
        lo: Option<(NumLit, bool)>,
        hi: Option<(NumLit, bool)>,
    },
    /// `col IN (int literals)` over an integer column; keys sorted and
    /// deduplicated for binary search.
    IntIn { col: usize, keys: Vec<i64> },
    /// `qserv_ptInSphericalBox(lon, lat, ...) = 1` with literal bounds.
    Box2D {
        lon: usize,
        lat: usize,
        bx: SphericalBox,
    },
    /// `func(numeric-col) ⋈ literal` for a unary float-or-NULL scalar
    /// function — the `fluxToAbMag(zFlux_PS) BETWEEN lo AND hi`
    /// magnitude-cut shape. The function result is always `Float` (or
    /// NULL, which fails the filter), so [`Value::sql_cmp`] against
    /// either literal kind reduces to an `f64` comparison and the bounds
    /// are pre-converted; no per-row `Value` boxing or argument `Vec`
    /// remains on the hot path.
    FnRange {
        fun: FnId,
        col: usize,
        lo: Option<(f64, bool)>,
        hi: Option<(f64, bool)>,
    },
    /// General predicate evaluated as a compiled program.
    Program(Program),
}

/// The unary scalar functions with a fused range kernel. Each returns
/// `Float` or NULL for any numeric input, mirroring
/// [`crate::functions::call`] exactly (NULL maps to `None`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum FnId {
    /// `fluxToAbMag(x)` — NULL for non-positive or non-finite flux.
    FluxToAbMag,
    /// `abMagToFlux(x)` — total.
    AbMagToFlux,
    /// `sqrt(x)` — NULL for negative input.
    Sqrt,
    /// `log10(x)` — NULL for non-positive input.
    Log10,
    /// `ln(x)` — NULL for non-positive input.
    Ln,
}

impl FnId {
    /// The fused scalar, routed through the same free functions
    /// [`crate::functions::call`] uses so the kernel cannot drift from
    /// the interpreter.
    #[inline]
    pub(crate) fn apply(self, x: f64) -> Option<f64> {
        match self {
            FnId::FluxToAbMag => functions::flux_to_ab_mag(x),
            FnId::AbMagToFlux => Some(functions::ab_mag_to_flux(x)),
            FnId::Sqrt => (x >= 0.0 || x.is_nan()).then(|| x.sqrt()),
            FnId::Log10 => (x > 0.0 || x.is_nan()).then(|| x.log10()),
            FnId::Ln => (x > 0.0 || x.is_nan()).then(|| x.ln()),
        }
    }

    fn from_name(lname: &str) -> Option<FnId> {
        Some(match lname {
            "fluxtoabmag" => FnId::FluxToAbMag,
            "abmagtoflux" => FnId::AbMagToFlux,
            "sqrt" => FnId::Sqrt,
            "log10" => FnId::Log10,
            "ln" => FnId::Ln,
            _ => return None,
        })
    }
}

/// A flat postfix program over one table's columns. Logical AND/OR use
/// jump ops so short-circuit behaviour (and therefore error and NULL
/// semantics) matches the interpreter exactly.
#[derive(Clone, Debug)]
pub(crate) struct Program {
    pub(crate) ops: Vec<Op>,
}

/// One program instruction.
#[derive(Clone, Debug)]
pub(crate) enum Op {
    /// Push the current row's value of a column.
    PushCol(usize),
    /// Push a constant.
    PushLit(Value),
    /// Apply a non-logical binary operator to the top two values.
    Bin(BinaryOp),
    /// If the top of stack is definitely false, replace it with `0` and
    /// skip `skip` ops (the rhs and its fold) — the interpreter's AND
    /// short-circuit.
    AndJump(usize),
    /// Dual of [`Op::AndJump`] for OR: skip on definitely true.
    OrJump(usize),
    /// Kleene-AND the top two values.
    AndFold,
    /// Kleene-OR the top two values.
    OrFold,
    /// Arithmetic negation of the top value.
    Neg,
    /// Three-valued NOT of the top value.
    Not,
    /// Call a scalar function on the top `argc` values (validated at
    /// compile time: known, right arity, numeric arguments).
    Call { name: String, argc: usize },
    /// BETWEEN over the top three values (`expr`, `low`, `high`).
    Between { negated: bool },
    /// IN over the top `1 + n` values (`expr`, then `n` list items).
    InList { negated: bool, n: usize },
    /// IS [NOT] NULL of the top value.
    IsNull { negated: bool },
}

/// How a compiled scan produces output rows.
#[derive(Clone, Debug)]
pub(crate) enum OutputPlan {
    /// Plain projection: one program per output column (visible
    /// projections followed by hidden sort keys).
    Plain { exprs: Vec<Program> },
    /// Aggregation.
    Agg {
        /// GROUP BY key programs.
        keys: Vec<Program>,
        /// Per aggregate spec: argument program (`None` for COUNT(*)).
        args: Vec<Option<Program>>,
        /// Per projected expression: representative-row program, `None`
        /// when the projection references aggregate results (computed at
        /// finish time instead).
        rep: Vec<Option<Program>>,
        /// When the query is an ungrouped aggregate whose arguments are
        /// all bare columns, the fused per-column accumulation plan,
        /// aligned with `args`.
        fused: Option<Vec<(AggKind, Option<usize>)>>,
        /// When the query groups by a single integer column and every
        /// aggregate argument is a bare column, the fused grouped
        /// accumulation plan.
        fused_group: Option<GroupFused>,
    },
}

/// Fused grouped aggregation: group slots are assigned straight off one
/// integer key column, then each aggregate runs as a tight per-column
/// loop over the selection.
#[derive(Clone, Debug)]
pub(crate) struct GroupFused {
    /// The GROUP BY key column (integer-typed).
    pub(crate) key_col: usize,
    /// Per aggregate spec: kind and argument column (`None` for
    /// COUNT(*)), aligned with `OutputPlan::Agg::args`.
    pub(crate) args: Vec<(AggKind, Option<usize>)>,
}

/// A fully compiled single-table scan.
#[derive(Clone, Debug)]
pub(crate) struct VecPlan {
    /// Index keys seeding the selection (same first-conjunct rule as the
    /// interpreter's `candidate_rows`); `None` means full scan.
    pub(crate) seed: Option<Vec<i64>>,
    /// Filter kernels, in conjunct order.
    pub(crate) kernels: Vec<Kernel>,
    /// Output production.
    pub(crate) output: OutputPlan,
}

impl VecPlan {
    /// The set of table columns this plan reads, as a mask over `ncols`
    /// columns — what a paged scan must actually decode. Covers filter
    /// kernels, every output program and the fused aggregation columns.
    pub(crate) fn referenced_cols(&self, ncols: usize) -> Vec<bool> {
        fn mark_program(p: &Program, mask: &mut [bool]) {
            for op in &p.ops {
                if let Op::PushCol(c) = op {
                    mask[*c] = true;
                }
            }
        }
        let mut mask = vec![false; ncols];
        for k in &self.kernels {
            match k {
                Kernel::Range { col, .. }
                | Kernel::IntIn { col, .. }
                | Kernel::FnRange { col, .. } => mask[*col] = true,
                Kernel::Box2D { lon, lat, .. } => {
                    mask[*lon] = true;
                    mask[*lat] = true;
                }
                Kernel::Program(p) => mark_program(p, &mut mask),
            }
        }
        match &self.output {
            OutputPlan::Plain { exprs } => {
                for p in exprs {
                    mark_program(p, &mut mask);
                }
            }
            OutputPlan::Agg {
                keys,
                args,
                rep,
                fused,
                fused_group,
            } => {
                for p in keys {
                    mark_program(p, &mut mask);
                }
                for p in args.iter().chain(rep).flatten() {
                    mark_program(p, &mut mask);
                }
                if let Some(cols) = fused {
                    for (_, c) in cols.iter() {
                        if let Some(c) = c {
                            mask[*c] = true;
                        }
                    }
                }
                if let Some(gf) = fused_group {
                    mask[gf.key_col] = true;
                    for (_, c) in &gf.args {
                        if let Some(c) = c {
                            mask[*c] = true;
                        }
                    }
                }
            }
        }
        mask
    }
}

/// Static expression type: only string literals and string columns are
/// `Str`; every other expression yields numeric-or-NULL values.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Ty {
    Num,
    Str,
}

/// Compilation context: the single FROM binding and its table.
struct Ctx<'a> {
    binding: &'a str,
    table: &'a Table,
}

impl Ctx<'_> {
    /// Resolves a column reference against the single binding; `None` on
    /// a mismatched qualifier or unknown column (the interpreter raises
    /// the corresponding error, so the caller must fall back).
    fn resolve(&self, qualifier: Option<&str>, name: &str) -> Option<(usize, Ty)> {
        if let Some(q) = qualifier {
            if q != self.binding {
                return None;
            }
        }
        let col = self.table.schema().index_of(name)?;
        let ty = match self.table.schema().columns()[col].ty {
            ColumnType::Str => Ty::Str,
            _ => Ty::Num,
        };
        Some((col, ty))
    }

    /// `e` as a numeric (Int or Float) column of the binding.
    fn numeric_col(&self, e: &Expr) -> Option<usize> {
        if let Expr::Column {
            qualifier, name, ..
        } = e
        {
            let (col, ty) = self.resolve(qualifier.as_deref(), name)?;
            if ty == Ty::Num {
                return Some(col);
            }
        }
        None
    }

    /// `e` as an integer column of the binding.
    fn int_col(&self, e: &Expr) -> Option<usize> {
        let col = self.numeric_col(e)?;
        matches!(self.table.schema().columns()[col].ty, ColumnType::Int).then_some(col)
    }
}

/// Compiles a single-table statement into a [`VecPlan`]; `None` when any
/// part is out of scope for vectorized execution.
pub(crate) fn compile_single(
    stmt: &SelectStatement,
    binding: &str,
    table: &Table,
    sink: &RowSink<'_>,
    conjuncts: &[&Expr],
) -> Option<VecPlan> {
    let ctx = Ctx { binding, table };

    let mut kernels = Vec::with_capacity(conjuncts.len());
    for c in conjuncts {
        kernels.push(compile_conjunct(&ctx, c)?);
    }

    // Index seed: identical first-matching-conjunct rule to the
    // interpreter; the kernels re-verify every conjunct either way.
    let mut seed = None;
    if let Some(idx_col) = table.indexed_column() {
        for c in conjuncts {
            if let Some(keys) = index_keys(c, idx_col) {
                seed = Some(keys);
                break;
            }
        }
    }

    let output = if sink.is_aggregated() {
        let keys = stmt
            .group_by
            .iter()
            .map(|g| compile_program(&ctx, g))
            .collect::<Option<Vec<_>>>()?;
        let mut args = Vec::with_capacity(sink.agg_specs().len());
        for spec in sink.agg_specs() {
            args.push(match (spec.kind, &spec.arg) {
                (AggKind::CountStar, _) | (_, None) => None,
                (_, Some(a)) => Some(compile_program(&ctx, a)?),
            });
        }
        let mut rep = Vec::with_capacity(sink.agg_projected().len());
        for proj in sink.agg_projected() {
            rep.push(if references_agg(proj) {
                None
            } else {
                Some(compile_program(&ctx, proj)?)
            });
        }
        let fused = if stmt.group_by.is_empty() && rep.iter().all(Option::is_none) {
            fused_args(&ctx, sink)
        } else {
            None
        };
        let fused_group = if stmt.group_by.len() == 1 {
            match (ctx.int_col(&stmt.group_by[0]), fused_args(&ctx, sink)) {
                (Some(key_col), Some(args)) => Some(GroupFused { key_col, args }),
                _ => None,
            }
        } else {
            None
        };
        OutputPlan::Agg {
            keys,
            args,
            rep,
            fused,
            fused_group,
        }
    } else {
        let mut exprs = Vec::new();
        for e in sink.plain_exprs().iter().chain(sink.hidden_sort()) {
            exprs.push(compile_program(&ctx, e)?);
        }
        OutputPlan::Plain { exprs }
    };

    Some(VecPlan {
        seed,
        kernels,
        output,
    })
}

/// The fused per-column accumulation plan, when every aggregate argument
/// is a bare column (or COUNT(*)).
fn fused_args(ctx: &Ctx<'_>, sink: &RowSink<'_>) -> Option<Vec<(AggKind, Option<usize>)>> {
    let mut out = Vec::with_capacity(sink.agg_specs().len());
    for spec in sink.agg_specs() {
        out.push(match (spec.kind, &spec.arg) {
            (AggKind::CountStar, _) | (_, None) => (spec.kind, None),
            (
                k,
                Some(Expr::Column {
                    qualifier, name, ..
                }),
            ) => {
                let (col, _) = ctx.resolve(qualifier.as_deref(), name)?;
                (k, Some(col))
            }
            _ => return None,
        });
    }
    Some(out)
}

/// Compiles one WHERE conjunct into a kernel: a fused fast path when the
/// shape allows, otherwise a general program.
fn compile_conjunct(ctx: &Ctx<'_>, e: &Expr) -> Option<Kernel> {
    if let Some(k) = recognize_range(ctx, e) {
        return Some(k);
    }
    if let Some(k) = recognize_int_in(ctx, e) {
        return Some(k);
    }
    if let Some(k) = recognize_box(ctx, e) {
        return Some(k);
    }
    if let Some(k) = recognize_fn_range(ctx, e) {
        return Some(k);
    }
    compile_program(ctx, e).map(Kernel::Program)
}

fn num_lit(e: &Expr) -> Option<NumLit> {
    match e {
        Expr::Literal(Literal::Int(v)) => Some(NumLit::I(*v)),
        Expr::Literal(Literal::Float(v)) => Some(NumLit::F(*v)),
        _ => None,
    }
}

/// `numeric-col ⋈ numeric-literal` (either orientation) and non-negated
/// BETWEEN become a [`Kernel::Range`].
fn recognize_range(ctx: &Ctx<'_>, e: &Expr) -> Option<Kernel> {
    fn flip(op: BinaryOp) -> Option<BinaryOp> {
        Some(match op {
            BinaryOp::Eq => BinaryOp::Eq,
            BinaryOp::Lt => BinaryOp::Gt,
            BinaryOp::LtEq => BinaryOp::GtEq,
            BinaryOp::Gt => BinaryOp::Lt,
            BinaryOp::GtEq => BinaryOp::LtEq,
            _ => return None,
        })
    }
    match e {
        Expr::Binary { op, lhs, rhs } => {
            let (col, lit, op) = if let (Some(c), Some(l)) = (ctx.numeric_col(lhs), num_lit(rhs)) {
                (c, l, *op)
            } else if let (Some(c), Some(l)) = (ctx.numeric_col(rhs), num_lit(lhs)) {
                (c, l, flip(*op)?)
            } else {
                return None;
            };
            let (lo, hi) = match op {
                BinaryOp::Eq => (Some((lit, false)), Some((lit, false))),
                BinaryOp::Lt => (None, Some((lit, true))),
                BinaryOp::LtEq => (None, Some((lit, false))),
                BinaryOp::Gt => (Some((lit, true)), None),
                BinaryOp::GtEq => (Some((lit, false)), None),
                _ => return None,
            };
            Some(Kernel::Range { col, lo, hi })
        }
        Expr::Between {
            expr,
            negated: false,
            low,
            high,
        } => {
            let col = ctx.numeric_col(expr)?;
            Some(Kernel::Range {
                col,
                lo: Some((num_lit(low)?, false)),
                hi: Some((num_lit(high)?, false)),
            })
        }
        _ => None,
    }
}

/// `func(numeric-col) ⋈ numeric-literal` (either orientation) and
/// non-negated `func(col) BETWEEN lit AND lit` become a
/// [`Kernel::FnRange`] for the fused unary functions.
fn recognize_fn_range(ctx: &Ctx<'_>, e: &Expr) -> Option<Kernel> {
    fn fn_col(ctx: &Ctx<'_>, e: &Expr) -> Option<(FnId, usize)> {
        let Expr::Function { name, args } = e else {
            return None;
        };
        let fun = FnId::from_name(name.to_ascii_lowercase().as_str())?;
        if args.len() != 1 {
            return None;
        }
        Some((fun, ctx.numeric_col(&args[0])?))
    }
    fn bound_f64(e: &Expr) -> Option<f64> {
        Some(match num_lit(e)? {
            NumLit::I(v) => v as f64,
            NumLit::F(v) => v,
        })
    }
    fn flip(op: BinaryOp) -> Option<BinaryOp> {
        Some(match op {
            BinaryOp::Eq => BinaryOp::Eq,
            BinaryOp::Lt => BinaryOp::Gt,
            BinaryOp::LtEq => BinaryOp::GtEq,
            BinaryOp::Gt => BinaryOp::Lt,
            BinaryOp::GtEq => BinaryOp::LtEq,
            _ => return None,
        })
    }
    match e {
        Expr::Binary { op, lhs, rhs } => {
            let ((fun, col), lit, op) =
                if let (Some(fc), Some(l)) = (fn_col(ctx, lhs), bound_f64(rhs)) {
                    (fc, l, *op)
                } else if let (Some(fc), Some(l)) = (fn_col(ctx, rhs), bound_f64(lhs)) {
                    (fc, l, flip(*op)?)
                } else {
                    return None;
                };
            let (lo, hi) = match op {
                BinaryOp::Eq => (Some((lit, false)), Some((lit, false))),
                BinaryOp::Lt => (None, Some((lit, true))),
                BinaryOp::LtEq => (None, Some((lit, false))),
                BinaryOp::Gt => (Some((lit, true)), None),
                BinaryOp::GtEq => (Some((lit, false)), None),
                _ => return None,
            };
            Some(Kernel::FnRange { fun, col, lo, hi })
        }
        Expr::Between {
            expr,
            negated: false,
            low,
            high,
        } => {
            let (fun, col) = fn_col(ctx, expr)?;
            Some(Kernel::FnRange {
                fun,
                col,
                lo: Some((bound_f64(low)?, false)),
                hi: Some((bound_f64(high)?, false)),
            })
        }
        _ => None,
    }
}

/// `int-col IN (int literals)` becomes a [`Kernel::IntIn`].
fn recognize_int_in(ctx: &Ctx<'_>, e: &Expr) -> Option<Kernel> {
    if let Expr::InList {
        expr,
        negated: false,
        list,
    } = e
    {
        let col = ctx.int_col(expr)?;
        let mut keys = Vec::with_capacity(list.len());
        for item in list {
            match item {
                Expr::Literal(Literal::Int(v)) => keys.push(*v),
                _ => return None,
            }
        }
        keys.sort_unstable();
        keys.dedup();
        return Some(Kernel::IntIn { col, keys });
    }
    None
}

/// `qserv_ptInSphericalBox(loncol, latcol, literals...) = 1` (either
/// orientation) becomes a [`Kernel::Box2D`] with the box precomputed.
fn recognize_box(ctx: &Ctx<'_>, e: &Expr) -> Option<Kernel> {
    fn is_int_one(e: &Expr) -> bool {
        matches!(e, Expr::Literal(Literal::Int(1)))
    }
    let Expr::Binary {
        op: BinaryOp::Eq,
        lhs,
        rhs,
    } = e
    else {
        return None;
    };
    let func = if is_int_one(rhs) {
        lhs
    } else if is_int_one(lhs) {
        rhs
    } else {
        return None;
    };
    let Expr::Function { name, args } = &**func else {
        return None;
    };
    let lname = name.to_ascii_lowercase();
    if !matches!(
        lname.as_str(),
        "qserv_ptinsphericalbox" | "scisql_s2ptinbox"
    ) || args.len() != 6
    {
        return None;
    }
    let lon = ctx.numeric_col(&args[0])?;
    let lat = ctx.numeric_col(&args[1])?;
    let mut b = [0.0f64; 4];
    for (slot, a) in b.iter_mut().zip(&args[2..]) {
        *slot = match num_lit(a)? {
            NumLit::I(v) => v as f64,
            NumLit::F(v) => v,
        };
    }
    Some(Kernel::Box2D {
        lon,
        lat,
        bx: SphericalBox::from_degrees(b[0], b[1], b[2], b[3]),
    })
}

fn compile_program(ctx: &Ctx<'_>, e: &Expr) -> Option<Program> {
    let mut ops = Vec::new();
    compile_expr(ctx, e, &mut ops)?;
    Some(Program { ops })
}

/// Known-function arity table; must stay in sync with
/// [`crate::functions::call`] so compiled calls cannot error at runtime.
fn arity_ok(lname: &str, n: usize) -> bool {
    match lname {
        "fluxtoabmag" | "abmagtoflux" | "abs" | "sqrt" | "floor" | "ceil" | "log10" | "ln" => {
            n == 1
        }
        "pow" | "power" => n == 2,
        "qserv_angsep" | "scisql_angsep" => n == 4,
        "qserv_ptinsphericalbox" | "scisql_s2ptinbox" => n == 6,
        "least" | "greatest" => n >= 1,
        _ => false,
    }
}

/// Lowers `e` to postfix ops, returning its static type; `None` aborts
/// compilation (the caller falls back to the interpreter).
fn compile_expr(ctx: &Ctx<'_>, e: &Expr, ops: &mut Vec<Op>) -> Option<Ty> {
    match e {
        Expr::Literal(l) => {
            let (v, ty) = match l {
                Literal::Int(v) => (Value::Int(*v), Ty::Num),
                Literal::Float(v) => (Value::Float(*v), Ty::Num),
                Literal::Str(s) => (Value::Str(s.clone()), Ty::Str),
                Literal::Null => (Value::Null, Ty::Num),
            };
            ops.push(Op::PushLit(v));
            Some(ty)
        }
        Expr::Column {
            qualifier, name, ..
        } => {
            let (col, ty) = ctx.resolve(qualifier.as_deref(), name)?;
            ops.push(Op::PushCol(col));
            Some(ty)
        }
        Expr::Star => None,
        Expr::Unary { op, expr } => {
            compile_expr(ctx, expr, ops)?;
            ops.push(match op {
                UnaryOp::Neg => Op::Neg,
                UnaryOp::Not => Op::Not,
            });
            Some(Ty::Num)
        }
        Expr::Binary { op, lhs, rhs } => {
            match op {
                BinaryOp::And | BinaryOp::Or => {
                    compile_expr(ctx, lhs, ops)?;
                    let jump_at = ops.len();
                    ops.push(if *op == BinaryOp::And {
                        Op::AndJump(0)
                    } else {
                        Op::OrJump(0)
                    });
                    compile_expr(ctx, rhs, ops)?;
                    ops.push(if *op == BinaryOp::And {
                        Op::AndFold
                    } else {
                        Op::OrFold
                    });
                    let skip = ops.len() - jump_at - 1;
                    ops[jump_at] = if *op == BinaryOp::And {
                        Op::AndJump(skip)
                    } else {
                        Op::OrJump(skip)
                    };
                }
                _ => {
                    compile_expr(ctx, lhs, ops)?;
                    compile_expr(ctx, rhs, ops)?;
                    ops.push(Op::Bin(*op));
                }
            }
            Some(Ty::Num)
        }
        Expr::Between {
            expr,
            negated,
            low,
            high,
        } => {
            compile_expr(ctx, expr, ops)?;
            compile_expr(ctx, low, ops)?;
            compile_expr(ctx, high, ops)?;
            ops.push(Op::Between { negated: *negated });
            Some(Ty::Num)
        }
        Expr::InList {
            expr,
            negated,
            list,
        } => {
            compile_expr(ctx, expr, ops)?;
            for item in list {
                compile_expr(ctx, item, ops)?;
            }
            ops.push(Op::InList {
                negated: *negated,
                n: list.len(),
            });
            Some(Ty::Num)
        }
        Expr::IsNull { expr, negated } => {
            compile_expr(ctx, expr, ops)?;
            ops.push(Op::IsNull { negated: *negated });
            Some(Ty::Num)
        }
        Expr::Function { name, args } => {
            // Aggregates, unknown names and wrong arities would raise
            // runtime errors in the interpreter; refuse so the fallback
            // reproduces them. String-typed arguments error in
            // `functions::call` when non-NULL, so refuse those too.
            if is_aggregate(name) || !functions::is_known(name) {
                return None;
            }
            if !arity_ok(name.to_ascii_lowercase().as_str(), args.len()) {
                return None;
            }
            for a in args {
                if compile_expr(ctx, a, ops)? != Ty::Num {
                    return None;
                }
            }
            ops.push(Op::Call {
                name: name.clone(),
                argc: args.len(),
            });
            Some(Ty::Num)
        }
    }
}
