//! Column types and table schemas.

use crate::value::Value;
use std::fmt;

/// The storage type of a column.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColumnType {
    /// 64-bit integer (`BIGINT`).
    Int,
    /// 64-bit float (`DOUBLE`).
    Float,
    /// Variable-length string (`VARCHAR`).
    Str,
}

impl ColumnType {
    /// Bytes one value of this type occupies in our columnar storage
    /// (strings are estimated at their in-catalog average below; callers
    /// needing exact string footprints measure the data).
    pub fn fixed_width(&self) -> usize {
        match self {
            ColumnType::Int | ColumnType::Float => 8,
            ColumnType::Str => 16, // Estimated average; catalog tables are numeric.
        }
    }

    /// True when `v` can be stored in a column of this type (NULL fits
    /// everywhere).
    pub fn admits(&self, v: &Value) -> bool {
        matches!(
            (self, v),
            (_, Value::Null)
                | (ColumnType::Int, Value::Int(_))
                | (ColumnType::Float, Value::Float(_))
                | (ColumnType::Float, Value::Int(_)) // widened on insert
                | (ColumnType::Str, Value::Str(_))
        )
    }
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ColumnType::Int => "BIGINT",
            ColumnType::Float => "DOUBLE",
            ColumnType::Str => "VARCHAR",
        })
    }
}

/// One column's definition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name (case-sensitive, as LSST schemas are).
    pub name: String,
    /// Storage type.
    pub ty: ColumnType,
}

impl ColumnDef {
    /// Shorthand constructor.
    pub fn new(name: &str, ty: ColumnType) -> ColumnDef {
        ColumnDef {
            name: name.to_string(),
            ty,
        }
    }
}

/// An ordered list of column definitions.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<ColumnDef>,
}

impl Schema {
    /// Builds a schema; panics on duplicate column names (a schema is
    /// developer input, not user input).
    pub fn new(columns: Vec<ColumnDef>) -> Schema {
        for (i, c) in columns.iter().enumerate() {
            assert!(
                !columns[..i].iter().any(|p| p.name == c.name),
                "duplicate column name {:?}",
                c.name
            );
        }
        Schema { columns }
    }

    /// The columns in order.
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True when there are no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Index of a column by exact name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// The column definition by name.
    pub fn column(&self, name: &str) -> Option<&ColumnDef> {
        self.index_of(name).map(|i| &self.columns[i])
    }

    /// Estimated bytes per row (fixed-width accounting; paper Table 1
    /// footprints are computed this way, "neglecting compression and
    /// database overheads").
    pub fn row_width(&self) -> usize {
        self.columns.iter().map(|c| c.ty.fixed_width()).sum()
    }

    /// Appends a column; panics on duplicates.
    pub fn push(&mut self, def: ColumnDef) {
        assert!(
            self.index_of(&def.name).is_none(),
            "duplicate column name {:?}",
            def.name
        );
        self.columns.push(def);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Schema {
        Schema::new(vec![
            ColumnDef::new("objectId", ColumnType::Int),
            ColumnDef::new("ra_PS", ColumnType::Float),
            ColumnDef::new("tag", ColumnType::Str),
        ])
    }

    #[test]
    fn lookup_by_name() {
        let s = demo();
        assert_eq!(s.index_of("ra_PS"), Some(1));
        assert_eq!(s.index_of("nope"), None);
        assert_eq!(s.column("objectId").unwrap().ty, ColumnType::Int);
    }

    #[test]
    fn case_sensitive_names() {
        let s = demo();
        assert_eq!(s.index_of("RA_ps"), None);
    }

    #[test]
    fn row_width_counts_fixed_bytes() {
        assert_eq!(demo().row_width(), 8 + 8 + 16);
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_rejected() {
        Schema::new(vec![
            ColumnDef::new("a", ColumnType::Int),
            ColumnDef::new("a", ColumnType::Float),
        ]);
    }

    #[test]
    fn admits_widens_int_to_float() {
        assert!(ColumnType::Float.admits(&Value::Int(1)));
        assert!(!ColumnType::Int.admits(&Value::Float(1.0)));
        assert!(ColumnType::Str.admits(&Value::Null));
    }

    #[test]
    fn push_extends() {
        let mut s = demo();
        s.push(ColumnDef::new("chunkId", ColumnType::Int));
        assert_eq!(s.len(), 4);
        assert_eq!(s.index_of("chunkId"), Some(3));
    }
}
